"""Shard-parallel butterfly counting and BE-Index construction.

Both operations shard the same way: the start-vertex space is split into
contiguous ranges (several per worker, so a hub-heavy range cannot straggle
the pool), each range runs the corresponding vectorized kernel against the
worker's zero-copy view of the published CSR arrays, and the parent merges
the shard results deterministically in ascending range order:

* **counting** — partial support arrays sum (integer contributions are per
  start vertex, so any summation order is exact);
* **BE-Index build** — supports sum and the wedge-pair/bloom fragments
  concatenate with bloom-id offsets via
  :meth:`~repro.core.peeling_engine.CSRPeelingEngine.from_shards`, which
  reproduces the sequential engine **bit for bit** (every maximal
  priority-obeyed bloom is anchored at exactly one start vertex, so shards
  never split or duplicate a bloom).

The task functions live at module level (picklable) and carry the arena
manifest with them — the pool needs no per-operation initialization.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.butterfly.vectorized import count_range_on_arrays
from repro.core.peeling_engine import (
    BuildShard,
    CSRPeelingEngine,
    build_shard_on_arrays,
)
from repro.runtime.pool import ParallelRuntime, attached_views
from repro.runtime.shm import ArenaManifest

# ------------------------------------------------------------ worker tasks


def _task_count_range(
    manifest: ArenaManifest, start_lo: int, start_hi: int
) -> np.ndarray:
    """Partial per-edge supports of one start range (runs in a worker)."""
    views = attached_views(manifest)
    return count_range_on_arrays(
        views["indptr"],
        views["indices"],
        views["edge_ids"],
        views["row_prios"],
        views["prio"],
        manifest.meta["num_edges"],
        start_lo,
        start_hi,
    )


def _task_build_shard(
    manifest: ArenaManifest, start_lo: int, start_hi: int
) -> BuildShard:
    """One BE-Index construction shard (runs in a worker)."""
    views = attached_views(manifest)
    return build_shard_on_arrays(
        views["indptr"],
        views["indices"],
        views["edge_ids"],
        views["row_prios"],
        views["prio"],
        manifest.meta["num_edges"],
        start_lo,
        start_hi,
    )


# ------------------------------------------------------------ parent side


def count_per_edge_shards(
    runtime: ParallelRuntime, *, chunks_per_worker: Optional[int] = None
) -> np.ndarray:
    """Butterfly support of every edge, sharded across the runtime's pool.

    Exactly equivalent to
    :func:`repro.butterfly.counting.count_per_edge` — the partial sums are
    merged in ascending shard order, and each contribution is an exact
    int64, so the result is bitwise identical to the scalar path.
    """
    graph = runtime.graph
    total = np.zeros(graph.num_edges, dtype=np.int64)
    ranges = runtime.shard_ranges(
        graph.num_vertices, chunks_per_worker=chunks_per_worker
    )
    manifest = runtime.graph_manifest
    tasks = [(manifest, lo, hi) for lo, hi in ranges]
    for partial in runtime.map_tasks(_task_count_range, tasks):
        total += partial
    return total


def build_engine_shards(
    runtime: ParallelRuntime, *, chunks_per_worker: Optional[int] = None
) -> CSRPeelingEngine:
    """Parallel BE-Index construction over the runtime's pool.

    Returns a :class:`~repro.core.peeling_engine.CSRPeelingEngine` whose
    arrays (supports, wedge pairs, bloom numbering, CSR links) are bitwise
    identical to ``CSRPeelingEngine.build(runtime.graph)``.
    """
    graph = runtime.graph
    ranges = runtime.shard_ranges(
        graph.num_vertices, chunks_per_worker=chunks_per_worker
    )
    manifest = runtime.graph_manifest
    tasks = [(manifest, lo, hi) for lo, hi in ranges]
    shards: List[BuildShard] = runtime.map_tasks(_task_build_shard, tasks)
    return CSRPeelingEngine.from_shards(graph.num_edges, shards)

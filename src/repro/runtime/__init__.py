"""repro.runtime — zero-copy shared-memory parallel execution.

The compute pillar of the system (PR 1 added CSR storage, PR 2 the serving
layer): a persistent worker pool (:class:`ParallelRuntime`) that publishes
the graph's frozen CSR arrays into ``multiprocessing.shared_memory`` once
and lets every worker attach zero-copy.  On top of it ride shard-parallel
butterfly counting, parallel BE-Index construction and the
level-synchronous ``bit-bu-par`` decomposition.

Use :func:`is_available` to gate callers on platforms without POSIX shared
memory: ``butterfly.parallel`` falls back to in-process counting (with a
``RuntimeWarning``), while the CLI and the service layer fail fast with a
clear message rather than silently running single-core.
"""

from repro.runtime.parallel_counting import (
    build_engine_shards,
    count_per_edge_shards,
)
from repro.runtime.parallel_peeling import bit_bu_par, parallel_peel
from repro.runtime.pool import ParallelRuntime, RuntimeClosedError
from repro.runtime.shm import ArenaManifest, ShmArena, is_available

__all__ = [
    "ArenaManifest",
    "ParallelRuntime",
    "RuntimeClosedError",
    "ShmArena",
    "bit_bu_par",
    "build_engine_shards",
    "count_per_edge_shards",
    "is_available",
    "parallel_peel",
]

"""The persistent worker-pool runtime over shared-memory CSR arrays.

A :class:`ParallelRuntime` freezes one graph's traversal state — the
priority-sorted gid CSR (``indptr``/``indices``/``edge_ids``), the per-slot
neighbour priorities and the Definition 7 vertex ranking — into a single
:class:`~repro.runtime.shm.ShmArena` segment, then keeps a pool of worker
processes alive for the graph's lifetime.  Every task a worker runs
*attaches* those arrays zero-copy (a few-microsecond ``mmap`` per worker,
cached across tasks) instead of receiving a pickled edge list and
rebuilding a :class:`~repro.graph.bipartite.BipartiteGraph` per process —
the cost model that made the old ``butterfly.parallel`` path break even
only after ~a second of counting work.

On top of the pool, :mod:`repro.runtime.parallel_counting` shards butterfly
counting and BE-Index construction, and
:mod:`repro.runtime.parallel_peeling` runs level-synchronous parallel
peeling (additional arenas, e.g. the mutable peeling state, can be
published through :meth:`ParallelRuntime.publish`).

Worker-side state is one process-local attachment cache keyed by segment
name; task functions carry the (tiny, picklable) manifests with them, so
the pool never needs re-initialization when new arenas appear.
"""

from __future__ import annotations

import atexit
import os
import sys
from concurrent.futures import ProcessPoolExecutor
from multiprocessing import get_all_start_methods, get_context
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.graph.bipartite import BipartiteGraph
from repro.obs import metrics as obs_metrics
from repro.obs import phases as obs_phases
from repro.obs import spans as obs_spans
from repro.obs import trace as obs_trace
from repro.runtime.shm import ArenaManifest, ShmArena, is_available

#: Keys of the graph arrays every runtime publishes.
GRAPH_ARRAY_KEYS = ("indptr", "indices", "edge_ids", "row_prios", "prio")

# ---------------------------------------------------------------- worker side

#: Process-local attachment cache: segment name -> (arena, views dict).
#: Populated inside worker processes only; fork-inherited parent entries are
#: impossible because the parent stores owner arenas elsewhere.
_ATTACHED: Dict[str, ShmArena] = {}


def attached_views(manifest: ArenaManifest) -> Dict[str, np.ndarray]:
    """Read-only views of an arena, attached once per worker process."""
    arena = _ATTACHED.get(manifest.segment)
    if arena is None or arena.closed:
        _evict_unlinked()
        arena = ShmArena.attach(manifest)
        _ATTACHED[manifest.segment] = arena
    return {key: arena.view(key) for key in manifest.keys()}


def _evict_unlinked() -> None:
    """Drop cached attachments whose segment the owner has unlinked.

    A long-lived runtime publishes a fresh peeling arena per peel; without
    this sweep each worker would keep the unlinked segments' pages mapped
    (and their memory alive) until pool shutdown.  Run only on new
    attaches, so steady-state tasks stay syscall-free.
    """
    for name in [n for n, a in _ATTACHED.items() if a.closed or not _segment_exists(n)]:
        _ATTACHED.pop(name).close()


def _segment_exists(name: str) -> bool:
    if not os.path.isdir("/dev/shm"):
        # No cheap probe (e.g. macOS shm has no filesystem view): keep the
        # attachment rather than thrash close/re-attach on a live segment.
        return True
    return os.path.exists(os.path.join("/dev/shm", name.lstrip("/")))


def _detach_all() -> None:
    """Unmap every cached attachment (worker exit hygiene)."""
    for arena in _ATTACHED.values():
        arena.close()
    _ATTACHED.clear()


def _worker_init() -> None:
    # Workers never unlink; closing on exit keeps /dev/shm refcounts tidy
    # even when the pool is recycled many times in one test run.
    atexit.register(_detach_all)
    # A fork-started worker also inherits the parent's observability state
    # as of fork time: counter values already reported by the parent and a
    # phase stack whose open phases never exit here.  Both would be
    # harvested back (double-counting metrics, grafting phases under
    # phantom nodes), so every worker starts from zero.
    obs_metrics.get_registry().reset()
    obs_phases.reset_in_worker()
    obs_spans.reset_in_worker()


def _run_task(
    fn: Callable,
    trace_id: Optional[str],
    profile: bool,
    parent_span: Optional[str],
    *task,
):
    """Worker-side task shim: trace propagation plus telemetry harvest.

    The parent's trace id — and, when the dispatcher is tracing, the span
    id of its dispatch span — ride the pickled argument tuple; installing
    them here means worker log records, metrics and spans correlate with
    the HTTP request (or CLI invocation) that dispatched the task.
    Returns ``(result, harvest)`` where ``harvest`` carries the worker
    registry's delta since the last task, the worker's phase tree when
    profiling, and the worker's span dicts when tracing — all picklable
    plain structures the owner merges/grafts on receipt.
    """
    token = obs_trace.set_trace_id(trace_id) if trace_id is not None else None
    if profile and not obs_phases.enabled():
        obs_phases.enable(True)
    registry = obs_metrics.get_registry()
    traced = trace_id is not None and parent_span is not None

    def _invoke():
        if profile:
            with obs_phases.phase("kernel"):
                return fn(*task)
        return fn(*task)

    try:
        registry.counter(
            "repro_runtime_tasks_total",
            "Tasks executed by pool worker processes.",
            ("fn",),
        ).inc(labels=(getattr(fn, "__name__", "task"),))
        if traced:
            # Worker spans parent under the dispatch span by id; monotonic
            # clocks are system-wide on Linux, so their timestamps line up
            # with the parent's in one waterfall.
            with obs_spans.remote_child(trace_id, parent_span):
                with obs_spans.trace_span(
                    f"worker:{getattr(fn, '__name__', 'task')}"
                ):
                    result = _invoke()
        else:
            result = _invoke()
    finally:
        if token is not None:
            obs_trace.reset_trace_id(token)
    harvest = {}
    if len(registry):
        harvest["metrics"] = registry.snapshot()
        registry.reset()
    phase_tree = obs_phases.snapshot()
    if phase_tree is not None:
        harvest["phases"] = phase_tree
    if traced:
        shipped = obs_spans.get_recorder().take_trace(trace_id)
        if shipped:
            harvest["spans"] = [s.to_dict() for s in shipped]
    return result, harvest or None


# ----------------------------------------------------------------- owner side


def _chunk_ranges(n: int, num_chunks: int) -> List[Tuple[int, int]]:
    """Split ``range(n)`` into at most ``num_chunks`` contiguous ranges."""
    if n <= 0:
        return []
    num_chunks = max(1, min(n, num_chunks))
    step = (n + num_chunks - 1) // num_chunks
    return [(lo, min(lo + step, n)) for lo in range(0, n, step)]


class RuntimeClosedError(RuntimeError):
    """A task was submitted to a runtime after :meth:`ParallelRuntime.close`."""


class ParallelRuntime:
    """Shared-memory worker pool bound to one immutable graph.

    Parameters
    ----------
    graph:
        The graph whose (priority-sorted) CSR arrays are published.  The
        graph is immutable, so the published copy can never go stale.
    workers:
        Pool size; must be >= 1.  ``workers=1`` still builds the arena and
        pool (useful for measuring runtime overhead in isolation) — callers
        wanting the pure in-process path should branch before construction,
        as :func:`repro.butterfly.parallel.count_per_edge_parallel` does.
    chunks_per_worker:
        Default over-partitioning factor for sharded operations: contiguous
        start ranges per worker, so a hub-heavy range cannot straggle the
        whole pool.
    mp_context:
        A multiprocessing start-method name (``"fork"``/``"spawn"``/...).
        Defaults to ``fork`` on Linux (cheap startup) and to the
        platform's own default elsewhere — macOS deliberately switched to
        ``spawn`` because forking a threaded process is unsafe there.
        Attachment is explicit via the manifest either way, so the start
        methods behave identically apart from launch cost.

    Examples
    --------
    >>> from repro.graph.generators import paper_figure4_graph
    >>> from repro.butterfly.counting import count_per_edge
    >>> g = paper_figure4_graph()
    >>> with ParallelRuntime(g, workers=2) as rt:
    ...     parallel = rt.count_per_edge()
    >>> bool((parallel == count_per_edge(g)).all())
    True
    """

    def __init__(
        self,
        graph: BipartiteGraph,
        *,
        workers: int = 2,
        chunks_per_worker: int = 4,
        mp_context: Optional[str] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be positive")
        if not is_available():
            raise RuntimeError(
                "shared-memory runtime unavailable on this platform; "
                "use the scalar paths instead"
            )
        self.graph = graph
        self.workers = int(workers)
        self.chunks_per_worker = int(chunks_per_worker)
        self._extra_arenas: List[ShmArena] = []
        self._closed = False

        indptr, indices, edge_ids, row_prios = graph.csr_gid_sorted_with_prios()
        self._graph_arena = ShmArena.create(
            {
                "indptr": indptr,
                "indices": indices,
                "edge_ids": edge_ids,
                "row_prios": row_prios,
                "prio": graph.priorities(),
            },
            meta={
                "num_edges": graph.num_edges,
                "num_vertices": graph.num_vertices,
                "num_upper": graph.num_upper,
                "num_lower": graph.num_lower,
            },
        )
        if mp_context is None and sys.platform.startswith("linux"):
            if "fork" in get_all_start_methods():
                mp_context = "fork"
        try:
            self._pool: Optional[ProcessPoolExecutor] = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=get_context(mp_context),
                initializer=_worker_init,
            )
        except Exception:
            # Never leak the arena when the pool cannot start.
            self._graph_arena.close()
            raise

    # ----------------------------------------------------------- properties

    @property
    def graph_manifest(self) -> ArenaManifest:
        """Manifest of the published graph arrays (pass to task functions)."""
        return self._graph_arena.manifest

    @property
    def segment_names(self) -> List[str]:
        """Names of every live ``/dev/shm`` segment this runtime owns."""
        names = [] if self._graph_arena.closed else [self._graph_arena.segment_name]
        names.extend(
            arena.segment_name
            for arena in self._extra_arenas
            if not arena.closed
        )
        return names

    # ------------------------------------------------------------- plumbing

    def _require_open(self) -> ProcessPoolExecutor:
        if self._closed or self._pool is None:
            raise RuntimeClosedError("runtime is closed")
        return self._pool

    def publish(
        self,
        arrays: Mapping[str, np.ndarray],
        *,
        meta: Optional[Mapping[str, int]] = None,
    ) -> ShmArena:
        """Publish an additional arena owned (and closed) by this runtime.

        Used by the parallel peeler for the BE-Index arrays: static blocks
        are copied once, and the owner may take writable views of the
        mutable state so that workers observe level-synchronous updates
        without any per-level re-publication.
        """
        self._require_open()
        arena = ShmArena.create(arrays, meta=meta)
        # Prune arenas a previous operation already closed (e.g. repeated
        # parallel peels on one long-lived runtime) so the list cannot grow
        # unboundedly across reuses.
        self._extra_arenas = [a for a in self._extra_arenas if not a.closed]
        self._extra_arenas.append(arena)
        return arena

    def map_tasks(
        self, fn: Callable, tasks: Sequence[tuple]
    ) -> List[object]:
        """Run ``fn(*task)`` across the pool, preserving task order.

        ``fn`` must be a module-level function (picklable); each task tuple
        should carry the arena manifests it needs.  Exceptions raised by a
        task propagate to the caller; the pool survives them.
        """
        pool = self._require_open()
        if not tasks:
            return []
        trace_id = obs_trace.current_trace_id()
        profile = obs_phases.enabled()
        name = getattr(fn, "__name__", "task")
        with obs_spans.trace_span(f"pool dispatch:{name}", tasks=len(tasks)) as dspan:
            parent_span = (
                dspan.span_id if isinstance(dspan, obs_spans.Span) else None
            )
            futures = [
                pool.submit(_run_task, fn, trace_id, profile, parent_span, *task)
                for task in tasks
            ]
            try:
                results: List[object] = []
                for future in futures:
                    result, harvest = future.result()
                    if harvest:
                        snap = harvest.get("metrics")
                        if snap:
                            obs_metrics.get_registry().merge_snapshot(snap)
                        obs_phases.merge_tree(harvest.get("phases"))
                        worker_spans = harvest.get("spans")
                        if worker_spans:
                            obs_spans.get_recorder().import_spans(worker_spans)
                    results.append(result)
                return results
            finally:
                for future in futures:
                    future.cancel()

    def shard_ranges(
        self, n: int, *, chunks_per_worker: Optional[int] = None
    ) -> List[Tuple[int, int]]:
        """Contiguous ``[lo, hi)`` ranges covering ``range(n)`` in order."""
        per_worker = (
            self.chunks_per_worker
            if chunks_per_worker is None
            else chunks_per_worker
        )
        return _chunk_ranges(n, self.workers * per_worker)

    # ----------------------------------------------------------- operations

    def count_per_edge(
        self, *, chunks_per_worker: Optional[int] = None
    ) -> np.ndarray:
        """Shard-parallel butterfly supports (see ``parallel_counting``)."""
        from repro.runtime.parallel_counting import count_per_edge_shards

        return count_per_edge_shards(self, chunks_per_worker=chunks_per_worker)

    def build_engine(self, *, chunks_per_worker: Optional[int] = None):
        """Shard-parallel BE-Index build (see ``parallel_counting``)."""
        from repro.runtime.parallel_counting import build_engine_shards

        return build_engine_shards(self, chunks_per_worker=chunks_per_worker)

    # ------------------------------------------------------------- teardown

    def close(self) -> None:
        """Shut the pool down and unlink every owned segment (idempotent).

        Tear-down order matters: workers drain first so no task can attach
        a segment that is mid-unlink; the graph arena goes last because
        extra arenas (peeling state) are always shorter-lived.
        """
        if self._closed:
            return
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None
        for arena in reversed(self._extra_arenas):
            arena.close()
        self._extra_arenas.clear()
        self._graph_arena.close()

    def __enter__(self) -> "ParallelRuntime":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:
        state = "closed" if self._closed else f"workers={self.workers}"
        return f"ParallelRuntime({self.graph!r}, {state})"

"""Level-synchronous parallel bitruss peeling (BiT-BU-PAR).

The CSR batch engine (:mod:`repro.core.peeling_engine`) already peels one
support level at a time; this module shards the two heavy passes of each
level across the runtime's worker pool while the parent keeps sole
ownership of all mutations — a classic level-synchronous design:

1. **Wave 1 (detach scan, sharded)** — the level's batch is cut into
   contiguous chunks; each worker gathers its chunk's live wedge-pair links
   and returns ``(links, twin edge, k-1 charge)`` fragments.  The parent
   merges them, derives the removed-pair set and per-bloom removal counts
   with ``np.unique``, and flips ``pair_alive`` **in shared memory**.
2. **Wave 2 (bloom scan, sharded)** — touched blooms are cut into chunks;
   each worker walks its blooms' surviving pairs (reading the liveness the
   parent just wrote — same physical pages) and returns ``C(B*)`` charge
   fragments.
3. **Apply (parent only)** — all loss fragments accumulate with one
   ``np.add.at``, supports floor at the level's minimum ``MBS`` and the
   bucket queue advances.

Every merge is an order-independent integer sum over ``np.unique`` keys, so
φ is **bitwise identical** to ``bit-bu-csr`` (and therefore to scalar
BiT-BU) regardless of worker count or chunk boundaries.  Small levels skip
the pool entirely (``shard_cutoff``) — IPC cannot amortize a three-edge
batch — falling back to the engine's own scalar/vectorized batch steps.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.core.bit_bu_batch import _finish, bit_bu_csr
from repro.core.peeling_engine import CSRPeelingEngine, _gather_rows
from repro.core.result import BitrussDecomposition
from repro.graph.bipartite import BipartiteGraph
from repro.obs import phases as obs_phases
from repro.runtime.pool import ParallelRuntime, attached_views
from repro.runtime.shm import ArenaManifest
from repro.utils.bucket_queue import BucketQueue
from repro.utils.stats import IndexSizeModel, PhaseTimer, UpdateCounter

#: Keys of the engine arrays published for the peeling waves.
ENGINE_ARRAY_KEYS = (
    "e_indptr",
    "e_pair",
    "b_indptr",
    "b_pair",
    "pair_e1",
    "pair_e2",
    "pair_bloom",
    "pair_alive",
    "bloom_k",
)

# ------------------------------------------------------------ worker tasks


def _task_detach_scan(
    manifest: ArenaManifest, chunk: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Wave 1: live links of one batch chunk (runs in a worker)."""
    views = attached_views(manifest)
    links, owner = _gather_rows(views["e_indptr"], views["e_pair"], chunk)
    if not len(links):
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, empty
    pair_bloom = views["pair_bloom"]
    alive = views["pair_alive"][links] & (views["bloom_k"][pair_bloom[links]] >= 2)
    links = links[alive]
    owner = owner[alive]
    pair_e1 = views["pair_e1"]
    twin = np.where(pair_e1[links] == owner, views["pair_e2"][links], pair_e1[links])
    k_minus_1 = views["bloom_k"][pair_bloom[links]] - 1
    return links, twin, k_minus_1


def _task_bloom_scan(
    manifest: ArenaManifest, touched: np.ndarray, c_removed: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Wave 2: surviving-pair charges of one touched-bloom chunk."""
    views = attached_views(manifest)
    pairs_g, bloom_of_g = _gather_rows(views["b_indptr"], views["b_pair"], touched)
    if not len(pairs_g):
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, empty
    surviving = views["pair_alive"][pairs_g]
    pairs_s = pairs_g[surviving]
    # `touched` is a contiguous slice of a sorted np.unique result, so the
    # bloom -> C(B*) lookup stays a searchsorted against the chunk.
    charge = c_removed[np.searchsorted(touched, bloom_of_g[surviving])]
    return views["pair_e1"][pairs_s], views["pair_e2"][pairs_s], charge


# ------------------------------------------------------------ parent side


def _array_chunks(array: np.ndarray, num_chunks: int) -> List[np.ndarray]:
    """Split an array into at most ``num_chunks`` contiguous pieces."""
    num_chunks = max(1, min(len(array), num_chunks))
    return [c for c in np.array_split(array, num_chunks) if len(c)]


def parallel_peel(
    engine: CSRPeelingEngine,
    runtime: ParallelRuntime,
    *,
    counter: Optional[UpdateCounter] = None,
    scalar_cutoff: int = 24,
    shard_cutoff: int = 2048,
) -> np.ndarray:
    """Peel ``engine`` level-synchronously on ``runtime``'s pool.

    Parameters
    ----------
    engine:
        A freshly built engine for ``runtime.graph`` (consumed by peeling,
        exactly like :meth:`CSRPeelingEngine.peel`).  Its mutable state
        (``pair_alive``/``bloom_k``) is re-homed into a shared-memory arena
        for the duration of the peel.
    counter:
        Optional update counter; one update per (edge, level) change.
    scalar_cutoff:
        Parent-side scalar/vectorized crossover for small levels
        (forwarded to the engine's batch steps).
    shard_cutoff:
        Levels with at most this many edges are processed entirely in the
        parent; larger levels shard across the pool.

    Returns
    -------
    numpy.ndarray
        φ, bitwise identical to ``engine.peel()`` on a fresh engine.
    """
    phi = np.zeros(engine.num_edges, dtype=np.int64)
    if engine.num_edges == 0:
        return phi

    arena = runtime.publish(
        {
            "e_indptr": engine.e_indptr,
            "e_pair": engine.e_pair,
            "b_indptr": engine.b_indptr,
            "b_pair": engine.b_pair,
            "pair_e1": engine.pair_e1,
            "pair_e2": engine.pair_e2,
            "pair_bloom": engine.pair_bloom,
            "pair_alive": engine.pair_alive,
            "bloom_k": engine.bloom_k,
        }
    )
    # Re-home the mutable state: parent writes land in the shared pages the
    # workers read, so each wave sees the previous wave's state without any
    # copying.  Static arrays stay parent-local for the parent-side steps.
    engine.pair_alive = arena.view("pair_alive", writable=True)
    engine.bloom_k = arena.view("bloom_k", writable=True)
    manifest = arena.manifest

    try:
        queue = BucketQueue.from_keys(engine.support)
        in_batch = np.zeros(engine.num_edges, dtype=bool)
        while not queue.is_empty():
            batch, mbs = queue.pop_min_batch()
            phi[batch] = mbs
            if len(batch) <= scalar_cutoff:
                engine._peel_batch_scalar(batch, mbs, queue, counter)
            elif len(batch) <= shard_cutoff:
                engine._peel_batch_vectorized(batch, mbs, queue, counter, in_batch)
            else:
                _peel_level_sharded(
                    engine, runtime, manifest, batch, mbs, queue, counter, in_batch
                )
        return phi
    finally:
        # Return the mutable state to parent-local memory so the arena can
        # unmap cleanly (and the engine stays inspectable after close).
        engine.pair_alive = np.array(engine.pair_alive)
        engine.bloom_k = np.array(engine.bloom_k)
        arena.close()


def _peel_level_sharded(
    engine: CSRPeelingEngine,
    runtime: ParallelRuntime,
    manifest: ArenaManifest,
    batch: List[int],
    mbs: int,
    queue: BucketQueue,
    counter: Optional[UpdateCounter],
    in_batch: np.ndarray,
) -> None:
    """One large level, processed as the two sharded waves + parent apply."""
    batch_arr = np.asarray(batch, dtype=np.int64)
    in_batch[batch_arr] = True
    try:
        loss_edges: List[np.ndarray] = []
        loss_values: List[np.ndarray] = []

        # Wave 1 — sharded detach scan over the batch.
        with obs_phases.phase("wave 1 dispatch"):
            tasks = [
                (manifest, chunk)
                for chunk in _array_chunks(batch_arr, runtime.workers)
            ]
            parts = runtime.map_tasks(_task_detach_scan, tasks)
        links = np.concatenate([p[0] for p in parts])
        twin = np.concatenate([p[1] for p in parts])
        k_minus_1 = np.concatenate([p[2] for p in parts])
        if not len(links):
            return
        external = ~in_batch[twin]
        if external.any():
            loss_edges.append(twin[external])
            loss_values.append(k_minus_1[external])
        # A pair with both endpoints in the batch surfaced once per
        # endpoint (possibly from different chunks); np.unique collapses it
        # to a single detachment, matching the scalar "twin already
        # severed" skip.
        removed_pairs = np.unique(links)
        touched, c_removed = np.unique(
            engine.pair_bloom[removed_pairs], return_counts=True
        )
        engine.pair_alive[removed_pairs] = False  # shared write, pre-wave-2

        # Wave 2 — sharded surviving-pair scan over the touched blooms.
        with obs_phases.phase("wave 2 dispatch"):
            bounds = np.cumsum(
                [0] + [len(c) for c in _array_chunks(touched, runtime.workers)]
            )
            tasks = [
                (manifest, touched[lo:hi], c_removed[lo:hi])
                for lo, hi in zip(bounds[:-1], bounds[1:])
            ]
            scans = runtime.map_tasks(_task_bloom_scan, tasks)
        for e1_s, e2_s, charge in scans:
            if len(charge):
                loss_edges.append(e1_s)
                loss_values.append(charge)
                loss_edges.append(e2_s)
                loss_values.append(charge)
        engine.bloom_k[touched] -= c_removed

        # Apply — order-independent merge, floored at the level minimum;
        # the same helper the in-process batch step uses, so the two paths
        # cannot drift apart.
        with obs_phases.phase("apply losses"):
            engine._apply_losses(loss_edges, loss_values, mbs, queue, counter)
    finally:
        in_batch[batch_arr] = False


# ------------------------------------------------------------- algorithm


def bit_bu_par(
    graph: BipartiteGraph,
    *,
    workers: int = 2,
    counter: Optional[UpdateCounter] = None,
    timer: Optional[PhaseTimer] = None,
    size_model: Optional[IndexSizeModel] = None,
    scalar_cutoff: int = 24,
    shard_cutoff: int = 2048,
    chunks_per_worker: int = 4,
    runtime: Optional[ParallelRuntime] = None,
) -> BitrussDecomposition:
    """BiT-BU on the shared-memory runtime: parallel build, parallel peel.

    The third member of the batch family (see
    :mod:`repro.core.bit_bu_batch`): BE-Index construction shards across
    the pool, and peeling runs level-synchronously with the two heavy
    passes of each large level sharded.  φ is bitwise identical to
    ``bit-bu-csr`` for every worker count.

    Parameters
    ----------
    graph:
        The bipartite graph to decompose.
    workers:
        Pool size.  ``workers=1`` (or an edgeless graph) delegates to
        :func:`~repro.core.bit_bu_batch.bit_bu_csr` — the scalar path the
        CLI default ``--workers 1`` promises.
    counter, timer, size_model:
        Optional instrumentation sinks (see :mod:`repro.utils.stats`).
    scalar_cutoff, shard_cutoff:
        Level-size crossovers: scalar walk up to ``scalar_cutoff``,
        parent-only vectorized up to ``shard_cutoff``, sharded waves above.
    chunks_per_worker:
        Over-partitioning factor of the counting/build shards.
    runtime:
        An existing :class:`ParallelRuntime` for ``graph`` to reuse (its
        pool and published arrays survive the call); when omitted a
        runtime is created and torn down internally.
    """
    if workers < 1:
        raise ValueError("workers must be positive")
    if runtime is not None and runtime.graph is not graph:
        raise ValueError("runtime was built for a different graph")
    if runtime is None and (workers == 1 or graph.num_edges == 0):
        return bit_bu_csr(
            graph,
            counter=counter,
            timer=timer,
            size_model=size_model,
            scalar_cutoff=scalar_cutoff,
        )
    timer = timer if timer is not None else PhaseTimer()
    size_model = size_model if size_model is not None else IndexSizeModel()

    owned = runtime is None
    rt = (
        ParallelRuntime(graph, workers=workers, chunks_per_worker=chunks_per_worker)
        if owned
        else runtime
    )
    try:
        with timer.time("index construction"):
            engine = rt.build_engine()
        size_model.observe(*engine.size_components())
        with timer.time("peeling"):
            phi = parallel_peel(
                engine,
                rt,
                counter=counter,
                scalar_cutoff=scalar_cutoff,
                shard_cutoff=shard_cutoff,
            )
    finally:
        if owned:
            rt.close()
    return _finish("BiT-BU-PAR", graph, phi, counter, timer, size_model)

"""Shared-memory arenas: frozen numpy arrays published once, attached zero-copy.

A :class:`ShmArena` packs a set of named numpy arrays into **one**
``multiprocessing.shared_memory`` segment — a header-less binary layout
described by a small picklable :class:`ArenaManifest` (name, dtype, shape
and byte offset per array).  The owning process copies each array in once;
worker processes attach the segment by name and rebuild zero-copy views,
so a pool task never re-ships or re-derives the graph's CSR arrays.

Lifecycle
---------
Segments live in ``/dev/shm`` and outlive any process that forgets to
unlink them, so the arena is defensive about cleanup:

* the owner exposes ``close()`` and is a context manager;
* a ``weakref.finalize`` hook (which also runs at interpreter ``atexit``)
  unlinks the segment if the owner is garbage-collected or the process
  exits without closing — guarded by the creating pid so fork-inherited
  copies of the finalizer in worker processes never unlink a live segment;
* the creating process keeps the segment registered with the stdlib
  resource tracker, which unlinks it even after a hard crash of the owner.

Workers only ever ``close()`` their attachment (never unlink); read-only
views are the default everywhere so an algorithm bug cannot silently
corrupt a shared array — mutable state (the peeling liveness arrays) must
be requested explicitly by the owner via ``writable=True``.
"""

from __future__ import annotations

import os
import secrets
import weakref
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from typing import Dict, Iterable, Mapping, Optional, Tuple

import numpy as np

#: Byte alignment of each array inside the segment (one cache line).
_ALIGN = 64


def is_available() -> bool:
    """Whether POSIX shared memory is usable on this platform.

    The runtime targets Linux-style ``/dev/shm``; on platforms without it
    (or where ``multiprocessing.shared_memory`` is missing) callers fall
    back to the scalar paths and the runtime tests skip.
    """
    if not hasattr(shared_memory, "SharedMemory"):
        return False  # pragma: no cover - ancient interpreters only
    return os.name == "posix"


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


@dataclass(frozen=True)
class ArenaEntry:
    """Placement of one array inside the segment."""

    key: str
    dtype: str
    shape: Tuple[int, ...]
    offset: int

    @property
    def nbytes(self) -> int:
        return int(np.dtype(self.dtype).itemsize * int(np.prod(self.shape)))


@dataclass(frozen=True)
class ArenaManifest:
    """Everything a worker needs to attach an arena: cheap to pickle."""

    segment: str
    entries: Tuple[ArenaEntry, ...]
    meta: Dict[str, int] = field(default_factory=dict)

    def keys(self) -> Tuple[str, ...]:
        return tuple(entry.key for entry in self.entries)


def _unlink_segment(name: str, owner_pid: int) -> None:
    """Best-effort unlink, restricted to the process that created it.

    Runs from ``weakref.finalize`` (GC or ``atexit``).  Forked workers
    inherit the parent's finalizers, so without the pid guard a worker
    exiting would unlink segments the owner is still serving.
    """
    if os.getpid() != owner_pid:
        return
    try:
        segment = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return
    try:
        segment.close()
    except BufferError:  # pragma: no cover - only with live exports
        pass
    try:
        segment.unlink()
    except FileNotFoundError:  # pragma: no cover - raced with another path
        pass


class ShmArena:
    """One shared-memory segment holding a set of named numpy arrays.

    Build with :meth:`create` (owner side) or :meth:`attach` (worker
    side); never construct directly.  Owners unlink the segment on
    :meth:`close`; attachments only unmap it.

    Examples
    --------
    >>> arena = ShmArena.create({"x": np.arange(4)}, prefix="doc")
    >>> arena.view("x").tolist()
    [0, 1, 2, 3]
    >>> twin = ShmArena.attach(arena.manifest)
    >>> int(twin.view("x")[-1])
    3
    >>> twin.close(); arena.close()
    """

    def __init__(
        self,
        segment: shared_memory.SharedMemory,
        manifest: ArenaManifest,
        *,
        owner: bool,
    ) -> None:
        self._shm: Optional[shared_memory.SharedMemory] = segment
        self.manifest = manifest
        self._owner = owner
        self._entries: Dict[str, ArenaEntry] = {
            entry.key: entry for entry in manifest.entries
        }
        self._views: Dict[str, np.ndarray] = {}
        for entry in manifest.entries:
            view = self._raw_view(entry)
            view.flags.writeable = False
            self._views[entry.key] = view
        self._finalizer = (
            weakref.finalize(self, _unlink_segment, manifest.segment, os.getpid())
            if owner
            else None
        )

    # ------------------------------------------------------------ creation

    @classmethod
    def create(
        cls,
        arrays: Mapping[str, np.ndarray],
        *,
        meta: Optional[Mapping[str, int]] = None,
        prefix: str = "repro_rt",
    ) -> "ShmArena":
        """Publish ``arrays`` into a fresh shared segment (copied once).

        Parameters
        ----------
        arrays:
            Name → array mapping; each array is copied into the segment
            in C order.  Zero-length arrays are allowed.
        meta:
            Small picklable integers carried inside the manifest (layer
            sizes, edge counts, ...).
        prefix:
            Segment-name prefix; the leak tests glob ``/dev/shm`` for it.
        """
        entries = []
        contiguous = []
        offset = 0
        for key, array in arrays.items():
            array = np.ascontiguousarray(array)
            contiguous.append(array)
            offset = _aligned(offset)
            entries.append(
                ArenaEntry(key, array.dtype.str, tuple(array.shape), offset)
            )
            offset += array.nbytes
        name = f"{prefix}_{os.getpid()}_{secrets.token_hex(4)}"
        segment = shared_memory.SharedMemory(
            name=name, create=True, size=max(1, offset)
        )
        manifest = ArenaManifest(segment.name, tuple(entries), dict(meta or {}))
        arena = cls(segment, manifest, owner=True)
        for entry, array in zip(entries, contiguous):
            if entry.nbytes:
                np.copyto(arena._raw_view(entry), array)
        return arena

    @classmethod
    def attach(cls, manifest: ArenaManifest) -> "ShmArena":
        """Open an existing arena from its manifest (zero-copy, read-only)."""
        segment = shared_memory.SharedMemory(name=manifest.segment)
        return cls(segment, manifest, owner=False)

    # ------------------------------------------------------------- access

    def _raw_view(self, entry: ArenaEntry) -> np.ndarray:
        """A fresh writable ndarray over the segment buffer (internal)."""
        assert self._shm is not None
        return np.ndarray(
            entry.shape,
            dtype=np.dtype(entry.dtype),
            buffer=self._shm.buf,
            offset=entry.offset,
        )

    def view(self, key: str, *, writable: bool = False) -> np.ndarray:
        """A numpy view of one published array.

        Views are read-only by default; ``writable=True`` is the owner's
        escape hatch for the mutable peeling arrays (workers observe the
        owner's in-place writes immediately — same physical pages).
        """
        if writable and not self._owner:
            raise PermissionError("only the arena owner may take writable views")
        if writable:
            return self._raw_view(self._entries[key])
        return self._views[key]

    def views(self, keys: Iterable[str]) -> Tuple[np.ndarray, ...]:
        """Read-only views of several arrays at once."""
        return tuple(self.view(key) for key in keys)

    @property
    def segment_name(self) -> str:
        """The ``/dev/shm`` entry backing this arena."""
        return self.manifest.segment

    @property
    def closed(self) -> bool:
        return self._shm is None

    # ----------------------------------------------------------- teardown

    def close(self) -> None:
        """Unmap the segment; the owner additionally unlinks it.

        Idempotent.  Dropping the cached views before ``close`` avoids the
        ``BufferError`` mmap raises while exported buffers exist; if a
        caller still holds a view, the unmap is skipped (the OS reclaims
        it at process exit) but the unlink still happens, so no ``/dev/shm``
        entry can leak.
        """
        segment, self._shm = self._shm, None
        if segment is None:
            return
        self._views.clear()
        try:
            segment.close()
        except BufferError:
            pass
        if self._owner:
            try:
                segment.unlink()
            except FileNotFoundError:
                pass
            if self._finalizer is not None:
                self._finalizer.detach()

    def __enter__(self) -> "ShmArena":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self.closed else ("owner" if self._owner else "attached")
        return (
            f"ShmArena({self.manifest.segment!r}, arrays="
            f"{list(self.manifest.keys())}, {state})"
        )

"""Network serving: many datasets, one process, hot-swappable artifacts.

The paper's economics are compute-once / query-many; :mod:`repro.service`
built the query-many half as an in-process library.  This package puts it
on the wire with nothing beyond the standard library:

* :mod:`repro.server.registry` — :class:`ArtifactRegistry`, a named map of
  live datasets (artifact + :class:`~repro.service.engine.QueryEngine`)
  with versioned **atomic hot-swap**: a rebuilt artifact replaces the live
  engine in one reference assignment while in-flight requests finish on
  the engine they leased;
* :mod:`repro.server.batching` — :class:`QueryCoalescer`, which lets
  identical concurrent queries share one computation (and one encoded
  response body) and folds heterogeneous queries arriving within a small
  window into a single :meth:`~repro.service.engine.QueryEngine.batch`
  call;
* :mod:`repro.server.http` — :class:`BitrussServer`, a minimal asyncio
  HTTP/1.1 JSON server exposing the full query surface plus ``/healthz``
  and ``/metrics`` observability, with structured error payloads;
* :mod:`repro.server.updates` — :class:`UpdateManager`, the live refresh
  loop: ``POST /{ds}/edges`` mutations land in a
  :class:`~repro.maintenance.dynamic.DynamicBipartiteGraph`, a debounced
  background task re-decomposes off the hot path (optionally on the
  shared-memory :class:`~repro.runtime.pool.ParallelRuntime`), and the
  fresh artifact is hot-swapped into the registry.

``repro-bitruss serve --dataset github --port 8642`` is the CLI front
door (see :mod:`repro.cli`).
"""

from repro.server.batching import QueryCoalescer, SharedResult
from repro.server.http import BitrussServer, HTTPError, jsonify
from repro.server.registry import (
    ArtifactRegistry,
    DatasetEntry,
    Lease,
    UnknownDatasetError,
)
from repro.server.updates import UpdateManager

__all__ = [
    "ArtifactRegistry",
    "BitrussServer",
    "DatasetEntry",
    "HTTPError",
    "Lease",
    "QueryCoalescer",
    "SharedResult",
    "UnknownDatasetError",
    "UpdateManager",
    "jsonify",
]

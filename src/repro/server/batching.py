"""Request coalescing: share computations, fold windows into one batch.

Two distinct amortizations, both transparent to callers:

1. **Identical-query sharing** — concurrent requests for the same
   ``(dataset, query)`` pair attach to one in-flight future instead of
   each paying an engine call; the encoded response body is also built
   once and shared (see :meth:`SharedResult.encoded`).
2. **Window folding** — *different* queries that arrive within a small
   window (default 2 ms) are concatenated into a single
   :meth:`repro.service.engine.QueryEngine.batch` call, so one executor
   hop, one entry lock acquisition and one warm LRU/hierarchy traversal
   serve the whole window.

The unit of submission is a *list* of queries (single-query endpoints
submit one-element lists; ``POST /{ds}/batch`` submits the client's whole
list), so HTTP batch requests coalesce exactly like scalar ones: the flush
flattens every pending list, runs one engine batch, and slices results
back per submitter.

Failure isolation: the HTTP layer pre-validates queries against the live
graph before submitting, so a malformed request is rejected with a 400
*before* it can poison a shared batch.  If the engine call itself fails,
every waiter in that flush observes the same exception.
"""

from __future__ import annotations

import asyncio
import json
from typing import Awaitable, Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs import spans as obs_spans
from repro.obs import trace as obs_trace

Query = Dict[str, object]
#: Runs a flattened query list against the live engine; returns
#: (results, version) where ``version`` is the artifact version answered.
BatchRunner = Callable[[List[Query]], Awaitable[Tuple[List[object], int]]]


def canonical_key(queries: Sequence[Query]) -> str:
    """Order-insensitive-keys canonical form of a query list.

    Two requests coalesce iff their canonical keys match; JSON with sorted
    keys is exact for the engine's query dicts (strings, ints, short
    lists).
    """
    return json.dumps(queries, sort_keys=True, separators=(",", ":"))


class SharedResult:
    """One submission's results plus a memoized encoded response body.

    ``values`` has one element per query in the submitted list.  The
    response body for merged identical requests is byte-identical, so
    :meth:`encoded` builds it once and every waiter reuses the bytes.

    ``trace_ids`` records the trace id of every submission that rode the
    flushed window (merged identical requests included), so a shared
    computation remains attributable to each request it served.
    """

    __slots__ = ("values", "version", "trace_ids", "_body")

    def __init__(
        self,
        values: List[object],
        version: int,
        trace_ids: Tuple[str, ...] = (),
    ) -> None:
        self.values = values
        self.version = version
        self.trace_ids = trace_ids
        self._body: Optional[bytes] = None

    def encoded(self, encode: Callable[["SharedResult"], bytes]) -> bytes:
        """The response body, built on first call and then shared."""
        if self._body is None:
            self._body = encode(self)
        return self._body


class _Pending:
    """One window's accumulating queries for a single dataset."""

    __slots__ = ("items", "task")

    def __init__(self) -> None:
        # (key, queries, future) per distinct submission in the window.
        self.items: List[Tuple[str, List[Query], asyncio.Future]] = []
        self.task: Optional[asyncio.Task] = None


class QueryCoalescer:
    """Merge identical and fold heterogeneous concurrent queries.

    Parameters
    ----------
    window:
        Seconds a newly opened batch waits for co-travellers before
        flushing.  0 still merges whatever lands in the same event-loop
        tick.
    max_batch:
        Flush immediately once a window holds this many distinct
        submissions (bounds worst-case latency under heavy fan-in).

    All state lives on the event loop; no locks.  Counters are exposed by
    :meth:`stats` and surfaced in the server's ``/metrics``.
    """

    def __init__(self, *, window: float = 0.002, max_batch: int = 64) -> None:
        if window < 0:
            raise ValueError("window must be non-negative")
        if max_batch < 1:
            raise ValueError("max_batch must be positive")
        self.window = window
        self.max_batch = max_batch
        self._inflight: Dict[Tuple[str, str], asyncio.Future] = {}
        self._trace_ids: Dict[Tuple[str, str], List[str]] = {}
        self._pending: Dict[str, _Pending] = {}
        self._submitted = 0
        self._merged = 0
        self._flushes = 0
        self._queries_flushed = 0

    # ---------------------------------------------------------- interface

    async def submit(
        self, dataset: str, queries: Sequence[Query], runner: BatchRunner
    ) -> SharedResult:
        """Resolve ``queries`` for ``dataset``, sharing work where possible.

        Returns the :class:`SharedResult` (possibly computed for an
        earlier identical request).  A whole window is executed by the
        runner of the submission that *opened* (or force-flushed) it, so
        ``dataset`` is really a namespace: only submissions whose runners
        are interchangeable may share one — the HTTP layer embeds the
        pinned artifact version (``"name@v3"``) so requests validated
        against different engines can never fold together.
        """
        self._submitted += 1
        queries = [dict(q) for q in queries]
        key = (dataset, canonical_key(queries))
        trace_id = obs_trace.current_trace_id()
        if trace_id is not None:
            # Record every rider, mergers included, so the shared result
            # stays attributable to each request it served.
            self._trace_ids.setdefault(key, []).append(trace_id)
        shared = self._inflight.get(key)
        if shared is not None:
            self._merged += 1
            # The fold span measures how long this rider waited on the
            # shared in-flight computation it merged onto.
            with obs_spans.trace_span("coalescer fold", merged=True, queries=len(queries)):
                return await asyncio.shield(shared)

        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._inflight[key] = future
        pending = self._pending.get(dataset)
        if pending is None:
            pending = self._pending[dataset] = _Pending()
        pending.items.append((key[1], queries, future))
        if len(pending.items) >= self.max_batch:
            self._flush_now(dataset, runner)
        elif pending.task is None:
            pending.task = loop.create_task(self._window_flush(dataset, runner))
        with obs_spans.trace_span("coalescer fold", merged=False, queries=len(queries)):
            return await asyncio.shield(future)

    def stats(self) -> Dict[str, object]:
        """Counter snapshot for ``/metrics``."""
        return {
            "window_s": self.window,
            "max_batch": self.max_batch,
            "submitted": self._submitted,
            "merged": self._merged,
            "flushes": self._flushes,
            "queries_flushed": self._queries_flushed,
            "inflight": len(self._inflight),
        }

    # ----------------------------------------------------------- plumbing

    async def _window_flush(self, dataset: str, runner: BatchRunner) -> None:
        try:
            await asyncio.sleep(self.window)
        except asyncio.CancelledError:
            return
        pending = self._pending.get(dataset)
        if pending is not None and pending.task is asyncio.current_task():
            pending.task = None
            await self._flush(dataset, runner)

    def _flush_now(self, dataset: str, runner: BatchRunner) -> None:
        pending = self._pending.get(dataset)
        if pending is not None and pending.task is not None:
            pending.task.cancel()
            pending.task = None
        asyncio.get_running_loop().create_task(self._flush(dataset, runner))

    async def _flush(self, dataset: str, runner: BatchRunner) -> None:
        pending = self._pending.pop(dataset, None)
        if pending is None or not pending.items:
            return
        items = pending.items
        flat: List[Query] = []
        offsets: List[Tuple[int, int]] = []
        for _, queries, _ in items:
            offsets.append((len(flat), len(flat) + len(queries)))
            flat.extend(queries)
        self._flushes += 1
        self._queries_flushed += len(flat)
        try:
            # The flush task's context was copied from the submission that
            # opened the window, so this span lands in the opener's trace
            # (nested under its fold span via the shared state cursor).
            with obs_spans.trace_span(
                "coalescer flush", submissions=len(items), queries=len(flat)
            ):
                results, version = await runner(flat)
        except Exception as exc:  # noqa: BLE001 - forwarded to every waiter
            for key, _, future in items:
                self._inflight.pop((dataset, key), None)
                self._trace_ids.pop((dataset, key), None)
                if not future.done():
                    future.set_exception(exc)
            return
        for (key, _, future), (lo, hi) in zip(items, offsets):
            self._inflight.pop((dataset, key), None)
            trace_ids = tuple(self._trace_ids.pop((dataset, key), ()))
            if not future.done():
                future.set_result(
                    SharedResult(results[lo:hi], version, trace_ids)
                )

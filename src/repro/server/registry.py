"""Multi-dataset registry with versioned atomic hot-swap.

An :class:`ArtifactRegistry` hosts many named datasets in one process, each
a :class:`DatasetEntry` pairing a
:class:`~repro.service.artifacts.DecompositionArtifact` with the
:class:`~repro.service.engine.QueryEngine` serving it.  Registration and
swap both happen on the event-loop thread, so a swap is one reference
assignment: requests that already :meth:`~ArtifactRegistry.acquire`\\ d a
:class:`Lease` keep computing against the engine object they leased (plain
refcounting keeps it alive), while every later acquire sees the new
version — no lock on the read path, no dropped or torn requests.

Versioning is monotonic per entry (``version`` starts at 1 and increments
on every :meth:`~ArtifactRegistry.swap`), so clients and tests can observe
exactly when a rebuild landed; per-version active-lease counts are kept so
the no-drop guarantee is assertable rather than folklore.

Engine compute runs on worker threads (the HTTP layer dispatches to an
executor), but :class:`~repro.service.engine.QueryEngine`'s LRU cache is a
plain ``OrderedDict``; each entry therefore carries a ``lock`` that the
dispatching layer holds for the duration of one engine call.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterator, List, Optional

from repro.service.artifacts import DecompositionArtifact
from repro.service.engine import QueryEngine


class UnknownDatasetError(KeyError):
    """A request named a dataset the registry does not host."""


class DatasetEntry:
    """One hosted dataset: live engine + artifact + swap bookkeeping.

    Attributes
    ----------
    name:
        Registry key (also the URL path segment).
    artifact, engine:
        The live pair; replaced together, atomically, by ``swap``.
    version:
        Monotonic publication counter (1 = first registration).
    swaps:
        Number of hot-swaps since registration.
    served:
        Engine calls dispatched through leases of this entry (any version).
    lock:
        Held by the compute layer around each engine call — the engine's
        LRU cache is not thread-safe on its own.
    """

    def __init__(
        self,
        name: str,
        artifact: DecompositionArtifact,
        engine: QueryEngine,
        *,
        allow_stale: bool = False,
        cache_size: int = 1024,
    ) -> None:
        self.name = name
        self.artifact = artifact
        self.engine = engine
        self.version = 1
        self.swaps = 0
        self.served = 0
        self.allow_stale = allow_stale
        self.cache_size = cache_size
        self.lock = threading.Lock()
        self._active_by_version: Dict[int, int] = {}

    @property
    def active(self) -> int:
        """Currently leased requests across all versions."""
        return sum(self._active_by_version.values())

    def active_on(self, version: int) -> int:
        """Currently leased requests pinned to one version."""
        return self._active_by_version.get(version, 0)

    def metrics(self) -> Dict[str, object]:
        """Observability snapshot (feeds the server's ``/metrics``)."""
        return {
            "version": self.version,
            "swaps": self.swaps,
            "served": self.served,
            "active": self.active,
            "stale": self.engine.stale,
            "num_edges": self.engine.graph.num_edges,
            "max_k": self.artifact.max_k,
            "cache": self.engine.cache_info(),
        }

    def __repr__(self) -> str:
        return (
            f"DatasetEntry({self.name!r}, version={self.version}, "
            f"m={self.engine.graph.num_edges}, active={self.active})"
        )


class Lease:
    """A pinned (engine, version) pair for the duration of one request.

    Use as a context manager; the engine captured at ``__enter__`` stays
    valid even if the entry is hot-swapped mid-request.  Callers that
    already snapshotted the pair earlier (e.g. the HTTP layer pins it
    *before* validating a query, so validation and execution can never
    straddle a swap) pass it in via ``engine=``/``version=``.
    """

    __slots__ = ("entry", "engine", "version", "_pinned")

    def __init__(
        self,
        entry: DatasetEntry,
        *,
        engine: Optional[QueryEngine] = None,
        version: Optional[int] = None,
    ) -> None:
        self.entry = entry
        self.engine: Optional[QueryEngine] = engine
        self.version = version if version is not None else 0
        self._pinned = engine is not None

    def __enter__(self) -> "Lease":
        # One assignment pair read on the loop thread: engine/version are
        # replaced together by swap(), also on the loop thread.
        if not self._pinned:
            self.engine = self.entry.engine
            self.version = self.entry.version
        by_version = self.entry._active_by_version
        by_version[self.version] = by_version.get(self.version, 0) + 1
        self.entry.served += 1
        return self

    def __exit__(self, *_exc) -> None:
        by_version = self.entry._active_by_version
        remaining = by_version.get(self.version, 1) - 1
        if remaining:
            by_version[self.version] = remaining
        else:
            by_version.pop(self.version, None)


class ArtifactRegistry:
    """Named map of live datasets with atomic hot-swap.

    Parameters
    ----------
    cache_size:
        Default per-engine LRU capacity for engines the registry builds
        itself (when ``register``/``swap`` receive a bare artifact).

    Examples
    --------
    >>> from repro.graph.generators import paper_figure4_graph
    >>> from repro.service import build_artifact
    >>> registry = ArtifactRegistry()
    >>> entry = registry.register("fig4", build_artifact(paper_figure4_graph()))
    >>> entry.version
    1
    >>> with registry.acquire("fig4") as lease:
    ...     lease.engine.max_k(upper=0)
    2
    """

    def __init__(self, *, cache_size: int = 1024) -> None:
        self._entries: Dict[str, DatasetEntry] = {}
        self.cache_size = cache_size

    # ----------------------------------------------------------- hosting

    def register(
        self,
        name: str,
        artifact: DecompositionArtifact,
        *,
        engine: Optional[QueryEngine] = None,
        allow_stale: bool = False,
        cache_size: Optional[int] = None,
    ) -> DatasetEntry:
        """Host ``artifact`` under ``name`` (building an engine if needed).

        ``allow_stale=True`` is the serving posture for mutable datasets:
        the engine keeps answering from the last published φ while a
        background rebuild is in flight, instead of raising
        :class:`~repro.service.artifacts.StaleArtifactError`.
        """
        if not name or "/" in name or name in ("healthz", "metrics", "datasets"):
            raise ValueError(f"invalid dataset name {name!r}")
        if name in self._entries:
            raise ValueError(f"dataset {name!r} already registered")
        size = self.cache_size if cache_size is None else cache_size
        if engine is None:
            engine = QueryEngine(
                artifact, cache_size=size, allow_stale=allow_stale
            )
        entry = DatasetEntry(
            name, artifact, engine, allow_stale=allow_stale, cache_size=size
        )
        self._entries[name] = entry
        return entry

    def swap(
        self,
        name: str,
        artifact: DecompositionArtifact,
        *,
        engine: Optional[QueryEngine] = None,
    ) -> DatasetEntry:
        """Atomically replace the live pair; bumps ``version``.

        Build the engine off the loop thread and pass it in when the
        hierarchy construction cost matters (the update loop does); when
        ``engine`` is omitted one is built here with the entry's settings.
        In-flight leases keep the old engine alive and unswitched.
        """
        entry = self.get(name)
        if engine is None:
            engine = QueryEngine(
                artifact,
                cache_size=entry.cache_size,
                allow_stale=entry.allow_stale,
            )
        # The actual hot-swap: plain attribute assignment on the loop
        # thread.  Leases snapshot (engine, version) on entry, so there is
        # no window where a request sees the new engine with the old
        # version or vice versa.
        entry.artifact = artifact
        entry.engine = engine
        entry.version += 1
        entry.swaps += 1
        return entry

    def unregister(self, name: str) -> None:
        """Drop a hosted dataset (in-flight leases finish unaffected)."""
        self._entries.pop(name, None)

    # ------------------------------------------------------------ access

    def get(self, name: str) -> DatasetEntry:
        """The entry for ``name``; raises :class:`UnknownDatasetError`."""
        try:
            return self._entries[name]
        except KeyError:
            raise UnknownDatasetError(name) from None

    def acquire(
        self,
        name: str,
        *,
        engine: Optional[QueryEngine] = None,
        version: Optional[int] = None,
    ) -> Lease:
        """A :class:`Lease` pinning an engine for one request.

        Without arguments the entry's *current* pair is pinned at
        ``__enter__``; pass ``engine``/``version`` to account a request
        against a pair snapshotted earlier.
        """
        return Lease(self.get(name), engine=engine, version=version)

    def names(self) -> List[str]:
        """Hosted dataset names, registration order."""
        return list(self._entries)

    def __contains__(self, name: object) -> bool:
        return name in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[DatasetEntry]:
        return iter(self._entries.values())

    def metrics(self) -> Dict[str, Dict[str, object]]:
        """Per-dataset observability map (server ``/metrics`` payload)."""
        return {name: entry.metrics() for name, entry in self._entries.items()}

    def __repr__(self) -> str:
        return f"ArtifactRegistry({self.names()!r})"

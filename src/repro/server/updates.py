"""The live refresh loop: mutations → incremental patch (or rebuild) → swap.

PR 2's staleness story was defensive: a
:class:`~repro.maintenance.dynamic.DynamicBipartiteGraph` invalidates
registered artifacts so nobody silently serves outdated φ.  This module
turns that into a *liveness* story.  Each mutable dataset keeps a dynamic
mirror of its graph; ``POST /{ds}/edges`` applies insert/delete ops to the
mirror (exact incremental butterfly supports, cheap) and then brings the
served artifact back in sync one of two ways:

* **Incremental batch patch** (the default): the whole POST batch is
  validated atomically, canonicalized to its net effect (an
  insert-then-delete of the same edge cancels out), and routed through the
  mirror tracker's
  :meth:`~repro.maintenance.incremental.IncrementalBitruss.apply_batch` —
  one region per op, butterfly-disjoint regions merged into single
  multi-seed peels.  One patched artifact + engine pair is built straight
  from the repaired φ — no decomposition — and hot-swapped into the
  registry before the ``POST`` even returns: one version bump per batch,
  with query-cache entries above the batch's ``max_affected_k`` carried
  across the swap.  Readers never see a stale version.
* **Debounced parallel rebuild** (the fallback): when an op's affected
  region crosses the adaptive budget under ``rebuild_threshold`` (or the
  tracker's predictor says it will, skipping the region search entirely),
  the batch is too large, or the tracker has lost sync, the live engine —
  registered ``allow_stale=True`` — keeps answering from the last
  published φ while a debounced background task re-decomposes off the hot
  path and hot-swaps the fresh artifact in.  A burst of fallback batches
  lands inside one debounce window and costs **one** rebuild, not one
  per op.

Debounce semantics: the rebuild waits for a quiet period of ``debounce``
seconds after the *last* mutation, so an update burst costs one rebuild,
not one per edge; mutations that land while a rebuild is running trigger
one follow-up rebuild when it finishes.  The decomposition itself runs in
an executor thread via
:meth:`~repro.maintenance.dynamic.DynamicBipartiteGraph.rebuild` — the
shared offline/online rebuild path — optionally on the shared-memory
:class:`~repro.runtime.pool.ParallelRuntime` (``workers > 1``).  When it
lands, the tracker is reseeded from the fresh φ so incremental patching
resumes.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import Executor
from typing import Dict, List, Optional, Sequence

from repro.maintenance.dynamic import DynamicBipartiteGraph
from repro.obs import log as obs_log
from repro.obs import metrics as obs_metrics
from repro.obs import phases as obs_phases
from repro.server.registry import ArtifactRegistry
from repro.service.artifacts import DecompositionArtifact
from repro.service.engine import QueryEngine

_LOG = obs_log.get_logger("server.updates")


class MutationError(ValueError):
    """A ``POST /{ds}/edges`` payload could not be applied."""


class UpdateManager:
    """Owns the dynamic mirrors and the debounced rebuild tasks.

    Parameters
    ----------
    registry:
        The registry whose entries get hot-swapped.
    debounce:
        Quiet seconds after the last mutation before a rebuild starts.
    workers:
        Worker processes for each rebuild (>1 uses the shared-memory
        runtime through ``bit-bu-par``).
    algorithm:
        Decomposition algorithm for rebuilds (default ``bit-bu++``,
        auto-upgraded to ``bit-bu-par`` when ``workers > 1``).
    executor:
        Where the rebuild computation runs (default: the loop's default
        thread pool).
    incremental:
        Repair φ in place for small batches (default) instead of always
        scheduling a rebuild.
    rebuild_threshold:
        *Ceiling* on the per-op affected-region budget as a fraction of
        the mirror's edge count; the effective budget is the tracker's
        :class:`~repro.maintenance.incremental.AdaptiveBudget` (an EWMA
        of observed region sizes) clamped below that ceiling.  An op
        whose region outgrows the budget — or is predicted to — aborts
        the repair and falls back to the debounced rebuild.  ``0``
        disables incremental patching outright (every region has at
        least one edge).
    max_incremental_batch:
        Batches with more ops than this skip the batched repair and go
        straight to one debounced rebuild (a bulk load should not pay m
        localized re-peels).
    predict:
        Let the tracker skip the region search for ops whose h-index ×
        first-layer estimate already exceeds the budget (default on; a
        predicted fallback costs microseconds instead of an abort).
    adaptive_budget:
        Tighten each attached tracker's region budget from its EWMA of
        observed region sizes (default on); off pins the budget at the
        static ``rebuild_threshold`` ceiling.
    """

    def __init__(
        self,
        registry: ArtifactRegistry,
        *,
        debounce: float = 0.2,
        workers: int = 1,
        algorithm: str = "bit-bu++",
        executor: Optional[Executor] = None,
        incremental: bool = True,
        rebuild_threshold: float = 0.15,
        max_incremental_batch: int = 64,
        predict: bool = True,
        adaptive_budget: bool = True,
    ) -> None:
        if debounce < 0:
            raise ValueError("debounce must be non-negative")
        if workers < 1:
            raise ValueError("workers must be positive")
        if not 0.0 <= rebuild_threshold <= 1.0:
            raise ValueError("rebuild_threshold must be in [0, 1]")
        if max_incremental_batch < 1:
            raise ValueError("max_incremental_batch must be positive")
        self.registry = registry
        self.debounce = debounce
        self.workers = workers
        self.algorithm = algorithm
        self.incremental = incremental
        self.rebuild_threshold = rebuild_threshold
        self.max_incremental_batch = max_incremental_batch
        self.predict = predict
        self.adaptive_budget = adaptive_budget
        self._executor = executor
        self._dynamics: Dict[str, DynamicBipartiteGraph] = {}
        self._gen: Dict[str, int] = {}
        self._tasks: Dict[str, asyncio.Task] = {}
        self._rebuilds: Dict[str, int] = {}
        self._mutations: Dict[str, int] = {}
        self._rebuild_errors: Dict[str, int] = {}
        self._last_error: Dict[str, Optional[str]] = {}
        self._patches: Dict[str, int] = {}
        self._fallbacks: Dict[str, int] = {}
        self._predicted: Dict[str, int] = {}

    # ----------------------------------------------------------- wiring

    def attach(
        self, name: str, dynamic: Optional[DynamicBipartiteGraph] = None
    ) -> DynamicBipartiteGraph:
        """Make a hosted dataset mutable.

        Builds a dynamic mirror by replaying the live artifact's edges
        (unless ``dynamic`` is supplied), flips the entry to
        ``allow_stale`` serving, and subscribes the live engine to the
        mirror's invalidation feed — a mutation marks the served artifact
        stale (visible in ``/metrics``) until the rebuild lands.
        """
        entry = self.registry.get(name)
        if name in self._dynamics:
            raise ValueError(f"dataset {name!r} is already mutable")
        if dynamic is None:
            graph = entry.artifact.graph
            dynamic = DynamicBipartiteGraph(
                graph.num_upper,
                graph.num_lower,
                [graph.edge_endpoints(e) for e in range(graph.num_edges)],
            )
        entry.allow_stale = True
        entry.engine.allow_stale = True
        dynamic.register_artifact(entry.engine)
        self._dynamics[name] = dynamic
        self._gen[name] = 0
        self._rebuilds[name] = 0
        self._mutations[name] = 0
        self._rebuild_errors[name] = 0
        self._last_error[name] = None
        self._patches[name] = 0
        self._fallbacks[name] = 0
        self._predicted[name] = 0
        if self.incremental and dynamic.tracker is None:
            # Seed the φ tracker from the artifact being served — exact for
            # the mirror's current edge set, so no decomposition runs here.
            try:
                dynamic.enable_incremental(entry.artifact.phi_by_endpoints())
            except ValueError:
                # A caller-supplied mirror that already drifted from the
                # artifact: let the tracker compute its own seed.
                dynamic.enable_incremental()
        if dynamic.tracker is not None:
            dynamic.tracker.budget.enabled = self.adaptive_budget
        return dynamic

    def is_mutable(self, name: str) -> bool:
        """Whether ``POST /{name}/edges`` is accepted."""
        return name in self._dynamics

    def dynamic(self, name: str) -> DynamicBipartiteGraph:
        """The dynamic mirror of a mutable dataset."""
        return self._dynamics[name]

    # -------------------------------------------------------- mutations

    @staticmethod
    def _canonicalize(
        dynamic: DynamicBipartiteGraph, ops: Sequence[Dict[str, object]]
    ) -> "tuple[List[tuple], List[tuple]]":
        """Validate a POST batch op by op and collapse it to its net effect.

        Every op is checked — structure, endpoint ranges, membership
        against the batch's *own simulated state* (so ``delete (u,v)``
        right after ``insert (u,v)`` is legal) — before anything mutates;
        the first offender raises :class:`MutationError` with ``applied ==
        0`` attached.  Valid batches collapse per edge: an edge whose
        presence ends where it started (insert-then-delete, or
        delete-then-reinsert of a present edge) drops out entirely — the
        final graph, hence the final φ, is identical either way — and the
        rest canonicalize into deletes-first ``(inserts, deletes)`` lists.
        """
        def _bad(message: str) -> MutationError:
            exc = MutationError(message)
            exc.applied = 0  # type: ignore[attr-defined]
            return exc

        inserts: List[tuple] = []
        deletes: List[tuple] = []
        sim: Dict[tuple, bool] = {}
        for index, op in enumerate(ops):
            if not isinstance(op, dict):
                raise _bad(f"op #{index} is not an object")
            kind = op.get("op")
            u, v = op.get("u"), op.get("v")
            # Strict like the read side's validation: bools and floats
            # would silently coerce to a *different* edge than the
            # client named, corrupting the dataset.
            if not all(
                isinstance(x, int) and not isinstance(x, bool)
                for x in (u, v)
            ):
                raise _bad(f"op #{index} needs integer 'u' and 'v' fields")
            if kind not in ("insert", "delete"):
                raise _bad(
                    f"op #{index}: unknown op {kind!r} "
                    "(choose 'insert' or 'delete')"
                )
            if not 0 <= u < dynamic.num_upper:
                raise _bad(
                    f"op #{index}: upper endpoint {u} out of range "
                    f"[0, {dynamic.num_upper})"
                )
            if not 0 <= v < dynamic.num_lower:
                raise _bad(
                    f"op #{index}: lower endpoint {v} out of range "
                    f"[0, {dynamic.num_lower})"
                )
            edge = (u, v)
            present = (
                sim[edge] if edge in sim else dynamic.has_edge(u, v)
            )
            if kind == "insert":
                if present:
                    raise _bad(
                        f"op #{index}: edge ({u}, {v}) already present"
                    )
                sim[edge] = True
            else:
                if not present:
                    raise _bad(f"op #{index}: edge ({u}, {v}) not present")
                sim[edge] = False
        for edge, present_after in sim.items():
            present_before = dynamic.has_edge(*edge)
            if present_after and not present_before:
                inserts.append(edge)
            elif present_before and not present_after:
                deletes.append(edge)
        return inserts, deletes

    def apply(self, name: str, ops: Sequence[Dict[str, object]]) -> Dict[str, object]:
        """Apply one edge batch atomically; patch φ in place or rebuild.

        Each op is ``{"op": "insert"|"delete", "u": int, "v": int}``.  The
        whole batch validates before anything mutates — structure,
        endpoint ranges, and membership are checked against the batch's
        own simulated state — so a bad op at position k raises
        :class:`MutationError` with ``applied == 0`` and the mirror
        untouched (no more half-applied prefixes).  Per-edge op sequences
        then collapse to their net effect and the batch routes through the
        tracker's batched repair: one region per op, butterfly-disjoint
        regions merged into single multi-seed peels, a fallback predictor
        and adaptive budget deciding per op whether the repair is worth
        it.

        A batch repaired in full is hot-swapped before this call returns
        (``"rebuild": "incremental"``, exactly one version bump); a batch
        that falls back — predicted or observed blowout, oversized batch,
        dirty tracker — schedules the debounced background rebuild
        (``"rebuild": "scheduled"``), and any burst of such batches inside
        the debounce window coalesces into **one** rebuild.  A batch whose
        ops cancel out entirely returns ``"not_needed"``.
        """
        if not self.is_mutable(name):
            raise MutationError(
                f"dataset {name!r} is not mutable (no dynamic mirror attached)"
            )
        dynamic = self._dynamics[name]
        if not isinstance(ops, Sequence) or isinstance(ops, (str, bytes)):
            raise MutationError("ops must be a list of edge operations")
        inserts, deletes = self._canonicalize(dynamic, ops)
        if ops:
            obs_metrics.get_registry().histogram(
                "repro_updates_batch_ops",
                "Ops per accepted mutation batch.",
                ("dataset",),
                buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256),
            ).observe(float(len(ops)), (name,))
        if not inserts and not deletes:
            return {
                "applied": len(ops),
                "butterfly_delta": 0,
                "num_edges": dynamic.num_edges,
                "rebuild": "not_needed",
            }
        tracker = dynamic.tracker
        net_ops = len(inserts) + len(deletes)
        use_tracker = (
            self.incremental
            and tracker is not None
            and not tracker.dirty
            and net_ops <= self.max_incremental_batch
            and self.rebuild_threshold > 0.0
        )
        self._mutations[name] += len(ops)
        if use_tracker:
            outcome = dynamic.apply_batch(
                inserts,
                deletes,
                max_region_fraction=self.rebuild_threshold,
                patch_watchers=False,
                predict=self.predict,
            )
            if outcome.batch is not None:
                self._predicted[name] += outcome.batch.predicted_fallbacks
            if outcome.incremental:
                self._patch(name, outcome=outcome)
                mode = "incremental"
            else:
                # Pending repairs were flushed before the tracker went
                # dirty, so φ stays exact for everything already peeled;
                # one debounced rebuild reconciles the rest.
                self._fallbacks[name] += 1
                self._schedule(name)
                mode = "scheduled"
        else:
            # The plain mutators desync the tracker's φ; declare it dirty
            # up front — validation already passed, so the batch *will*
            # land.  (A batch rejected wholesale never reaches here and
            # leaves φ exact.)
            if tracker is not None and not tracker.dirty:
                tracker.mark_dirty()
            outcome = dynamic.apply_batch(
                inserts, deletes, incremental=False, patch_watchers=False
            )
            self._schedule(name)
            mode = "scheduled"
        return {
            "applied": len(ops),
            "butterfly_delta": outcome.butterfly_delta,
            "num_edges": dynamic.num_edges,
            "rebuild": mode,
        }

    def _schedule(self, name: str) -> None:
        """Restart the debounce clock and ensure a refresh task is running."""
        self._gen[name] += 1
        if self._tasks.get(name) is None:
            self._tasks[name] = asyncio.get_running_loop().create_task(
                self._refresh_loop(name)
            )

    def _patch(self, name: str, outcome=None) -> None:
        """Publish the tracker's repaired φ as a fresh artifact + engine.

        No decomposition runs: the patched snapshot and φ come straight
        from the incremental tracker, the hierarchy is derived from them,
        and the pair is hot-swapped like a rebuild's would be — in-flight
        leases keep the old engine, later requests see the new version.
        When the batch's :class:`~repro.maintenance.dynamic.ApplyOutcome`
        is supplied, the new engine adopts the old engine's query-cache
        entries that the batch provably left untouched (``community``
        answers above the batch's ``max_affected_k``, ``max_k`` answers
        for vertices outside its affected set) — one selective
        invalidation per batch instead of a cold cache per publish.

        Deliberately synchronous on the loop thread, like ``apply()``
        itself: publishing before the ``POST`` returns keeps the mirror
        and the registry ordered with no await window a concurrent batch
        could interleave into.  The cost is O(m) (snapshot sort, graph
        hash, hierarchy sweep — tens of milliseconds on the largest
        bundled dataset), paid once per accepted batch, not per op; if a
        deployment outgrows that, this is the seam to move onto the
        executor behind a per-dataset publish lock.
        """
        publish_start = time.perf_counter()
        entry = self.registry.get(name)
        dynamic = self._dynamics[name]
        tracker = dynamic.tracker
        assert tracker is not None and not tracker.dirty
        graph, phi = tracker.phi_snapshot()
        old = entry.artifact
        artifact = DecompositionArtifact(
            graph=graph,
            phi=phi,
            algorithm=old.algorithm,
            meta={
                **{k: v for k, v in old.meta.items() if k != "patches"},
                "patches": int(old.meta.get("patches", 0) or 0) + 1,
            },
        )
        old_engine = entry.engine
        engine = QueryEngine(
            artifact, cache_size=entry.cache_size, allow_stale=True
        )
        if outcome is not None and outcome.reports:
            engine.adopt_cache(
                old_engine,
                max_affected_k=outcome.max_affected_k,
                affected_gids=DynamicBipartiteGraph._affected_gids(
                    graph, outcome.reports
                ),
            )
        self.registry.swap(name, artifact, engine=engine)
        dynamic.unregister_artifact(old_engine)
        dynamic.register_artifact(engine)
        # The mirror advanced past whatever snapshot an in-flight rebuild
        # took: bump the generation so that rebuild's staleness check sees
        # the patch and marks its (older) artifact stale on landing.
        self._gen[name] += 1
        self._patches[name] += 1
        obs_phases.add("publish patch", time.perf_counter() - publish_start)
        obs_metrics.get_registry().counter(
            "repro_incremental_patch_publishes_total",
            "Patched artifacts published without a rebuild.",
            ("dataset",),
        ).inc(labels=(name,))
        _LOG.debug(
            "published incremental patch for %r (version %d)",
            name,
            entry.version,
        )

    # ---------------------------------------------------------- rebuild

    async def _refresh_loop(self, name: str) -> None:
        """Debounce, rebuild, and re-run if mutations landed meanwhile."""
        try:
            while True:
                gen = self._gen[name]
                await asyncio.sleep(self.debounce)
                if self._gen[name] != gen:
                    continue  # still hot; restart the quiet-period clock
                try:
                    await self._rebuild(name)
                except Exception as exc:  # noqa: BLE001 - must not vanish
                    # Don't hot-loop a broken build: record it loudly (the
                    # dataset stays advertised stale) and let the next
                    # mutation schedule a fresh attempt.
                    self._rebuild_errors[name] += 1
                    self._last_error[name] = f"{type(exc).__name__}: {exc}"
                    _LOG.exception("rebuild of dataset %r failed", name)
                    return
                self._last_error[name] = None
                if self._gen[name] == gen:
                    return
        finally:
            self._tasks.pop(name, None)

    async def _rebuild(self, name: str) -> None:
        """One rebuild + hot-swap cycle (runs the heavy part off-loop)."""
        entry = self.registry.get(name)
        dynamic = self._dynamics[name]
        # Snapshot on the loop thread so the frozen edge set is consistent
        # with every apply() that has returned to a client.
        gen_at_snapshot = self._gen[name]
        snapshot = dynamic.snapshot()

        def _build():
            artifact = dynamic.rebuild(
                self.algorithm,
                workers=self.workers,
                snapshot=snapshot,
                register=False,
            )
            engine = QueryEngine(
                artifact, cache_size=entry.cache_size, allow_stale=True
            )
            return artifact, engine

        loop = asyncio.get_running_loop()
        rebuild_start = time.perf_counter()
        artifact, engine = await loop.run_in_executor(self._executor, _build)
        obs_phases.add("rebuild", time.perf_counter() - rebuild_start)
        # Back on the loop thread: swap atomically and rewire staleness
        # subscriptions to the new pair.  The outgoing engine is read *now*
        # — an incremental patch may have swapped it while the build ran,
        # and unregistering a stale capture would orphan a watcher.
        old_engine = entry.engine
        self.registry.swap(name, artifact, engine=engine)
        dynamic.unregister_artifact(old_engine)
        dynamic.register_artifact(engine)
        tracker = dynamic.tracker
        if tracker is not None:
            try:
                tracker.reseed(artifact.phi_by_endpoints())
            except ValueError:
                # Mutations landed while the build ran; the follow-up
                # rebuild the refresh loop runs next will reseed.
                pass
        if self._gen[name] != gen_at_snapshot:
            # Mutations landed while the build ran: the fresh engine is
            # already behind.  Mark it stale immediately so /metrics and
            # /datasets keep advertising the lag until the follow-up
            # rebuild (which the refresh loop runs next) catches up.
            engine.invalidate()
        self._rebuilds[name] += 1

    async def wait_idle(self) -> None:
        """Block until every scheduled rebuild has landed (test/shutdown)."""
        while self._tasks:
            await asyncio.gather(
                *list(self._tasks.values()), return_exceptions=True
            )

    def pending(self, name: str) -> bool:
        """Whether a rebuild is scheduled or running for ``name``."""
        return self._tasks.get(name) is not None

    def stats(self) -> Dict[str, Dict[str, object]]:
        """Per-mutable-dataset counters for ``/metrics``."""
        return {
            name: {
                "mutations": self._mutations[name],
                "rebuilds": self._rebuilds[name],
                "rebuild_errors": self._rebuild_errors[name],
                "last_error": self._last_error[name],
                "pending_rebuild": self.pending(name),
                "mirror_edges": dyn.num_edges,
                "incremental_patches": self._patches[name],
                "incremental_fallbacks": self._fallbacks[name],
                "predicted_fallbacks": self._predicted[name],
                "tracker_dirty": bool(
                    dyn.tracker is not None and dyn.tracker.dirty
                ),
            }
            for name, dyn in self._dynamics.items()
        }

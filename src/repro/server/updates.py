"""The live refresh loop: mutations → incremental patch (or rebuild) → swap.

PR 2's staleness story was defensive: a
:class:`~repro.maintenance.dynamic.DynamicBipartiteGraph` invalidates
registered artifacts so nobody silently serves outdated φ.  This module
turns that into a *liveness* story.  Each mutable dataset keeps a dynamic
mirror of its graph; ``POST /{ds}/edges`` applies insert/delete ops to the
mirror (exact incremental butterfly supports, cheap) and then brings the
served artifact back in sync one of two ways:

* **Incremental patch** (the default for small batches): the mirror's
  :class:`~repro.maintenance.incremental.IncrementalBitruss` tracker
  repairs φ exactly inside each op's affected region, a patched artifact +
  engine pair is built straight from the repaired φ — no decomposition —
  and hot-swapped into the registry before the ``POST`` even returns.
  Readers never see a stale version.
* **Debounced parallel rebuild** (the fallback): when an op's affected
  region crosses ``rebuild_threshold`` (as a fraction of the edge count),
  the batch is too large, or the tracker has lost sync, the live engine —
  registered ``allow_stale=True`` — keeps answering from the last
  published φ while a debounced background task re-decomposes off the hot
  path and hot-swaps the fresh artifact in.

Debounce semantics: the rebuild waits for a quiet period of ``debounce``
seconds after the *last* mutation, so an update burst costs one rebuild,
not one per edge; mutations that land while a rebuild is running trigger
one follow-up rebuild when it finishes.  The decomposition itself runs in
an executor thread via
:meth:`~repro.maintenance.dynamic.DynamicBipartiteGraph.rebuild` — the
shared offline/online rebuild path — optionally on the shared-memory
:class:`~repro.runtime.pool.ParallelRuntime` (``workers > 1``).  When it
lands, the tracker is reseeded from the fresh φ so incremental patching
resumes.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import Executor
from typing import Dict, List, Optional, Sequence

from repro.maintenance.dynamic import DynamicBipartiteGraph
from repro.obs import log as obs_log
from repro.obs import metrics as obs_metrics
from repro.obs import phases as obs_phases
from repro.server.registry import ArtifactRegistry
from repro.service.artifacts import DecompositionArtifact
from repro.service.engine import QueryEngine

_LOG = obs_log.get_logger("server.updates")


class MutationError(ValueError):
    """A ``POST /{ds}/edges`` payload could not be applied."""


class UpdateManager:
    """Owns the dynamic mirrors and the debounced rebuild tasks.

    Parameters
    ----------
    registry:
        The registry whose entries get hot-swapped.
    debounce:
        Quiet seconds after the last mutation before a rebuild starts.
    workers:
        Worker processes for each rebuild (>1 uses the shared-memory
        runtime through ``bit-bu-par``).
    algorithm:
        Decomposition algorithm for rebuilds (default ``bit-bu++``,
        auto-upgraded to ``bit-bu-par`` when ``workers > 1``).
    executor:
        Where the rebuild computation runs (default: the loop's default
        thread pool).
    incremental:
        Repair φ in place for small batches (default) instead of always
        scheduling a rebuild.
    rebuild_threshold:
        Per-op affected-region budget as a fraction of the mirror's edge
        count; an op whose region outgrows it aborts the repair and falls
        back to the debounced rebuild.  ``0`` disables incremental
        patching outright (every region has at least one edge).
    max_incremental_batch:
        Batches with more ops than this skip the per-op repair and go
        straight to one debounced rebuild (a bulk load should not pay m
        localized re-peels).
    """

    def __init__(
        self,
        registry: ArtifactRegistry,
        *,
        debounce: float = 0.2,
        workers: int = 1,
        algorithm: str = "bit-bu++",
        executor: Optional[Executor] = None,
        incremental: bool = True,
        rebuild_threshold: float = 0.15,
        max_incremental_batch: int = 64,
    ) -> None:
        if debounce < 0:
            raise ValueError("debounce must be non-negative")
        if workers < 1:
            raise ValueError("workers must be positive")
        if not 0.0 <= rebuild_threshold <= 1.0:
            raise ValueError("rebuild_threshold must be in [0, 1]")
        if max_incremental_batch < 1:
            raise ValueError("max_incremental_batch must be positive")
        self.registry = registry
        self.debounce = debounce
        self.workers = workers
        self.algorithm = algorithm
        self.incremental = incremental
        self.rebuild_threshold = rebuild_threshold
        self.max_incremental_batch = max_incremental_batch
        self._executor = executor
        self._dynamics: Dict[str, DynamicBipartiteGraph] = {}
        self._gen: Dict[str, int] = {}
        self._tasks: Dict[str, asyncio.Task] = {}
        self._rebuilds: Dict[str, int] = {}
        self._mutations: Dict[str, int] = {}
        self._rebuild_errors: Dict[str, int] = {}
        self._last_error: Dict[str, Optional[str]] = {}
        self._patches: Dict[str, int] = {}
        self._fallbacks: Dict[str, int] = {}

    # ----------------------------------------------------------- wiring

    def attach(
        self, name: str, dynamic: Optional[DynamicBipartiteGraph] = None
    ) -> DynamicBipartiteGraph:
        """Make a hosted dataset mutable.

        Builds a dynamic mirror by replaying the live artifact's edges
        (unless ``dynamic`` is supplied), flips the entry to
        ``allow_stale`` serving, and subscribes the live engine to the
        mirror's invalidation feed — a mutation marks the served artifact
        stale (visible in ``/metrics``) until the rebuild lands.
        """
        entry = self.registry.get(name)
        if name in self._dynamics:
            raise ValueError(f"dataset {name!r} is already mutable")
        if dynamic is None:
            graph = entry.artifact.graph
            dynamic = DynamicBipartiteGraph(
                graph.num_upper,
                graph.num_lower,
                [graph.edge_endpoints(e) for e in range(graph.num_edges)],
            )
        entry.allow_stale = True
        entry.engine.allow_stale = True
        dynamic.register_artifact(entry.engine)
        self._dynamics[name] = dynamic
        self._gen[name] = 0
        self._rebuilds[name] = 0
        self._mutations[name] = 0
        self._rebuild_errors[name] = 0
        self._last_error[name] = None
        self._patches[name] = 0
        self._fallbacks[name] = 0
        if self.incremental and dynamic.tracker is None:
            # Seed the φ tracker from the artifact being served — exact for
            # the mirror's current edge set, so no decomposition runs here.
            try:
                dynamic.enable_incremental(entry.artifact.phi_by_endpoints())
            except ValueError:
                # A caller-supplied mirror that already drifted from the
                # artifact: let the tracker compute its own seed.
                dynamic.enable_incremental()
        return dynamic

    def is_mutable(self, name: str) -> bool:
        """Whether ``POST /{name}/edges`` is accepted."""
        return name in self._dynamics

    def dynamic(self, name: str) -> DynamicBipartiteGraph:
        """The dynamic mirror of a mutable dataset."""
        return self._dynamics[name]

    # -------------------------------------------------------- mutations

    def apply(self, name: str, ops: Sequence[Dict[str, object]]) -> Dict[str, object]:
        """Apply edge ops; patch the served φ in place or schedule a rebuild.

        Each op is ``{"op": "insert"|"delete", "u": int, "v": int}``.  Ops
        apply sequentially; the first invalid op raises
        :class:`MutationError` (earlier ops in the list stay applied — the
        sync step still reconciles the artifact with whatever state the
        mirror reached).

        With incremental maintenance enabled, a small batch whose per-op
        affected regions stay under ``rebuild_threshold`` is repaired
        exactly and hot-swapped before this call returns (``"rebuild":
        "incremental"`` in the response); anything else schedules the
        debounced background rebuild (``"rebuild": "scheduled"``).
        """
        if not self.is_mutable(name):
            raise MutationError(
                f"dataset {name!r} is not mutable (no dynamic mirror attached)"
            )
        dynamic = self._dynamics[name]
        if not isinstance(ops, Sequence) or isinstance(ops, (str, bytes)):
            raise MutationError("ops must be a list of edge operations")
        tracker = dynamic.tracker
        use_tracker = (
            self.incremental
            and tracker is not None
            and not tracker.dirty
            and len(ops) <= self.max_incremental_batch
            and self.rebuild_threshold > 0.0
        )
        # The plain mutators desync the tracker's φ; it must be declared
        # dirty, but only once a mutation actually lands — a batch rejected
        # wholesale (applied=0) leaves φ exact and must not force the next
        # batch onto the rebuild path.
        needs_dirty = tracker is not None and not tracker.dirty and not use_tracker
        applied = 0
        butterflies = 0
        fell_back = False
        error: Optional[MutationError] = None
        try:
            for op in ops:
                if not isinstance(op, dict):
                    raise MutationError(f"op #{applied} is not an object")
                kind = op.get("op")
                u, v = op.get("u"), op.get("v")
                # Strict like the read side's validation: bools and floats
                # would silently coerce to a *different* edge than the
                # client named, corrupting the dataset.
                if not all(
                    isinstance(x, int) and not isinstance(x, bool)
                    for x in (u, v)
                ):
                    raise MutationError(
                        f"op #{applied} needs integer 'u' and 'v' fields"
                    )
                if kind not in ("insert", "delete"):
                    raise MutationError(
                        f"op #{applied}: unknown op {kind!r} "
                        "(choose 'insert' or 'delete')"
                    )
                if use_tracker:
                    assert tracker is not None
                    cap = int(
                        self.rebuild_threshold * max(1, dynamic.num_edges)
                    )
                    mutate = tracker.insert if kind == "insert" else tracker.delete
                    report = mutate(u, v, max_region_edges=cap)
                    delta = report.butterflies
                    if report.fallback:
                        # The region outgrew the budget: the mutation is
                        # applied, φ is not repaired; remaining ops take
                        # the plain path and one rebuild reconciles.
                        use_tracker = False
                        fell_back = True
                elif kind == "insert":
                    delta = dynamic.insert_edge(u, v)
                else:
                    delta = dynamic.delete_edge(u, v)
                if needs_dirty:
                    assert tracker is not None
                    tracker.mark_dirty()
                    needs_dirty = False
                butterflies += delta if kind == "insert" else -delta
                applied += 1
        except ValueError as exc:
            if not isinstance(exc, MutationError):
                exc = MutationError(f"op #{applied}: {exc}")
            exc.applied = applied  # type: ignore[attr-defined]
            error = exc
        mode = "not_needed"
        if applied or fell_back:
            self._mutations[name] += applied
            if use_tracker and not fell_back:
                self._patch(name)
                mode = "incremental"
            else:
                if fell_back:
                    self._fallbacks[name] += 1
                self._schedule(name)
                mode = "scheduled"
        if error is not None:
            raise error
        return {
            "applied": applied,
            "butterfly_delta": butterflies,
            "num_edges": dynamic.num_edges,
            "rebuild": mode,
        }

    def _schedule(self, name: str) -> None:
        """Restart the debounce clock and ensure a refresh task is running."""
        self._gen[name] += 1
        if self._tasks.get(name) is None:
            self._tasks[name] = asyncio.get_running_loop().create_task(
                self._refresh_loop(name)
            )

    def _patch(self, name: str) -> None:
        """Publish the tracker's repaired φ as a fresh artifact + engine.

        No decomposition runs: the patched snapshot and φ come straight
        from the incremental tracker, the hierarchy is derived from them,
        and the pair is hot-swapped like a rebuild's would be — in-flight
        leases keep the old engine, later requests see the new version.

        Deliberately synchronous on the loop thread, like ``apply()``
        itself: publishing before the ``POST`` returns keeps the mirror
        and the registry ordered with no await window a concurrent batch
        could interleave into.  The cost is O(m) (snapshot sort, graph
        hash, hierarchy sweep — tens of milliseconds on the largest
        bundled dataset), paid once per accepted batch, not per op; if a
        deployment outgrows that, this is the seam to move onto the
        executor behind a per-dataset publish lock.
        """
        publish_start = time.perf_counter()
        entry = self.registry.get(name)
        dynamic = self._dynamics[name]
        tracker = dynamic.tracker
        assert tracker is not None and not tracker.dirty
        graph, phi = tracker.phi_snapshot()
        old = entry.artifact
        artifact = DecompositionArtifact(
            graph=graph,
            phi=phi,
            algorithm=old.algorithm,
            meta={
                **{k: v for k, v in old.meta.items() if k != "patches"},
                "patches": int(old.meta.get("patches", 0) or 0) + 1,
            },
        )
        old_engine = entry.engine
        engine = QueryEngine(
            artifact, cache_size=entry.cache_size, allow_stale=True
        )
        self.registry.swap(name, artifact, engine=engine)
        dynamic.unregister_artifact(old_engine)
        dynamic.register_artifact(engine)
        # The mirror advanced past whatever snapshot an in-flight rebuild
        # took: bump the generation so that rebuild's staleness check sees
        # the patch and marks its (older) artifact stale on landing.
        self._gen[name] += 1
        self._patches[name] += 1
        obs_phases.add("publish patch", time.perf_counter() - publish_start)
        obs_metrics.get_registry().counter(
            "repro_incremental_patch_publishes_total",
            "Patched artifacts published without a rebuild.",
            ("dataset",),
        ).inc(labels=(name,))
        _LOG.debug(
            "published incremental patch for %r (version %d)",
            name,
            entry.version,
        )

    # ---------------------------------------------------------- rebuild

    async def _refresh_loop(self, name: str) -> None:
        """Debounce, rebuild, and re-run if mutations landed meanwhile."""
        try:
            while True:
                gen = self._gen[name]
                await asyncio.sleep(self.debounce)
                if self._gen[name] != gen:
                    continue  # still hot; restart the quiet-period clock
                try:
                    await self._rebuild(name)
                except Exception as exc:  # noqa: BLE001 - must not vanish
                    # Don't hot-loop a broken build: record it loudly (the
                    # dataset stays advertised stale) and let the next
                    # mutation schedule a fresh attempt.
                    self._rebuild_errors[name] += 1
                    self._last_error[name] = f"{type(exc).__name__}: {exc}"
                    _LOG.exception("rebuild of dataset %r failed", name)
                    return
                self._last_error[name] = None
                if self._gen[name] == gen:
                    return
        finally:
            self._tasks.pop(name, None)

    async def _rebuild(self, name: str) -> None:
        """One rebuild + hot-swap cycle (runs the heavy part off-loop)."""
        entry = self.registry.get(name)
        dynamic = self._dynamics[name]
        # Snapshot on the loop thread so the frozen edge set is consistent
        # with every apply() that has returned to a client.
        gen_at_snapshot = self._gen[name]
        snapshot = dynamic.snapshot()

        def _build():
            artifact = dynamic.rebuild(
                self.algorithm,
                workers=self.workers,
                snapshot=snapshot,
                register=False,
            )
            engine = QueryEngine(
                artifact, cache_size=entry.cache_size, allow_stale=True
            )
            return artifact, engine

        loop = asyncio.get_running_loop()
        rebuild_start = time.perf_counter()
        artifact, engine = await loop.run_in_executor(self._executor, _build)
        obs_phases.add("rebuild", time.perf_counter() - rebuild_start)
        # Back on the loop thread: swap atomically and rewire staleness
        # subscriptions to the new pair.  The outgoing engine is read *now*
        # — an incremental patch may have swapped it while the build ran,
        # and unregistering a stale capture would orphan a watcher.
        old_engine = entry.engine
        self.registry.swap(name, artifact, engine=engine)
        dynamic.unregister_artifact(old_engine)
        dynamic.register_artifact(engine)
        tracker = dynamic.tracker
        if tracker is not None:
            try:
                tracker.reseed(artifact.phi_by_endpoints())
            except ValueError:
                # Mutations landed while the build ran; the follow-up
                # rebuild the refresh loop runs next will reseed.
                pass
        if self._gen[name] != gen_at_snapshot:
            # Mutations landed while the build ran: the fresh engine is
            # already behind.  Mark it stale immediately so /metrics and
            # /datasets keep advertising the lag until the follow-up
            # rebuild (which the refresh loop runs next) catches up.
            engine.invalidate()
        self._rebuilds[name] += 1

    async def wait_idle(self) -> None:
        """Block until every scheduled rebuild has landed (test/shutdown)."""
        while self._tasks:
            await asyncio.gather(
                *list(self._tasks.values()), return_exceptions=True
            )

    def pending(self, name: str) -> bool:
        """Whether a rebuild is scheduled or running for ``name``."""
        return self._tasks.get(name) is not None

    def stats(self) -> Dict[str, Dict[str, object]]:
        """Per-mutable-dataset counters for ``/metrics``."""
        return {
            name: {
                "mutations": self._mutations[name],
                "rebuilds": self._rebuilds[name],
                "rebuild_errors": self._rebuild_errors[name],
                "last_error": self._last_error[name],
                "pending_rebuild": self.pending(name),
                "mirror_edges": dyn.num_edges,
                "incremental_patches": self._patches[name],
                "incremental_fallbacks": self._fallbacks[name],
                "tracker_dirty": bool(
                    dyn.tracker is not None and dyn.tracker.dirty
                ),
            }
            for name, dyn in self._dynamics.items()
        }

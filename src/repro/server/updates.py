"""The live refresh loop: mutations → debounced rebuild → hot-swap.

PR 2's staleness story was defensive: a
:class:`~repro.maintenance.dynamic.DynamicBipartiteGraph` invalidates
registered artifacts so nobody silently serves outdated φ.  This module
turns that into a *liveness* story.  Each mutable dataset keeps a dynamic
mirror of its graph; ``POST /{ds}/edges`` applies insert/delete ops to the
mirror (exact incremental butterfly supports, cheap), the live engine —
registered ``allow_stale=True`` — keeps answering from the last published
φ, and a debounced background task re-decomposes off the hot path and
hot-swaps the fresh artifact into the
:class:`~repro.server.registry.ArtifactRegistry`.

Debounce semantics: the rebuild waits for a quiet period of ``debounce``
seconds after the *last* mutation, so an update burst costs one rebuild,
not one per edge; mutations that land while a rebuild is running trigger
one follow-up rebuild when it finishes.  The decomposition itself runs in
an executor thread via
:meth:`~repro.maintenance.dynamic.DynamicBipartiteGraph.rebuild` — the
shared offline/online rebuild path — optionally on the shared-memory
:class:`~repro.runtime.pool.ParallelRuntime` (``workers > 1``).
"""

from __future__ import annotations

import asyncio
import sys
import traceback
from concurrent.futures import Executor
from typing import Dict, List, Optional, Sequence

from repro.maintenance.dynamic import DynamicBipartiteGraph
from repro.server.registry import ArtifactRegistry
from repro.service.engine import QueryEngine


class MutationError(ValueError):
    """A ``POST /{ds}/edges`` payload could not be applied."""


class UpdateManager:
    """Owns the dynamic mirrors and the debounced rebuild tasks.

    Parameters
    ----------
    registry:
        The registry whose entries get hot-swapped.
    debounce:
        Quiet seconds after the last mutation before a rebuild starts.
    workers:
        Worker processes for each rebuild (>1 uses the shared-memory
        runtime through ``bit-bu-par``).
    algorithm:
        Decomposition algorithm for rebuilds (default ``bit-bu++``,
        auto-upgraded to ``bit-bu-par`` when ``workers > 1``).
    executor:
        Where the rebuild computation runs (default: the loop's default
        thread pool).
    """

    def __init__(
        self,
        registry: ArtifactRegistry,
        *,
        debounce: float = 0.2,
        workers: int = 1,
        algorithm: str = "bit-bu++",
        executor: Optional[Executor] = None,
    ) -> None:
        if debounce < 0:
            raise ValueError("debounce must be non-negative")
        if workers < 1:
            raise ValueError("workers must be positive")
        self.registry = registry
        self.debounce = debounce
        self.workers = workers
        self.algorithm = algorithm
        self._executor = executor
        self._dynamics: Dict[str, DynamicBipartiteGraph] = {}
        self._gen: Dict[str, int] = {}
        self._tasks: Dict[str, asyncio.Task] = {}
        self._rebuilds: Dict[str, int] = {}
        self._mutations: Dict[str, int] = {}
        self._rebuild_errors: Dict[str, int] = {}
        self._last_error: Dict[str, Optional[str]] = {}

    # ----------------------------------------------------------- wiring

    def attach(
        self, name: str, dynamic: Optional[DynamicBipartiteGraph] = None
    ) -> DynamicBipartiteGraph:
        """Make a hosted dataset mutable.

        Builds a dynamic mirror by replaying the live artifact's edges
        (unless ``dynamic`` is supplied), flips the entry to
        ``allow_stale`` serving, and subscribes the live engine to the
        mirror's invalidation feed — a mutation marks the served artifact
        stale (visible in ``/metrics``) until the rebuild lands.
        """
        entry = self.registry.get(name)
        if name in self._dynamics:
            raise ValueError(f"dataset {name!r} is already mutable")
        if dynamic is None:
            graph = entry.artifact.graph
            dynamic = DynamicBipartiteGraph(
                graph.num_upper,
                graph.num_lower,
                [graph.edge_endpoints(e) for e in range(graph.num_edges)],
            )
        entry.allow_stale = True
        entry.engine.allow_stale = True
        dynamic.register_artifact(entry.engine)
        self._dynamics[name] = dynamic
        self._gen[name] = 0
        self._rebuilds[name] = 0
        self._mutations[name] = 0
        self._rebuild_errors[name] = 0
        self._last_error[name] = None
        return dynamic

    def is_mutable(self, name: str) -> bool:
        """Whether ``POST /{name}/edges`` is accepted."""
        return name in self._dynamics

    def dynamic(self, name: str) -> DynamicBipartiteGraph:
        """The dynamic mirror of a mutable dataset."""
        return self._dynamics[name]

    # -------------------------------------------------------- mutations

    def apply(self, name: str, ops: Sequence[Dict[str, object]]) -> Dict[str, object]:
        """Apply edge ops and schedule the debounced rebuild.

        Each op is ``{"op": "insert"|"delete", "u": int, "v": int}``.  Ops
        apply sequentially; the first invalid op raises
        :class:`MutationError` (earlier ops in the list stay applied — the
        scheduled rebuild still reconciles the artifact with whatever
        state the mirror reached).
        """
        if not self.is_mutable(name):
            raise MutationError(
                f"dataset {name!r} is not mutable (no dynamic mirror attached)"
            )
        dynamic = self._dynamics[name]
        if not isinstance(ops, Sequence) or isinstance(ops, (str, bytes)):
            raise MutationError("ops must be a list of edge operations")
        applied = 0
        butterflies = 0
        try:
            for op in ops:
                if not isinstance(op, dict):
                    raise MutationError(f"op #{applied} is not an object")
                kind = op.get("op")
                u, v = op.get("u"), op.get("v")
                # Strict like the read side's validation: bools and floats
                # would silently coerce to a *different* edge than the
                # client named, corrupting the dataset.
                if not all(
                    isinstance(x, int) and not isinstance(x, bool)
                    for x in (u, v)
                ):
                    raise MutationError(
                        f"op #{applied} needs integer 'u' and 'v' fields"
                    )
                if kind == "insert":
                    butterflies += dynamic.insert_edge(u, v)
                elif kind == "delete":
                    try:
                        butterflies -= dynamic.delete_edge(u, v)
                    except KeyError as exc:
                        raise MutationError(str(exc)) from None
                else:
                    raise MutationError(
                        f"op #{applied}: unknown op {kind!r} "
                        "(choose 'insert' or 'delete')"
                    )
                applied += 1
        except ValueError as exc:
            if not isinstance(exc, MutationError):
                exc = MutationError(f"op #{applied}: {exc}")
            exc.applied = applied  # type: ignore[attr-defined]
            if applied:
                self._note_mutations(name, applied)
            raise exc
        if applied:
            # An empty ops list must not cost a rebuild (or keep resetting
            # the debounce clock of one that is genuinely needed).
            self._note_mutations(name, applied)
        return {
            "applied": applied,
            "butterfly_delta": butterflies,
            "num_edges": dynamic.num_edges,
            "rebuild": "scheduled" if applied else "not_needed",
        }

    def _note_mutations(self, name: str, count: int) -> None:
        self._gen[name] += 1
        self._mutations[name] += count
        if self._tasks.get(name) is None:
            self._tasks[name] = asyncio.get_running_loop().create_task(
                self._refresh_loop(name)
            )

    # ---------------------------------------------------------- rebuild

    async def _refresh_loop(self, name: str) -> None:
        """Debounce, rebuild, and re-run if mutations landed meanwhile."""
        try:
            while True:
                gen = self._gen[name]
                await asyncio.sleep(self.debounce)
                if self._gen[name] != gen:
                    continue  # still hot; restart the quiet-period clock
                try:
                    await self._rebuild(name)
                except Exception as exc:  # noqa: BLE001 - must not vanish
                    # Don't hot-loop a broken build: record it loudly (the
                    # dataset stays advertised stale) and let the next
                    # mutation schedule a fresh attempt.
                    self._rebuild_errors[name] += 1
                    self._last_error[name] = f"{type(exc).__name__}: {exc}"
                    traceback.print_exc(file=sys.stderr)
                    return
                self._last_error[name] = None
                if self._gen[name] == gen:
                    return
        finally:
            self._tasks.pop(name, None)

    async def _rebuild(self, name: str) -> None:
        """One rebuild + hot-swap cycle (runs the heavy part off-loop)."""
        entry = self.registry.get(name)
        dynamic = self._dynamics[name]
        old_engine = entry.engine
        # Snapshot on the loop thread so the frozen edge set is consistent
        # with every apply() that has returned to a client.
        gen_at_snapshot = self._gen[name]
        snapshot = dynamic.snapshot()

        def _build():
            artifact = dynamic.rebuild(
                self.algorithm,
                workers=self.workers,
                snapshot=snapshot,
                register=False,
            )
            engine = QueryEngine(
                artifact, cache_size=entry.cache_size, allow_stale=True
            )
            return artifact, engine

        loop = asyncio.get_running_loop()
        artifact, engine = await loop.run_in_executor(self._executor, _build)
        # Back on the loop thread: swap atomically and rewire staleness
        # subscriptions to the new pair.
        self.registry.swap(name, artifact, engine=engine)
        dynamic.unregister_artifact(old_engine)
        dynamic.register_artifact(engine)
        if self._gen[name] != gen_at_snapshot:
            # Mutations landed while the build ran: the fresh engine is
            # already behind.  Mark it stale immediately so /metrics and
            # /datasets keep advertising the lag until the follow-up
            # rebuild (which the refresh loop runs next) catches up.
            engine.invalidate()
        self._rebuilds[name] += 1

    async def wait_idle(self) -> None:
        """Block until every scheduled rebuild has landed (test/shutdown)."""
        while self._tasks:
            await asyncio.gather(
                *list(self._tasks.values()), return_exceptions=True
            )

    def pending(self, name: str) -> bool:
        """Whether a rebuild is scheduled or running for ``name``."""
        return self._tasks.get(name) is not None

    def stats(self) -> Dict[str, Dict[str, object]]:
        """Per-mutable-dataset counters for ``/metrics``."""
        return {
            name: {
                "mutations": self._mutations[name],
                "rebuilds": self._rebuilds[name],
                "rebuild_errors": self._rebuild_errors[name],
                "last_error": self._last_error[name],
                "pending_rebuild": self.pending(name),
                "mirror_edges": dyn.num_edges,
            }
            for name, dyn in self._dynamics.items()
        }

"""A minimal asyncio HTTP/1.1 JSON server over the query engine surface.

Stdlib only: connections are ``asyncio.start_server`` streams, requests
are parsed by hand (request line, headers, ``Content-Length`` body), and
responses are JSON with explicit ``Content-Length`` so keep-alive works.
One process hosts many datasets through an
:class:`~repro.server.registry.ArtifactRegistry`; engine calls run on a
small thread pool under the entry's lock, and — unless disabled — go
through the :class:`~repro.server.batching.QueryCoalescer` so concurrent
identical requests share one computation and one encoded body.

Endpoints
---------
====================================  ======  =====================================
``/healthz``                          GET     liveness + hosted dataset count
``/metrics``                          GET     counters, cache info, versions
``/datasets``                         GET     hosted datasets summary
``/debug/vars``                       GET     statusz snapshot (versions, RSS, ...)
``/debug/traces``                     GET     recent + slowest retained traces
``/debug/traces/{id}``                GET     span waterfall (``?format=chrome``)
``/{ds}/stats``                       GET     :meth:`QueryEngine.stats`
``/{ds}/histogram``                   GET     :meth:`QueryEngine.phi_histogram`
``/{ds}/community?k=&upper=|lower=``  GET     :meth:`QueryEngine.community`
``/{ds}/max_k?upper=|lower=``         GET     :meth:`QueryEngine.max_k`
``/{ds}/hierarchy_path?u=&v=|eid=``   GET     :meth:`QueryEngine.hierarchy_path`
``/{ds}/batch``                       POST    :meth:`QueryEngine.batch`
``/{ds}/edges``                       POST    mutations → debounced rebuild
====================================  ======  =====================================

Every error is a structured payload
``{"error": {"status", "type", "message", ...}}``; queries are validated
against the live graph *before* entering a shared batch, so one malformed
request can never poison the answers of the requests it coalesced with.
"""

from __future__ import annotations

import asyncio
import contextvars
import json
import os
import re
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

import numpy as np

from repro.obs import log as obs_log
from repro.obs import metrics as obs_metrics
from repro.obs import phases as obs_phases
from repro.obs import spans as obs_spans
from repro.obs import trace as obs_trace
from repro.obs.store import TraceStore
from repro.server.batching import QueryCoalescer, SharedResult
from repro.server.registry import ArtifactRegistry, UnknownDatasetError
from repro.server.updates import MutationError, UpdateManager
from repro.service.artifacts import StaleArtifactError

_LOG = obs_log.get_logger("server")

#: Content type of the Prometheus text exposition format.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Content type of the OpenMetrics exposition (exemplar-capable).
OPENMETRICS_CONTENT_TYPE = (
    "application/openmetrics-text; version=1.0.0; charset=utf-8"
)

#: Inbound ``X-Trace-Id`` values we adopt (and echo back).  Anything else
#: — overlong, non-hex, control characters — gets a freshly minted id, so
#: a client can neither inject bytes into response headers nor grow them
#: without bound.
_TRACE_ID_RE = re.compile(r"[0-9a-f]{1,64}")


def _rss_bytes() -> Optional[int]:
    """Resident set size of this process, or None where unreadable."""
    try:
        with open("/proc/self/statm") as fh:
            return int(fh.read().split()[1]) * os.sysconf("SC_PAGE_SIZE")
    except (OSError, ValueError, IndexError):
        return None


def _max_rss_bytes() -> Optional[int]:
    try:
        import resource

        # ru_maxrss is kilobytes on Linux, bytes on macOS.
        scale = 1 if sys.platform == "darwin" else 1024
        return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * scale
    except (ImportError, ValueError):  # pragma: no cover - non-posix
        return None

#: Engine ops reachable over the wire, with their allowed parameter keys.
_QUERY_OPS: Dict[str, frozenset] = {
    "k_bitruss": frozenset({"op", "k"}),
    "community": frozenset({"op", "k", "upper", "lower"}),
    "max_k": frozenset({"op", "upper", "lower"}),
    "hierarchy_path": frozenset({"op", "edge", "eid"}),
    "phi_histogram": frozenset({"op"}),
    "stats": frozenset({"op"}),
    "phi_of": frozenset({"op", "u", "v"}),
}

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HTTPError(Exception):
    """An error with a status code and a structured JSON payload."""

    def __init__(
        self,
        status: int,
        kind: str,
        message: str,
        **extra: object,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.kind = kind
        self.extra = extra

    def payload(self) -> Dict[str, object]:
        body: Dict[str, object] = {
            "status": self.status,
            "type": self.kind,
            "message": str(self),
        }
        body.update(self.extra)
        return {"error": body}


def jsonify(obj: object) -> object:
    """Engine results → JSON-safe values, deterministically ordered.

    Communities flatten to sorted vertex/edge lists, numpy scalars and
    arrays to python ints/lists, tuples to lists, non-string dict keys to
    strings (matching what JSON can carry).  Tests reuse this to assert
    HTTP parity with direct engine calls.
    """
    if isinstance(obj, (bool, int, float, str)) or obj is None:
        return obj
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    if (
        hasattr(obj, "k")
        and hasattr(obj, "upper")
        and hasattr(obj, "lower")
        and hasattr(obj, "edges")
    ):  # Community (duck-typed: apps must stay importable lazily)
        return {
            "k": int(obj.k),
            "upper": sorted(int(u) for u in obj.upper),
            "lower": sorted(int(v) for v in obj.lower),
            "edges": sorted([int(u), int(v)] for u, v in obj.edges),
        }
    if isinstance(obj, dict):
        return {str(k): jsonify(v) for k, v in obj.items()}
    if isinstance(obj, np.ndarray):
        return [jsonify(x) for x in obj.tolist()]
    if isinstance(obj, (list, tuple)):
        return [jsonify(x) for x in obj]
    if isinstance(obj, (set, frozenset)):
        return sorted(jsonify(x) for x in obj)
    return str(obj)


def _dumps(payload: object) -> bytes:
    return json.dumps(payload, separators=(",", ":")).encode("utf-8")


class BitrussServer:
    """Serve an :class:`ArtifactRegistry` over HTTP/1.1.

    Parameters
    ----------
    registry:
        The datasets to host.
    host, port:
        Bind address; ``port=0`` picks a free port (read it back from
        :attr:`port` after :meth:`start`).
    coalesce:
        Route queries through a :class:`QueryCoalescer` (default); off,
        every request pays its own engine call — the naive baseline the
        server benchmark measures against.
    window, max_batch:
        Coalescer tuning (see :class:`QueryCoalescer`).
    updates:
        An :class:`UpdateManager` enabling ``POST /{ds}/edges`` for the
        datasets attached to it.
    executor_threads:
        Size of the engine-call thread pool.
    slow_query_s:
        When set, any non-scrape request slower than this many seconds is
        logged as a WARNING on the ``repro.server.slow`` logger.
    """

    #: Cap on header lines per request (a client streaming endless small
    #: headers must not grow the headers dict without bound).
    MAX_HEADERS = 100

    def __init__(
        self,
        registry: ArtifactRegistry,
        *,
        host: str = "127.0.0.1",
        port: int = 8642,
        coalesce: bool = True,
        window: float = 0.002,
        max_batch: int = 64,
        updates: Optional[UpdateManager] = None,
        executor_threads: int = 4,
        max_body: int = 8 << 20,
        slow_query_s: Optional[float] = None,
        trace_sample: Optional[float] = None,
    ) -> None:
        self.registry = registry
        self.host = host
        self.port = port
        self.updates = updates
        self.max_body = max_body
        self.slow_query_s = slow_query_s
        # The always-on tracing plane: the process-global span recorder
        # assembles per-request spans; completed traces that survive
        # sampling land in the store behind /debug/traces.
        self._recorder = obs_spans.get_recorder()
        self.trace_store = TraceStore()
        if trace_sample is not None:
            obs_spans.configure(sample=trace_sample)
        if slow_query_s is not None and slow_query_s > 0:
            # Tail promotion tracks the slow-query threshold: any request
            # the slow log would flag is also guaranteed inspectable.
            obs_spans.configure(slow_s=slow_query_s)
        self.coalescer = (
            QueryCoalescer(window=window, max_batch=max_batch)
            if coalesce
            else None
        )
        self._executor = ThreadPoolExecutor(
            max_workers=executor_threads, thread_name_prefix="repro-serve"
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._started_at = time.time()
        self._requests_total = 0
        self._errors_total = 0
        self._active = 0
        self._by_endpoint: Dict[str, int] = {}
        # The server owns its HTTP series registry (separate from the
        # process-global one library code writes to) so concurrent server
        # instances in one process never cross-pollute each other's
        # request counts; a scrape merges both views.
        self._metrics = obs_metrics.MetricsRegistry()
        self._m_requests = self._metrics.counter(
            "repro_http_requests_total",
            "HTTP requests served, by endpoint and dataset.",
            ("endpoint", "dataset"),
        )
        self._m_errors = self._metrics.counter(
            "repro_http_errors_total",
            "HTTP requests answered with a 4xx/5xx status, by endpoint.",
            ("endpoint",),
        )
        self._m_latency = self._metrics.histogram(
            "repro_http_request_seconds",
            "HTTP request latency in seconds, by endpoint "
            "(scrapes of /metrics are excluded).",
            ("endpoint",),
        )

    # ---------------------------------------------------------- lifecycle

    async def start(self) -> "BitrussServer":
        """Bind and start accepting connections (raises ``OSError`` if the
        port is taken)."""
        self._server = await asyncio.start_server(
            self._handle_conn, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def serve_forever(self) -> None:
        """Run until cancelled (the CLI's foreground mode)."""
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        """Stop accepting connections and release the thread pool."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self._executor.shutdown(wait=False)

    async def __aenter__(self) -> "BitrussServer":
        return await self.start()

    async def __aexit__(self, *_exc) -> None:
        await self.stop()

    # --------------------------------------------------------- connection

    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except HTTPError as exc:
                    # Unframeable request (bad request line, bad or huge
                    # Content-Length): answer once, then close — the
                    # stream position can no longer be trusted.
                    self._requests_total += 1
                    self._errors_total += 1
                    self._write_response(
                        writer, exc.status, _dumps(exc.payload()), keep=False
                    )
                    await writer.drain()
                    break
                if request is None:
                    break
                method, target, headers, body = request
                keep = headers.get("connection", "keep-alive").lower() != "close"
                status, payload, ctype, trace_id = await self._serve_one(
                    method, target, headers, body
                )
                self._write_response(
                    writer,
                    status,
                    payload,
                    keep,
                    content_type=ctype,
                    trace_id=trace_id,
                )
                await writer.drain()
                if not keep:
                    break
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            BrokenPipeError,
        ):
            pass  # client went away mid-request; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (asyncio.CancelledError, ConnectionResetError, BrokenPipeError):
                # Shutdown (stop() closing the listener) cancels handlers
                # blocked in wait_closed; the transport is going away
                # either way, so swallow rather than spam stderr.
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
        try:
            line = await reader.readline()
        except ValueError:  # asyncio stream limit (64 KiB) exceeded
            raise HTTPError(
                400, "line_too_long", "request line exceeds the stream limit"
            )
        if not line:
            return None
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            raise HTTPError(400, "bad_request_line", "malformed request line")
        method, target = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        for _ in range(self.MAX_HEADERS):
            try:
                raw = await reader.readline()
            except ValueError:
                raise HTTPError(
                    400, "line_too_long", "header line exceeds the stream limit"
                )
            if raw == b"":
                # EOF before the blank line: the client died (or lied) mid
                # headers.  Treating this as end-of-headers would silently
                # accept a truncated request and then misread the body.
                raise HTTPError(
                    400, "truncated_request", "connection closed mid-headers"
                )
            if raw in (b"\r\n", b"\n"):
                break
            line = raw.decode("latin-1")
            name, sep, value = line.partition(":")
            name = name.strip().lower()
            if not sep or not name:
                # A colon-less line would otherwise become a header *name*
                # with an empty value — free smuggling surface for a parser
                # mismatch with any front proxy.
                raise HTTPError(
                    400, "bad_header", f"malformed header line {line.strip()!r}"
                )
            if name == "content-length" and name in headers:
                # Duplicate Content-Length is the classic request-smuggling
                # vector: two framings, pick-your-own parser.  Refuse.
                raise HTTPError(
                    400, "bad_header", "duplicate Content-Length header"
                )
            headers[name] = value.strip()
        else:
            raise HTTPError(
                400,
                "too_many_headers",
                f"more than {self.MAX_HEADERS} header lines",
            )
        try:
            length = int(headers.get("content-length", "0") or "0")
        except ValueError:
            raise HTTPError(
                400, "bad_header", "Content-Length must be an integer"
            )
        if length < 0:
            raise HTTPError(
                400, "bad_header", "Content-Length must be non-negative"
            )
        if length > self.max_body:
            raise HTTPError(
                413,
                "payload_too_large",
                f"body of {length} bytes exceeds the {self.max_body}-byte limit",
            )
        body = await reader.readexactly(length) if length else b""
        return method, target, headers, body

    def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        body: bytes,
        keep: bool,
        *,
        content_type: str = "application/json",
        trace_id: Optional[str] = None,
    ) -> None:
        trace_header = f"X-Trace-Id: {trace_id}\r\n" if trace_id else ""
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep else 'close'}\r\n"
            f"{trace_header}"
            "\r\n"
        )
        writer.write(head.encode("latin-1") + body)

    # ------------------------------------------------------------ routing

    @staticmethod
    def _endpoint_of(target: str) -> Tuple[str, str]:
        """(endpoint, dataset) metric labels for a request target.

        ``/debug/*`` routes collapse to two-segment labels
        (``debug/traces``, ``debug/vars``) so per-trace ids never become
        metric label values.
        """
        segments = [s for s in urlsplit(target).path.split("/") if s]
        if segments and segments[0] == "debug":
            return "/".join(segments[:2]), ""
        endpoint = segments[-1] if segments else "index"
        dataset = segments[0] if len(segments) == 2 else ""
        return endpoint, dataset

    def _metrics_format(self, headers: Dict[str, str], target: str) -> str:
        """Content negotiation for ``/metrics``: query param or Accept.

        Returns ``"json"`` (the legacy payload), ``"prometheus"`` (text
        exposition) or ``"openmetrics"`` (exposition + exemplars + EOF).
        """
        params = parse_qs(urlsplit(target).query)
        fmt = params.get("format", [""])[-1].lower()
        if fmt:
            return fmt if fmt in ("prometheus", "openmetrics") else "json"
        accept = headers.get("accept", "")
        if "application/openmetrics-text" in accept:
            return "openmetrics"
        if "text/plain" in accept and "application/json" not in accept:
            return "prometheus"
        return "json"

    async def _serve_one(
        self, method: str, target: str, headers: Dict[str, str], body: bytes
    ) -> Tuple[int, bytes, str, str]:
        """Route one request → (status, body bytes, content type, trace id)."""
        self._requests_total += 1
        self._active += 1
        endpoint, dataset = self._endpoint_of(target)
        raw_tid = headers.get("x-trace-id", "")
        trace_id = (
            raw_tid if _TRACE_ID_RE.fullmatch(raw_tid) else obs_trace.new_trace_id()
        )
        token = obs_trace.set_trace_id(trace_id)
        # Self-inspection traffic (scrapes, /debug/*) is never traced, so
        # the recorder and trace store only ever hold real query traffic.
        traced = endpoint != "metrics" and not endpoint.startswith("debug/")
        root_ctx = root_span = None
        if traced:
            root_ctx = obs_spans.trace_span(
                f"{method} {urlsplit(target).path}",
                endpoint=endpoint,
                dataset=dataset,
                method=method,
            )
            entered = root_ctx.__enter__()
            if isinstance(entered, obs_spans.Span):
                root_span = entered
        start = time.perf_counter()
        status = 200
        ctype = "application/json"
        try:
            fmt = (
                self._metrics_format(headers, target)
                if endpoint == "metrics"
                else "json"
            )
            if fmt != "json":
                self._require(method, "GET", "/metrics")
                self._by_endpoint["metrics"] = (
                    self._by_endpoint.get("metrics", 0) + 1
                )
                openmetrics = fmt == "openmetrics"
                payload = self.metrics_prometheus(
                    openmetrics=openmetrics
                ).encode("utf-8")
                ctype = (
                    OPENMETRICS_CONTENT_TYPE
                    if openmetrics
                    else PROMETHEUS_CONTENT_TYPE
                )
            else:
                payload = await self._route(method, target, body)
            return status, payload, ctype, trace_id
        except HTTPError as exc:
            self._errors_total += 1
            status = exc.status
            return status, _dumps(exc.payload()), "application/json", trace_id
        except UnknownDatasetError as exc:
            self._errors_total += 1
            err = HTTPError(
                404,
                "unknown_dataset",
                f"no dataset {exc.args[0]!r}; hosted: {self.registry.names()}",
            )
            status = 404
            return status, _dumps(err.payload()), "application/json", trace_id
        except StaleArtifactError as exc:
            self._errors_total += 1
            err = HTTPError(503, "stale_artifact", str(exc))
            status = 503
            return status, _dumps(err.payload()), "application/json", trace_id
        except Exception as exc:  # noqa: BLE001 - last-resort 500
            self._errors_total += 1
            _LOG.exception("unhandled error serving %s %s", method, target)
            err = HTTPError(500, "internal", f"{type(exc).__name__}: {exc}")
            status = 500
            return status, _dumps(err.payload()), "application/json", trace_id
        finally:
            self._active -= 1
            if root_ctx is not None:
                if root_span is not None:
                    root_span.attrs["status"] = status
                root_ctx.__exit__(None, None, None)
                retained = self._recorder.finish_trace(trace_id)
                if retained:
                    self.trace_store.add(retained)
            self._record_request(
                endpoint, dataset, time.perf_counter() - start, status
            )
            obs_trace.reset_trace_id(token)

    def _record_request(
        self, endpoint: str, dataset: str, elapsed: float, status: int
    ) -> None:
        """Account one finished request in the HTTP series registry.

        Scrapes of ``/metrics`` and hits on ``/debug/*`` are counted as
        requests but excluded from the latency histogram and the
        slow-query log, so self-inspection can never perturb the latency
        signal it reports.
        """
        self._m_requests.inc(labels=(endpoint, dataset))
        if status >= 400:
            self._m_errors.inc(labels=(endpoint,))
        if endpoint == "metrics" or endpoint.startswith("debug/"):
            return
        trace_id = obs_trace.current_trace_id()
        self._m_latency.observe(
            elapsed,
            labels=(endpoint,),
            exemplar={"trace_id": trace_id} if trace_id else None,
        )
        if self.slow_query_s is not None and elapsed >= self.slow_query_s:
            obs_log.log_slow_query(
                endpoint=endpoint,
                dataset=dataset,
                seconds=elapsed,
                threshold=self.slow_query_s,
                status=status,
                trace_id=obs_trace.current_trace_id(),
            )

    async def _route(self, method: str, target: str, body: bytes) -> bytes:
        split = urlsplit(target)
        params = {
            key: values[-1] for key, values in parse_qs(split.query).items()
        }
        segments = [s for s in split.path.split("/") if s]
        # Bounded-cardinality endpoint label (never a raw trace id).
        label, _ = self._endpoint_of(target)
        self._by_endpoint[label] = self._by_endpoint.get(label, 0) + 1

        if segments and segments[0] == "debug":
            return self._route_debug(method, segments, params)
        if not segments:
            self._require(method, "GET", "/")
            return _dumps(self._index_payload())
        if segments == ["healthz"]:
            self._require(method, "GET", "/healthz")
            return _dumps({"status": "ok", "datasets": len(self.registry)})
        if segments == ["metrics"]:
            self._require(method, "GET", "/metrics")
            return _dumps(jsonify(self.metrics()))
        if segments == ["datasets"]:
            self._require(method, "GET", "/datasets")
            return _dumps(jsonify(self._datasets_payload()))
        if len(segments) != 2:
            raise HTTPError(404, "unknown_route", f"no route {split.path!r}")

        name, op = segments
        if op in ("stats", "histogram", "community", "max_k", "hierarchy_path"):
            self._require(method, "GET", f"/{{ds}}/{op}")
            query = self._query_from_params(name, op, params)
            return await self._answer_single(name, query)
        if op == "batch":
            self._require(method, "POST", "/{ds}/batch")
            return await self._answer_batch(name, self._parse_json(body))
        if op == "edges":
            self._require(method, "POST", "/{ds}/edges")
            return self._apply_edges(name, self._parse_json(body))
        raise HTTPError(
            404,
            "unknown_route",
            f"no route /{{ds}}/{op}; choose from stats, histogram, "
            "community, max_k, hierarchy_path, batch, edges",
        )

    def _route_debug(
        self, method: str, segments: List[str], params: Dict[str, str]
    ) -> bytes:
        """The ``/debug/*`` plane: live traces and a statusz snapshot."""
        if segments == ["debug", "vars"]:
            self._require(method, "GET", "/debug/vars")
            return _dumps(jsonify(self.debug_vars()))
        if len(segments) >= 2 and segments[1] == "traces":
            if len(segments) == 2:
                self._require(method, "GET", "/debug/traces")
                endpoint = params.get("endpoint")
                dataset = params.get("dataset")
                limit = self._int_param(params, "limit") or 20
                payload = {
                    "recent": [
                        r.summary()
                        for r in self.trace_store.recent_traces(
                            endpoint=endpoint, dataset=dataset, limit=limit
                        )
                    ],
                    "slowest": [
                        r.summary()
                        for r in self.trace_store.slowest_traces(
                            endpoint=endpoint, dataset=dataset, limit=limit
                        )
                    ],
                    "rollups": self.trace_store.rollups(),
                    "recorder": self._recorder.stats(),
                    "store": self.trace_store.stats(),
                }
                return _dumps(jsonify(payload))
            if len(segments) == 3:
                self._require(method, "GET", "/debug/traces/{id}")
                record = self.trace_store.get(segments[2])
                if record is None:
                    raise HTTPError(
                        404,
                        "unknown_trace",
                        f"no retained trace {segments[2]!r}; the store keeps "
                        f"the last {self.trace_store.recent_capacity} traces "
                        f"plus the {self.trace_store.slowest_capacity} slowest",
                    )
                if params.get("format", "").lower() == "chrome":
                    return _dumps(record.chrome())
                return _dumps(jsonify(record.waterfall()))
        raise HTTPError(
            404,
            "unknown_route",
            "no such debug route; choose from /debug/traces, "
            "/debug/traces/{id}, /debug/vars",
        )

    def debug_vars(self) -> Dict[str, object]:
        """The ``/debug/vars`` statusz snapshot (also handy in-process)."""
        from repro.obs.bench import get_fingerprint

        data = self.metrics()
        return {
            **data,
            "registry_versions": {
                entry.name: entry.version for entry in self.registry
            },
            "process": {
                "pid": os.getpid(),
                "python": sys.version.split()[0],
                "rss_bytes": _rss_bytes(),
                "max_rss_bytes": _max_rss_bytes(),
            },
            # The same EnvFingerprint the bench trajectory records, so a
            # scrape is attributable to an exact build + machine + knobs.
            "build": get_fingerprint().to_dict(),
            "tracing": {
                "recorder": self._recorder.stats(),
                "store": self.trace_store.stats(),
            },
        }

    def _require(self, method: str, expected: str, route: str) -> None:
        if method != expected:
            raise HTTPError(
                405, "method_not_allowed", f"{route} only accepts {expected}"
            )

    def _parse_json(self, body: bytes) -> object:
        if not body:
            raise HTTPError(400, "bad_json", "request body must be JSON")
        try:
            return json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HTTPError(400, "bad_json", f"invalid JSON body: {exc}")

    # ----------------------------------------------------- param handling

    def _int_param(self, params: Dict[str, str], key: str) -> Optional[int]:
        if key not in params:
            return None
        try:
            return int(params[key])
        except ValueError:
            raise HTTPError(
                400, "bad_parameter", f"parameter {key!r} must be an integer"
            )

    def _query_from_params(
        self, name: str, op: str, params: Dict[str, str]
    ) -> Dict[str, object]:
        """URL params → one engine-batch query dict (validated later)."""
        if op == "stats":
            return {"op": "stats"}
        if op == "histogram":
            return {"op": "phi_histogram"}
        query: Dict[str, object] = {}
        if op in ("community",):
            k = self._int_param(params, "k")
            if k is None:
                raise HTTPError(400, "bad_parameter", "parameter 'k' is required")
            query["k"] = k
        for key in ("upper", "lower"):
            value = self._int_param(params, key)
            if value is not None:
                query[key] = value
        if op == "hierarchy_path":
            eid = self._int_param(params, "eid")
            u, v = self._int_param(params, "u"), self._int_param(params, "v")
            if eid is not None:
                query["eid"] = eid
            if u is not None or v is not None:
                if u is None or v is None:
                    raise HTTPError(
                        400, "bad_parameter", "give both 'u' and 'v' (or 'eid')"
                    )
                query["edge"] = [u, v]
        query["op"] = op
        return query

    def _validate_queries(self, engine, queries: List[Dict[str, object]]) -> None:
        """Reject malformed queries before they can enter a shared batch.

        ``engine`` must be the same object the query will later execute
        on (the caller pins it first), so a hot-swap between validation
        and execution can never remap a resolved edge id or turn a range
        check stale.
        """
        graph = engine.graph
        for i, query in enumerate(queries):
            if not isinstance(query, dict):
                raise HTTPError(
                    400, "bad_query", f"query #{i} must be a JSON object"
                )
            op = query.get("op")
            allowed = _QUERY_OPS.get(op)  # type: ignore[arg-type]
            if allowed is None:
                raise HTTPError(
                    400,
                    "unknown_op",
                    f"query #{i}: unknown op {op!r}; "
                    f"choose from {sorted(_QUERY_OPS)}",
                )
            unexpected = set(query) - allowed
            if unexpected:
                raise HTTPError(
                    400,
                    "bad_query",
                    f"query #{i} ({op}): unexpected keys {sorted(unexpected)}",
                )
            if op in ("k_bitruss", "community"):
                k = query.get("k")
                if not isinstance(k, int) or isinstance(k, bool) or k < 0:
                    raise HTTPError(
                        400,
                        "bad_parameter",
                        f"query #{i} ({op}): 'k' must be a non-negative integer",
                    )
            if op in ("community", "max_k"):
                upper, lower = query.get("upper"), query.get("lower")
                if (upper is None) == (lower is None):
                    raise HTTPError(
                        400,
                        "bad_parameter",
                        f"query #{i} ({op}): give exactly one of 'upper'/'lower'",
                    )
                if upper is not None and not (
                    isinstance(upper, int) and 0 <= upper < graph.num_upper
                ):
                    raise HTTPError(
                        400,
                        "bad_parameter",
                        f"query #{i} ({op}): upper vertex {upper!r} out of "
                        f"range [0, {graph.num_upper})",
                    )
                if lower is not None and not (
                    isinstance(lower, int) and 0 <= lower < graph.num_lower
                ):
                    raise HTTPError(
                        400,
                        "bad_parameter",
                        f"query #{i} ({op}): lower vertex {lower!r} out of "
                        f"range [0, {graph.num_lower})",
                    )
            if op == "hierarchy_path":
                eid, edge = query.get("eid"), query.get("edge")
                if (eid is None) == (edge is None):
                    raise HTTPError(
                        400,
                        "bad_parameter",
                        f"query #{i}: give exactly one of 'eid'/'edge'",
                    )
                if edge is not None:
                    query["eid"] = self._resolve_edge(graph, edge, i)
                    del query["edge"]
                    eid = query["eid"]
                if not (isinstance(eid, int) and 0 <= eid < graph.num_edges):
                    raise HTTPError(
                        400,
                        "bad_parameter",
                        f"query #{i}: edge id {eid!r} out of range "
                        f"[0, {graph.num_edges})",
                    )
            if op == "phi_of":
                self._resolve_edge(graph, [query.get("u"), query.get("v")], i)

    def _resolve_edge(self, graph, edge: object, i: int) -> int:
        if (
            not isinstance(edge, (list, tuple))
            or len(edge) != 2
            or not all(isinstance(x, int) and not isinstance(x, bool) for x in edge)
        ):
            raise HTTPError(
                400,
                "bad_parameter",
                f"query #{i}: 'edge' must be an [upper, lower] integer pair",
            )
        try:
            return int(graph.edge_id(edge[0], edge[1]))
        except KeyError:
            raise HTTPError(
                404,
                "unknown_edge",
                f"query #{i}: edge ({edge[0]}, {edge[1]}) is not in the graph",
            )

    # ---------------------------------------------------------- answering

    async def _run_batch(
        self,
        name: str,
        queries: List[Dict[str, object]],
        *,
        engine=None,
        version: Optional[int] = None,
    ) -> Tuple[List[object], int]:
        """One engine call on the thread pool, under a version lease."""
        loop = asyncio.get_running_loop()
        with self.registry.acquire(name, engine=engine, version=version) as lease:
            engine, entry = lease.engine, lease.entry

            def _call() -> List[object]:
                # The engine's LRU is a plain OrderedDict; the entry lock
                # serializes engine calls across pool threads.
                with entry.lock:
                    return engine.batch(queries)

            # run_in_executor does not carry contextvars across the thread
            # hop; copy the context so the engine's spans keep their trace
            # id and parent under the request (or flush) span.
            ctx = contextvars.copy_context()
            results = await loop.run_in_executor(
                self._executor, lambda: ctx.run(_call)
            )
            return results, lease.version

    async def _answer_single(
        self, name: str, query: Dict[str, object]
    ) -> bytes:
        # Pin the (engine, version) pair once: validation, edge-id
        # resolution and execution all see the same graph even if a
        # hot-swap lands mid-request.  The coalescer namespace carries the
        # version, so requests pinned to different engines can never fold
        # into (or merge onto) each other's windows — the flush always
        # runs on the engine every member was validated against.
        entry = self.registry.get(name)
        engine, version = entry.engine, entry.version
        self._validate_queries(engine, [query])
        if self.coalescer is not None:
            shared = await self.coalescer.submit(
                f"{name}@v{version}",
                [query],
                lambda qs: self._run_batch(name, qs, engine=engine, version=version),
            )
            return shared.encoded(
                lambda s: _dumps(
                    {
                        "dataset": name,
                        "version": s.version,
                        "result": jsonify(s.values[0]),
                    }
                )
            )
        results, version = await self._run_batch(
            name, [query], engine=engine, version=version
        )
        return _dumps(
            {"dataset": name, "version": version, "result": jsonify(results[0])}
        )

    async def _answer_batch(self, name: str, payload: object) -> bytes:
        if isinstance(payload, dict):
            payload = payload.get("queries")
        if not isinstance(payload, list) or not payload:
            raise HTTPError(
                400,
                "bad_query",
                "batch body must be a non-empty JSON list of query objects "
                '(or {"queries": [...]})',
            )
        queries: List[Dict[str, object]] = [
            dict(q) if isinstance(q, dict) else q for q in payload
        ]
        entry = self.registry.get(name)
        engine, version = entry.engine, entry.version
        self._validate_queries(engine, queries)
        if self.coalescer is not None:
            shared = await self.coalescer.submit(
                f"{name}@v{version}",
                queries,
                lambda qs: self._run_batch(name, qs, engine=engine, version=version),
            )
            values, version = shared.values, shared.version
        else:
            values, version = await self._run_batch(
                name, queries, engine=engine, version=version
            )
        return _dumps(
            {
                "dataset": name,
                "version": version,
                "results": [jsonify(v) for v in values],
            }
        )

    def _apply_edges(self, name: str, payload: object) -> bytes:
        entry = self.registry.get(name)
        if self.updates is None or not self.updates.is_mutable(name):
            raise HTTPError(
                409,
                "immutable_dataset",
                f"dataset {name!r} was not started with mutations enabled",
            )
        ops = payload.get("ops") if isinstance(payload, dict) else payload
        try:
            # Deliberately synchronous on the loop thread: apply() must be
            # serialized with the rebuild loop's snapshot() (both touch the
            # dynamic mirror), and per-op incremental support maintenance
            # is local work — only the rebuild is heavy, and that runs in
            # the executor.
            outcome = self.updates.apply(name, ops)  # type: ignore[arg-type]
        except MutationError as exc:
            raise HTTPError(
                400,
                "bad_mutation",
                str(exc),
                applied=getattr(exc, "applied", 0),
            )
        return _dumps(
            {"dataset": name, "version": entry.version, **jsonify(outcome)}
        )

    # ------------------------------------------------------ observability

    def _index_payload(self) -> Dict[str, object]:
        return {
            "service": "repro-bitruss",
            "datasets": self.registry.names(),
            "endpoints": [
                "/healthz",
                "/metrics",
                "/datasets",
                "/debug/vars",
                "/debug/traces",
                "/debug/traces/{id}",
                "/{ds}/stats",
                "/{ds}/histogram",
                "/{ds}/community?k=&upper=|lower=",
                "/{ds}/max_k?upper=|lower=",
                "/{ds}/hierarchy_path?u=&v=|eid=",
                "POST /{ds}/batch",
                "POST /{ds}/edges",
            ],
        }

    def _datasets_payload(self) -> List[Dict[str, object]]:
        return [
            {
                "name": entry.name,
                "version": entry.version,
                "num_edges": entry.engine.graph.num_edges,
                "max_k": entry.artifact.max_k,
                "algorithm": entry.artifact.algorithm,
                "mutable": bool(
                    self.updates is not None
                    and self.updates.is_mutable(entry.name)
                ),
                "stale": entry.engine.stale,
            }
            for entry in self.registry
        ]

    def metrics(self) -> Dict[str, object]:
        """The ``/metrics`` payload (also handy in-process, e.g. benches)."""
        payload: Dict[str, object] = {
            "server": {
                "requests_total": self._requests_total,
                "errors_total": self._errors_total,
                "active_requests": self._active,
                "by_endpoint": dict(self._by_endpoint),
                "process_start_time": self._started_at,
                "uptime_seconds": time.time() - self._started_at,
            },
            "datasets": self.registry.metrics(),
        }
        if self.coalescer is not None:
            payload["coalescer"] = self.coalescer.stats()
        if self.updates is not None:
            payload["updates"] = self.updates.stats()
        if obs_phases.enabled():
            payload["profile"] = obs_phases.tree()
        return payload

    def metrics_prometheus(self, *, openmetrics: bool = False) -> str:
        """The Prometheus text exposition of everything ``metrics()`` knows.

        Built fresh per scrape: the server's live HTTP series and the
        process-global library registry are merged into a scratch
        registry, then the legacy JSON payload's derived signals
        (versions, cache hit rates, coalescer fold ratio, update
        counters) are synthesized on top as gauges/counters.  With
        ``openmetrics=True`` histogram buckets carry trace-id exemplars
        and the output ends with the ``# EOF`` terminator.
        """
        reg = obs_metrics.MetricsRegistry()
        reg.merge_snapshot(obs_metrics.get_registry().snapshot())
        reg.merge_snapshot(self._metrics.snapshot())
        data = self.metrics()
        server = data["server"]
        reg.counter(
            "repro_server_requests_total", "All HTTP requests since start."
        ).set_to(server["requests_total"])
        reg.counter(
            "repro_server_errors_total", "All error responses since start."
        ).set_to(server["errors_total"])
        reg.gauge(
            "repro_server_active_requests", "Requests currently in flight."
        ).set(server["active_requests"])
        reg.gauge(
            "repro_process_start_time_seconds",
            "Unix time the server object was created.",
        ).set(server["process_start_time"])
        reg.gauge(
            "repro_process_uptime_seconds", "Seconds since server start."
        ).set(server["uptime_seconds"])
        version_g = reg.gauge(
            "repro_dataset_artifact_version",
            "Live artifact version per hosted dataset.",
            ("dataset",),
        )
        edges_g = reg.gauge(
            "repro_dataset_edges",
            "Edges in the served graph per dataset.",
            ("dataset",),
        )
        hits_c = reg.counter(
            "repro_dataset_cache_hits_total",
            "Query-cache hits per dataset.",
            ("dataset",),
        )
        misses_c = reg.counter(
            "repro_dataset_cache_misses_total",
            "Query-cache misses per dataset.",
            ("dataset",),
        )
        hit_rate_g = reg.gauge(
            "repro_dataset_cache_hit_rate",
            "hits / (hits + misses) per dataset (0 when unqueried).",
            ("dataset",),
        )
        for name, entry in data["datasets"].items():
            labels = (name,)
            version_g.set(entry["version"], labels)
            edges_g.set(entry["num_edges"], labels)
            cache = entry["cache"]
            hits, misses = cache["hits"], cache["misses"]
            hits_c.set_to(hits, labels)
            misses_c.set_to(misses, labels)
            hit_rate_g.set(hits / (hits + misses) if hits + misses else 0.0, labels)
        coal = data.get("coalescer")
        if coal is not None:
            reg.counter(
                "repro_coalescer_submitted_total", "Query-list submissions."
            ).set_to(coal["submitted"])
            reg.counter(
                "repro_coalescer_merged_total",
                "Submissions merged onto an identical in-flight request.",
            ).set_to(coal["merged"])
            reg.counter(
                "repro_coalescer_flushes_total", "Engine batches flushed."
            ).set_to(coal["flushes"])
            reg.counter(
                "repro_coalescer_queries_flushed_total",
                "Individual queries carried by flushed batches.",
            ).set_to(coal["queries_flushed"])
            reg.gauge(
                "repro_coalescer_fold_ratio",
                "Submissions per engine batch (submitted / flushes).",
            ).set(coal["submitted"] / coal["flushes"] if coal["flushes"] else 0.0)
        upd = data.get("updates")
        if upd is not None:
            fams = {
                "mutations": reg.counter(
                    "repro_updates_mutations_total",
                    "Edge mutations accepted per dataset.",
                    ("dataset",),
                ),
                "rebuilds": reg.counter(
                    "repro_updates_rebuilds_total",
                    "Full artifact rebuilds per dataset.",
                    ("dataset",),
                ),
                "incremental_patches": reg.counter(
                    "repro_updates_incremental_patches_total",
                    "Localized incremental phi patches per dataset.",
                    ("dataset",),
                ),
                "incremental_fallbacks": reg.counter(
                    "repro_updates_incremental_fallbacks_total",
                    "Incremental repairs that fell back to a rebuild.",
                    ("dataset",),
                ),
                "predicted_fallbacks": reg.counter(
                    "repro_updates_predicted_fallbacks_total",
                    "Ops the fallback predictor routed past the region "
                    "search (no abort cost paid).",
                    ("dataset",),
                ),
            }
            dirty_g = reg.gauge(
                "repro_incremental_tracker_dirty",
                "1 while a dataset's phi tracker has lost sync and is "
                "waiting on the scheduled rebuild to reseed it.",
                ("dataset",),
            )
            for name, entry in upd.items():
                for key, fam in fams.items():
                    fam.set_to(entry.get(key, 0) or 0, (name,))
                dirty_g.set(1.0 if entry.get("tracker_dirty") else 0.0, (name,))
        return reg.to_prometheus(openmetrics=openmetrics)

    def __repr__(self) -> str:
        return (
            f"BitrussServer({self.registry.names()!r}, "
            f"http://{self.host}:{self.port}, "
            f"coalesce={self.coalescer is not None})"
        )

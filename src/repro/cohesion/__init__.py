"""Companion cohesive-subgraph models from the paper's related work.

The paper positions bitruss against core-like models ((α,β)-core, [20]) and
clique-like models; this subpackage provides the core-like neighbours both
for comparison and as cheap pre-filters for bitruss computations (every
k-bitruss lives inside suitable degree-based cores).
"""

from repro.cohesion.ab_core import (
    ab_core_decomposition_for_alpha,
    alpha_beta_core,
    degree_prefilter_for_bitruss,
)

__all__ = [
    "ab_core_decomposition_for_alpha",
    "alpha_beta_core",
    "degree_prefilter_for_bitruss",
]

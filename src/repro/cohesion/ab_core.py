"""(α, β)-core computation on bipartite graphs.

The (α, β)-core ([20] in the paper, Liu et al. WWW 2019) is the maximal
subgraph in which every upper-layer vertex has degree ≥ α and every
lower-layer vertex has degree ≥ β.  It is the bipartite analogue of the
k-core and the natural *core-like* companion of the bitruss:

* it is much cheaper to compute (linear-time peeling, no butterflies), and
* it contains the corresponding bitruss — an edge in k butterflies needs
  ``(d(u) − 1)(d(v) − 1) ≥ k`` (Lemma 8's per-edge bound), so degree-based
  peeling can shrink a graph before the butterfly machinery runs.

:func:`degree_prefilter_for_bitruss` packages that containment as a
pre-filter usable in front of any decomposition algorithm.
"""

from __future__ import annotations

from collections import deque
from typing import List, Set, Tuple

import numpy as np

from repro.graph.bipartite import BipartiteGraph


def alpha_beta_core(
    graph: BipartiteGraph, alpha: int, beta: int
) -> Tuple[Set[int], Set[int]]:
    """Vertices of the (α, β)-core of ``graph``.

    Returns ``(upper_vertices, lower_vertices)``; both empty when the core
    does not exist.  Standard iterated peeling: repeatedly delete upper
    vertices with degree < α and lower vertices with degree < β.
    """
    if alpha < 0 or beta < 0:
        raise ValueError("alpha and beta must be non-negative")
    deg_u = np.array([graph.degree_upper(u) for u in range(graph.num_upper)])
    deg_l = np.array([graph.degree_lower(v) for v in range(graph.num_lower)])
    alive_u = np.ones(graph.num_upper, dtype=bool)
    alive_l = np.ones(graph.num_lower, dtype=bool)

    queue: deque = deque()
    for u in range(graph.num_upper):
        if deg_u[u] < alpha:
            queue.append(("u", u))
            alive_u[u] = False
    for v in range(graph.num_lower):
        if deg_l[v] < beta:
            queue.append(("l", v))
            alive_l[v] = False

    while queue:
        layer, vertex = queue.popleft()
        if layer == "u":
            for v in graph.neighbors_of_upper(vertex):
                if alive_l[v]:
                    deg_l[v] -= 1
                    if deg_l[v] < beta:
                        alive_l[v] = False
                        queue.append(("l", v))
        else:
            for u in graph.neighbors_of_lower(vertex):
                if alive_u[u]:
                    deg_u[u] -= 1
                    if deg_u[u] < alpha:
                        alive_u[u] = False
                        queue.append(("u", u))

    uppers = {int(u) for u in np.nonzero(alive_u)[0]}
    lowers = {int(v) for v in np.nonzero(alive_l)[0]}
    if not uppers or not lowers:
        return set(), set()
    return uppers, lowers


def ab_core_decomposition_for_alpha(
    graph: BipartiteGraph, alpha: int
) -> np.ndarray:
    """For fixed α, the maximal β of every lower vertex.

    ``result[v]`` is the largest β such that ``v`` belongs to the
    (α, β)-core, or 0 if ``v`` is not even in the (α, 1)-core.  Computed by
    one sweep of increasing β (each sweep is a peeling restricted to the
    survivors of the previous level), total O(Σ degrees · β_max) worst case
    — adequate for the analysis/application layers this library targets.
    """
    if alpha < 0:
        raise ValueError("alpha must be non-negative")
    result = np.zeros(graph.num_lower, dtype=np.int64)
    beta = 1
    while True:
        uppers, lowers = alpha_beta_core(graph, alpha, beta)
        if not lowers:
            break
        for v in lowers:
            result[v] = beta
        beta += 1
    return result


def degree_prefilter_for_bitruss(
    graph: BipartiteGraph, k: int
) -> Tuple[BipartiteGraph, np.ndarray]:
    """Shrink ``graph`` to a subgraph guaranteed to contain the k-bitruss.

    Iteratively removes edges with ``(d(u) − 1)(d(v) − 1) < k`` — such an
    edge cannot lie in k butterflies (Lemma 8's per-edge bound), hence
    cannot be in the k-bitruss; removals cascade through the degrees.

    Returns ``(subgraph, original_edge_ids)``.  Purely degree-based, so it
    runs without any butterfly counting and can front-load
    :func:`repro.core.bitruss.k_bitruss_direct` or a decomposition when only
    deep levels are of interest.
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    eids = np.arange(graph.num_edges, dtype=np.int64)
    current = graph
    if k == 0:
        return current, eids
    while current.num_edges:
        deg_u = [current.degree_upper(u) for u in range(current.num_upper)]
        deg_l = [current.degree_lower(v) for v in range(current.num_lower)]
        keep: List[int] = [
            eid
            for eid, (u, v) in enumerate(current.edges())
            if (deg_u[u] - 1) * (deg_l[v] - 1) >= k
        ]
        if len(keep) == current.num_edges:
            break
        current, kept_local = current.subgraph_from_edge_ids(keep)
        eids = eids[kept_local]
    if not current.num_edges:
        return current, np.array([], dtype=np.int64)
    return current, eids

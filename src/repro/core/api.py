"""The public entry point: :func:`bitruss_decomposition`."""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.bit_bs import bit_bs
from repro.core.bit_bu import bit_bu
from repro.core.bit_bu_batch import bit_bu_csr, bit_bu_plus, bit_bu_plus_plus
from repro.core.bit_pc import bit_pc
from repro.core.result import BitrussDecomposition
from repro.graph.bipartite import BipartiteGraph
from repro.utils.stats import IndexSizeModel, PhaseTimer, UpdateCounter

#: Registry of algorithm names accepted by :func:`bitruss_decomposition`.
#: Aliases follow the paper's figures: BS, BU, BU+, BU++, PC — plus the
#: library's CSR batch-peeling engine (BU-CSR) and its shared-memory
#: parallel sibling (BU-PAR).
ALGORITHMS: Dict[str, str] = {
    "bit-bs": "bit-bs",
    "bs": "bit-bs",
    "bit-bu": "bit-bu",
    "bu": "bit-bu",
    "bit-bu+": "bit-bu+",
    "bu+": "bit-bu+",
    "bit-bu++": "bit-bu++",
    "bu++": "bit-bu++",
    "bit-bu-csr": "bit-bu-csr",
    "bu-csr": "bit-bu-csr",
    "csr": "bit-bu-csr",
    "bit-bu-par": "bit-bu-par",
    "bu-par": "bit-bu-par",
    "par": "bit-bu-par",
    "bit-pc": "bit-pc",
    "pc": "bit-pc",
}

#: Canonical names that honour ``workers > 1`` (the shared-memory runtime).
PARALLEL_ALGORITHMS = frozenset({"bit-bu-par"})


def bitruss_decomposition(
    graph: BipartiteGraph,
    algorithm: str = "bit-bu++",
    *,
    tau: float = 0.02,
    prefilter: str = "fixpoint",
    workers: int = 1,
    counter: Optional[UpdateCounter] = None,
    timer: Optional[PhaseTimer] = None,
    size_model: Optional[IndexSizeModel] = None,
) -> BitrussDecomposition:
    """Compute the bitruss number of every edge of ``graph``.

    Parameters
    ----------
    graph : BipartiteGraph
        The bipartite graph to decompose.
    algorithm : str, optional
        One of ``"bit-bs"``, ``"bit-bu"``, ``"bit-bu+"``, ``"bit-bu++"``
        (default; the paper's best bottom-up variant), ``"bit-bu-csr"``
        (the vectorized batch-peeling engine — fastest on dense graphs),
        ``"bit-bu-par"`` (the shared-memory parallel runtime; see
        ``workers``) or ``"bit-pc"`` (best on graphs with strong hub
        edges).  Short aliases ``bs``, ``bu``, ``bu+``, ``bu++``,
        ``bu-csr``, ``csr``, ``bu-par``, ``par``, ``pc`` are accepted.
        All algorithms produce identical bitruss numbers.
    tau : float, optional
        BiT-PC's threshold-decay parameter (ignored by other algorithms);
        the paper recommends 0.05–0.2 and defaults to 0.02.
    prefilter : str, optional
        BiT-PC's candidate-filter mode, ``"fixpoint"`` (default) or the
        paper-literal ``"single-pass"``; see :func:`repro.core.bit_pc.bit_pc`.
    workers : int, optional
        Worker-process count for parallel-capable algorithms (currently
        ``"bit-bu-par"``); the default 1 always takes the in-process
        scalar path.  Passing ``workers > 1`` with a serial algorithm
        raises :class:`ValueError` rather than silently ignoring the
        request.
    counter, timer, size_model : optional
        Optional instrumentation sinks (see :mod:`repro.utils.stats`);
        fresh ones are created when omitted and are always reachable via the
        returned ``result.stats``.

    Returns
    -------
    BitrussDecomposition
        Bitruss numbers plus run statistics.

    Raises
    ------
    ValueError
        If ``algorithm`` is not in :data:`ALGORITHMS`.

    Examples
    --------
    >>> from repro.graph.generators import paper_figure4_graph
    >>> result = bitruss_decomposition(paper_figure4_graph())
    >>> result.phi_of(0, 0)
    2
    """
    canonical = ALGORITHMS.get(algorithm.lower())
    if canonical is None:
        raise ValueError(
            f"unknown algorithm {algorithm!r}; choose one of "
            f"{sorted(set(ALGORITHMS.values()))}"
        )
    if workers < 1:
        raise ValueError("workers must be positive")
    if workers > 1 and canonical not in PARALLEL_ALGORITHMS:
        raise ValueError(
            f"algorithm {canonical!r} is single-process; use "
            f"workers=1 or one of {sorted(PARALLEL_ALGORITHMS)}"
        )
    if canonical == "bit-bu-par":
        from repro.runtime.parallel_peeling import bit_bu_par

        return bit_bu_par(
            graph,
            workers=workers,
            counter=counter,
            timer=timer,
            size_model=size_model,
        )
    if canonical == "bit-bs":
        return bit_bs(graph, counter=counter, timer=timer)
    if canonical == "bit-bu":
        return bit_bu(graph, counter=counter, timer=timer, size_model=size_model)
    if canonical == "bit-bu+":
        return bit_bu_plus(graph, counter=counter, timer=timer, size_model=size_model)
    if canonical == "bit-bu++":
        return bit_bu_plus_plus(
            graph, counter=counter, timer=timer, size_model=size_model
        )
    if canonical == "bit-bu-csr":
        return bit_bu_csr(
            graph, counter=counter, timer=timer, size_model=size_model
        )
    return bit_pc(
        graph,
        tau=tau,
        prefilter=prefilter,
        counter=counter,
        timer=timer,
        size_model=size_model,
    )

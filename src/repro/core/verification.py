"""Independent correctness checking of bitruss decompositions.

:func:`reference_decomposition` derives the bitruss numbers straight from
Definition 5 — for k = 1, 2, ... compute the k-bitruss by iterated support
filtering and record, per edge, the largest k whose bitruss contains it.  It
shares no peeling/guard logic with the fast algorithms, which is exactly what
makes it a trustworthy oracle (its counting primitive is itself validated
against naive enumeration in the tests).

:func:`verify_decomposition` checks a produced ``phi`` for the two defining
properties at every occurring level: each ``H_k`` slice supports all its
edges with ≥ k butterflies, and ``H_k`` is maximal.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.butterfly.counting import count_per_edge
from repro.core.bitruss import k_bitruss_direct, k_bitruss_edges
from repro.graph.bipartite import BipartiteGraph


def reference_decomposition(graph: BipartiteGraph) -> np.ndarray:
    """Bitruss numbers by definition (slow; for tests and small graphs)."""
    phi = np.zeros(graph.num_edges, dtype=np.int64)
    k = 1
    surviving = list(range(graph.num_edges))
    while surviving:
        surviving = k_bitruss_direct(graph, k)
        for eid in surviving:
            phi[eid] = k
        k += 1
    return phi


def verify_decomposition(
    graph: BipartiteGraph,
    phi: np.ndarray,
    *,
    levels: Optional[List[int]] = None,
) -> None:
    """Raise ``AssertionError`` unless ``phi`` is a correct decomposition.

    Parameters
    ----------
    graph, phi:
        The graph and the candidate bitruss numbers.
    levels:
        Levels to verify; defaults to every distinct value in ``phi`` (plus
        ``max + 1``, which must yield an empty bitruss).  Each level check
        costs a handful of full recounts, so restrict ``levels`` on larger
        graphs.
    """
    phi = np.asarray(phi)
    if len(phi) != graph.num_edges:
        raise AssertionError("phi length does not match the edge count")
    if len(phi) == 0:
        return
    if levels is None:
        levels = sorted(set(int(v) for v in np.unique(phi)))
        levels.append(int(phi.max()) + 1)

    for k in levels:
        expected = set(k_bitruss_direct(graph, k))
        produced = set(k_bitruss_edges(phi, k))
        if produced != expected:
            missing = sorted(expected - produced)[:5]
            extra = sorted(produced - expected)[:5]
            raise AssertionError(
                f"H_{k} mismatch: missing edge ids {missing}, extra {extra}"
            )
        # Support invariant inside the produced slice (redundant with the
        # equality above but gives a sharper failure message).
        if produced and k > 0:
            sub, orig = graph.subgraph_from_edge_ids(sorted(produced))
            support = count_per_edge(sub)
            low = np.nonzero(support < k)[0]
            if len(low):
                raise AssertionError(
                    f"H_{k} contains under-supported edges "
                    f"{[int(orig[i]) for i in low[:5]]}"
                )

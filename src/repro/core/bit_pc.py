"""BiT-PC — the progressive compression approach (Algorithm 7).

Hub edges have butterfly supports far above their bitruss numbers, and the
bottom-up algorithms keep updating them through the whole peeling.  BiT-PC
instead sweeps a support threshold ``ε`` downwards from ``k_max`` (the
largest possible bitruss number):

1. **Candidate extraction** — take every edge whose support *in the original
   graph* is at least ``ε`` (Lemma 10: the ε-bitruss lives inside this
   subgraph), recount supports within the candidate subgraph, and drop edges
   falling under ``ε``.
2. **Compressed index + peeling** — build the BE-Index of the candidate,
   *omitting already-assigned edges from L(I)* while preserving the blooms
   they support (Algorithm 6), then peel like BiT-BU++.  Batch minima below
   ``ε`` are peeled but left unassigned (they re-enter later iterations);
   batch minima at or above ``ε`` receive their bitruss numbers.
3. **Schedule** — ``ε`` decreases by ``α = ⌈k_max · τ⌉`` per iteration, so
   one iteration settles all levels in ``[ε, ε_prev)``; ``τ ∈ (0, 1]``
   trades iteration count against update savings (paper Fig. 14, default
   τ = 0.02).

Assigned edges are never support-updated again — that is where the >90%
update reduction of Figures 7 and 10 comes from.

Candidate extraction and recounting run on each (sub)graph's shared CSR
arrays: ``subgraph_from_edge_ids`` builds the candidate's CSR in one
vectorized pass and :func:`repro.butterfly.counting.count_per_edge` scans it
with priority-sorted prefix lookups.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

import numpy as np

from repro.butterfly.counting import count_per_edge
from repro.core.result import BitrussDecomposition
from repro.graph.bipartite import BipartiteGraph
from repro.index.be_index import BEIndex
from repro.utils.bucket_queue import BucketQueue
from repro.utils.stats import (
    DecompositionStats,
    IndexSizeModel,
    PhaseTimer,
    UpdateCounter,
)


def largest_possible_bitruss(support: np.ndarray) -> int:
    """``k_max``: the largest k with at least k edges of support ≥ k.

    This is the h-index of the support multiset, computable after one sort;
    it upper-bounds the maximum bitruss number (an edge of bitruss number k
    has support ≥ k, and its ≥ k butterflies involve ≥ k further edges that
    are also in the k-bitruss).
    """
    if len(support) == 0:
        return 0
    ordered = np.sort(np.asarray(support))[::-1]
    k_max = 0
    for i, value in enumerate(ordered):
        if value >= i + 1:
            k_max = i + 1
        else:
            break
    return k_max


class _MappedCounter:
    """Adapter translating subgraph edge ids to original ids for counting."""

    def __init__(self, counter: UpdateCounter, mapping: np.ndarray) -> None:
        self._counter = counter
        self._mapping = mapping

    def record(self, edge: int, count: int = 1) -> None:
        self._counter.record(int(self._mapping[edge]), count)


def bit_pc(
    graph: BipartiteGraph,
    *,
    tau: float = 0.02,
    prefilter: str = "fixpoint",
    counter: Optional[UpdateCounter] = None,
    timer: Optional[PhaseTimer] = None,
    size_model: Optional[IndexSizeModel] = None,
) -> BitrussDecomposition:
    """Run BiT-PC with threshold-decay parameter ``tau``.

    ``prefilter`` controls step 1's "remove e from G≥ε if sup(e) < ε":
    ``"fixpoint"`` (default) repeats recount-and-drop until every candidate
    edge supports ε, which minimizes wasted peel-without-assign updates;
    ``"single-pass"`` performs exactly one recount-and-drop round, the most
    literal reading of Algorithm 7 lines 5-6.  Both are correct — peeling
    settles whatever the filter leaves — and both preserve Fig. 14's
    update-vs-τ trend; fixpoint simply realizes more of the paper's hub-edge
    savings at our (much smaller) graph scales.
    """
    if not (0.0 < tau <= 1.0):
        raise ValueError("tau must lie in (0, 1]")
    if prefilter not in ("fixpoint", "single-pass"):
        raise ValueError("prefilter must be 'fixpoint' or 'single-pass'")
    timer = timer if timer is not None else PhaseTimer()
    size_model = size_model if size_model is not None else IndexSizeModel()

    with timer.time("counting"):
        original_support = count_per_edge(graph)

    k_max = largest_possible_bitruss(original_support)
    # alpha >= 1 keeps the schedule finite even on butterfly-free graphs.
    alpha = max(1, math.ceil(k_max * tau))

    m = graph.num_edges
    phi = np.zeros(m, dtype=np.int64)
    assigned = np.zeros(m, dtype=bool)
    epsilon = k_max
    iterations = 0

    while not assigned.all():
        iterations += 1

        with timer.time("candidate extraction"):
            candidate_eids = np.nonzero(original_support >= epsilon)[0]
            sub, orig_of_sub = graph.subgraph_from_edge_ids(candidate_eids)
            # Recount within the candidate and drop edges below the
            # threshold; recounting is plain counting and is never billed as
            # a support update.  Peeling settles whatever remains.
            while epsilon > 0 and sub.num_edges:
                sub_support = count_per_edge(sub)
                keep = np.nonzero(sub_support >= epsilon)[0]
                if len(keep) == sub.num_edges:
                    break
                sub, orig_of_keep = sub.subgraph_from_edge_ids(keep)
                orig_of_sub = orig_of_sub[orig_of_keep]
                if prefilter == "single-pass":
                    break

        with timer.time("index construction"):
            sub_assigned = assigned[orig_of_sub]
            index = BEIndex.build(sub, assigned=sub_assigned)
        size_model.observe(*index.size_components())

        sub_counter = (
            _MappedCounter(counter, orig_of_sub) if counter is not None else None
        )

        with timer.time("peeling"):
            queue = BucketQueue()
            for sub_eid in range(sub.num_edges):
                if not sub_assigned[sub_eid]:
                    queue.push(sub_eid, int(index.support[sub_eid]))

            def on_change(other: int, value: int) -> None:
                if other in queue:
                    queue.update(other, value)

            while not queue.is_empty():
                batch, mbs = queue.pop_min_batch()
                settle = mbs >= epsilon
                removal_counts: Dict[int, int] = {}
                for sub_eid in batch:
                    if settle:
                        orig = int(orig_of_sub[sub_eid])
                        phi[orig] = mbs
                        assigned[orig] = True
                    index.detach_edge(
                        sub_eid,
                        removal_counts,
                        floor=mbs,
                        counter=sub_counter,
                        on_change=on_change,
                    )
                index.apply_bloom_batch(
                    removal_counts,
                    floor=mbs,
                    counter=sub_counter,
                    on_change=on_change,
                )

        if epsilon == 0:
            break
        epsilon = max(epsilon - alpha, 0)

    stats = DecompositionStats(
        algorithm="BiT-PC",
        updates=counter.total if counter is not None else 0,
        update_buckets=(
            list(zip(counter.bucket_labels(), counter.bucket_totals()))
            if counter is not None
            else []
        ),
        timings=timer.as_dict(),
        index_peak_bytes=size_model.peak_bytes,
        iterations=iterations,
        parameters={
            "tau": tau,
            "k_max": k_max,
            "alpha": alpha,
            "prefilter": prefilter,
        },
    )
    return BitrussDecomposition(graph, phi, stats)

"""BiT-BS — the state-of-the-art baseline (Algorithm 1, from [5]).

Bottom-up peeling with *combination-based* butterfly enumeration: each time
the minimum-support edge ``(u, v)`` is removed, the algorithm walks
``w ∈ N(v)∖{u}`` and ``x ∈ N(w) ∩ N(u)∖{v}`` on the current graph, updating
the other three edges of every butterfly found.  The counting phase uses the
faster vertex-priority algorithm of [8], exactly as the paper's experimental
setup deploys the baseline.

The per-phase timer feeds Figure 5 (counting vs. peeling cost), and the
update counter feeds the comparison figures.
"""

from __future__ import annotations

from typing import Optional, Set

import numpy as np

from repro.butterfly.counting import count_per_edge
from repro.core.result import BitrussDecomposition
from repro.graph.bipartite import BipartiteGraph
from repro.utils.bucket_queue import BucketQueue
from repro.utils.stats import DecompositionStats, PhaseTimer, UpdateCounter


def bit_bs(
    graph: BipartiteGraph,
    *,
    counter: Optional[UpdateCounter] = None,
    timer: Optional[PhaseTimer] = None,
) -> BitrussDecomposition:
    """Run BiT-BS and return the full decomposition."""
    timer = timer if timer is not None else PhaseTimer()

    with timer.time("counting"):
        support = count_per_edge(graph).copy()

    phi = np.zeros(graph.num_edges, dtype=np.int64)

    with timer.time("peeling"):
        # Mutable adjacency (sets, seeded from the CSR slices) so edge
        # removals are O(1) and the butterfly enumeration below always sees
        # the current graph.
        adj_upper: list[Set[int]] = [
            set(graph.neighbors_of_upper(u).tolist())
            for u in range(graph.num_upper)
        ]
        adj_lower: list[Set[int]] = [
            set(graph.neighbors_of_lower(v).tolist())
            for v in range(graph.num_lower)
        ]
        queue = BucketQueue.from_keys(support)

        while not queue.is_empty():
            eid, sup_e = queue.pop_min()
            phi[eid] = sup_e
            u, v = graph.edge_endpoints(eid)
            # Enumerate the butterflies containing (u, v) by combinations:
            # w spans N(v), x spans N(w) checked against N(u).
            nu = adj_upper[u]
            for w in adj_lower[v]:
                if w == u:
                    continue
                for x in adj_upper[w]:
                    if x == v or x not in nu:
                        continue
                    # Butterfly [u, v, w, x]: update its three other edges.
                    for a, b in ((u, x), (w, v), (w, x)):
                        other = graph.edge_id(a, b)
                        if support[other] > sup_e:
                            support[other] -= 1
                            queue.update(other, int(support[other]))
                            if counter is not None:
                                counter.record(other)
            adj_upper[u].discard(v)
            adj_lower[v].discard(u)

    stats = DecompositionStats(
        algorithm="BiT-BS",
        updates=counter.total if counter is not None else 0,
        update_buckets=(
            list(zip(counter.bucket_labels(), counter.bucket_totals()))
            if counter is not None
            else []
        ),
        timings=timer.as_dict(),
    )
    return BitrussDecomposition(graph, phi, stats)

"""The result object returned by every decomposition algorithm."""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.graph.bipartite import BipartiteGraph
from repro.utils.stats import DecompositionStats


class BitrussDecomposition:
    """Bitruss numbers of a bipartite graph plus run statistics.

    Attributes
    ----------
    graph:
        The decomposed graph.
    phi:
        ``int64`` array with ``phi[eid]`` the bitruss number of edge ``eid``.
    stats:
        :class:`~repro.utils.stats.DecompositionStats` describing the run
        (algorithm name, timings, support-update counts, index size).
    """

    def __init__(
        self,
        graph: BipartiteGraph,
        phi: np.ndarray,
        stats: DecompositionStats,
    ) -> None:
        if len(phi) != graph.num_edges:
            raise ValueError("phi must have one entry per edge")
        self.graph = graph
        self.phi = np.asarray(phi, dtype=np.int64)
        self.stats = stats

    # -------------------------------------------------------------- queries

    @property
    def max_k(self) -> int:
        """The largest bitruss number of any edge (Table II's φ_max)."""
        return int(self.phi.max()) if len(self.phi) else 0

    def phi_of(self, u: int, v: int) -> int:
        """Bitruss number of edge ``(u, v)``."""
        return int(self.phi[self.graph.edge_id(u, v)])

    def edges_with_phi_at_least(self, k: int) -> List[int]:
        """Edge ids of the k-bitruss ``H_k``."""
        return [int(e) for e in np.nonzero(self.phi >= k)[0]]

    def k_bitruss(self, k: int) -> BipartiteGraph:
        """The k-bitruss as a subgraph (original vertex ids preserved)."""
        sub, _ = self.graph.subgraph_from_edge_ids(self.edges_with_phi_at_least(k))
        return sub

    def hierarchy(self) -> Dict[int, int]:
        """Map every level ``k`` to ``|E(H_k)|`` for k = 0..max_k.

        ``H_0 ⊇ H_1 ⊇ ... ⊇ H_max`` — the nested-community hierarchy the
        paper's applications exploit.
        """
        counts: Dict[int, int] = {}
        for k in range(self.max_k + 1):
            counts[k] = int(np.count_nonzero(self.phi >= k))
        return counts

    def level_sets(self) -> Dict[int, List[int]]:
        """Map each occurring bitruss number to the edge ids holding it."""
        levels: Dict[int, List[int]] = {}
        for eid, k in enumerate(self.phi):
            levels.setdefault(int(k), []).append(eid)
        return levels

    def as_dict(self) -> Dict[Tuple[int, int], int]:
        """``{(u, v): phi}`` mapping for user-facing consumption."""
        return {
            self.graph.edge_endpoints(eid): int(k)
            for eid, k in enumerate(self.phi)
        }

    def __repr__(self) -> str:
        return (
            f"BitrussDecomposition(m={self.graph.num_edges}, "
            f"max_k={self.max_k}, algorithm={self.stats.algorithm!r})"
        )


def save_decomposition(result: BitrussDecomposition, path) -> None:
    """Persist a decomposition (graph shape + phi) as JSON.

    Stores the layer sizes, the edge list and the per-edge bitruss numbers;
    run statistics are included read-only for provenance.
    """
    import json

    payload = {
        "format": "repro-bitruss-decomposition-v1",
        "num_upper": result.graph.num_upper,
        "num_lower": result.graph.num_lower,
        "edges": result.graph.to_edge_list(),
        "phi": [int(k) for k in result.phi],
        "stats": {
            "algorithm": result.stats.algorithm,
            "updates": result.stats.updates,
            "timings": result.stats.timings,
            "iterations": result.stats.iterations,
        },
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)


def load_decomposition(path) -> BitrussDecomposition:
    """Load a decomposition written by :func:`save_decomposition`."""
    import json

    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("format") != "repro-bitruss-decomposition-v1":
        raise ValueError(f"{path}: not a saved bitruss decomposition")
    graph = BipartiteGraph(
        payload["num_upper"],
        payload["num_lower"],
        [tuple(e) for e in payload["edges"]],
    )
    stats_data = payload.get("stats", {})
    stats = DecompositionStats(
        algorithm=stats_data.get("algorithm", ""),
        updates=stats_data.get("updates", 0),
        timings=stats_data.get("timings", {}),
        iterations=stats_data.get("iterations", 0),
    )
    return BitrussDecomposition(graph, np.asarray(payload["phi"]), stats)

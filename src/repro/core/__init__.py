"""Bitruss decomposition algorithms and the public API."""

from repro.core.api import ALGORITHMS, bitruss_decomposition
from repro.core.bit_bs import bit_bs
from repro.core.bit_bu import bit_bu
from repro.core.bit_bu_batch import bit_bu_csr, bit_bu_plus, bit_bu_plus_plus
from repro.core.peeling_engine import CSRPeelingEngine
from repro.core.bit_pc import bit_pc, largest_possible_bitruss
from repro.core.bitruss import k_bitruss_direct, k_bitruss_edges, k_bitruss_subgraph
from repro.core.result import BitrussDecomposition
from repro.core.verification import reference_decomposition, verify_decomposition

__all__ = [
    "ALGORITHMS",
    "BitrussDecomposition",
    "CSRPeelingEngine",
    "bit_bs",
    "bit_bu",
    "bit_bu_csr",
    "bit_bu_plus",
    "bit_bu_plus_plus",
    "bit_pc",
    "bitruss_decomposition",
    "k_bitruss_direct",
    "k_bitruss_edges",
    "k_bitruss_subgraph",
    "largest_possible_bitruss",
    "reference_decomposition",
    "verify_decomposition",
]

"""k-bitruss subgraph computation.

Two routes to the k-bitruss ``H_k``:

* from a finished decomposition — ``H_k`` is exactly the edges with
  ``φ ≥ k`` (:func:`k_bitruss_edges`), which is how applications slice the
  hierarchy at multiple granularities;
* directly, without a full decomposition — iterated support filtering
  (:func:`k_bitruss_direct`), which is also the independent reference the
  test suite checks decompositions against.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.butterfly.counting import count_per_edge
from repro.graph.bipartite import BipartiteGraph


def k_bitruss_edges(phi: np.ndarray, k: int) -> List[int]:
    """Edge ids of the k-bitruss, given all bitruss numbers."""
    return [int(e) for e in np.nonzero(np.asarray(phi) >= k)[0]]


def k_bitruss_subgraph(
    graph: BipartiteGraph, phi: np.ndarray, k: int
) -> BipartiteGraph:
    """The k-bitruss as a subgraph (vertex ids preserved)."""
    sub, _ = graph.subgraph_from_edge_ids(k_bitruss_edges(phi, k))
    return sub


def k_bitruss_direct(graph: BipartiteGraph, k: int) -> List[int]:
    """Edge ids of the k-bitruss by iterated filtering (no decomposition).

    Repeatedly recounts butterfly supports on the surviving subgraph and
    drops every edge below ``k`` until a fixpoint: what remains is the
    maximal subgraph in which every edge lies in ≥ k butterflies.  Exact but
    slow (a full recount per round) — intended for verification and small
    interactive queries.
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    current = graph
    eids = np.arange(graph.num_edges, dtype=np.int64)
    if k == 0:
        return [int(e) for e in eids]
    while current.num_edges:
        support = count_per_edge(current)
        keep = np.nonzero(support >= k)[0]
        if len(keep) == current.num_edges:
            break
        current, kept_local = current.subgraph_from_edge_ids(keep)
        eids = eids[kept_local]
    return [int(e) for e in eids] if current.num_edges else []

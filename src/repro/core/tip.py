"""Tip decomposition — the vertex-level sibling of the bitruss.

The paper's baseline reference [5] (Sarıyüce & Pinar, WSDM 2018) introduces
*two* butterfly-peeling hierarchies: the edge-level **wing** decomposition —
the bitruss this library centres on — and the vertex-level **tip**
decomposition.  The k-tip is the maximal subgraph in which every vertex of
one chosen layer participates in at least k butterflies; the tip number
θ(u) is the largest k whose k-tip contains u.

Tip decomposition completes the [5] substrate and gives applications a
cheaper, vertex-granularity alternative when edge-level resolution is not
needed (e.g. ranking whole user accounts rather than individual
interactions in the fraud scenario).

The peeling follows the same bottom-up pattern as BiT-BS: repeatedly remove
the chosen-layer vertex with the fewest butterflies, charging each same-layer
neighbour ``C(common, 2)`` for their shared butterflies.
"""

from __future__ import annotations

from typing import Dict, List, Set

import numpy as np

from repro.graph.bipartite import BipartiteGraph
from repro.utils.bucket_queue import BucketQueue


def butterfly_counts_per_vertex(
    graph: BipartiteGraph, layer: str = "upper"
) -> np.ndarray:
    """Number of butterflies containing each vertex of ``layer``.

    A butterfly holds exactly two vertices of each layer, so the count for
    ``u`` is ``Σ_{w ≠ u} C(|N(u) ∩ N(w)|, 2)`` over same-layer vertices
    ``w`` — computed here by wedge grouping from each ``u``.
    """
    if layer not in ("upper", "lower"):
        raise ValueError("layer must be 'upper' or 'lower'")
    if layer == "upper":
        n = graph.num_upper
        neighbors = [
            graph.neighbors_of_upper(u).tolist() for u in range(graph.num_upper)
        ]
        other_neighbors = [
            graph.neighbors_of_lower(v).tolist() for v in range(graph.num_lower)
        ]
    else:
        n = graph.num_lower
        neighbors = [
            graph.neighbors_of_lower(v).tolist() for v in range(graph.num_lower)
        ]
        other_neighbors = [
            graph.neighbors_of_upper(u).tolist() for u in range(graph.num_upper)
        ]
    counts = np.zeros(n, dtype=np.int64)
    for u in range(n):
        common: Dict[int, int] = {}
        for v in neighbors[u]:
            for w in other_neighbors[v]:
                if w != u:
                    common[w] = common.get(w, 0) + 1
        counts[u] = sum(c * (c - 1) // 2 for c in common.values())
    return counts


def tip_decomposition(
    graph: BipartiteGraph, layer: str = "upper"
) -> np.ndarray:
    """Tip number θ(u) of every vertex in ``layer``.

    Bottom-up peeling: the minimum-count vertex is assigned the current
    level and removed; every same-layer vertex sharing butterflies with it
    loses ``C(common, 2)``, guarded at the peel level exactly like the
    bitruss peel.
    """
    if layer not in ("upper", "lower"):
        raise ValueError("layer must be 'upper' or 'lower'")
    counts = butterfly_counts_per_vertex(graph, layer)
    n = len(counts)
    theta = np.zeros(n, dtype=np.int64)
    if n == 0:
        return theta

    if layer == "upper":
        adj: List[Set[int]] = [
            set(graph.neighbors_of_upper(u).tolist())
            for u in range(graph.num_upper)
        ]
        other_adj: List[Set[int]] = [
            set(graph.neighbors_of_lower(v).tolist())
            for v in range(graph.num_lower)
        ]
    else:
        adj = [
            set(graph.neighbors_of_lower(v).tolist())
            for v in range(graph.num_lower)
        ]
        other_adj = [
            set(graph.neighbors_of_upper(u).tolist())
            for u in range(graph.num_upper)
        ]

    queue = BucketQueue.from_keys(counts)
    level = 0
    while not queue.is_empty():
        u, count = queue.pop_min()
        level = max(level, count)
        theta[u] = level
        # charge same-layer vertices for the butterflies they shared with u
        common: Dict[int, int] = {}
        for v in adj[u]:
            for w in other_adj[v]:
                if w != u and w in queue:
                    common[w] = common.get(w, 0) + 1
        for w, c in common.items():
            shared = c * (c - 1) // 2
            if shared and counts[w] > count:
                counts[w] = max(count, int(counts[w]) - shared)
                queue.update(w, int(counts[w]))
        # remove u from the graph
        for v in adj[u]:
            other_adj[v].discard(u)
        adj[u] = set()
    return theta


def k_tip_vertices(
    graph: BipartiteGraph, k: int, layer: str = "upper"
) -> Set[int]:
    """Vertices of ``layer`` in the k-tip, by iterated filtering (oracle).

    Independent of the peeling above (recounts from scratch each round);
    used by the tests as the from-definition reference and by callers who
    need a single level without a full decomposition.
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    current = graph
    if layer == "upper":
        alive = set(range(graph.num_upper))
    else:
        alive = set(range(graph.num_lower))
    if k == 0:
        return alive
    while alive:
        counts = butterfly_counts_per_vertex(current, layer)
        drop = {u for u in alive if counts[u] < k}
        if not drop:
            break
        alive -= drop
        if layer == "upper":
            current = current.induced_subgraph(
                alive, range(current.num_lower), relabel=False
            )
        else:
            current = current.induced_subgraph(
                range(current.num_upper), alive, relabel=False
            )
    return alive

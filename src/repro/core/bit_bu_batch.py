"""BiT-BU+, BiT-BU++ and BiT-BU-CSR — the batch-based optimizations.

All three process *all* unassigned edges of minimum support as one batch
``S`` (batch **edge** processing, justified by Lemma 9: removing an edge
never changes the bitruss number of an equal-support edge).

* **BiT-BU+** applies only batch edge processing: every batch member still
  walks its blooms individually, but the support losses of affected edges
  are accumulated and written once per affected edge at the end of the
  batch.
* **BiT-BU++** adds batch **bloom** processing: pass 1 detaches the batch
  members and updates twins, counting removed wedge pairs per bloom
  (``C(B*)``); pass 2 then walks every touched bloom once, charging each
  surviving edge ``C(B*)`` in a single update and shrinking the bloom from
  ``k`` to ``k − C(B*)`` wedges.
* **BiT-BU-CSR** evaluates exactly the BiT-BU++ batch semantics, but on the
  flat-array index of :mod:`repro.core.peeling_engine`: both passes become
  vectorized gathers + ``np.add.at`` scatters against the graph's CSR
  arrays, with a scalar fallback for tiny buckets.

Support updates are floored at the batch's minimum support ``MBS`` exactly
as Algorithm 5 lines 12/18 prescribe.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.core.peeling_engine import CSRPeelingEngine
from repro.core.result import BitrussDecomposition
from repro.graph.bipartite import BipartiteGraph
from repro.index.be_index import BEIndex
from repro.utils.bucket_queue import BucketQueue
from repro.utils.stats import (
    DecompositionStats,
    IndexSizeModel,
    PhaseTimer,
    UpdateCounter,
)


def _finish(
    name: str,
    graph: BipartiteGraph,
    phi: np.ndarray,
    counter: Optional[UpdateCounter],
    timer: PhaseTimer,
    size_model: IndexSizeModel,
) -> BitrussDecomposition:
    stats = DecompositionStats(
        algorithm=name,
        updates=counter.total if counter is not None else 0,
        update_buckets=(
            list(zip(counter.bucket_labels(), counter.bucket_totals()))
            if counter is not None
            else []
        ),
        timings=timer.as_dict(),
        index_peak_bytes=size_model.peak_bytes,
    )
    return BitrussDecomposition(graph, phi, stats)


def bit_bu_plus(
    graph: BipartiteGraph,
    *,
    counter: Optional[UpdateCounter] = None,
    timer: Optional[PhaseTimer] = None,
    size_model: Optional[IndexSizeModel] = None,
) -> BitrussDecomposition:
    """BiT-BU with batch edge processing only (the paper's BiT-BU+)."""
    timer = timer if timer is not None else PhaseTimer()
    size_model = size_model if size_model is not None else IndexSizeModel()

    with timer.time("index construction"):
        index = BEIndex.build(graph)
    size_model.observe(*index.size_components())

    phi = np.zeros(graph.num_edges, dtype=np.int64)

    with timer.time("peeling"):
        queue = BucketQueue.from_keys(index.support)
        while not queue.is_empty():
            batch, mbs = queue.pop_min_batch()
            batch_set = set(batch)
            deltas: Dict[int, int] = {}
            for eid in batch:
                phi[eid] = mbs
                index.remove_edge_accumulate(eid, deltas, batch_set)
            # One support update per affected edge for the whole batch.
            for other, loss in deltas.items():
                new_value = max(mbs, int(index.support[other]) - loss)
                if new_value != index.support[other]:
                    index.support[other] = new_value
                    queue.update(other, new_value)
                    if counter is not None:
                        counter.record(other)

    return _finish("BiT-BU+", graph, phi, counter, timer, size_model)


def bit_bu_csr(
    graph: BipartiteGraph,
    *,
    counter: Optional[UpdateCounter] = None,
    timer: Optional[PhaseTimer] = None,
    size_model: Optional[IndexSizeModel] = None,
    scalar_cutoff: int = 24,
) -> BitrussDecomposition:
    """Vectorized batch peeling on the flat-array (CSR) BE-Index.

    Parameters
    ----------
    graph:
        The bipartite graph to decompose.
    counter, timer, size_model:
        Optional instrumentation sinks (see :mod:`repro.utils.stats`).
    scalar_cutoff:
        Buckets of at most this many edges take the scalar fallback walk;
        larger buckets are processed with whole-batch array operations.

    Returns
    -------
    BitrussDecomposition
        Bitwise identical bitruss numbers to scalar BiT-BU.
    """
    timer = timer if timer is not None else PhaseTimer()
    size_model = size_model if size_model is not None else IndexSizeModel()

    with timer.time("index construction"):
        engine = CSRPeelingEngine.build(graph)
    size_model.observe(*engine.size_components())

    with timer.time("peeling"):
        phi = engine.peel(counter=counter, scalar_cutoff=scalar_cutoff)

    return _finish("BiT-BU-CSR", graph, phi, counter, timer, size_model)


def bit_bu_plus_plus(
    graph: BipartiteGraph,
    *,
    counter: Optional[UpdateCounter] = None,
    timer: Optional[PhaseTimer] = None,
    size_model: Optional[IndexSizeModel] = None,
) -> BitrussDecomposition:
    """BiT-BU with both batch optimizations (the paper's BiT-BU++)."""
    timer = timer if timer is not None else PhaseTimer()
    size_model = size_model if size_model is not None else IndexSizeModel()

    with timer.time("index construction"):
        index = BEIndex.build(graph)
    size_model.observe(*index.size_components())

    phi = np.zeros(graph.num_edges, dtype=np.int64)

    with timer.time("peeling"):
        queue = BucketQueue.from_keys(index.support)

        def on_change(other: int, value: int) -> None:
            if other in queue:
                queue.update(other, value)

        while not queue.is_empty():
            batch, mbs = queue.pop_min_batch()
            removal_counts: Dict[int, int] = {}
            for eid in batch:
                phi[eid] = mbs
                index.detach_edge(
                    eid,
                    removal_counts,
                    floor=mbs,
                    counter=counter,
                    on_change=on_change,
                )
            index.apply_bloom_batch(
                removal_counts,
                floor=mbs,
                counter=counter,
                on_change=on_change,
            )

    return _finish("BiT-BU++", graph, phi, counter, timer, size_model)

"""CSR-native batch-peeling engine for bottom-up bitruss decomposition.

The dict-based :class:`~repro.index.be_index.BEIndex` walks Python
dictionaries edge by edge.  This module stores the *same* index — maximal
priority-obeyed blooms, their wedge pairs, and the edge↔bloom links — as a
handful of flat numpy arrays (a structure-of-arrays BE-Index), and peels the
graph **one support level at a time**: the entire current minimum-support
bucket is pulled from the queue at once and the support losses of every
affected edge are computed for the whole batch with vectorized gathers,
``np.unique`` and ``np.add.at`` against the arrays.

Layout
------
One *pair* is one priority-obeyed wedge: two edges that are twins of each
other inside one bloom (Definition 9).  A bloom with ``k`` live wedges holds
``C(k, 2)`` butterflies (Lemma 1).

==============  =======================================================
array           meaning
==============  =======================================================
``support``     live butterfly support per edge (mutated while peeling)
``pair_e1/e2``  the two twin edges of each wedge pair
``pair_bloom``  owning bloom of each pair
``pair_alive``  liveness flag per pair
``bloom_k``     live wedge count per bloom
``e_indptr``    CSR: edge -> its pair ids (``e_pair``)
``b_indptr``    CSR: bloom -> its pair ids (``b_pair``)
==============  =======================================================

Batch semantics
---------------
A batch step reproduces Algorithm 5 (BiT-BU++) exactly — pass 1 detaches
every batch member and charges each live external twin ``k − 1``; pass 2
charges every surviving edge of a touched bloom the bloom's removed-pair
count ``C(B*)`` and shrinks ``k`` — with both passes evaluated as array
operations.  Because all updates inside one batch share the same floor
(the batch's minimum support ``MBS``), the sequential floored subtractions
of the scalar algorithm collapse into a single floored subtraction of the
accumulated loss, so the resulting bitruss numbers are bitwise identical
to scalar BiT-BU (Lemma 9 makes batch assignment safe).

Tiny buckets fall back to a scalar walk over the same arrays
(``scalar_cutoff``): a two-edge batch does not amortize numpy call
overhead, the exact crossover the counting ablation already measured.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.butterfly.vectorized import gather_two_hop
from repro.graph.bipartite import BipartiteGraph
from repro.obs import phases as obs_phases
from repro.utils.bucket_queue import BucketQueue
from repro.utils.stats import UpdateCounter

#: ``fly_expiry`` value meaning "no exterior edge ever removes this
#: butterfly" (see :func:`peel_region`).
NO_EXPIRY = -1


def peel_region(
    num_edges: int,
    fly_edges: Sequence[Sequence[int]],
    fly_expiry: Sequence[int],
    *,
    counter: Optional[UpdateCounter] = None,
) -> np.ndarray:
    """Peel a small edge region against a frozen exterior.

    The localized-repair entry point of the incremental maintenance layer
    (:mod:`repro.maintenance.incremental`): given the butterflies that touch
    a region of edges, recompute the bitruss number of every region edge
    under the assumption that edges *outside* the region keep their current
    φ.  The exterior is folded into each butterfly as a single **expiry
    level** — the minimum φ over its exterior edges — because in the global
    bottom-up peel a butterfly stops counting exactly when its weakest edge
    is removed, and a frozen exterior edge with bitruss number ``t`` is
    removed while the peel is processing level ``t``.

    The peel itself is the scalar BiT-BU loop over the local structures: a
    bucket queue keyed by live butterfly counts, a monotone floor ``k``,
    support losses floored at ``k`` (Algorithm 5's floor rule), and — the
    one addition — butterflies whose expiry level equals the current floor
    are destroyed *before* the floor may rise past it, charging their
    surviving interior edges exactly once.

    Parameters
    ----------
    num_edges : int
        Region size; interior edges are ``0 .. num_edges - 1``.
    fly_edges : sequence of sequence of int
        Per butterfly, the interior edges it contains (1-4 entries, no
        duplicates).  Every butterfly of the current graph that contains at
        least one region edge must appear exactly once, so each interior
        edge's list count equals its exact butterfly support.
    fly_expiry : sequence of int
        Per butterfly, the minimum φ over its *exterior* edges, or
        :data:`NO_EXPIRY` when all four edges are interior.
    counter : UpdateCounter, optional
        Records one update per interior support change, like the global
        peels.

    Returns
    -------
    numpy.ndarray
        ``phi`` for the region edges — identical to what a full recompute
        would assign them, provided the exterior φ values are indeed
        unaffected by whatever mutation produced the region (the caller's
        region-closure bound guarantees that).
    """
    phi = np.zeros(num_edges, dtype=np.int64)
    if num_edges == 0:
        return phi
    support = [0] * num_edges
    edge_flies: List[List[int]] = [[] for _ in range(num_edges)]
    expiry_buckets: Dict[int, List[int]] = {}
    alive = [True] * len(fly_edges)
    for fid, members in enumerate(fly_edges):
        for edge in members:
            support[edge] += 1
            edge_flies[edge].append(fid)
        expiry = fly_expiry[fid]
        if expiry != NO_EXPIRY:
            expiry_buckets.setdefault(int(expiry), []).append(fid)

    queue = BucketQueue.from_keys(support)
    floor = 0

    def charge(edge: int, amount: int) -> None:
        new_value = max(floor, queue.key(edge) - amount)
        if new_value != queue.key(edge):
            queue.update(edge, new_value)
            if counter is not None:
                counter.record(edge)

    while not queue.is_empty():
        min_key = queue.peek_min_key()
        while min_key > floor:
            # Before the floor may rise past `floor`, every butterfly whose
            # weakest exterior edge has φ == floor must leave (in the global
            # peel that edge is removed at this very level; removal order
            # within one level never changes the resulting φ).
            bucket = expiry_buckets.pop(floor, None)
            if bucket is None:
                floor += 1
            else:
                for fid in bucket:
                    if alive[fid]:
                        alive[fid] = False
                        for edge in fly_edges[fid]:
                            if edge in queue:
                                charge(edge, 1)
            min_key = queue.peek_min_key()
        batch, _ = queue.pop_min_batch()
        phi[batch] = floor
        for edge in batch:
            for fid in edge_flies[edge]:
                if alive[fid]:
                    alive[fid] = False
                    for other in fly_edges[fid]:
                        if other != edge and other in queue:
                            charge(other, 1)
    return phi


#: One shard of the flat-array BE-Index under construction: the partial
#: per-edge supports contributed by a contiguous start-vertex range plus the
#: wedge pairs discovered there (bloom ids numbered locally from 0).
BuildShard = Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]


def build_shard_on_arrays(
    indptr: np.ndarray,
    neighbors: np.ndarray,
    edge_ids: np.ndarray,
    row_prios: np.ndarray,
    prio: np.ndarray,
    num_edges: int,
    start_lo: int,
    start_hi: int,
) -> BuildShard:
    """Algorithm 3 over one start-vertex range, on raw gid-CSR arrays.

    The construction kernel underneath :meth:`CSRPeelingEngine.build`,
    phrased over arrays (not a graph object) so shared-memory workers can
    run it against attached views.  Returns
    ``(support, pair_e1, pair_e2, pair_bloom, bloom_k)`` where ``support``
    is the full-length partial support array and ``pair_bloom`` numbers
    blooms locally from 0 in discovery order.  Because maximal
    priority-obeyed blooms are anchored at exactly one start vertex,
    shards over a disjoint range partition compose losslessly: summing
    supports and concatenating pair/bloom arrays in ascending range order
    (with bloom-id offsets) reproduces the sequential build bit for bit.
    """
    support = np.zeros(num_edges, dtype=np.int64)
    pair_e1_parts: List[np.ndarray] = []
    pair_e2_parts: List[np.ndarray] = []
    pair_bloom_parts: List[np.ndarray] = []
    bloom_k_parts: List[np.ndarray] = []
    next_bloom = 0

    for start in range(start_lo, start_hi):
        frontier = gather_two_hop(
            indptr, neighbors, edge_ids, row_prios, start, prio[start]
        )
        if frontier is None:
            continue
        ends, end_edges, wedge_mid_edge = frontier

        # Group the wedges of this start by end vertex: each group of
        # size k >= 2 is one maximal priority-obeyed bloom.
        order = np.argsort(ends, kind="stable")
        sorted_ends = ends[order]
        sorted_end_edges = end_edges[order]
        sorted_mid_edges = wedge_mid_edge[order]
        boundary = np.empty(len(sorted_ends), dtype=bool)
        boundary[0] = True
        np.not_equal(sorted_ends[1:], sorted_ends[:-1], out=boundary[1:])
        run_ids = np.cumsum(boundary) - 1
        run_starts = np.nonzero(boundary)[0]
        run_lengths = np.diff(np.append(run_starts, len(sorted_ends)))

        k_per_wedge = run_lengths[run_ids]
        active = k_per_wedge >= 2
        if not active.any():
            continue
        contrib = k_per_wedge[active] - 1
        np.add.at(support, sorted_end_edges[active], contrib)
        np.add.at(support, sorted_mid_edges[active], contrib)

        run_is_active = run_lengths >= 2
        bloom_of_run = np.full(len(run_lengths), -1, dtype=np.int64)
        n_active = int(run_is_active.sum())
        bloom_of_run[run_is_active] = next_bloom + np.arange(
            n_active, dtype=np.int64
        )
        next_bloom += n_active

        pair_e1_parts.append(sorted_mid_edges[active])
        pair_e2_parts.append(sorted_end_edges[active])
        pair_bloom_parts.append(bloom_of_run[run_ids[active]])
        bloom_k_parts.append(run_lengths[run_is_active])

    empty = np.empty(0, dtype=np.int64)
    if pair_bloom_parts:
        return (
            support,
            np.concatenate(pair_e1_parts),
            np.concatenate(pair_e2_parts),
            np.concatenate(pair_bloom_parts),
            np.concatenate(bloom_k_parts),
        )
    return support, empty, empty, empty, empty


def _gather_rows(
    indptr: np.ndarray, data: np.ndarray, rows: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Concatenate CSR rows: returns ``(values, row_of_value)``."""
    starts = indptr[rows]
    counts = indptr[rows + 1] - starts
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    cum = np.cumsum(counts)
    offsets = np.arange(total, dtype=np.int64) - np.repeat(cum - counts, counts)
    idx = np.repeat(starts, counts) + offsets
    return data[idx], np.repeat(rows, counts)


class CSRPeelingEngine:
    """Structure-of-arrays BE-Index with vectorized batch peeling.

    Not built directly — use :meth:`build`.  One engine instance is good for
    one :meth:`peel` run (peeling consumes the liveness arrays).
    """

    def __init__(
        self,
        num_edges: int,
        support: np.ndarray,
        pair_e1: np.ndarray,
        pair_e2: np.ndarray,
        pair_bloom: np.ndarray,
        bloom_k: np.ndarray,
        e_indptr: np.ndarray,
        e_pair: np.ndarray,
        b_indptr: np.ndarray,
        b_pair: np.ndarray,
    ) -> None:
        self.num_edges = num_edges
        self.support = support
        self.pair_e1 = pair_e1
        self.pair_e2 = pair_e2
        self.pair_bloom = pair_bloom
        self.pair_alive = np.ones(len(pair_bloom), dtype=bool)
        self.bloom_k = bloom_k
        self.e_indptr = e_indptr
        self.e_pair = e_pair
        self.b_indptr = b_indptr
        self.b_pair = b_pair

    # ------------------------------------------------------------ building

    @classmethod
    def build(
        cls,
        graph: BipartiteGraph,
        *,
        priorities: Optional[np.ndarray] = None,
    ) -> "CSRPeelingEngine":
        """Construct the flat-array index straight from the graph's CSR.

        Performs the same priority-obeyed wedge traversal as
        :meth:`repro.index.be_index.BEIndex.build` (Algorithm 3), but
        collects wedge groups with ``np.argsort`` run detection and scatters
        the per-edge supports with ``np.add.at`` — no Bloom dictionaries are
        ever materialized.  The traversal itself is one call to
        :func:`build_shard_on_arrays` over the whole start range; the
        shared-memory runtime builds the same engine from several
        range shards (:meth:`from_shards`).
        """
        prio = (
            np.asarray(priorities)
            if priorities is not None
            else graph.priorities()
        )
        indptr, neighbors, edge_ids, row_prios = graph.csr_gid_sorted_with_prios(
            priorities
        )
        with obs_phases.phase("bloom discovery"):
            shard = build_shard_on_arrays(
                indptr,
                neighbors,
                edge_ids,
                row_prios,
                prio,
                graph.num_edges,
                0,
                graph.num_vertices,
            )
        with obs_phases.phase("assemble"):
            return cls.from_shards(graph.num_edges, [shard])

    @classmethod
    def from_shards(
        cls, num_edges: int, shards: List[BuildShard]
    ) -> "CSRPeelingEngine":
        """Assemble an engine from :func:`build_shard_on_arrays` outputs.

        ``shards`` must cover a disjoint partition of the start-vertex
        space and be listed in ascending range order; the assembled arrays
        (bloom numbering included) are then bitwise identical to a
        single-shard sequential build.
        """
        m = num_edges
        support = np.zeros(m, dtype=np.int64)
        pair_e1_parts: List[np.ndarray] = []
        pair_e2_parts: List[np.ndarray] = []
        pair_bloom_parts: List[np.ndarray] = []
        bloom_k_parts: List[np.ndarray] = []
        next_bloom = 0
        for part_support, e1, e2, bloom_local, bloom_k_part in shards:
            support += part_support
            if len(bloom_local):
                pair_e1_parts.append(e1)
                pair_e2_parts.append(e2)
                pair_bloom_parts.append(bloom_local + next_bloom)
                bloom_k_parts.append(bloom_k_part)
                next_bloom += len(bloom_k_part)

        if pair_bloom_parts:
            pair_e1 = np.concatenate(pair_e1_parts)
            pair_e2 = np.concatenate(pair_e2_parts)
            pair_bloom = np.concatenate(pair_bloom_parts)
            bloom_k = np.concatenate(bloom_k_parts)
        else:
            pair_e1 = np.empty(0, dtype=np.int64)
            pair_e2 = np.empty(0, dtype=np.int64)
            pair_bloom = np.empty(0, dtype=np.int64)
            bloom_k = np.empty(0, dtype=np.int64)

        num_pairs = len(pair_bloom)
        num_blooms = len(bloom_k)

        # Edge -> pairs CSR (each pair appears under both of its edges).
        link_edge = np.concatenate((pair_e1, pair_e2))
        link_pair = np.concatenate(
            (
                np.arange(num_pairs, dtype=np.int64),
                np.arange(num_pairs, dtype=np.int64),
            )
        )
        link_order = np.argsort(link_edge, kind="stable")
        e_indptr = np.zeros(m + 1, dtype=np.int64)
        if len(link_edge):
            np.cumsum(np.bincount(link_edge, minlength=m), out=e_indptr[1:])
        e_pair = link_pair[link_order]

        # Bloom -> pairs CSR.  Pairs are appended in non-decreasing bloom
        # order, so the identity permutation is already grouped.
        b_indptr = np.zeros(num_blooms + 1, dtype=np.int64)
        if num_pairs:
            np.cumsum(
                np.bincount(pair_bloom, minlength=num_blooms), out=b_indptr[1:]
            )
        b_pair = np.arange(num_pairs, dtype=np.int64)

        return cls(
            m,
            support,
            pair_e1,
            pair_e2,
            pair_bloom,
            bloom_k,
            e_indptr,
            e_pair,
            b_indptr,
            b_pair,
        )

    # ---------------------------------------------------------- inspection

    def size_components(self) -> Tuple[int, int, int]:
        """``(blooms, indexed edges, links)`` for the Fig. 11 size model."""
        indexed = int(np.count_nonzero(np.diff(self.e_indptr)))
        return len(self.bloom_k), indexed, 2 * len(self.pair_bloom)

    # ------------------------------------------------------------- peeling

    def peel(
        self,
        *,
        counter: Optional[UpdateCounter] = None,
        scalar_cutoff: int = 24,
    ) -> np.ndarray:
        """Bottom-up batch peeling; returns the bitruss number of every edge.

        Parameters
        ----------
        counter:
            Optional :class:`~repro.utils.stats.UpdateCounter`; one update is
            recorded per (edge, batch) support change.
        scalar_cutoff:
            Batches of at most this many edges take the scalar array walk
            (numpy per-call overhead dominates tiny batches); larger batches
            take the vectorized path.  ``0`` forces vectorized everywhere.

        Returns
        -------
        numpy.ndarray
            ``phi`` with ``phi[e]`` the bitruss number of edge ``e`` —
            bitwise identical to scalar BiT-BU's output.
        """
        phi = np.zeros(self.num_edges, dtype=np.int64)
        if self.num_edges == 0:
            return phi
        queue = BucketQueue.from_keys(self.support)
        in_batch = np.zeros(self.num_edges, dtype=bool)
        while not queue.is_empty():
            batch, mbs = queue.pop_min_batch()
            phi[batch] = mbs
            if len(batch) <= scalar_cutoff:
                with obs_phases.phase("scalar batches"):
                    self._peel_batch_scalar(batch, mbs, queue, counter)
            else:
                with obs_phases.phase("vectorized batches"):
                    self._peel_batch_vectorized(
                        batch, mbs, queue, counter, in_batch
                    )
        return phi

    def _peel_batch_scalar(
        self,
        batch: List[int],
        mbs: int,
        queue: BucketQueue,
        counter: Optional[UpdateCounter],
    ) -> None:
        """Small-batch fallback: same two passes, plain Python loops."""
        batch_set = set(batch)
        e_indptr = self.e_indptr
        e_pair = self.e_pair
        pair_alive = self.pair_alive
        pair_bloom = self.pair_bloom
        pair_e1 = self.pair_e1
        pair_e2 = self.pair_e2
        bloom_k = self.bloom_k
        removed: Dict[int, int] = {}
        loss: Dict[int, int] = {}
        for edge in batch:
            for slot in range(int(e_indptr[edge]), int(e_indptr[edge + 1])):
                pair = int(e_pair[slot])
                if not pair_alive[pair]:
                    continue
                bloom = int(pair_bloom[pair])
                k = int(bloom_k[bloom])
                if k < 2:
                    continue
                pair_alive[pair] = False
                removed[bloom] = removed.get(bloom, 0) + 1
                e1 = int(pair_e1[pair])
                twin = int(pair_e2[pair]) if e1 == edge else e1
                if twin not in batch_set:
                    loss[twin] = loss.get(twin, 0) + k - 1
        b_indptr = self.b_indptr
        b_pair = self.b_pair
        for bloom, c_removed in removed.items():
            for slot in range(int(b_indptr[bloom]), int(b_indptr[bloom + 1])):
                pair = int(b_pair[slot])
                if pair_alive[pair]:
                    e1 = int(pair_e1[pair])
                    e2 = int(pair_e2[pair])
                    loss[e1] = loss.get(e1, 0) + c_removed
                    loss[e2] = loss.get(e2, 0) + c_removed
            bloom_k[bloom] -= c_removed
        support = self.support
        for edge, total in loss.items():
            new_value = max(mbs, int(support[edge]) - total)
            if new_value != support[edge]:
                support[edge] = new_value
                queue.update(edge, new_value)
                if counter is not None:
                    counter.record(edge)

    def _peel_batch_vectorized(
        self,
        batch: List[int],
        mbs: int,
        queue: BucketQueue,
        counter: Optional[UpdateCounter],
        in_batch: np.ndarray,
    ) -> None:
        """Whole-bucket update via gathers, ``np.unique`` and ``np.add.at``."""
        batch_arr = np.asarray(batch, dtype=np.int64)
        in_batch[batch_arr] = True
        try:
            links, owner = _gather_rows(self.e_indptr, self.e_pair, batch_arr)
            if not len(links):
                return
            alive = self.pair_alive[links] & (
                self.bloom_k[self.pair_bloom[links]] >= 2
            )
            links = links[alive]
            owner = owner[alive]
            if not len(links):
                return
            # Pass 1 — detach.  A pair with both endpoints in the batch
            # appears twice in `links`; np.unique counts it once (exactly the
            # "twin already severed" skip of the scalar algorithm).
            twin = np.where(
                self.pair_e1[links] == owner, self.pair_e2[links], self.pair_e1[links]
            )
            removed_pairs = np.unique(links)
            touched, c_removed = np.unique(
                self.pair_bloom[removed_pairs], return_counts=True
            )
            # Losses are accumulated sparsely — (edge, amount) fragments —
            # so a batch only ever touches O(affected) memory, never O(m).
            loss_edges: List[np.ndarray] = []
            loss_values: List[np.ndarray] = []
            external = ~in_batch[twin]
            if external.any():
                loss_edges.append(twin[external])
                loss_values.append(
                    self.bloom_k[self.pair_bloom[links[external]]] - 1
                )
            self.pair_alive[removed_pairs] = False
            # Pass 2 — every surviving pair of a touched bloom charges both
            # of its edges the bloom's removed-pair count C(B*).
            pairs_g, bloom_of_g = _gather_rows(self.b_indptr, self.b_pair, touched)
            if len(pairs_g):
                surviving = self.pair_alive[pairs_g]
                pairs_s = pairs_g[surviving]
                # `touched` is sorted (np.unique), so the bloom -> C(B*)
                # lookup is a searchsorted, not an O(num_blooms) scatter.
                charge_s = c_removed[
                    np.searchsorted(touched, bloom_of_g[surviving])
                ]
                loss_edges.append(self.pair_e1[pairs_s])
                loss_values.append(charge_s)
                loss_edges.append(self.pair_e2[pairs_s])
                loss_values.append(charge_s)
            self.bloom_k[touched] -= c_removed
            self._apply_losses(loss_edges, loss_values, mbs, queue, counter)
        finally:
            in_batch[batch_arr] = False

    def _apply_losses(
        self,
        loss_edges: List[np.ndarray],
        loss_values: List[np.ndarray],
        mbs: int,
        queue: BucketQueue,
        counter: Optional[UpdateCounter],
    ) -> None:
        """Merge (edge, amount) loss fragments and apply them, floored at
        the batch minimum ``mbs`` — one ``np.add.at`` regardless of how the
        fragments were produced.  Shared by the in-process batch step and
        the sharded waves of :mod:`repro.runtime.parallel_peeling`, so the
        bitwise-identity guarantee between the two cannot drift."""
        if not loss_edges:
            return
        edges_cat = np.concatenate(loss_edges)
        values_cat = np.concatenate(loss_values)
        changed, inverse = np.unique(edges_cat, return_inverse=True)
        totals = np.zeros(len(changed), dtype=np.int64)
        np.add.at(totals, inverse, values_cat)
        new_values = np.maximum(mbs, self.support[changed] - totals)
        moved = new_values != self.support[changed]
        self.support[changed] = new_values
        for edge, value in zip(
            changed[moved].tolist(), new_values[moved].tolist()
        ):
            queue.update(edge, value)
            if counter is not None:
                counter.record(edge)

"""BiT-BU — bottom-up bitruss decomposition on the BE-Index (Algorithm 4).

Counting, index construction, then peeling: edges are removed in
non-decreasing support order and each removal is Algorithm 2's
index-mediated edge removal operation — ``O(sup(e))`` instead of the
baseline's combination-based enumeration.  Total time
``O(Σ min(d(u), d(v)) + ⋈G)``.

Index construction runs on the graph's shared priority-sorted CSR arrays
(see :meth:`repro.graph.bipartite.BipartiteGraph.csr_gid_sorted`); the peel
itself is the scalar one-edge-at-a-time loop — the vectorized whole-bucket
variant lives in :func:`repro.core.bit_bu_batch.bit_bu_csr`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.result import BitrussDecomposition
from repro.graph.bipartite import BipartiteGraph
from repro.index.be_index import BEIndex
from repro.utils.bucket_queue import BucketQueue
from repro.utils.stats import (
    DecompositionStats,
    IndexSizeModel,
    PhaseTimer,
    UpdateCounter,
)


def bit_bu(
    graph: BipartiteGraph,
    *,
    counter: Optional[UpdateCounter] = None,
    timer: Optional[PhaseTimer] = None,
    size_model: Optional[IndexSizeModel] = None,
    queue_factory=None,
) -> BitrussDecomposition:
    """Run BiT-BU and return the full decomposition.

    ``queue_factory`` (default :class:`~repro.utils.bucket_queue.BucketQueue`)
    lets the ablation benches swap the peeling queue for any object with
    ``push`` / ``update`` / ``pop_min`` / ``is_empty``.
    """
    timer = timer if timer is not None else PhaseTimer()
    size_model = size_model if size_model is not None else IndexSizeModel()

    # The BE-Index construction performs the same priority-obeyed wedge
    # traversal as the counting algorithm of [8], so the per-edge supports
    # fall out of `build` directly (counting + construction in one pass,
    # both O(sum of min degrees)).
    with timer.time("index construction"):
        index = BEIndex.build(graph)
    size_model.observe(*index.size_components())

    phi = np.zeros(graph.num_edges, dtype=np.int64)

    with timer.time("peeling"):
        if queue_factory is None:
            queue = BucketQueue.from_keys(index.support)
        else:
            queue = queue_factory()
            for eid, key in enumerate(index.support):
                queue.push(eid, int(key))
        level = 0
        while not queue.is_empty():
            eid, sup_e = queue.pop_min()
            # Advancing the level in one jump is equivalent to Algorithm 4's
            # `k <- k + 1` outer loop: levels with no edges assign nothing.
            if sup_e > level:
                level = sup_e
            phi[eid] = level
            index.remove_edge(
                eid,
                counter=counter,
                on_change=lambda other, value: queue.update(other, value),
            )

    stats = DecompositionStats(
        algorithm="BiT-BU",
        updates=counter.total if counter is not None else 0,
        update_buckets=(
            list(zip(counter.bucket_labels(), counter.bucket_totals()))
            if counter is not None
            else []
        ),
        timings=timer.as_dict(),
        index_peak_bytes=size_model.peak_bytes,
    )
    return BitrussDecomposition(graph, phi, stats)

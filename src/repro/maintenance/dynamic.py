"""Incremental butterfly-support maintenance under edge updates.

The paper computes a static decomposition; real deployments (fraud feeds,
rating streams) see edges arrive and disappear.  This module maintains
*butterfly supports* exactly under single-edge insertions and deletions —
the quantity every decomposition algorithm starts from — and offers a
convenience ``decompose()`` that runs any static algorithm on the current
snapshot.

Updating the support after inserting/deleting edge ``(u, v)`` only requires
the butterflies through ``(u, v)``: for every ``w ∈ N(v)∖{u}`` and
``x ∈ N(u) ∩ N(w)∖{v}``, the edges ``(u, x)``, ``(w, v)``, ``(w, x)`` each
gain/lose one butterfly and ``(u, v)`` itself gains/loses one.  That is
``O(Σ_{w ∈ N(v)} d(w))`` per update — the same combination cost BiT-BS pays
per removal, paid here only for the edges that actually change.

Full *bitruss-number* maintenance is a separate line of work (it needs the
peeling order to be repaired, not just the supports); ``decompose()`` is the
honest recompute path and the supports maintained here make the counting
phase free.

The graph also acts as a staleness source for the service layer: artifacts
and query engines registered via :meth:`DynamicBipartiteGraph.register_artifact`
are invalidated on every edge mutation, so a serving deployment can never
silently answer from a φ computed against an older snapshot.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.core.api import bitruss_decomposition
from repro.core.result import BitrussDecomposition
from repro.graph.bipartite import BipartiteGraph

Edge = Tuple[int, int]


class DynamicBipartiteGraph:
    """A bipartite graph under edge insertions/deletions with live supports.

    Parameters
    ----------
    num_upper, num_lower:
        Layer capacities (grow with :meth:`add_upper_vertex` /
        :meth:`add_lower_vertex`).
    edges:
        Initial edges; their supports are computed by pairwise accumulation
        during insertion, so construction costs the same as replaying the
        inserts.

    Examples
    --------
    >>> g = DynamicBipartiteGraph(2, 2, [(0, 0), (0, 1), (1, 0)])
    >>> g.support_of(0, 0)
    0
    >>> g.insert_edge(1, 1)   # completes the butterfly
    1
    >>> g.support_of(0, 0)
    1
    >>> g.delete_edge(0, 1)
    1
    >>> g.support_of(0, 0)
    0
    """

    def __init__(
        self,
        num_upper: int,
        num_lower: int,
        edges: Optional[List[Edge]] = None,
    ) -> None:
        if num_upper < 0 or num_lower < 0:
            raise ValueError("layer sizes must be non-negative")
        self._n_u = num_upper
        self._n_l = num_lower
        self._adj_u: List[Set[int]] = [set() for _ in range(num_upper)]
        self._adj_l: List[Set[int]] = [set() for _ in range(num_lower)]
        self._support: Dict[Edge, int] = {}
        self._watchers: List[object] = []
        for u, v in edges or ():
            self.insert_edge(u, v)

    # ----------------------------------------------------- staleness hooks

    def register_artifact(self, target: object) -> None:
        """Subscribe an artifact/engine to this graph's edge updates.

        ``target`` is anything with an ``invalidate()`` method — a
        :class:`~repro.service.artifacts.DecompositionArtifact` or a
        :class:`~repro.service.engine.QueryEngine` built from an earlier
        snapshot of this graph.  Every subsequent :meth:`insert_edge` /
        :meth:`delete_edge` marks all registered targets stale, so a
        serving layer can never silently answer from outdated φ.

        Examples
        --------
        >>> from repro.service.engine import QueryEngine
        >>> g = DynamicBipartiteGraph(2, 2, [(0, 0), (0, 1), (1, 0)])
        >>> engine = QueryEngine.from_graph(g.snapshot())
        >>> g.register_artifact(engine)
        >>> engine.stale
        False
        >>> _ = g.insert_edge(1, 1)
        >>> engine.stale
        True
        """
        if not callable(getattr(target, "invalidate", None)):
            raise TypeError("target must expose an invalidate() method")
        self._watchers.append(target)

    def unregister_artifact(self, target: object) -> None:
        """Drop a previously registered artifact/engine (no-op if absent)."""
        self._watchers = [w for w in self._watchers if w is not target]

    def invalidate(self) -> None:
        """Mark every registered artifact/engine stale.

        Called automatically by the edge mutators; exposed so callers with
        out-of-band knowledge of drift (e.g. a replayed log) can force it.
        """
        for watcher in self._watchers:
            watcher.invalidate()

    # ---------------------------------------------------------------- size

    @property
    def num_upper(self) -> int:
        """Current upper-layer capacity."""
        return self._n_u

    @property
    def num_lower(self) -> int:
        """Current lower-layer capacity."""
        return self._n_l

    @property
    def num_edges(self) -> int:
        """Current edge count."""
        return len(self._support)

    def add_upper_vertex(self) -> int:
        """Append a fresh upper vertex; returns its id."""
        self._adj_u.append(set())
        self._n_u += 1
        return self._n_u - 1

    def add_lower_vertex(self) -> int:
        """Append a fresh lower vertex; returns its id."""
        self._adj_l.append(set())
        self._n_l += 1
        return self._n_l - 1

    # --------------------------------------------------------------- edges

    def has_edge(self, u: int, v: int) -> bool:
        """Whether ``(u, v)`` is currently present."""
        return (u, v) in self._support

    def support_of(self, u: int, v: int) -> int:
        """Current butterfly support of edge ``(u, v)``."""
        return self._support[(u, v)]

    def supports(self) -> Dict[Edge, int]:
        """Snapshot of all current supports."""
        return dict(self._support)

    def _butterfly_partners(self, u: int, v: int) -> List[Tuple[int, int]]:
        """All ``(w, x)`` completing a butterfly with ``(u, v)`` (current)."""
        partners = []
        nu = self._adj_u[u]
        for w in self._adj_l[v]:
            if w == u:
                continue
            for x in self._adj_u[w]:
                if x != v and x in nu:
                    partners.append((w, x))
        return partners

    def insert_edge(self, u: int, v: int) -> int:
        """Insert ``(u, v)``; returns the number of butterflies created."""
        if not (0 <= u < self._n_u):
            raise ValueError(f"upper endpoint {u} out of range")
        if not (0 <= v < self._n_l):
            raise ValueError(f"lower endpoint {v} out of range")
        if (u, v) in self._support:
            raise ValueError(f"edge ({u}, {v}) already present")
        # New butterflies are exactly the (w, x) completions that already
        # exist; each one bumps its three old edges and the new edge.
        created = 0
        nu = self._adj_u[u]
        for w in self._adj_l[v]:
            for x in self._adj_u[w]:
                if x in nu:
                    created += 1
                    self._support[(u, x)] += 1
                    self._support[(w, v)] += 1
                    self._support[(w, x)] += 1
        self._adj_u[u].add(v)
        self._adj_l[v].add(u)
        self._support[(u, v)] = created
        self.invalidate()
        return created

    def delete_edge(self, u: int, v: int) -> int:
        """Delete ``(u, v)``; returns the number of butterflies destroyed."""
        if (u, v) not in self._support:
            raise KeyError(f"edge ({u}, {v}) not present")
        self._adj_u[u].discard(v)
        self._adj_l[v].discard(u)
        destroyed = 0
        nu = self._adj_u[u]
        for w in self._adj_l[v]:
            for x in self._adj_u[w]:
                if x != v and x in nu:
                    destroyed += 1
                    self._support[(u, x)] -= 1
                    self._support[(w, v)] -= 1
                    self._support[(w, x)] -= 1
        del self._support[(u, v)]
        self.invalidate()
        return destroyed

    # ------------------------------------------------------------ snapshot

    def snapshot(self) -> BipartiteGraph:
        """Freeze the current state into an immutable :class:`BipartiteGraph`."""
        return BipartiteGraph(self._n_u, self._n_l, sorted(self._support))

    def decompose(self, algorithm: str = "bit-bu++", **kwargs) -> BitrussDecomposition:
        """Run a static decomposition on the current snapshot."""
        return bitruss_decomposition(self.snapshot(), algorithm=algorithm, **kwargs)

    def rebuild(
        self,
        algorithm: str = "bit-bu++",
        *,
        workers: int = 1,
        register: bool = True,
        snapshot: Optional[BipartiteGraph] = None,
        **kwargs,
    ):
        """Snapshot, re-decompose, and re-register a serving artifact.

        The one code path for bringing a serving deployment back in sync
        after its registered artifact was invalidated: freeze the current
        state, build a fresh
        :class:`~repro.service.artifacts.DecompositionArtifact` (with
        ``workers > 1`` the build runs on the shared-memory
        :class:`~repro.runtime.pool.ParallelRuntime`), and subscribe the
        new artifact to this graph's future updates so the staleness loop
        keeps closing.

        Parameters
        ----------
        algorithm:
            Decomposition algorithm (auto-upgraded to ``bit-bu-par`` by
            :func:`~repro.service.artifacts.build_artifact` when
            ``workers > 1`` and the default is requested).
        workers:
            Worker processes for the rebuild (default 1 = scalar path).
        register:
            Subscribe the new artifact via :meth:`register_artifact`
            (default).  Pass ``False`` when calling from a worker thread —
            the watcher list is loop-/owner-thread state — and register on
            the owning thread afterwards, as the server's update loop does.
        snapshot:
            A pre-taken :meth:`snapshot` to decompose instead of taking a
            new one (lets callers pin the edge set before handing the
            CPU-heavy build to an executor).
        **kwargs:
            Forwarded to the decomposition (``tau``, ``prefilter``, ...).

        Returns
        -------
        DecompositionArtifact
            Fresh, non-stale, ready to serve or hot-swap.

        Examples
        --------
        >>> from repro.service.engine import QueryEngine
        >>> g = DynamicBipartiteGraph(2, 2, [(0, 0), (0, 1), (1, 0)])
        >>> artifact = g.rebuild()
        >>> _ = g.insert_edge(1, 1)
        >>> artifact.stale      # registered: updates invalidate it
        True
        >>> g.rebuild().max_k   # the completed 2x2 butterfly: phi = 1
        1
        """
        from repro.service.artifacts import build_artifact

        graph = self.snapshot() if snapshot is None else snapshot
        artifact = build_artifact(
            graph, algorithm=algorithm, workers=workers, **kwargs
        )
        if register:
            self.register_artifact(artifact)
        return artifact

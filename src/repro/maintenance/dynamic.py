"""Incremental butterfly-support maintenance under edge updates.

The paper computes a static decomposition; real deployments (fraud feeds,
rating streams) see edges arrive and disappear.  This module maintains
*butterfly supports* exactly under single-edge insertions and deletions —
the quantity every decomposition algorithm starts from — and offers a
convenience ``decompose()`` that runs any static algorithm on the current
snapshot.

Updating the support after inserting/deleting edge ``(u, v)`` only requires
the butterflies through ``(u, v)``: for every ``w ∈ N(v)∖{u}`` and
``x ∈ N(u) ∩ N(w)∖{v}``, the edges ``(u, x)``, ``(w, v)``, ``(w, x)`` each
gain/lose one butterfly and ``(u, v)`` itself gains/loses one.  That is
``O(Σ_{w ∈ N(v)} d(w))`` per update — the same combination cost BiT-BS pays
per removal, paid here only for the edges that actually change.

Full *bitruss-number* maintenance lives next door in
:mod:`repro.maintenance.incremental`: :meth:`DynamicBipartiteGraph.enable_incremental`
attaches an exact localized-φ-repair tracker, and :meth:`DynamicBipartiteGraph.apply`
routes insert/delete batches through it, patching registered artifacts and
query engines in place instead of leaving them stale.  ``decompose()``
remains the honest recompute path and the supports maintained here make its
counting phase free.

The graph also acts as a staleness source for the service layer: artifacts
and query engines registered via :meth:`DynamicBipartiteGraph.register_artifact`
are invalidated on every edge mutation, so a serving deployment can never
silently answer from a φ computed against an older snapshot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Set, Tuple

from repro.core.api import bitruss_decomposition
from repro.core.result import BitrussDecomposition
from repro.graph.bipartite import BipartiteGraph

if TYPE_CHECKING:  # pragma: no cover - circular-import guard
    from repro.maintenance.incremental import IncrementalBitruss, RepairReport

Edge = Tuple[int, int]


@dataclass
class ApplyOutcome:
    """Result of one :meth:`DynamicBipartiteGraph.apply` batch.

    Attributes
    ----------
    reports:
        One :class:`~repro.maintenance.incremental.RepairReport` per op
        when the incremental path ran, empty otherwise.
    incremental:
        Whether φ was repaired in place for the whole batch.
    patched:
        Watchers whose ``patch`` method was called (now fresh again).
    butterfly_delta:
        Net butterflies created minus destroyed across the batch.
    """

    reports: List["RepairReport"] = field(default_factory=list)
    incremental: bool = False
    patched: int = 0
    butterfly_delta: int = 0
    #: The tracker's :class:`~repro.maintenance.incremental.BatchReport`
    #: when the incremental batch path ran (predictor and merged-peel
    #: counters live there), ``None`` otherwise.
    batch: Optional[object] = None

    @property
    def region_size(self) -> int:
        """Total edges re-peeled across the batch."""
        return sum(r.region_size for r in self.reports)

    @property
    def max_affected_k(self) -> int:
        """Highest level any op in the batch may have perturbed."""
        return max((r.max_affected_k for r in self.reports), default=0)


class DynamicBipartiteGraph:
    """A bipartite graph under edge insertions/deletions with live supports.

    Parameters
    ----------
    num_upper, num_lower:
        Layer capacities (grow with :meth:`add_upper_vertex` /
        :meth:`add_lower_vertex`).
    edges:
        Initial edges; their supports are computed by pairwise accumulation
        during insertion, so construction costs the same as replaying the
        inserts.

    Examples
    --------
    >>> g = DynamicBipartiteGraph(2, 2, [(0, 0), (0, 1), (1, 0)])
    >>> g.support_of(0, 0)
    0
    >>> g.insert_edge(1, 1)   # completes the butterfly
    1
    >>> g.support_of(0, 0)
    1
    >>> g.delete_edge(0, 1)
    1
    >>> g.support_of(0, 0)
    0
    """

    def __init__(
        self,
        num_upper: int,
        num_lower: int,
        edges: Optional[List[Edge]] = None,
    ) -> None:
        if num_upper < 0 or num_lower < 0:
            raise ValueError("layer sizes must be non-negative")
        self._n_u = num_upper
        self._n_l = num_lower
        self._adj_u: List[Set[int]] = [set() for _ in range(num_upper)]
        self._adj_l: List[Set[int]] = [set() for _ in range(num_lower)]
        self._support: Dict[Edge, int] = {}
        self._watchers: List[object] = []
        self._tracker: Optional["IncrementalBitruss"] = None
        for u, v in edges or ():
            self.insert_edge(u, v)

    # ----------------------------------------------------- staleness hooks

    def register_artifact(self, target: object) -> None:
        """Subscribe an artifact/engine to this graph's edge updates.

        ``target`` is anything with an ``invalidate()`` method — a
        :class:`~repro.service.artifacts.DecompositionArtifact` or a
        :class:`~repro.service.engine.QueryEngine` built from an earlier
        snapshot of this graph.  Every subsequent :meth:`insert_edge` /
        :meth:`delete_edge` marks all registered targets stale, so a
        serving layer can never silently answer from outdated φ.

        Examples
        --------
        >>> from repro.service.engine import QueryEngine
        >>> g = DynamicBipartiteGraph(2, 2, [(0, 0), (0, 1), (1, 0)])
        >>> engine = QueryEngine.from_graph(g.snapshot())
        >>> g.register_artifact(engine)
        >>> engine.stale
        False
        >>> _ = g.insert_edge(1, 1)
        >>> engine.stale
        True
        """
        if not callable(getattr(target, "invalidate", None)):
            raise TypeError("target must expose an invalidate() method")
        self._watchers.append(target)

    def unregister_artifact(self, target: object) -> None:
        """Drop a previously registered artifact/engine (no-op if absent)."""
        self._watchers = [w for w in self._watchers if w is not target]

    def invalidate(self) -> None:
        """Mark every registered artifact/engine stale.

        Called automatically by the edge mutators; exposed so callers with
        out-of-band knowledge of drift (e.g. a replayed log) can force it.
        """
        for watcher in self._watchers:
            watcher.invalidate()

    # ---------------------------------------------------------------- size

    @property
    def num_upper(self) -> int:
        """Current upper-layer capacity."""
        return self._n_u

    @property
    def num_lower(self) -> int:
        """Current lower-layer capacity."""
        return self._n_l

    @property
    def num_edges(self) -> int:
        """Current edge count."""
        return len(self._support)

    def add_upper_vertex(self) -> int:
        """Append a fresh upper vertex; returns its id."""
        self._adj_u.append(set())
        self._n_u += 1
        return self._n_u - 1

    def add_lower_vertex(self) -> int:
        """Append a fresh lower vertex; returns its id."""
        self._adj_l.append(set())
        self._n_l += 1
        return self._n_l - 1

    # --------------------------------------------------------------- edges

    def has_edge(self, u: int, v: int) -> bool:
        """Whether ``(u, v)`` is currently present."""
        return (u, v) in self._support

    def _check_endpoints(self, u: int, v: int) -> None:
        if not (0 <= u < self._n_u):
            raise ValueError(f"upper endpoint {u} out of range [0, {self._n_u})")
        if not (0 <= v < self._n_l):
            raise ValueError(f"lower endpoint {v} out of range [0, {self._n_l})")

    def support_of(self, u: int, v: int) -> int:
        """Current butterfly support of edge ``(u, v)``.

        Raises
        ------
        ValueError
            If an endpoint is out of range or the edge is absent (the same
            error surface as :meth:`insert_edge` / :meth:`delete_edge`).
        """
        self._check_endpoints(u, v)
        try:
            return self._support[(u, v)]
        except KeyError:
            raise ValueError(f"edge ({u}, {v}) not present") from None

    def neighbors_of_upper(self, u: int) -> Set[int]:
        """Live lower-layer neighbour set of upper vertex ``u`` (do not mutate)."""
        return self._adj_u[u]

    def neighbors_of_lower(self, v: int) -> Set[int]:
        """Live upper-layer neighbour set of lower vertex ``v`` (do not mutate)."""
        return self._adj_l[v]

    def supports(self) -> Dict[Edge, int]:
        """Snapshot of all current supports."""
        return dict(self._support)

    def _butterfly_partners(self, u: int, v: int) -> List[Tuple[int, int]]:
        """All ``(w, x)`` completing a butterfly with ``(u, v)`` (current)."""
        partners = []
        nu = self._adj_u[u]
        for w in self._adj_l[v]:
            if w == u:
                continue
            for x in self._adj_u[w]:
                if x != v and x in nu:
                    partners.append((w, x))
        return partners

    def insert_edge(self, u: int, v: int) -> int:
        """Insert ``(u, v)``; returns the number of butterflies created."""
        self._check_endpoints(u, v)
        if (u, v) in self._support:
            raise ValueError(f"edge ({u}, {v}) already present")
        # New butterflies are exactly the (w, x) completions that already
        # exist; each one bumps its three old edges and the new edge.
        created = 0
        nu = self._adj_u[u]
        for w in self._adj_l[v]:
            for x in self._adj_u[w]:
                if x in nu:
                    created += 1
                    self._support[(u, x)] += 1
                    self._support[(w, v)] += 1
                    self._support[(w, x)] += 1
        self._adj_u[u].add(v)
        self._adj_l[v].add(u)
        self._support[(u, v)] = created
        self.invalidate()
        return created

    def delete_edge(self, u: int, v: int) -> int:
        """Delete ``(u, v)``; returns the number of butterflies destroyed.

        Raises
        ------
        ValueError
            If an endpoint is out of range or the edge is absent — the same
            error surface as :meth:`insert_edge` (historically this leaked a
            bare ``KeyError`` for missing edges).
        """
        self._check_endpoints(u, v)
        if (u, v) not in self._support:
            raise ValueError(f"edge ({u}, {v}) not present")
        self._adj_u[u].discard(v)
        self._adj_l[v].discard(u)
        destroyed = 0
        nu = self._adj_u[u]
        for w in self._adj_l[v]:
            for x in self._adj_u[w]:
                if x != v and x in nu:
                    destroyed += 1
                    self._support[(u, x)] -= 1
                    self._support[(w, v)] -= 1
                    self._support[(w, x)] -= 1
        del self._support[(u, v)]
        self.invalidate()
        return destroyed

    # ------------------------------------------------- incremental repair

    def enable_incremental(
        self, phi: Optional[Dict[Edge, int]] = None
    ) -> "IncrementalBitruss":
        """Attach an exact localized-φ-repair tracker to this graph.

        Parameters
        ----------
        phi:
            Known-correct bitruss numbers keyed by endpoints (e.g. from a
            served :class:`~repro.service.artifacts.DecompositionArtifact`);
            omitted, one static decomposition seeds the tracker.

        Returns
        -------
        IncrementalBitruss
            The tracker, also reachable via :attr:`tracker`.  While one is
            attached, mutate through :meth:`apply` (or the tracker's own
            ``insert`` / ``delete``) so φ stays in sync.
        """
        from repro.maintenance.incremental import IncrementalBitruss

        self._tracker = IncrementalBitruss(self, phi)
        return self._tracker

    @property
    def tracker(self) -> Optional["IncrementalBitruss"]:
        """The attached φ tracker, or ``None``."""
        return getattr(self, "_tracker", None)

    def validate_batch(
        self,
        inserts: Iterable[Edge] = (),
        deletes: Iterable[Edge] = (),
    ) -> Tuple[List[Edge], List[Edge]]:
        """Check a whole mutation batch against the current graph.

        The atomicity gate for :meth:`apply_batch`: endpoint ranges,
        duplicate ops, missing delete targets, and already-present insert
        targets are all rejected *before* anything mutates, so a bad op at
        position k can never leave ops ``0..k-1`` half-applied.  An insert
        of an edge that the same batch also deletes is legal (deletes apply
        first, so the pair is a toggle).

        Returns the normalized ``(inserts, deletes)`` lists.

        Raises
        ------
        ValueError
            Describing the first offending op; the graph is untouched.
        """
        inserts = [(int(u), int(v)) for u, v in inserts]
        deletes = [(int(u), int(v)) for u, v in deletes]
        deleted: Set[Edge] = set()
        for u, v in deletes:
            self._check_endpoints(u, v)
            if (u, v) in deleted:
                raise ValueError(
                    f"duplicate delete of edge ({u}, {v}) in batch"
                )
            if (u, v) not in self._support:
                raise ValueError(f"edge ({u}, {v}) not present")
            deleted.add((u, v))
        inserted: Set[Edge] = set()
        for u, v in inserts:
            self._check_endpoints(u, v)
            if (u, v) in inserted:
                raise ValueError(
                    f"duplicate insert of edge ({u}, {v}) in batch"
                )
            if (u, v) in self._support and (u, v) not in deleted:
                raise ValueError(f"edge ({u}, {v}) already present")
            inserted.add((u, v))
        return inserts, deletes

    def apply(
        self,
        inserts: Iterable[Edge] = (),
        deletes: Iterable[Edge] = (),
        *,
        incremental: bool = True,
        max_region_fraction: Optional[float] = None,
        patch_watchers: bool = True,
    ) -> ApplyOutcome:
        """Apply an edge batch, repairing φ and patching watchers in place.

        A thin alias of :meth:`apply_batch` kept for the historical call
        sites; see there for the batch-native semantics (atomic
        validation, deferred merged peels, fallback predictor, adaptive
        budget).
        """
        return self.apply_batch(
            inserts,
            deletes,
            incremental=incremental,
            max_region_fraction=max_region_fraction,
            patch_watchers=patch_watchers,
        )

    def apply_batch(
        self,
        inserts: Iterable[Edge] = (),
        deletes: Iterable[Edge] = (),
        *,
        incremental: bool = True,
        max_region_fraction: Optional[float] = None,
        patch_watchers: bool = True,
        predict: bool = True,
    ) -> ApplyOutcome:
        """Apply an edge batch, repairing φ and patching watchers in place.

        The batch is validated up front (:meth:`validate_batch`) and
        applied atomically: a malformed op raises before any mutation.
        Deletions apply first, then insertions.  With ``incremental=True``
        and a fresh tracker attached (:meth:`enable_incremental`), the
        whole batch routes through
        :meth:`~repro.maintenance.incremental.IncrementalBitruss.apply_batch`
        — one region per op, butterfly-disjoint regions merged into single
        multi-seed peels — and afterwards every registered watcher exposing
        a ``patch`` method — a
        :class:`~repro.service.artifacts.DecompositionArtifact` or
        :class:`~repro.service.engine.QueryEngine` — is handed the patched
        snapshot **once** (single version bump, one selective cache
        invalidation at the batch's ``max_affected_k``), so the batch never
        surfaces a ``StaleArtifactError`` to readers.  Watchers without
        ``patch`` stay invalidated as before.

        Parameters
        ----------
        inserts, deletes:
            ``(u, v)`` pairs; the usual :class:`ValueError` surface applies
            (out-of-range endpoints, duplicate op, duplicate insert,
            missing delete), raised before anything is applied.
        incremental:
            ``False`` forces the plain support-only mutators (watchers are
            left stale, as historical ``insert_edge`` loops did).
        max_region_fraction:
            Ceiling on the per-op region budget as a fraction of the
            current edge count; the effective budget is the tracker's
            :class:`~repro.maintenance.incremental.AdaptiveBudget` below
            that ceiling.  An op that exceeds it (or is predicted to)
            aborts the φ repair — tracker goes dirty, remaining ops apply
            support-only — so the caller can fall back to one full
            rebuild.  ``None`` = unbounded.
        patch_watchers:
            ``False`` skips the watcher patching (the server's update
            manager does its own hot-swap on the event loop).
        predict:
            Skip the region BFS for ops whose bound × first-layer estimate
            already exceeds the budget (no abort cost; the batch falls
            back as if the search had aborted).

        Returns
        -------
        ApplyOutcome

        Examples
        --------
        >>> from repro.service.engine import QueryEngine
        >>> g = DynamicBipartiteGraph(3, 3, [(0, 0), (0, 1), (1, 0), (1, 1)])
        >>> _ = g.enable_incremental()
        >>> engine = QueryEngine.from_graph(g.snapshot())
        >>> g.register_artifact(engine)
        >>> outcome = g.apply_batch(inserts=[(2, 0), (2, 1)])
        >>> outcome.incremental and not engine.stale
        True
        >>> engine.max_k(upper=2)
        2
        """
        inserts, deletes = self.validate_batch(inserts, deletes)
        outcome = ApplyOutcome()
        tracker = self.tracker
        use_tracker = (
            incremental and tracker is not None and not tracker.dirty
        )
        if use_tracker:
            batch = tracker.apply_batch(
                inserts,
                deletes,
                budget_fraction=max_region_fraction,
                predict=predict,
            )
            outcome.batch = batch
            outcome.reports = batch.reports
            outcome.butterfly_delta = batch.butterfly_delta
            outcome.incremental = not batch.fallback and bool(batch.reports)
        else:
            for u, v in deletes:
                outcome.butterfly_delta -= self.delete_edge(u, v)
            for u, v in inserts:
                outcome.butterfly_delta += self.insert_edge(u, v)
        if not (outcome.incremental and patch_watchers and self._watchers):
            return outcome

        assert tracker is not None
        graph, phi = tracker.phi_snapshot()
        affected_gids = self._affected_gids(graph, outcome.reports)
        for watcher in self._watchers:
            patch = getattr(watcher, "patch", None)
            if callable(patch):
                patch(
                    graph,
                    phi,
                    max_affected_k=outcome.max_affected_k,
                    affected_gids=affected_gids,
                )
                outcome.patched += 1
        return outcome

    @staticmethod
    def _affected_gids(
        graph: BipartiteGraph, reports: List["RepairReport"]
    ) -> Set[int]:
        """Global ids of vertices touching any φ change or mutated edge."""
        gids: Set[int] = set()
        for report in reports:
            edges = list(report.changed)
            edges.append(report.edge)
            for u, v in edges:
                gids.add(graph.gid_of_lower(v))
                gids.add(graph.gid_of_upper(u))
        return gids

    # ------------------------------------------------------------ snapshot

    def snapshot(self) -> BipartiteGraph:
        """Freeze the current state into an immutable :class:`BipartiteGraph`."""
        return BipartiteGraph(self._n_u, self._n_l, sorted(self._support))

    def decompose(self, algorithm: str = "bit-bu++", **kwargs) -> BitrussDecomposition:
        """Run a static decomposition on the current snapshot."""
        return bitruss_decomposition(self.snapshot(), algorithm=algorithm, **kwargs)

    def rebuild(
        self,
        algorithm: str = "bit-bu++",
        *,
        workers: int = 1,
        register: bool = True,
        snapshot: Optional[BipartiteGraph] = None,
        **kwargs,
    ):
        """Snapshot, re-decompose, and re-register a serving artifact.

        The one code path for bringing a serving deployment back in sync
        after its registered artifact was invalidated: freeze the current
        state, build a fresh
        :class:`~repro.service.artifacts.DecompositionArtifact` (with
        ``workers > 1`` the build runs on the shared-memory
        :class:`~repro.runtime.pool.ParallelRuntime`), and subscribe the
        new artifact to this graph's future updates so the staleness loop
        keeps closing.

        Parameters
        ----------
        algorithm:
            Decomposition algorithm (auto-upgraded to ``bit-bu-par`` by
            :func:`~repro.service.artifacts.build_artifact` when
            ``workers > 1`` and the default is requested).
        workers:
            Worker processes for the rebuild (default 1 = scalar path).
        register:
            Subscribe the new artifact via :meth:`register_artifact`
            (default).  Pass ``False`` when calling from a worker thread —
            the watcher list is loop-/owner-thread state — and register on
            the owning thread afterwards, as the server's update loop does.
        snapshot:
            A pre-taken :meth:`snapshot` to decompose instead of taking a
            new one (lets callers pin the edge set before handing the
            CPU-heavy build to an executor).
        **kwargs:
            Forwarded to the decomposition (``tau``, ``prefilter``, ...).

        Returns
        -------
        DecompositionArtifact
            Fresh, non-stale, ready to serve or hot-swap.

        Examples
        --------
        >>> from repro.service.engine import QueryEngine
        >>> g = DynamicBipartiteGraph(2, 2, [(0, 0), (0, 1), (1, 0)])
        >>> artifact = g.rebuild()
        >>> _ = g.insert_edge(1, 1)
        >>> artifact.stale      # registered: updates invalidate it
        True
        >>> g.rebuild().max_k   # the completed 2x2 butterfly: phi = 1
        1
        """
        from repro.service.artifacts import build_artifact

        graph = self.snapshot() if snapshot is None else snapshot
        artifact = build_artifact(
            graph, algorithm=algorithm, workers=workers, **kwargs
        )
        if register:
            self.register_artifact(artifact)
            tracker = self.tracker
            if tracker is not None:
                # A full rebuild is the recovery path from a dirty tracker;
                # reseed it so the incremental repair resumes — unless the
                # decomposed snapshot was pinned before further mutations,
                # in which case its φ does not cover the current edges and
                # the reseed refuses without touching the tracker.
                try:
                    tracker.reseed(artifact.phi_by_endpoints())
                except ValueError:
                    pass
        return artifact

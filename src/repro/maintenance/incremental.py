"""Exact localized bitruss-number repair under single-edge updates.

:mod:`repro.maintenance.dynamic` keeps butterfly *supports* exact under
edge insertions and deletions; this module closes the loop its docstring
left open and keeps the *bitruss numbers* φ exact too — without ever
re-peeling the whole graph.  One mutation triggers three localized steps:

1. **Bound** how deep the change can reach.  Inserting ``e₀`` can only
   *raise* φ (every old k-bitruss is still a witness subgraph), and an edge
   can only rise if its new butterflies survive at its new level — all of
   which contain ``e₀`` — so nothing above ``k* = φ_new(e₀)`` moves, and
   every moved edge had ``φ < k*`` before.  ``k*`` itself is capped before
   any peeling by an h-index over the butterflies through ``e₀``: at level
   ``k`` a butterfly needs all four edges in ``H_k`` and φ ≤ support always
   holds, so ``k* ≤ max{k : #{B ∋ e₀ : min support over B} ≥ k}``.
   Deleting ``e₀`` is the mirror image (re-inserting it would restore the
   old state), giving the known-exactly bound ``K = φ_old(e₀)``: only edges
   with ``φ_old ≤ K`` can drop.

2. **Collect** the affected region.  A moved edge must gain (or lose) a
   butterfly at its new level, and the other edges of that butterfly are
   either already settled above the bound or moved themselves — so moved
   edges form butterfly-connected chains anchored at ``e₀``.  A BFS from
   ``e₀`` over butterfly adjacency, expanding only through edges under the
   φ bound, therefore covers everything that can change (usually a tiny
   neighbourhood; the maintained supports make each hop one
   wedge-combination pass).

3. **Re-peel** the region against the frozen remainder with
   :func:`repro.core.peeling_engine.peel_region`: butterflies touching the
   region carry the minimum exterior φ as an expiry level, and the scalar
   bottom-up peel reproduces — bitwise — what a full recompute would assign
   the region edges.

The φ values live in an endpoint-keyed dict (edge *ids* shift when the
snapshot is resorted; endpoints are stable), and
:meth:`IncrementalBitruss.phi_snapshot` lays them out against a frozen
:class:`~repro.graph.bipartite.BipartiteGraph` so artifacts and query
engines can be patched in place.  When a mutation's region outgrows the
caller's budget (``max_region_edges``), the tracker marks itself dirty and
the caller falls back to the full rebuild path — exactness is never traded
for locality.

**Batch path.** :meth:`IncrementalBitruss.apply_batch` amortizes the three
steps across a whole mutation batch: each op collects its region as usual,
but the sub-peel is *deferred* — pending regions accumulate until the batch
ends or a later op's butterflies touch a pending interior edge (detected
before any stale φ is read), at which point every pending region is merged
into **one** multi-seed :func:`peel_region` call.  Coexisting pending
regions are provably butterfly-disjoint (a shared butterfly would have
triggered the conflict flush), so the merged peel is bitwise identical to
peeling them one by one.  Two more batch-only economics fixes ride along:
a **fallback predictor** (h-index bound × first-layer candidate count)
skips the region BFS entirely for ops that will predictably exceed the
budget — the old abort cost was ~5x a successful repair — and the budget
itself adapts via an EWMA of observed region sizes
(:class:`AdaptiveBudget`), so residual aborts stay cheap instead of paying
the static ``rebuild_threshold × m`` work cap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Set, Tuple

import numpy as np

from repro.core.peeling_engine import NO_EXPIRY, peel_region
from repro.graph.bipartite import BipartiteGraph
from repro.obs import metrics as obs_metrics
from repro.obs import phases as obs_phases

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (dynamic imports us)
    from repro.maintenance.dynamic import DynamicBipartiteGraph

Edge = Tuple[int, int]

#: A butterfly as its canonical vertex quadruple:
#: ``(upper_lo, upper_hi, lower_lo, lower_hi)``.
FlyKey = Tuple[int, int, int, int]

#: Region search outcomes beyond a successful collection.
_BUDGET = "budget"
_CONFLICT = "conflict"


class DirtyTrackerError(RuntimeError):
    """φ repair was requested on a tracker that has lost sync.

    Raised after a region-budget fallback (or an explicit
    :meth:`IncrementalBitruss.mark_dirty`) until :meth:`~IncrementalBitruss.reseed`
    installs a freshly computed φ.
    """


@dataclass
class RepairReport:
    """What one localized repair did (one per insert/delete).

    Attributes
    ----------
    op:
        ``"insert"`` or ``"delete"``.
    edge:
        The mutated ``(u, v)`` pair.
    butterflies:
        Butterflies created (insert) or destroyed (delete) by the mutation.
    k_bound:
        The φ bound ``K`` that pruned the region search.
    region_size:
        Edges whose φ was recomputed (0 when the bound proved nothing can
        move).
    region_fraction:
        ``region_size`` over the post-mutation edge count.
    changed:
        Edges whose φ actually changed, with ``(old, new)`` values; the
        inserted edge appears with ``old = -1``, a deleted one is omitted.
    fallback:
        True when the region budget was exceeded — φ was *not* repaired
        and the tracker is now dirty.
    """

    op: str
    edge: Edge
    butterflies: int = 0
    k_bound: int = 0
    region_size: int = 0
    region_fraction: float = 0.0
    changed: Dict[Edge, Tuple[int, int]] = field(default_factory=dict)
    fallback: bool = False

    @property
    def max_affected_k(self) -> int:
        """Highest level whose k-bitruss may differ from before the op.

        For deletions this includes the deleted edge's own former level
        (``k_bound``): every ``H_k`` up to it lost that edge even when no
        *other* edge's φ moved, so caches keyed at those levels are stale
        regardless of ``changed``.
        """
        levels = [0]
        if self.op == "delete":
            levels.append(self.k_bound)
        for old, new in self.changed.values():
            levels.append(max(old, new))
        return max(levels)


@dataclass
class AdaptiveBudget:
    """Region budget that tracks the workload instead of a static fraction.

    The old budget was ``rebuild_threshold × m`` — tuned for "how big a
    region is still cheaper than a rebuild", which is the right *ceiling*
    but a terrible *abort bound*: the search's work cap scales with the
    budget, so every hopeless hub-edge search paid ~32× the ceiling in
    wedge enumerations before giving up.  This class keeps an EWMA of the
    region sizes that actually succeeded and caps the search at
    ``headroom ×`` that scale (never below ``floor``, never above the
    caller's ceiling).  Typical regions still fit with an order of
    magnitude to spare; hopeless ones abort after a fraction of the old
    work.

    ``enabled=False`` restores the static ceiling-only behaviour
    (``--no-adaptive-budget`` on the serve CLI).
    """

    alpha: float = 0.25
    headroom: float = 8.0
    floor: int = 64
    enabled: bool = True
    ewma: Optional[float] = None
    samples: int = 0

    def observe(self, region_size: int) -> None:
        """Feed one successfully collected region size into the EWMA."""
        if region_size <= 0:
            return
        self.samples += 1
        if self.ewma is None:
            self.ewma = float(region_size)
        else:
            self.ewma = (1.0 - self.alpha) * self.ewma + self.alpha * region_size

    def cap(self, num_edges: int, fraction: Optional[float]) -> Optional[int]:
        """Current region budget in edges (``None`` = unbounded).

        ``fraction`` is the legacy ``rebuild_threshold`` ceiling; before the
        first observation (or when disabled) it is the whole budget, after
        that it only bounds the adaptive cap from above.  ``fraction=None``
        means the caller has no rebuild fallback at all, so no budget is
        imposed — adaptivity only ever *tightens* a finite ceiling.
        """
        if fraction is None:
            return None
        ceiling = int(fraction * max(1, num_edges))
        if not self.enabled or self.ewma is None:
            return ceiling
        return min(ceiling, max(self.floor, int(self.headroom * self.ewma)))


@dataclass
class _PendingRegion:
    """A collected-but-not-yet-peeled region awaiting the batch flush."""

    region: List[Edge]
    flies: Dict[FlyKey, List[Edge]]
    report: RepairReport
    #: Set for insert ops: the new edge's ``changed`` entry is rewritten to
    #: ``(-1, φ_new)`` after the peel lands.
    inserted: Optional[Edge] = None


@dataclass
class _BatchState:
    """Per-:meth:`IncrementalBitruss.apply_batch` bookkeeping."""

    max_region_edges: Optional[int]
    budget_fraction: Optional[float]
    predict: bool
    pending: List[_PendingRegion] = field(default_factory=list)
    pending_edges: Set[Edge] = field(default_factory=set)
    predicted_fallbacks: int = 0
    budget_aborts: int = 0
    conflict_flushes: int = 0
    merged_peels: int = 0
    regions_peeled: int = 0


@dataclass
class BatchReport:
    """What one :meth:`IncrementalBitruss.apply_batch` call did.

    ``reports`` holds one :class:`RepairReport` per op in application order
    (deletes first, then inserts); the batch-level counters summarize the
    deferred-peel machinery: ``merged_peels`` is how many multi-seed
    :func:`peel_region` calls covered the batch's ``regions_peeled``
    regions, and ``conflict_flushes`` counts early flushes forced by
    overlapping regions.
    """

    reports: List[RepairReport] = field(default_factory=list)
    predicted_fallbacks: int = 0
    budget_aborts: int = 0
    conflict_flushes: int = 0
    merged_peels: int = 0
    regions_peeled: int = 0

    @property
    def fallback(self) -> bool:
        """True when any op aborted or was predicted to — φ needs a rebuild."""
        return any(report.fallback for report in self.reports)

    @property
    def butterfly_delta(self) -> int:
        """Net change in butterfly count across the batch."""
        return sum(
            report.butterflies if report.op == "insert" else -report.butterflies
            for report in self.reports
        )

    @property
    def region_size(self) -> int:
        """Total edges whose φ was recomputed across the batch."""
        return sum(report.region_size for report in self.reports)

    @property
    def max_affected_k(self) -> int:
        """Highest level whose k-bitruss may differ — the batch's single
        selective cache-invalidation point."""
        return max(
            (report.max_affected_k for report in self.reports), default=0
        )


class IncrementalBitruss:
    """Maintain exact per-edge bitruss numbers on a dynamic graph.

    Parameters
    ----------
    dynamic:
        The :class:`~repro.maintenance.dynamic.DynamicBipartiteGraph` whose
        φ to maintain.  The tracker drives the graph's own mutators, so use
        :meth:`insert` / :meth:`delete` (or
        :meth:`DynamicBipartiteGraph.apply`) instead of calling
        ``insert_edge`` / ``delete_edge`` directly while a tracker is live.
    phi:
        Initial bitruss numbers keyed by ``(u, v)`` endpoints, covering
        exactly the current edges.  Omitted: computed here with one static
        decomposition.

    Examples
    --------
    >>> from repro.maintenance.dynamic import DynamicBipartiteGraph
    >>> g = DynamicBipartiteGraph(2, 2, [(0, 0), (0, 1), (1, 0)])
    >>> tracker = IncrementalBitruss(g)
    >>> tracker.insert(1, 1).changed[(0, 0)]
    (0, 1)
    >>> tracker.phi_of(1, 1)
    1
    >>> report = tracker.delete(0, 1)
    >>> tracker.phi_of(0, 0)
    0
    """

    def __init__(
        self,
        dynamic: "DynamicBipartiteGraph",
        phi: Optional[Dict[Edge, int]] = None,
    ) -> None:
        self._dyn = dynamic
        if phi is None:
            from repro.service.artifacts import phi_by_endpoints

            result = dynamic.decompose()
            phi = phi_by_endpoints(result.graph, result.phi)
        self._phi: Dict[Edge, int] = dict(phi)
        self._check_coverage()
        self.dirty = False
        #: Adaptive region budget fed by :meth:`apply_batch`; callers may
        #: flip ``budget.enabled`` off to restore the static threshold math.
        self.budget = AdaptiveBudget()

    # ------------------------------------------------------------ plumbing

    def _check_coverage(self, phi: Optional[Dict[Edge, int]] = None) -> None:
        candidate = self._phi if phi is None else phi
        supports = self._dyn.supports()
        if set(candidate) != set(supports):
            raise ValueError(
                "phi must cover exactly the current edges of the graph "
                f"({len(candidate)} phi entries vs {len(supports)} edges)"
            )

    def phi_of(self, u: int, v: int) -> int:
        """Current bitruss number of edge ``(u, v)``."""
        if self.dirty:
            raise DirtyTrackerError(
                "tracker lost sync after a region-budget fallback; a "
                "serving deployment reseeds it automatically once the "
                "scheduled rebuild lands — offline callers must reseed() "
                "from a fresh decomposition"
            )
        try:
            return self._phi[(u, v)]
        except KeyError:
            raise ValueError(f"edge ({u}, {v}) not present") from None

    def phi_map(self) -> Dict[Edge, int]:
        """Snapshot of all current φ values keyed by endpoints."""
        if self.dirty:
            raise DirtyTrackerError("tracker is dirty; reseed() first")
        return dict(self._phi)

    def phi_snapshot(self) -> Tuple[BipartiteGraph, np.ndarray]:
        """Freeze the graph and lay φ out by the snapshot's edge ids.

        Returns the pair an artifact patch needs: an immutable
        :class:`BipartiteGraph` of the current edges plus an ``int64`` φ
        array aligned with its (resorted) edge ids.
        """
        if self.dirty:
            raise DirtyTrackerError("tracker is dirty; reseed() first")
        graph = self._dyn.snapshot()
        phi = np.fromiter(
            (self._phi[(u, v)] for u, v in graph.edges()),
            dtype=np.int64,
            count=graph.num_edges,
        )
        return graph, phi

    def mark_dirty(self) -> None:
        """Declare φ out of sync (mutations keep applying, repairs refuse)."""
        self.dirty = True

    def reseed(self, phi: Dict[Edge, int]) -> None:
        """Install a freshly computed φ (endpoint-keyed) and clear ``dirty``.

        Validated *before* anything is replaced: a reseed whose φ does not
        cover the current edge set raises and leaves the tracker exactly
        as it was (callers that race rebuilds against mutations rely on a
        failed reseed being harmless).
        """
        candidate = dict(phi)
        self._check_coverage(candidate)
        self._phi = candidate
        self.dirty = False

    # ------------------------------------------------------ region search

    def _flies_through(self, u: int, v: int) -> List[Tuple[int, int]]:
        """Partner pairs ``(w, x)`` completing a butterfly with ``(u, v)``."""
        partners = []
        nu = self._dyn.neighbors_of_upper(u)
        for w in self._dyn.neighbors_of_lower(v):
            if w == u:
                continue
            for x in self._dyn.neighbors_of_upper(w):
                if x != v and x in nu:
                    partners.append((w, x))
        return partners

    def _collect_region(
        self,
        seeds: Iterable[Edge],
        bound: int,
        mode: str,
        max_region_edges: Optional[int],
        forbidden: Optional[Set[Edge]] = None,
    ):
        """BFS over butterfly adjacency from ``seeds`` under the mode's rule.

        ``mode="insert"`` expands onto any butterfly partner with
        ``φ_old < bound`` — risers start below the new edge's level and can
        be lifted through arbitrarily low neighbours.  ``mode="delete"``
        uses the sharper rule: an edge can only *drop* if one of its
        level-``φ_old`` butterflies dies, and such a butterfly still exists
        at that level — every other edge in it carries φ at least as high —
        so the candidate must attain the minimum φ of the butterfly
        connecting it to the cascade.  Delete regions therefore descend in
        φ from the seeds instead of flooding the whole ``φ ≤ K`` component.

        ``forbidden`` is the batch path's pending-interior set: those edges
        hold *stale* φ (their peel is deferred), so the search bails with
        :data:`_CONFLICT` the moment one appears in a touched butterfly —
        before any decision reads its φ.

        Returns the region edges plus every butterfly touching the region
        (keyed canonically, each holding its interior members),
        :data:`_BUDGET` when ``max_region_edges`` was exceeded, or
        :data:`_CONFLICT`.
        """
        phi = self._phi
        region: List[Edge] = []
        seen: Set[Edge] = set()
        flies: Dict[FlyKey, List[Edge]] = {}
        stack: List[Edge] = []
        # A region budget must also bound *work*, not just edges: one hub
        # edge inside a giant bloom owns O(k²) butterflies, and a search
        # that is going to abort anyway must not pay for all of them first.
        max_work = None if max_region_edges is None else 32 * max_region_edges
        work = 0
        for seed in seeds:
            if seed not in seen:
                seen.add(seed)
                stack.append(seed)
        while stack:
            edge = stack.pop()
            region.append(edge)
            if max_region_edges is not None and len(region) > max_region_edges:
                return _BUDGET
            u, v = edge
            phi_self = phi[edge]
            partners = self._flies_through(u, v)
            work += len(partners)
            if max_work is not None and work > max_work:
                return _BUDGET
            for w, x in partners:
                others = ((u, x), (w, v), (w, x))
                if forbidden is not None and (
                    others[0] in forbidden
                    or others[1] in forbidden
                    or others[2] in forbidden
                ):
                    return _CONFLICT
                key = (min(u, w), max(u, w), min(v, x), max(v, x))
                members = flies.get(key)
                if members is None:
                    flies[key] = [edge]
                elif edge not in members:
                    members.append(edge)
                if mode == "insert":
                    for other in others:
                        if other not in seen and phi[other] < bound:
                            seen.add(other)
                            stack.append(other)
                else:
                    fly_min = min(
                        phi_self, phi[others[0]], phi[others[1]], phi[others[2]]
                    )
                    if fly_min > 0:  # a φ = 0 edge can never drop
                        for other in others:
                            if other not in seen and phi[other] == fly_min:
                                seen.add(other)
                                stack.append(other)
        return region, flies

    def _search(
        self,
        seeds: Iterable[Edge],
        bound: int,
        mode: str,
        max_region_edges: Optional[int],
        forbidden: Optional[Set[Edge]] = None,
    ):
        """Region search phase: collect + enumeration parity check.

        Returns ``(region, flies)``, :data:`_BUDGET`, or :data:`_CONFLICT`.
        The support-parity assert must run *here* (collect time), not at
        the deferred peel: later batch mutations legitimately change
        supports outside the pending regions.
        """
        with obs_phases.phase("region search"):
            collected = self._collect_region(
                seeds, bound, mode, max_region_edges, forbidden
            )
        if collected is _BUDGET or collected is _CONFLICT:
            return collected
        region, flies = collected
        if __debug__:
            # Safety net for the enumeration: a region edge's collected
            # butterfly count must equal its maintained support exactly.
            counts = {edge: 0 for edge in region}
            for members in flies.values():
                for member in members:
                    counts[member] += 1
            for (eu, ev), count in counts.items():
                assert count == self._dyn.support_of(eu, ev), (
                    f"butterfly enumeration out of sync at ({eu}, {ev})"
                )
        return region, flies

    def _abort(self, report: RepairReport) -> RepairReport:
        """Record a budget fallback: the tracker is dirty from here on."""
        self.mark_dirty()
        report.fallback = True
        obs_metrics.get_registry().counter(
            "repro_incremental_budget_aborts_total",
            "Region searches aborted by the max_region_edges budget "
            "(each forces a full re-peel fallback).",
        ).inc()
        return report

    def _peel_pending(self, pending: List[_PendingRegion]) -> None:
        """Peel every pending region in ONE multi-seed ``peel_region`` call.

        Coexisting pending regions are butterfly-disjoint by construction
        (any shared butterfly triggers a conflict flush before the second
        region goes pending), so concatenating them into a single local
        index space peels each connected component exactly as a standalone
        call would — at one call's overhead.  Exterior expiry levels are
        read *now*, which is safe for the same reason: a pending region's
        exterior edge is never another pending region's interior (the
        shared butterfly would have conflicted), so every φ read here is
        exact.
        """
        region: List[Edge] = []
        local_id: Dict[Edge, int] = {}
        for entry in pending:
            for edge in entry.region:
                local_id[edge] = len(region)
                region.append(edge)
        if not region:
            return
        fly_edges: List[List[int]] = []
        fly_expiry: List[int] = []
        for entry in pending:
            for (u_lo, u_hi, v_lo, v_hi), members in entry.flies.items():
                interior = [local_id[m] for m in members]
                expiry = NO_EXPIRY
                if len(members) < 4:
                    member_set = set(members)
                    exterior_phi = [
                        self._phi[e]
                        for e in (
                            (u_lo, v_lo),
                            (u_lo, v_hi),
                            (u_hi, v_lo),
                            (u_hi, v_hi),
                        )
                        if e not in member_set
                    ]
                    expiry = min(exterior_phi)
                fly_edges.append(interior)
                fly_expiry.append(expiry)
        with obs_phases.phase("region peel"):
            new_phi = peel_region(len(region), fly_edges, fly_expiry)
        values = new_phi.tolist()
        for entry in pending:
            report = entry.report
            for edge in entry.region:
                old = self._phi[edge]
                value = values[local_id[edge]]
                if old != value:
                    report.changed[edge] = (old, value)
                    self._phi[edge] = value
            if entry.inserted is not None:
                report.changed[entry.inserted] = (
                    -1,
                    self._phi[entry.inserted],
                )

    def _flush(self, state: _BatchState) -> None:
        """Apply every deferred peel and clear the pending set."""
        if not state.pending:
            return
        state.merged_peels += 1
        state.regions_peeled += len(state.pending)
        self._peel_pending(state.pending)
        state.pending.clear()
        state.pending_edges.clear()

    def _repair(
        self,
        seeds: Iterable[Edge],
        bound: int,
        mode: str,
        max_region_edges: Optional[int],
        report: RepairReport,
    ) -> RepairReport:
        """Immediate-mode repair: search, then peel right away."""
        found = self._search(seeds, bound, mode, max_region_edges)
        if found is _BUDGET:
            return self._abort(report)
        region, flies = found
        report.region_size = len(region)
        num_edges = self._dyn.num_edges
        report.region_fraction = len(region) / num_edges if num_edges else 0.0
        if region:
            self._peel_pending(
                [_PendingRegion(region=region, flies=flies, report=report)]
            )
        return report

    # ------------------------------------------------- shared op helpers

    def _insert_bound(
        self, u: int, v: int, partners: List[Tuple[int, int]]
    ) -> int:
        """h-index bound on ``φ_new(u, v)`` over its butterflies.

        A butterfly survives at level k only if all four of its edges do,
        and φ ≤ support always holds, so ``k* ≤ max{k : #{B ∋ e₀ :
        min support over B} ≥ k}``.  ``partners`` are the wedge completions
        of ``(u, v)``; supports are read post-insert.
        """
        mins = sorted(
            (
                min(
                    self._dyn.support_of(u, x),
                    self._dyn.support_of(w, v),
                    self._dyn.support_of(w, x),
                )
                for w, x in partners
            ),
            reverse=True,
        )
        bound = 0
        for i, value in enumerate(mins):
            bound = max(bound, min(value, i + 1))
        return bound

    def _delete_seeds(
        self, u: int, v: int, bound: int, partners: List[Tuple[int, int]]
    ) -> List[Edge]:
        """Seeds for a delete's region: partner edges that attain the
        minimum φ of a butterfly through ``(u, v)`` — only a butterfly
        alive at the candidate's own level can pull it down when it dies
        (the min includes ``(u, v)``'s φ, i.e. ``bound``)."""
        seeds: List[Edge] = []
        seeded: Set[Edge] = set()
        for w, x in partners:
            others = ((u, x), (w, v), (w, x))
            fly_min = min(bound, *(self._phi[e] for e in others))
            if fly_min > 0:  # a φ = 0 edge can never drop
                for edge in others:
                    if self._phi[edge] == fly_min and edge not in seeded:
                        seeded.add(edge)
                        seeds.append(edge)
        return seeds

    # ----------------------------------------------------------- mutation

    def insert(
        self,
        u: int,
        v: int,
        *,
        max_region_edges: Optional[int] = None,
    ) -> RepairReport:
        """Insert edge ``(u, v)`` and repair φ in its affected region.

        Parameters
        ----------
        u, v:
            Endpoints (must be in range; the edge must be absent).
        max_region_edges:
            Region budget; exceeding it leaves the mutation applied but φ
            unrepaired — the tracker goes dirty and ``report.fallback`` is
            set so the caller can schedule a full rebuild.

        Returns
        -------
        RepairReport
        """
        created = self._dyn.insert_edge(u, v)
        report = RepairReport(op="insert", edge=(u, v), butterflies=created)
        if self.dirty:
            report.fallback = True
            return report
        self._phi[(u, v)] = 0
        if created == 0:
            # No butterflies: the new edge settles at φ = 0 and no support
            # moved anywhere, so the decomposition is already exact.
            return report

        bound = self._insert_bound(u, v, self._flies_through(u, v))
        report.k_bound = bound
        report.changed[(u, v)] = (-1, 0)
        if bound == 0:
            return report
        report = self._repair(
            [(u, v)], bound, "insert", max_region_edges, report
        )
        if not report.fallback:
            new_value = self._phi[(u, v)]
            report.changed[(u, v)] = (-1, new_value)
        return report

    def delete(
        self,
        u: int,
        v: int,
        *,
        max_region_edges: Optional[int] = None,
    ) -> RepairReport:
        """Delete edge ``(u, v)`` and repair φ in its affected region.

        See :meth:`insert` for the budget semantics; the bound here is
        exact (``K = φ_old(u, v)``) because deletion can only pull edges at
        or below the deleted edge's own level.
        """
        if self.dirty:
            destroyed = self._dyn.delete_edge(u, v)
            return RepairReport(
                op="delete", edge=(u, v), butterflies=destroyed, fallback=True
            )
        if (u, v) not in self._phi:
            # Delegate the error surface to the graph's own range checks.
            self._dyn.delete_edge(u, v)
            raise AssertionError("unreachable")  # pragma: no cover
        bound = self._phi[(u, v)]
        seeds = self._delete_seeds(u, v, bound, self._flies_through(u, v))
        destroyed = self._dyn.delete_edge(u, v)
        del self._phi[(u, v)]
        report = RepairReport(
            op="delete", edge=(u, v), butterflies=destroyed, k_bound=bound
        )
        if destroyed == 0 or bound == 0 or not seeds:
            # Either no butterfly died, or every edge that lost one already
            # sits at φ = 0 (φ ≥ 0 cannot drop further): nothing to repair.
            return report
        return self._repair(seeds, bound, "delete", max_region_edges, report)

    # -------------------------------------------------------- batch path

    def _conflicts(
        self,
        edge: Optional[Edge],
        partners: List[Tuple[int, int]],
        u: int,
        v: int,
        state: _BatchState,
    ) -> bool:
        """True when an op's butterflies touch a pending interior edge.

        Checked against the *pre-mutation* graph before anything is
        applied: the mutation creates/destroys exactly the butterflies
        spanned by ``partners``, so a clear here guarantees the pending
        regions' collected butterfly sets (and their supports, and their
        exterior φ reads) stay valid after the mutation lands.
        """
        pending = state.pending_edges
        if not pending:
            return False
        if edge is not None and edge in pending:
            return True
        for w, x in partners:
            if (
                (u, x) in pending
                or (w, v) in pending
                or (w, x) in pending
            ):
                return True
        return False

    def _predicted_blowout(
        self,
        bound: int,
        first_layer: int,
        cap: Optional[int],
        state: _BatchState,
    ) -> bool:
        """Cheap fallback predictor: h-index bound × first-layer estimate.

        The insert BFS expands through edges below ``bound`` for up to
        ``bound`` cascading levels, so ``bound × first-layer candidates``
        estimates the region scale from quantities the op already computed
        — no BFS, no abort cost.  Mispredictions are economics, never
        correctness: a false positive skips a repair that would have fit
        (the batch falls back to one rebuild), a false negative runs the
        search and hits the work cap as before.
        """
        if not state.predict or cap is None:
            return False
        estimate = max(1, bound) * max(1, first_layer)
        return estimate > cap

    def _cap_for_op(self, state: _BatchState) -> Optional[int]:
        if state.max_region_edges is not None:
            return state.max_region_edges
        return self.budget.cap(self._dyn.num_edges, state.budget_fraction)

    def _batch_fallback(
        self, report: RepairReport, state: _BatchState, predicted: bool
    ) -> RepairReport:
        """Fallback inside a batch: land pending peels, then go dirty.

        The pending regions were collected against exact φ and are
        untouched by this op's mutation (the conflict check cleared it), so
        their deferred peels are still valid — applying them keeps φ
        repaired up to the last healthy op before the tracker goes dirty.
        """
        self._flush(state)
        registry = obs_metrics.get_registry()
        if predicted:
            state.predicted_fallbacks += 1
            registry.counter(
                "repro_incremental_predicted_fallbacks_total",
                "Ops whose region search was skipped because the "
                "bound × first-layer estimate exceeded the budget.",
            ).inc()
            self.mark_dirty()
            report.fallback = True
            return report
        state.budget_aborts += 1
        registry.counter(
            "repro_incremental_predictor_misses_total",
            "Region searches the predictor allowed that still aborted "
            "on the budget.",
        ).inc()
        return self._abort(report)

    def _defer(
        self,
        region: List[Edge],
        flies: Dict[FlyKey, List[Edge]],
        report: RepairReport,
        state: _BatchState,
        inserted: Optional[Edge] = None,
    ) -> None:
        """Queue a collected region for the batch's merged peel."""
        report.region_size = len(region)
        num_edges = self._dyn.num_edges
        report.region_fraction = len(region) / num_edges if num_edges else 0.0
        self.budget.observe(len(region))
        if state.predict:
            obs_metrics.get_registry().counter(
                "repro_incremental_predictor_hits_total",
                "Region searches the predictor allowed that completed "
                "within budget.",
            ).inc()
        if not region:
            if inserted is not None:
                report.changed[inserted] = (-1, self._phi[inserted])
            return
        state.pending.append(
            _PendingRegion(
                region=region, flies=flies, report=report, inserted=inserted
            )
        )
        state.pending_edges.update(region)

    def _search_batched(
        self,
        seeds: List[Edge],
        bound: int,
        mode: str,
        cap: Optional[int],
        state: _BatchState,
    ):
        """Search with conflict detection; one flush-and-retry on overlap."""
        found = self._search(seeds, bound, mode, cap, state.pending_edges)
        if found is _CONFLICT:
            state.conflict_flushes += 1
            self._flush(state)
            found = self._search(seeds, bound, mode, cap)
        return found

    def _insert_batched(
        self, u: int, v: int, state: _BatchState
    ) -> RepairReport:
        partners = self._flies_through(u, v)  # pre-insert completions
        if self._conflicts(None, partners, u, v, state):
            state.conflict_flushes += 1
            self._flush(state)
        created = self._dyn.insert_edge(u, v)
        report = RepairReport(op="insert", edge=(u, v), butterflies=created)
        self._phi[(u, v)] = 0
        if created == 0:
            return report
        bound = self._insert_bound(u, v, partners)
        report.k_bound = bound
        report.changed[(u, v)] = (-1, 0)
        if bound == 0:
            return report
        cap = self._cap_for_op(state)
        if state.predict and cap is not None:
            phi = self._phi
            first_layer = set()
            for w, x in partners:
                for other in ((u, x), (w, v), (w, x)):
                    if phi[other] < bound:
                        first_layer.add(other)
            if self._predicted_blowout(bound, len(first_layer), cap, state):
                return self._batch_fallback(report, state, predicted=True)
        found = self._search_batched([(u, v)], bound, "insert", cap, state)
        if found is _BUDGET:
            return self._batch_fallback(report, state, predicted=False)
        region, flies = found
        self._defer(region, flies, report, state, inserted=(u, v))
        return report

    def _delete_batched(
        self, u: int, v: int, state: _BatchState
    ) -> RepairReport:
        partners = self._flies_through(u, v)  # pre-delete enumeration
        if self._conflicts((u, v), partners, u, v, state):
            state.conflict_flushes += 1
            self._flush(state)
        bound = self._phi[(u, v)]
        seeds = self._delete_seeds(u, v, bound, partners)
        destroyed = self._dyn.delete_edge(u, v)
        del self._phi[(u, v)]
        report = RepairReport(
            op="delete", edge=(u, v), butterflies=destroyed, k_bound=bound
        )
        if destroyed == 0 or bound == 0 or not seeds:
            # Either no butterfly died, or every edge that lost one already
            # sits at φ = 0 (φ ≥ 0 cannot drop further): nothing to repair.
            return report
        cap = self._cap_for_op(state)
        if self._predicted_blowout(bound, len(seeds), cap, state):
            return self._batch_fallback(report, state, predicted=True)
        found = self._search_batched(seeds, bound, "delete", cap, state)
        if found is _BUDGET:
            return self._batch_fallback(report, state, predicted=False)
        region, flies = found
        self._defer(region, flies, report, state)
        return report

    def apply_batch(
        self,
        inserts: Iterable[Edge] = (),
        deletes: Iterable[Edge] = (),
        *,
        max_region_edges: Optional[int] = None,
        budget_fraction: Optional[float] = None,
        predict: bool = True,
    ) -> BatchReport:
        """Apply a mutation batch with deferred, merged region peels.

        The whole batch is validated against the current graph *before*
        anything mutates (see
        :meth:`DynamicBipartiteGraph.validate_batch`); a bad op raises
        ``ValueError`` and leaves graph and tracker untouched.  Deletes
        apply before inserts, so a delete+insert of the same edge is a
        toggle.

        Each op collects its region as in :meth:`insert` / :meth:`delete`,
        but peels are deferred and merged: butterfly-disjoint regions
        accumulate until the batch ends (or an overlap forces a flush) and
        then re-peel in one multi-seed :func:`peel_region` call.  The
        region budget defaults to the tracker's :class:`AdaptiveBudget`
        bounded by ``budget_fraction × m`` (``max_region_edges``
        overrides both), and ``predict=True`` skips the BFS for ops the
        bound × first-layer estimate marks hopeless.  After any fallback
        (predicted or aborted) the tracker is dirty and the remaining ops
        apply support-only, exactly as the per-op path behaves.

        Returns
        -------
        BatchReport
            Per-op reports plus batch-level predictor/peel counters.
        """
        inserts = [(int(u), int(v)) for u, v in inserts]
        deletes = [(int(u), int(v)) for u, v in deletes]
        self._dyn.validate_batch(inserts, deletes)
        state = _BatchState(
            max_region_edges=max_region_edges,
            budget_fraction=budget_fraction,
            predict=predict,
        )
        batch = BatchReport()
        for kind, (u, v) in [("delete", e) for e in deletes] + [
            ("insert", e) for e in inserts
        ]:
            if self.dirty:
                # φ is already lost: keep the mirror exact, skip repair.
                if kind == "insert":
                    created = self._dyn.insert_edge(u, v)
                    report = RepairReport(
                        op="insert",
                        edge=(u, v),
                        butterflies=created,
                        fallback=True,
                    )
                else:
                    destroyed = self._dyn.delete_edge(u, v)
                    report = RepairReport(
                        op="delete",
                        edge=(u, v),
                        butterflies=destroyed,
                        fallback=True,
                    )
            elif kind == "insert":
                report = self._insert_batched(u, v, state)
            else:
                report = self._delete_batched(u, v, state)
            batch.reports.append(report)
        self._flush(state)
        batch.predicted_fallbacks = state.predicted_fallbacks
        batch.budget_aborts = state.budget_aborts
        batch.conflict_flushes = state.conflict_flushes
        batch.merged_peels = state.merged_peels
        batch.regions_peeled = state.regions_peeled
        return batch

    def verify(self) -> bool:
        """Parity check against a fresh static decomposition (tests/debug)."""
        graph, phi = self.phi_snapshot()
        from repro.core.api import bitruss_decomposition

        fresh = bitruss_decomposition(graph, algorithm="bit-bu-csr")
        return bool(np.array_equal(phi, fresh.phi))

    def __repr__(self) -> str:
        return (
            f"IncrementalBitruss(m={self._dyn.num_edges}, "
            f"dirty={self.dirty})"
        )

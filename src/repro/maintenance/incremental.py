"""Exact localized bitruss-number repair under single-edge updates.

:mod:`repro.maintenance.dynamic` keeps butterfly *supports* exact under
edge insertions and deletions; this module closes the loop its docstring
left open and keeps the *bitruss numbers* φ exact too — without ever
re-peeling the whole graph.  One mutation triggers three localized steps:

1. **Bound** how deep the change can reach.  Inserting ``e₀`` can only
   *raise* φ (every old k-bitruss is still a witness subgraph), and an edge
   can only rise if its new butterflies survive at its new level — all of
   which contain ``e₀`` — so nothing above ``k* = φ_new(e₀)`` moves, and
   every moved edge had ``φ < k*`` before.  ``k*`` itself is capped before
   any peeling by an h-index over the butterflies through ``e₀``: at level
   ``k`` a butterfly needs all four edges in ``H_k`` and φ ≤ support always
   holds, so ``k* ≤ max{k : #{B ∋ e₀ : min support over B} ≥ k}``.
   Deleting ``e₀`` is the mirror image (re-inserting it would restore the
   old state), giving the known-exactly bound ``K = φ_old(e₀)``: only edges
   with ``φ_old ≤ K`` can drop.

2. **Collect** the affected region.  A moved edge must gain (or lose) a
   butterfly at its new level, and the other edges of that butterfly are
   either already settled above the bound or moved themselves — so moved
   edges form butterfly-connected chains anchored at ``e₀``.  A BFS from
   ``e₀`` over butterfly adjacency, expanding only through edges under the
   φ bound, therefore covers everything that can change (usually a tiny
   neighbourhood; the maintained supports make each hop one
   wedge-combination pass).

3. **Re-peel** the region against the frozen remainder with
   :func:`repro.core.peeling_engine.peel_region`: butterflies touching the
   region carry the minimum exterior φ as an expiry level, and the scalar
   bottom-up peel reproduces — bitwise — what a full recompute would assign
   the region edges.

The φ values live in an endpoint-keyed dict (edge *ids* shift when the
snapshot is resorted; endpoints are stable), and
:meth:`IncrementalBitruss.phi_snapshot` lays them out against a frozen
:class:`~repro.graph.bipartite.BipartiteGraph` so artifacts and query
engines can be patched in place.  When a mutation's region outgrows the
caller's budget (``max_region_edges``), the tracker marks itself dirty and
the caller falls back to the full rebuild path — exactness is never traded
for locality.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Set, Tuple

import numpy as np

from repro.core.peeling_engine import NO_EXPIRY, peel_region
from repro.graph.bipartite import BipartiteGraph
from repro.obs import metrics as obs_metrics
from repro.obs import phases as obs_phases

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (dynamic imports us)
    from repro.maintenance.dynamic import DynamicBipartiteGraph

Edge = Tuple[int, int]

#: A butterfly as its canonical vertex quadruple:
#: ``(upper_lo, upper_hi, lower_lo, lower_hi)``.
FlyKey = Tuple[int, int, int, int]


class DirtyTrackerError(RuntimeError):
    """φ repair was requested on a tracker that has lost sync.

    Raised after a region-budget fallback (or an explicit
    :meth:`IncrementalBitruss.mark_dirty`) until :meth:`~IncrementalBitruss.reseed`
    installs a freshly computed φ.
    """


@dataclass
class RepairReport:
    """What one localized repair did (one per insert/delete).

    Attributes
    ----------
    op:
        ``"insert"`` or ``"delete"``.
    edge:
        The mutated ``(u, v)`` pair.
    butterflies:
        Butterflies created (insert) or destroyed (delete) by the mutation.
    k_bound:
        The φ bound ``K`` that pruned the region search.
    region_size:
        Edges whose φ was recomputed (0 when the bound proved nothing can
        move).
    region_fraction:
        ``region_size`` over the post-mutation edge count.
    changed:
        Edges whose φ actually changed, with ``(old, new)`` values; the
        inserted edge appears with ``old = -1``, a deleted one is omitted.
    fallback:
        True when the region budget was exceeded — φ was *not* repaired
        and the tracker is now dirty.
    """

    op: str
    edge: Edge
    butterflies: int = 0
    k_bound: int = 0
    region_size: int = 0
    region_fraction: float = 0.0
    changed: Dict[Edge, Tuple[int, int]] = field(default_factory=dict)
    fallback: bool = False

    @property
    def max_affected_k(self) -> int:
        """Highest level whose k-bitruss may differ from before the op.

        For deletions this includes the deleted edge's own former level
        (``k_bound``): every ``H_k`` up to it lost that edge even when no
        *other* edge's φ moved, so caches keyed at those levels are stale
        regardless of ``changed``.
        """
        levels = [0]
        if self.op == "delete":
            levels.append(self.k_bound)
        for old, new in self.changed.values():
            levels.append(max(old, new))
        return max(levels)


class IncrementalBitruss:
    """Maintain exact per-edge bitruss numbers on a dynamic graph.

    Parameters
    ----------
    dynamic:
        The :class:`~repro.maintenance.dynamic.DynamicBipartiteGraph` whose
        φ to maintain.  The tracker drives the graph's own mutators, so use
        :meth:`insert` / :meth:`delete` (or
        :meth:`DynamicBipartiteGraph.apply`) instead of calling
        ``insert_edge`` / ``delete_edge`` directly while a tracker is live.
    phi:
        Initial bitruss numbers keyed by ``(u, v)`` endpoints, covering
        exactly the current edges.  Omitted: computed here with one static
        decomposition.

    Examples
    --------
    >>> from repro.maintenance.dynamic import DynamicBipartiteGraph
    >>> g = DynamicBipartiteGraph(2, 2, [(0, 0), (0, 1), (1, 0)])
    >>> tracker = IncrementalBitruss(g)
    >>> tracker.insert(1, 1).changed[(0, 0)]
    (0, 1)
    >>> tracker.phi_of(1, 1)
    1
    >>> report = tracker.delete(0, 1)
    >>> tracker.phi_of(0, 0)
    0
    """

    def __init__(
        self,
        dynamic: "DynamicBipartiteGraph",
        phi: Optional[Dict[Edge, int]] = None,
    ) -> None:
        self._dyn = dynamic
        if phi is None:
            from repro.service.artifacts import phi_by_endpoints

            result = dynamic.decompose()
            phi = phi_by_endpoints(result.graph, result.phi)
        self._phi: Dict[Edge, int] = dict(phi)
        self._check_coverage()
        self.dirty = False

    # ------------------------------------------------------------ plumbing

    def _check_coverage(self, phi: Optional[Dict[Edge, int]] = None) -> None:
        candidate = self._phi if phi is None else phi
        supports = self._dyn.supports()
        if set(candidate) != set(supports):
            raise ValueError(
                "phi must cover exactly the current edges of the graph "
                f"({len(candidate)} phi entries vs {len(supports)} edges)"
            )

    def phi_of(self, u: int, v: int) -> int:
        """Current bitruss number of edge ``(u, v)``."""
        if self.dirty:
            raise DirtyTrackerError(
                "tracker lost sync after a region-budget fallback; reseed() "
                "it from a fresh decomposition"
            )
        try:
            return self._phi[(u, v)]
        except KeyError:
            raise ValueError(f"edge ({u}, {v}) not present") from None

    def phi_map(self) -> Dict[Edge, int]:
        """Snapshot of all current φ values keyed by endpoints."""
        if self.dirty:
            raise DirtyTrackerError("tracker is dirty; reseed() first")
        return dict(self._phi)

    def phi_snapshot(self) -> Tuple[BipartiteGraph, np.ndarray]:
        """Freeze the graph and lay φ out by the snapshot's edge ids.

        Returns the pair an artifact patch needs: an immutable
        :class:`BipartiteGraph` of the current edges plus an ``int64`` φ
        array aligned with its (resorted) edge ids.
        """
        if self.dirty:
            raise DirtyTrackerError("tracker is dirty; reseed() first")
        graph = self._dyn.snapshot()
        phi = np.fromiter(
            (self._phi[(u, v)] for u, v in graph.edges()),
            dtype=np.int64,
            count=graph.num_edges,
        )
        return graph, phi

    def mark_dirty(self) -> None:
        """Declare φ out of sync (mutations keep applying, repairs refuse)."""
        self.dirty = True

    def reseed(self, phi: Dict[Edge, int]) -> None:
        """Install a freshly computed φ (endpoint-keyed) and clear ``dirty``.

        Validated *before* anything is replaced: a reseed whose φ does not
        cover the current edge set raises and leaves the tracker exactly
        as it was (callers that race rebuilds against mutations rely on a
        failed reseed being harmless).
        """
        candidate = dict(phi)
        self._check_coverage(candidate)
        self._phi = candidate
        self.dirty = False

    # ------------------------------------------------------ region search

    def _flies_through(self, u: int, v: int) -> List[Tuple[int, int]]:
        """Partner pairs ``(w, x)`` completing a butterfly with ``(u, v)``."""
        partners = []
        nu = self._dyn.neighbors_of_upper(u)
        for w in self._dyn.neighbors_of_lower(v):
            if w == u:
                continue
            for x in self._dyn.neighbors_of_upper(w):
                if x != v and x in nu:
                    partners.append((w, x))
        return partners

    def _collect_region(
        self,
        seeds: Iterable[Edge],
        bound: int,
        mode: str,
        max_region_edges: Optional[int],
    ) -> Optional[Tuple[List[Edge], Dict[FlyKey, List[Edge]]]]:
        """BFS over butterfly adjacency from ``seeds`` under the mode's rule.

        ``mode="insert"`` expands onto any butterfly partner with
        ``φ_old < bound`` — risers start below the new edge's level and can
        be lifted through arbitrarily low neighbours.  ``mode="delete"``
        uses the sharper rule: an edge can only *drop* if one of its
        level-``φ_old`` butterflies dies, and such a butterfly still exists
        at that level — every other edge in it carries φ at least as high —
        so the candidate must attain the minimum φ of the butterfly
        connecting it to the cascade.  Delete regions therefore descend in
        φ from the seeds instead of flooding the whole ``φ ≤ K`` component.

        Returns the region edges plus every butterfly touching the region
        (keyed canonically, each holding its interior members), or ``None``
        when ``max_region_edges`` was exceeded.
        """
        phi = self._phi
        region: List[Edge] = []
        seen: Set[Edge] = set()
        flies: Dict[FlyKey, List[Edge]] = {}
        stack: List[Edge] = []
        # A region budget must also bound *work*, not just edges: one hub
        # edge inside a giant bloom owns O(k²) butterflies, and a search
        # that is going to abort anyway must not pay for all of them first.
        max_work = None if max_region_edges is None else 32 * max_region_edges
        work = 0
        for seed in seeds:
            if seed not in seen:
                seen.add(seed)
                stack.append(seed)
        while stack:
            edge = stack.pop()
            region.append(edge)
            if max_region_edges is not None and len(region) > max_region_edges:
                return None
            u, v = edge
            phi_self = phi[edge]
            partners = self._flies_through(u, v)
            work += len(partners)
            if max_work is not None and work > max_work:
                return None
            for w, x in partners:
                key = (min(u, w), max(u, w), min(v, x), max(v, x))
                members = flies.get(key)
                if members is None:
                    flies[key] = [edge]
                elif edge not in members:
                    members.append(edge)
                others = ((u, x), (w, v), (w, x))
                if mode == "insert":
                    for other in others:
                        if other not in seen and phi[other] < bound:
                            seen.add(other)
                            stack.append(other)
                else:
                    fly_min = min(
                        phi_self, phi[others[0]], phi[others[1]], phi[others[2]]
                    )
                    if fly_min > 0:  # a φ = 0 edge can never drop
                        for other in others:
                            if other not in seen and phi[other] == fly_min:
                                seen.add(other)
                                stack.append(other)
        return region, flies

    def _repair(
        self,
        seeds: Iterable[Edge],
        bound: int,
        mode: str,
        max_region_edges: Optional[int],
        report: RepairReport,
    ) -> RepairReport:
        """Run the region search + sub-peel and patch ``self._phi``."""
        with obs_phases.phase("region search"):
            collected = self._collect_region(seeds, bound, mode, max_region_edges)
        if collected is None:
            self.mark_dirty()
            report.fallback = True
            obs_metrics.get_registry().counter(
                "repro_incremental_budget_aborts_total",
                "Region searches aborted by the max_region_edges budget "
                "(each forces a full re-peel fallback).",
            ).inc()
            return report
        region, flies = collected
        report.region_size = len(region)
        num_edges = self._dyn.num_edges
        report.region_fraction = len(region) / num_edges if num_edges else 0.0
        if not region:
            return report

        if __debug__:
            # Safety net for the enumeration: a region edge's collected
            # butterfly count must equal its maintained support exactly.
            counts = {edge: 0 for edge in region}
            for members in flies.values():
                for member in members:
                    counts[member] += 1
            for (eu, ev), count in counts.items():
                assert count == self._dyn.support_of(eu, ev), (
                    f"butterfly enumeration out of sync at ({eu}, {ev})"
                )

        local_id = {edge: i for i, edge in enumerate(region)}
        fly_edges: List[List[int]] = []
        fly_expiry: List[int] = []
        for (u_lo, u_hi, v_lo, v_hi), members in flies.items():
            interior = [local_id[m] for m in members]
            expiry = NO_EXPIRY
            if len(members) < 4:
                member_set = set(members)
                exterior_phi = [
                    self._phi[e]
                    for e in (
                        (u_lo, v_lo), (u_lo, v_hi), (u_hi, v_lo), (u_hi, v_hi)
                    )
                    if e not in member_set
                ]
                expiry = min(exterior_phi)
            fly_edges.append(interior)
            fly_expiry.append(expiry)

        with obs_phases.phase("region peel"):
            new_phi = peel_region(len(region), fly_edges, fly_expiry)
        for edge, value in zip(region, new_phi.tolist()):
            old = self._phi[edge]
            if old != value:
                report.changed[edge] = (old, value)
                self._phi[edge] = value
        return report

    # ----------------------------------------------------------- mutation

    def insert(
        self,
        u: int,
        v: int,
        *,
        max_region_edges: Optional[int] = None,
    ) -> RepairReport:
        """Insert edge ``(u, v)`` and repair φ in its affected region.

        Parameters
        ----------
        u, v:
            Endpoints (must be in range; the edge must be absent).
        max_region_edges:
            Region budget; exceeding it leaves the mutation applied but φ
            unrepaired — the tracker goes dirty and ``report.fallback`` is
            set so the caller can schedule a full rebuild.

        Returns
        -------
        RepairReport
        """
        created = self._dyn.insert_edge(u, v)
        report = RepairReport(op="insert", edge=(u, v), butterflies=created)
        if self.dirty:
            report.fallback = True
            return report
        self._phi[(u, v)] = 0
        if created == 0:
            # No butterflies: the new edge settles at φ = 0 and no support
            # moved anywhere, so the decomposition is already exact.
            return report

        # h-index bound on φ_new(u, v): a butterfly survives at level k
        # only if all four of its edges do, and φ ≤ support always.
        mins = sorted(
            (
                min(
                    self._dyn.support_of(u, x),
                    self._dyn.support_of(w, v),
                    self._dyn.support_of(w, x),
                )
                for w, x in self._flies_through(u, v)
            ),
            reverse=True,
        )
        bound = 0
        for i, value in enumerate(mins):
            bound = max(bound, min(value, i + 1))
        report.k_bound = bound
        report.changed[(u, v)] = (-1, 0)
        if bound == 0:
            return report
        report = self._repair(
            [(u, v)], bound, "insert", max_region_edges, report
        )
        if not report.fallback:
            new_value = self._phi[(u, v)]
            report.changed[(u, v)] = (-1, new_value)
        return report

    def delete(
        self,
        u: int,
        v: int,
        *,
        max_region_edges: Optional[int] = None,
    ) -> RepairReport:
        """Delete edge ``(u, v)`` and repair φ in its affected region.

        See :meth:`insert` for the budget semantics; the bound here is
        exact (``K = φ_old(u, v)``) because deletion can only pull edges at
        or below the deleted edge's own level.
        """
        if self.dirty:
            destroyed = self._dyn.delete_edge(u, v)
            return RepairReport(
                op="delete", edge=(u, v), butterflies=destroyed, fallback=True
            )
        if (u, v) not in self._phi:
            # Delegate the error surface to the graph's own range checks.
            self._dyn.delete_edge(u, v)
            raise AssertionError("unreachable")  # pragma: no cover
        bound = self._phi[(u, v)]
        # Seeds: partner edges that attain the minimum φ of a butterfly
        # through (u, v) — only a butterfly alive at the candidate's own
        # level can pull it down when it dies (min includes (u, v)'s φ).
        seeds: List[Edge] = []
        seeded: Set[Edge] = set()
        for w, x in self._flies_through(u, v):
            others = ((u, x), (w, v), (w, x))
            fly_min = min(bound, *(self._phi[e] for e in others))
            if fly_min > 0:  # a φ = 0 edge can never drop
                for edge in others:
                    if self._phi[edge] == fly_min and edge not in seeded:
                        seeded.add(edge)
                        seeds.append(edge)
        destroyed = self._dyn.delete_edge(u, v)
        del self._phi[(u, v)]
        report = RepairReport(
            op="delete", edge=(u, v), butterflies=destroyed, k_bound=bound
        )
        if destroyed == 0 or bound == 0 or not seeds:
            # Either no butterfly died, or every edge that lost one already
            # sits at φ = 0 (φ ≥ 0 cannot drop further): nothing to repair.
            return report
        return self._repair(seeds, bound, "delete", max_region_edges, report)

    def verify(self) -> bool:
        """Parity check against a fresh static decomposition (tests/debug)."""
        graph, phi = self.phi_snapshot()
        from repro.core.api import bitruss_decomposition

        fresh = bitruss_decomposition(graph, algorithm="bit-bu-csr")
        return bool(np.array_equal(phi, fresh.phi))

    def __repr__(self) -> str:
        return (
            f"IncrementalBitruss(m={self._dyn.num_edges}, "
            f"dirty={self.dirty})"
        )

"""Dynamic-graph support: incremental butterfly-support maintenance."""

from repro.maintenance.dynamic import DynamicBipartiteGraph

__all__ = ["DynamicBipartiteGraph"]

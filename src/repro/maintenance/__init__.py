"""Dynamic-graph support: incremental supports *and* bitruss numbers.

:class:`DynamicBipartiteGraph` maintains exact butterfly supports under
edge updates; :class:`IncrementalBitruss` (attach one with
:meth:`DynamicBipartiteGraph.enable_incremental`) maintains the bitruss
numbers themselves through exact localized re-peeling.
"""

from repro.maintenance.dynamic import ApplyOutcome, DynamicBipartiteGraph
from repro.maintenance.incremental import (
    AdaptiveBudget,
    BatchReport,
    DirtyTrackerError,
    IncrementalBitruss,
    RepairReport,
)

__all__ = [
    "AdaptiveBudget",
    "ApplyOutcome",
    "BatchReport",
    "DirtyTrackerError",
    "DynamicBipartiteGraph",
    "IncrementalBitruss",
    "RepairReport",
]

"""Nested research-group identification on author-paper graphs (paper §I).

The bitruss hierarchy is nested (``H_0 ⊇ H_1 ⊇ ...``), so slicing it at
increasing k reveals progressively tighter collaboration circles: a loose
community first, then its cohesive working groups, then the inner core —
the paper's Figure 1 walk-through.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.core.api import bitruss_decomposition
from repro.core.result import BitrussDecomposition
from repro.graph.bipartite import BipartiteGraph


@dataclass
class GroupLevel:
    """One level of the hierarchy: the groups at bitruss level ``k``."""

    k: int
    #: Connected components of H_k, each as (authors, papers).
    groups: List[Tuple[Set[int], Set[int]]] = field(default_factory=list)


@dataclass
class GroupHierarchy:
    """The full nested hierarchy plus the underlying decomposition."""

    levels: List[GroupLevel]
    decomposition: BitrussDecomposition

    def tightest_groups(self) -> List[Tuple[Set[int], Set[int]]]:
        """Groups at the innermost non-empty level."""
        return self.levels[-1].groups if self.levels else []


def _connected_components(
    graph: BipartiteGraph, edge_ids: List[int]
) -> List[Tuple[Set[int], Set[int]]]:
    """Connected components of the subgraph spanned by ``edge_ids``."""
    adj: Dict[int, List[int]] = {}
    for eid in edge_ids:
        u, v = graph.edge_endpoints(eid)
        gu = graph.gid_of_upper(u)
        gv = graph.gid_of_lower(v)
        adj.setdefault(gu, []).append(gv)
        adj.setdefault(gv, []).append(gu)
    seen: Set[int] = set()
    components: List[Tuple[Set[int], Set[int]]] = []
    for root in adj:
        if root in seen:
            continue
        stack = [root]
        seen.add(root)
        uppers: Set[int] = set()
        lowers: Set[int] = set()
        while stack:
            node = stack.pop()
            if graph.is_upper_gid(node):
                uppers.add(graph.upper_of_gid(node))
            else:
                lowers.add(node)
            for nbr in adj[node]:
                if nbr not in seen:
                    seen.add(nbr)
                    stack.append(nbr)
        components.append((uppers, lowers))
    components.sort(key=lambda c: (-len(c[0]) - len(c[1]), sorted(c[0])[:1]))
    return components


def research_group_hierarchy(
    graph: BipartiteGraph,
    *,
    levels: int = 0,
    algorithm: str = "bit-bu++",
) -> GroupHierarchy:
    """Decompose an author-paper graph into nested research groups.

    Parameters
    ----------
    graph:
        Upper layer = authors, lower layer = papers.
    levels:
        Number of hierarchy levels to materialize, spread evenly from 1 to
        the maximum bitruss number; 0 (default) materializes every level.

    Returns
    -------
    GroupHierarchy
        Per-level connected components (author set, paper set), outermost
        first.  Level k's groups are sub-groups of level k-1's.
    """
    result = bitruss_decomposition(graph, algorithm=algorithm)
    max_k = result.max_k
    if max_k == 0:
        return GroupHierarchy([], result)
    if levels <= 0 or levels >= max_k:
        ks = list(range(1, max_k + 1))
    else:
        step = max_k / levels
        ks = sorted({max(1, round(step * (i + 1))) for i in range(levels)})
    hierarchy: List[GroupLevel] = []
    for k in ks:
        eids = result.edges_with_phi_at_least(k)
        if not eids:
            continue
        hierarchy.append(GroupLevel(k, _connected_components(graph, eids)))
    return GroupHierarchy(hierarchy, result)

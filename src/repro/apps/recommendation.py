"""Similarity tiers for recommendation on user-item graphs (paper §I).

The denser the bitruss a user-item interaction survives into, the more its
endpoints behave like their neighbourhood — dense subgraphs group users and
items at graded similarity levels, which collaborative filtering can exploit
([11] in the paper).  This module turns a decomposition into per-item
candidate lists: items co-resident with a user's items in high-k bitrusses
rank above items that only share loose structure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

from repro.apps._shared import resolve_decomposition
from repro.core.result import BitrussDecomposition
from repro.graph.bipartite import BipartiteGraph

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a module cycle
    from repro.service.engine import QueryEngine


@dataclass
class SimilarityTiers:
    """Users/items grouped by the bitruss level of their interactions."""

    #: ``tier[k]`` holds the (users, items) active at level k, ascending k.
    tiers: Dict[int, Tuple[Set[int], Set[int]]]
    decomposition: BitrussDecomposition

    def item_tier(self, item: int) -> int:
        """The deepest tier in which ``item`` still appears (0 if none)."""
        best = 0
        for k, (_users, items) in self.tiers.items():
            if item in items and k > best:
                best = k
        return best


def similarity_tiers(
    graph: Optional[BipartiteGraph] = None,
    *,
    algorithm: str = "bit-bu++",
    engine: Optional["QueryEngine"] = None,
) -> SimilarityTiers:
    """Compute the full tier structure of a user-item graph.

    With ``engine`` the tiers are sliced from the engine's frozen φ
    instead of re-running a decomposition (``graph`` may be omitted).
    """
    graph, result = resolve_decomposition(graph, engine, algorithm)
    tiers: Dict[int, Tuple[Set[int], Set[int]]] = {}
    for k in range(1, result.max_k + 1):
        eids = result.edges_with_phi_at_least(k)
        if not eids:
            continue
        users: Set[int] = set()
        items: Set[int] = set()
        for eid in eids:
            u, v = graph.edge_endpoints(eid)
            users.add(u)
            items.add(v)
        tiers[k] = (users, items)
    return SimilarityTiers(tiers, result)


def recommend_items(
    graph: Optional[BipartiteGraph] = None,
    user: int = 0,
    *,
    top_n: int = 10,
    algorithm: str = "bit-bu++",
    engine: Optional["QueryEngine"] = None,
) -> List[Tuple[int, int]]:
    """Rank unseen items for ``user`` by shared-bitruss depth.

    For every item the user has not interacted with, the score is the
    deepest bitruss level at which that item coexists (in the same level
    set) with any of the user's items.  With ``engine`` the level sets
    come from the engine's frozen φ (``graph`` may be omitted).  Returns
    up to ``top_n`` ``(item, score)`` pairs, best first, ties broken by
    item id.
    """
    graph, result = resolve_decomposition(graph, engine, algorithm)
    owned = set(graph.neighbors_of_upper(user))
    scores: Dict[int, int] = {}
    for k in range(result.max_k, 0, -1):
        eids = result.edges_with_phi_at_least(k)
        items_at_k: Set[int] = set()
        users_items: Set[int] = set()
        for eid in eids:
            _u, v = graph.edge_endpoints(eid)
            items_at_k.add(v)
            if v in owned:
                users_items.add(v)
        if not users_items:
            continue
        for item in items_at_k:
            if item not in owned and item not in scores:
                scores[item] = k
    ranked = sorted(scores.items(), key=lambda kv: (-kv[1], kv[0]))
    return ranked[:top_n]

"""Fraud-group detection on user-page interaction graphs (paper §I).

Fraudsters buying "likes" cannot afford many accounts, so a fake-engagement
campaign concentrates a small set of accounts on a small set of pages —
a dense biclique-like block.  The bitruss hierarchy surfaces exactly such
blocks: the innermost non-empty k-bitruss levels isolate the most lockstep
behaviour in the network, without requiring the cluster size to be known in
advance (CopyCatch's motivation, [10] in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Set, Tuple

import numpy as np

from repro.apps._shared import resolve_decomposition
from repro.core.result import BitrussDecomposition
from repro.graph.bipartite import BipartiteGraph

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a module cycle
    from repro.service.engine import QueryEngine


@dataclass
class FraudReport:
    """Outcome of a fraud scan.

    Attributes
    ----------
    level:
        The bitruss level at which the suspicious core was cut.
    users, pages:
        Vertex ids (upper/lower) inside the flagged core.
    edges:
        The flagged interactions as ``(user, page)`` pairs.
    decomposition:
        The underlying full decomposition, for further drill-down.
    """

    level: int
    users: Set[int]
    pages: Set[int]
    edges: List[Tuple[int, int]]
    decomposition: BitrussDecomposition

    @property
    def density(self) -> float:
        """Fraction of possible user-page pairs present inside the core."""
        possible = len(self.users) * len(self.pages)
        return len(self.edges) / possible if possible else 0.0


def detect_fraud_candidates(
    graph: Optional[BipartiteGraph] = None,
    *,
    min_level: int = 2,
    max_core_fraction: float = 0.25,
    algorithm: str = "bit-pc",
    engine: Optional["QueryEngine"] = None,
) -> FraudReport:
    """Flag the densest lockstep core of a user-page graph.

    Starting from the innermost (largest-k) non-empty bitruss, the cut level
    is lowered until the core either would exceed ``max_core_fraction`` of
    all edges (no longer anomalous — legitimate popularity) or would fall
    below ``min_level`` (no cohesive core at all).

    A :class:`~repro.service.engine.QueryEngine` may be passed to scan a
    pre-computed decomposition instead of running one per call (``graph``
    may then be omitted).  Returns the report for the chosen level; an
    empty report (level 0) means nothing sufficiently cohesive was found.
    """
    if not (0.0 < max_core_fraction <= 1.0):
        raise ValueError("max_core_fraction must be in (0, 1]")
    graph, result = resolve_decomposition(graph, engine, algorithm)
    phi = result.phi
    total_edges = graph.num_edges

    chosen = 0
    for level in range(result.max_k, min_level - 1, -1):
        count = int(np.count_nonzero(phi >= level))
        if count == 0:
            continue
        if count / total_edges <= max_core_fraction:
            chosen = level
            break

    if chosen == 0:
        return FraudReport(0, set(), set(), [], result)

    edges = [
        graph.edge_endpoints(eid) for eid in result.edges_with_phi_at_least(chosen)
    ]
    users = {u for u, _ in edges}
    pages = {v for _, v in edges}
    return FraudReport(chosen, users, pages, edges, result)

"""Shared graph/engine resolution for the application modules.

Every app accepts either a plain graph (recompute path) or a
:class:`~repro.service.engine.QueryEngine` (served path).  The guard and
fallback logic lives here once so the staleness and mismatch behaviour
cannot drift between apps.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Tuple

from repro.core.api import bitruss_decomposition
from repro.core.result import BitrussDecomposition
from repro.graph.bipartite import BipartiteGraph

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a module cycle
    from repro.service.engine import QueryEngine


def check_engine_graph(
    graph: Optional[BipartiteGraph], engine: "QueryEngine"
) -> None:
    """Reject an engine that serves a different graph than the one given."""
    if graph is not None and graph is not engine.graph:
        raise ValueError("engine serves a different graph object")


def resolve_decomposition(
    graph: Optional[BipartiteGraph],
    engine: Optional["QueryEngine"],
    algorithm: str,
) -> Tuple[BipartiteGraph, BitrussDecomposition]:
    """Pick the engine's frozen decomposition or run a fresh one.

    Going through ``engine.decomposition`` keeps the engine's staleness
    rule in force: an invalidated engine raises instead of handing out
    outdated φ.
    """
    if engine is not None:
        check_engine_graph(graph, engine)
        return engine.graph, engine.decomposition
    if graph is None:
        raise ValueError("give a graph (or an engine)")
    return graph, bitruss_decomposition(graph, algorithm=algorithm)

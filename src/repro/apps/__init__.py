"""Application layers over bitruss decomposition (paper §I use cases)."""

from repro.apps.community_search import (
    Community,
    bitruss_community,
    max_level_of_vertex,
)
from repro.apps.fraud import FraudReport, detect_fraud_candidates
from repro.apps.recommendation import SimilarityTiers, similarity_tiers
from repro.apps.research_groups import GroupHierarchy, research_group_hierarchy

__all__ = [
    "Community",
    "FraudReport",
    "GroupHierarchy",
    "SimilarityTiers",
    "bitruss_community",
    "detect_fraud_candidates",
    "max_level_of_vertex",
    "research_group_hierarchy",
    "similarity_tiers",
]

"""Bitruss-based community search.

Given a query vertex (or edge) and a cohesion level k, the *bitruss
community* is the connected component of the k-bitruss containing the query
— the local, query-centred counterpart of the global decomposition the
paper computes (its fraud/recommendation applications all reduce to slicing
a component around some seed).

Also provides :func:`max_level_of_vertex`, the largest k for which a vertex
still has an incident edge in the k-bitruss — a per-vertex "engagement
depth" score.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Set, Tuple

import numpy as np

from repro.apps._shared import check_engine_graph
from repro.core.api import bitruss_decomposition
from repro.core.result import BitrussDecomposition
from repro.graph.bipartite import BipartiteGraph

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a module cycle
    from repro.service.engine import QueryEngine


@dataclass
class Community:
    """A connected k-bitruss community around a query."""

    k: int
    upper: Set[int]
    lower: Set[int]
    edges: List[Tuple[int, int]]

    @property
    def size(self) -> int:
        """Total vertex count."""
        return len(self.upper) + len(self.lower)


def _component_of(
    graph: BipartiteGraph,
    edge_ids: List[int],
    seed_gids: Set[int],
) -> Tuple[Set[int], Set[int], List[Tuple[int, int]]]:
    """Connected component (within the edge subset) touching the seed."""
    adj = {}
    edge_lookup = {}
    for eid in edge_ids:
        u, v = graph.edge_endpoints(eid)
        gu, gv = graph.gid_of_upper(u), graph.gid_of_lower(v)
        adj.setdefault(gu, []).append(gv)
        adj.setdefault(gv, []).append(gu)
        edge_lookup.setdefault(gu, []).append((u, v))
    roots = [g for g in seed_gids if g in adj]
    if not roots:
        return set(), set(), []
    seen: Set[int] = set(roots)
    stack = list(roots)
    while stack:
        node = stack.pop()
        for nbr in adj[node]:
            if nbr not in seen:
                seen.add(nbr)
                stack.append(nbr)
    upper = {graph.upper_of_gid(g) for g in seen if graph.is_upper_gid(g)}
    lower = {g for g in seen if not graph.is_upper_gid(g)}
    edges = [
        (u, v)
        for eid in edge_ids
        for u, v in [graph.edge_endpoints(eid)]
        if u in upper and v in lower
    ]
    return upper, lower, edges


def bitruss_community(
    graph: Optional[BipartiteGraph] = None,
    *,
    k: int,
    upper: Optional[int] = None,
    lower: Optional[int] = None,
    decomposition: Optional[BitrussDecomposition] = None,
    algorithm: str = "bit-bu++",
    engine: Optional["QueryEngine"] = None,
) -> Community:
    """The connected k-bitruss community containing a query vertex.

    Exactly one of ``upper`` / ``lower`` selects the query vertex.  Three
    execution paths, fastest first:

    * ``engine`` — answer from a :class:`~repro.service.engine.QueryEngine`
      (output-linear hierarchy walk, LRU-cached); ``graph`` may be omitted;
    * ``decomposition`` — slice a previously computed decomposition;
    * neither — compute a decomposition with ``algorithm`` (the honest
      recompute path).

    Returns an empty community when the query vertex does not reach the
    k-bitruss.
    """
    if engine is not None:
        check_engine_graph(graph, engine)
        return engine.community(k, upper=upper, lower=lower)
    if graph is None:
        raise ValueError("give a graph (or an engine)")
    if (upper is None) == (lower is None):
        raise ValueError("give exactly one of upper= or lower=")
    result = (
        decomposition
        if decomposition is not None
        else bitruss_decomposition(graph, algorithm=algorithm)
    )
    edge_ids = result.edges_with_phi_at_least(k)
    if upper is not None:
        seed = {graph.gid_of_upper(upper)}
    else:
        seed = {graph.gid_of_lower(lower)}
    uppers, lowers, edges = _component_of(graph, edge_ids, seed)
    return Community(k, uppers, lowers, edges)


def max_level_of_vertex(
    graph: Optional[BipartiteGraph] = None,
    *,
    upper: Optional[int] = None,
    lower: Optional[int] = None,
    decomposition: Optional[BitrussDecomposition] = None,
    engine: Optional["QueryEngine"] = None,
) -> int:
    """The deepest bitruss level any incident edge of the vertex reaches."""
    if engine is not None:
        check_engine_graph(graph, engine)
        return engine.max_k(upper=upper, lower=lower)
    if graph is None:
        raise ValueError("give a graph (or an engine)")
    if (upper is None) == (lower is None):
        raise ValueError("give exactly one of upper= or lower=")
    result = (
        decomposition
        if decomposition is not None
        else bitruss_decomposition(graph)
    )
    if upper is not None:
        eids = graph.edges_of_upper(upper)
    else:
        eids = graph.edges_of_lower(lower)
    if len(eids) == 0:
        return 0
    return int(result.phi[eids].max())

"""Structural analysis of graphs and decompositions.

Summary statistics that back the paper's narrative — most importantly the
**hub-edge gap** of §V-C (butterfly supports far exceeding bitruss numbers
on skewed graphs), which motivates BiT-PC.  Used by EXPERIMENTS.md and handy
for users profiling their own data before choosing an algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.butterfly.counting import count_per_edge
from repro.core.result import BitrussDecomposition
from repro.graph.bipartite import BipartiteGraph


@dataclass
class GraphProfile:
    """Degree/butterfly shape of a bipartite graph."""

    num_upper: int
    num_lower: int
    num_edges: int
    max_degree_upper: int
    max_degree_lower: int
    mean_degree_upper: float
    mean_degree_lower: float
    degree_skew_upper: float  # max / mean — crude but robust tail indicator
    degree_skew_lower: float
    support_max: int
    support_mean: float
    butterflies: int


@dataclass
class HubEdgeReport:
    """The §V-C gap between supports and bitruss numbers."""

    support_max: int
    phi_max: int
    gap_ratio: float  # support_max / max(phi_max, 1)
    support_phi_correlation: float
    hub_edges: List[Tuple[int, int, int]]  # (edge id, support, phi)

    @property
    def has_hub_edges(self) -> bool:
        """Heuristic: the paper's hub phenomenon needs a gap of at least 2x."""
        return self.gap_ratio >= 2.0


def profile_graph(graph: BipartiteGraph) -> GraphProfile:
    """Compute degree and butterfly summary statistics."""
    deg_u = np.array(
        [graph.degree_upper(u) for u in range(graph.num_upper)], dtype=float
    )
    deg_l = np.array(
        [graph.degree_lower(v) for v in range(graph.num_lower)], dtype=float
    )
    support = count_per_edge(graph)
    mean_u = float(deg_u.mean()) if len(deg_u) else 0.0
    mean_l = float(deg_l.mean()) if len(deg_l) else 0.0
    return GraphProfile(
        num_upper=graph.num_upper,
        num_lower=graph.num_lower,
        num_edges=graph.num_edges,
        max_degree_upper=int(deg_u.max()) if len(deg_u) else 0,
        max_degree_lower=int(deg_l.max()) if len(deg_l) else 0,
        mean_degree_upper=mean_u,
        mean_degree_lower=mean_l,
        degree_skew_upper=(float(deg_u.max()) / mean_u) if mean_u else 0.0,
        degree_skew_lower=(float(deg_l.max()) / mean_l) if mean_l else 0.0,
        support_max=int(support.max()) if len(support) else 0,
        support_mean=float(support.mean()) if len(support) else 0.0,
        butterflies=int(support.sum()) // 4,
    )


def hub_edge_report(
    graph: BipartiteGraph,
    decomposition: BitrussDecomposition,
    *,
    top_n: int = 10,
    support: Optional[np.ndarray] = None,
) -> HubEdgeReport:
    """Quantify the support-vs-φ gap and list the strongest hub edges.

    Hub edges are ranked by ``support − φ`` (how much support exceeds the
    bitruss number), the quantity BiT-PC's savings scale with.
    """
    sup = support if support is not None else count_per_edge(graph)
    phi = decomposition.phi
    if len(sup) == 0:
        return HubEdgeReport(0, 0, 0.0, 0.0, [])
    gap = sup - phi
    order = np.argsort(gap)[::-1][:top_n]
    hubs = [(int(e), int(sup[e]), int(phi[e])) for e in order]
    if len(sup) > 1 and sup.std() > 0 and phi.std() > 0:
        corr = float(np.corrcoef(sup, phi)[0, 1])
    else:
        corr = 1.0
    return HubEdgeReport(
        support_max=int(sup.max()),
        phi_max=int(phi.max()),
        gap_ratio=float(sup.max()) / max(int(phi.max()), 1),
        support_phi_correlation=corr,
        hub_edges=hubs,
    )


def phi_distribution(decomposition: BitrussDecomposition) -> Dict[int, int]:
    """Histogram of bitruss numbers: ``{phi value: edge count}``."""
    values, counts = np.unique(decomposition.phi, return_counts=True)
    return {int(v): int(c) for v, c in zip(values, counts)}


def recommend_algorithm(graph: BipartiteGraph) -> Tuple[str, str]:
    """Suggest an algorithm for ``graph`` from cheap structural signals.

    Returns ``(algorithm, reason)``.  Encodes the paper's guidance: heavy
    degree skew or lopsided layers imply hub edges — BiT-PC territory —
    while small/even graphs peel fastest with BiT-BU++.
    """
    profile = profile_graph(graph)
    skew = max(profile.degree_skew_upper, profile.degree_skew_lower)
    sizes = [profile.num_upper, profile.num_lower]
    lopsided = max(sizes) / max(min(sizes), 1) if min(sizes) else 1.0
    if skew >= 20.0 or lopsided >= 20.0:
        return (
            "bit-pc",
            f"strong skew (max/mean degree {skew:.0f}x, layer ratio "
            f"{lopsided:.0f}x) implies hub edges; BiT-PC avoids their "
            "update storm",
        )
    return (
        "bit-bu++",
        "even degrees and balanced layers: the batched bottom-up peel is "
        "fastest and needs no tuning",
    )

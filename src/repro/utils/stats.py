"""Instrumentation: update counters, phase timers and the index-size model.

The paper evaluates its algorithms with three machine-neutral metrics besides
wall-clock time:

* the **number of butterfly-support updates** (Figs. 7 and 10) — every time an
  edge's support value is rewritten during peeling counts as one update;
* the same counter **bucketed by the edge's original support** (Fig. 7), which
  exposes how much work the *hub edges* cost each algorithm;
* the **size of the online index** (Fig. 11).

All decomposition algorithms in :mod:`repro.core` accept an optional
:class:`UpdateCounter` / :class:`PhaseTimer` and report through them.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs import spans as _obs_spans


class UpdateCounter:
    """Counts butterfly-support updates, optionally bucketed.

    Parameters
    ----------
    original_supports:
        When given (one value per edge id), updates are additionally
        aggregated into buckets keyed by the edge's *original* butterfly
        support, reproducing the x-axis of the paper's Figure 7.
    bucket_bounds:
        Upper-inclusive bucket boundaries.  The paper uses
        ``<5000, 5001-10000, 10001-15000, 15001-20000, >20000``; our default
        is proportional but caller-configurable since the stand-in datasets
        are smaller.
    """

    def __init__(
        self,
        original_supports: Optional[Sequence[int]] = None,
        bucket_bounds: Optional[Sequence[int]] = None,
    ) -> None:
        self.total = 0
        self._original = list(original_supports) if original_supports is not None else None
        self._bounds = list(bucket_bounds) if bucket_bounds is not None else None
        if self._bounds is not None:
            self._bucket_totals = [0] * (len(self._bounds) + 1)
        else:
            self._bucket_totals = []

    def _bucket_of(self, support: int) -> int:
        assert self._bounds is not None
        for i, bound in enumerate(self._bounds):
            if support <= bound:
                return i
        return len(self._bounds)

    def record(self, edge: int, count: int = 1) -> None:
        """Record ``count`` support updates applied to ``edge``."""
        self.total += count
        if self._original is not None and self._bounds is not None:
            self._bucket_totals[self._bucket_of(self._original[edge])] += count

    def bucket_labels(self) -> List[str]:
        """Human-readable labels matching :meth:`bucket_totals`."""
        if self._bounds is None:
            return []
        labels = []
        low = 0
        for bound in self._bounds:
            labels.append(f"{low}-{bound}")
            low = bound + 1
        labels.append(f">{low - 1}")
        return labels

    def bucket_totals(self) -> List[int]:
        """Per-bucket update totals (empty when unbucketed)."""
        return list(self._bucket_totals)


class PhaseTimer:
    """Accumulates wall-clock time per named phase.

    Used to split BiT-BS into its counting and peeling phases (Fig. 5) and to
    report per-iteration pre-processing of BiT-PC.
    """

    def __init__(self) -> None:
        self._elapsed: Dict[str, float] = {}
        self._order: List[str] = []

    def time(self, phase: str) -> "_PhaseContext":
        """Context manager accumulating into ``phase``."""
        return _PhaseContext(self, phase)

    def add(self, phase: str, seconds: float) -> None:
        """Directly add ``seconds`` to ``phase``."""
        if phase not in self._elapsed:
            self._elapsed[phase] = 0.0
            self._order.append(phase)
        self._elapsed[phase] += seconds

    def elapsed(self, phase: str) -> float:
        """Seconds accumulated in ``phase`` (0.0 when never entered)."""
        return self._elapsed.get(phase, 0.0)

    def phases(self) -> List[str]:
        """Phases in first-entered order."""
        return list(self._order)

    def as_dict(self) -> Dict[str, float]:
        """Snapshot of all phase timings."""
        return dict(self._elapsed)

    @property
    def total(self) -> float:
        """Sum over all phases."""
        return sum(self._elapsed.values())


class _PhaseContext:
    def __init__(self, timer: PhaseTimer, phase: str) -> None:
        self._timer = timer
        self._phase = phase
        self._start = 0.0
        self._span = None

    def __enter__(self) -> "_PhaseContext":
        # Every timer.time(...) site also feeds the structured phase
        # profiler (when enabled) and the span recorder (when inside a
        # trace), so instrumented algorithms show up in the profile tree
        # and in request waterfalls without duplicate call sites.
        self._span = _obs_spans.span(self._phase)
        self._span.__enter__()
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._timer.add(self._phase, time.perf_counter() - self._start)
        if self._span is not None:
            self._span.__exit__(exc_type, exc, tb)
            self._span = None


@dataclass
class IndexSizeModel:
    """A simple, documented byte-cost model for BE-Index size (Fig. 11).

    The C++ implementation's index stores, per bloom, its id and butterfly
    count, and per (bloom, edge) link the edge id plus the twin-edge id.  We
    charge ``word_bytes`` for every stored word:

    * 2 words per bloom (id, butterfly count),
    * 2 words per edge vertex in ``L(I)`` (id, support),
    * 2 words per link in ``E(I)`` (edge id, twin id).

    ``peak_*`` fields track the largest index observed, which is what matters
    for BiT-PC where per-iteration indexes are built and released.
    """

    word_bytes: int = 8
    peak_blooms: int = 0
    peak_edges: int = 0
    peak_links: int = 0

    def observe(self, num_blooms: int, num_edges: int, num_links: int) -> None:
        """Record an index snapshot, keeping component-wise peaks."""
        total = self._bytes(num_blooms, num_edges, num_links)
        if total > self.peak_bytes:
            self.peak_blooms = num_blooms
            self.peak_edges = num_edges
            self.peak_links = num_links

    def _bytes(self, blooms: int, edges: int, links: int) -> int:
        return self.word_bytes * (2 * blooms + 2 * edges + 2 * links)

    @property
    def peak_bytes(self) -> int:
        """Peak modelled index footprint in bytes."""
        return self._bytes(self.peak_blooms, self.peak_edges, self.peak_links)

    @property
    def peak_megabytes(self) -> float:
        """Peak modelled index footprint in MiB."""
        return self.peak_bytes / (1024.0 * 1024.0)


@dataclass
class DecompositionStats:
    """Everything an algorithm run reports besides the bitruss numbers."""

    algorithm: str = ""
    updates: int = 0
    update_buckets: List[Tuple[str, int]] = field(default_factory=list)
    timings: Dict[str, float] = field(default_factory=dict)
    index_peak_bytes: int = 0
    iterations: int = 0
    parameters: Dict[str, object] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        """Total wall-clock across all recorded phases."""
        return sum(self.timings.values())

    def summary(self) -> str:
        """One-line human-readable summary."""
        phases = ", ".join(f"{k}={v:.3f}s" for k, v in self.timings.items())
        return (
            f"{self.algorithm}: {self.total_seconds:.3f}s ({phases}); "
            f"{self.updates} support updates; "
            f"index peak {self.index_peak_bytes / 1024.0:.1f} KiB"
        )

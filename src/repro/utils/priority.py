"""Vertex priorities (Definition 7 of the paper).

The priority ``p(u)`` of a vertex is an integer in ``[1, |V|]`` such that for
two vertices ``u`` and ``v``::

    p(u) > p(v)  iff  d(u) > d(v), or d(u) == d(v) and u.id > v.id

i.e. higher degree wins, and ties are broken by the (global) vertex id.  The
paper additionally assumes that every upper-layer id is larger than every
lower-layer id; the :class:`~repro.graph.bipartite.BipartiteGraph` global-id
scheme (``gid(v in L) = v``, ``gid(u in U) = n_l + u``) realizes exactly that,
so priorities computed here match the paper's tie-breaking.

Priorities drive both the vertex-priority butterfly-counting algorithm
(Wang et al., VLDB 2019 — the paper's reference [8]) and the identification
of *maximal priority-obeyed blooms* in the BE-Index (Section IV).
"""

from __future__ import annotations

import numpy as np


def vertex_priorities(degrees: np.ndarray) -> np.ndarray:
    """Return the priority rank of every vertex.

    Parameters
    ----------
    degrees:
        Array of vertex degrees indexed by global vertex id.

    Returns
    -------
    numpy.ndarray
        ``prio`` with ``prio[g]`` the 1-based priority of global vertex ``g``;
        all priorities are distinct and ``prio[g1] > prio[g2]`` iff ``g1``
        out-ranks ``g2`` under Definition 7.
    """
    degrees = np.asarray(degrees)
    n = degrees.shape[0]
    # A stable sort on degree leaves equal-degree vertices ordered by their
    # global id, which is precisely Definition 7's tie-break.
    order = np.argsort(degrees, kind="stable")
    prio = np.empty(n, dtype=np.int64)
    prio[order] = np.arange(1, n + 1, dtype=np.int64)
    return prio


def priority_order(degrees: np.ndarray) -> np.ndarray:
    """Return global vertex ids sorted by *increasing* priority."""
    return np.argsort(np.asarray(degrees), kind="stable")

"""Shared utilities: vertex priorities, peeling queues and instrumentation."""

from repro.utils.bucket_queue import BucketQueue
from repro.utils.priority import vertex_priorities
from repro.utils.stats import IndexSizeModel, PhaseTimer, UpdateCounter

__all__ = [
    "BucketQueue",
    "IndexSizeModel",
    "PhaseTimer",
    "UpdateCounter",
    "vertex_priorities",
]

"""A bucket priority queue for bottom-up peeling.

Peeling algorithms (k-core, k-truss, bitruss) repeatedly extract an element
of minimum key and then decrease the keys of its neighbours.  Keys only ever
need to be compared against the current peel level, and the minimum never
moves backwards past levels that have been fully drained, so a bucket queue
with a monotone scan pointer gives amortized O(1) ``pop_min`` plus O(1)
``update``.

Keys may be arbitrarily large (butterfly supports reach millions), so the
buckets live in a dict rather than a dense list.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple


class BucketQueue:
    """Min-priority queue over integer items with non-negative integer keys.

    Items are hashable (in this library: edge ids).  Supports:

    * ``push(item, key)`` — insert.
    * ``update(item, new_key)`` — change an item's key (any direction).
    * ``pop_min()`` — remove and return ``(item, key)`` with minimal key.
    * ``peek_min_key()`` — minimal key without removal.
    * ``pop_level(level)`` — drain every item with key ``<= level``.
    * ``pop_min_batch()`` — remove and return *all* items sharing the
      current minimum key (used by the batch optimization of BiT-BU++).
    """

    def __init__(self) -> None:
        self._buckets: Dict[int, Set[int]] = {}
        self._key_of: Dict[int, int] = {}
        self._floor = 0  # no non-empty bucket has key < _floor

    def __len__(self) -> int:
        return len(self._key_of)

    def __contains__(self, item: int) -> bool:
        return item in self._key_of

    def __iter__(self) -> Iterator[int]:
        return iter(self._key_of)

    def key(self, item: int) -> int:
        """Return the current key of ``item``."""
        return self._key_of[item]

    def push(self, item: int, key: int) -> None:
        """Insert ``item`` with ``key``; ``item`` must not already be queued."""
        if item in self._key_of:
            raise ValueError(f"item {item!r} already queued")
        if key < 0:
            raise ValueError("keys must be non-negative")
        self._key_of[item] = key
        self._buckets.setdefault(key, set()).add(item)
        if key < self._floor:
            self._floor = key

    def update(self, item: int, new_key: int) -> None:
        """Move ``item`` to ``new_key``; no-op when the key is unchanged."""
        old_key = self._key_of[item]
        if new_key == old_key:
            return
        if new_key < 0:
            raise ValueError("keys must be non-negative")
        bucket = self._buckets[old_key]
        bucket.discard(item)
        if not bucket:
            del self._buckets[old_key]
        self._key_of[item] = new_key
        self._buckets.setdefault(new_key, set()).add(item)
        if new_key < self._floor:
            self._floor = new_key

    def remove(self, item: int) -> int:
        """Remove ``item`` from the queue, returning its key."""
        key = self._key_of.pop(item)
        bucket = self._buckets[key]
        bucket.discard(item)
        if not bucket:
            del self._buckets[key]
        return key

    def _advance_floor(self) -> int:
        """Move the scan pointer to the smallest non-empty bucket key."""
        if not self._key_of:
            raise IndexError("pop from empty BucketQueue")
        # The floor only moves forward between minimum extractions; an
        # `update` may pull it backwards, which is handled in `update`.
        while self._floor not in self._buckets:
            self._floor += 1
        return self._floor

    def peek_min_key(self) -> int:
        """Return the minimum key currently in the queue."""
        return self._advance_floor()

    def pop_min(self) -> Tuple[int, int]:
        """Remove and return an arbitrary ``(item, key)`` of minimum key."""
        key = self._advance_floor()
        bucket = self._buckets[key]
        item = bucket.pop()
        if not bucket:
            del self._buckets[key]
        del self._key_of[item]
        return item, key

    def pop_min_batch(self) -> Tuple[List[int], int]:
        """Remove and return ``(items, key)`` — every item at the minimum key."""
        key = self._advance_floor()
        items = list(self._buckets.pop(key))
        for item in items:
            del self._key_of[item]
        return items, key

    def pop_level(self, level: int) -> List[int]:
        """Drain and return all items with key ``<= level`` (possibly none)."""
        drained: List[int] = []
        while self._key_of:
            key = self._advance_floor()
            if key > level:
                break
            items, _ = self.pop_min_batch()
            drained.extend(items)
        return drained

    @classmethod
    def from_keys(cls, keys: Iterable[int]) -> "BucketQueue":
        """Build a queue holding items ``0..n-1`` keyed by ``keys``."""
        queue = cls()
        for item, key in enumerate(keys):
            queue.push(item, int(key))
        return queue

    def items_at_min(self) -> Tuple[List[int], int]:
        """Return (without removing) every item at the current minimum key."""
        key = self._advance_floor()
        return list(self._buckets[key]), key

    def clear(self) -> None:
        """Empty the queue."""
        self._buckets.clear()
        self._key_of.clear()
        self._floor = 0

    def is_empty(self) -> bool:
        """Return ``True`` when no items are queued."""
        return not self._key_of


class LazyMinHeap:
    """A heap-based alternative queue used for differential testing.

    Semantically equivalent to :class:`BucketQueue` for the operations the
    peeling algorithms use; kept deliberately simple (lazy deletion) so the
    two implementations can be property-tested against each other.
    """

    def __init__(self) -> None:
        import heapq  # local import keeps module import light

        self._heapq = heapq
        self._heap: List[Tuple[int, int]] = []
        self._key_of: Dict[int, int] = {}

    def __len__(self) -> int:
        return len(self._key_of)

    def __contains__(self, item: int) -> bool:
        return item in self._key_of

    def key(self, item: int) -> int:
        return self._key_of[item]

    def push(self, item: int, key: int) -> None:
        if item in self._key_of:
            raise ValueError(f"item {item!r} already queued")
        self._key_of[item] = key
        self._heapq.heappush(self._heap, (key, item))

    def update(self, item: int, new_key: int) -> None:
        if self._key_of[item] == new_key:
            return
        self._key_of[item] = new_key
        self._heapq.heappush(self._heap, (new_key, item))

    def remove(self, item: int) -> int:
        return self._key_of.pop(item)

    def _settle(self) -> Tuple[int, int]:
        while self._heap:
            key, item = self._heap[0]
            if self._key_of.get(item) == key:
                return key, item
            self._heapq.heappop(self._heap)  # stale entry
        raise IndexError("pop from empty LazyMinHeap")

    def peek_min_key(self) -> int:
        key, _ = self._settle()
        return key

    def pop_min(self) -> Tuple[int, int]:
        key, item = self._settle()
        self._heapq.heappop(self._heap)
        del self._key_of[item]
        return item, key

    def is_empty(self) -> bool:
        return not self._key_of

"""repro — bitruss decomposition for large-scale bipartite graphs.

A faithful, production-quality Python reproduction of

    Kai Wang, Xuemin Lin, Lu Qin, Wenjie Zhang, Ying Zhang.
    "Efficient Bitruss Decomposition for Large-scale Bipartite Graphs."
    ICDE 2020 (arXiv:2001.06111).

Quickstart
----------
>>> from repro import BipartiteGraph, bitruss_decomposition
>>> g = BipartiteGraph(2, 3, [(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2)])
>>> result = bitruss_decomposition(g, algorithm="bit-pc")
>>> result.max_k
2

See :mod:`repro.core.api` for the algorithm registry, :mod:`repro.datasets`
for the bundled synthetic datasets and the ``examples/`` directory for
runnable scenarios.
"""

from repro.core.api import ALGORITHMS, bitruss_decomposition
from repro.core.result import (
    BitrussDecomposition,
    load_decomposition,
    save_decomposition,
)
from repro.core.tip import tip_decomposition
from repro.graph.bipartite import BipartiteGraph
from repro.index.be_index import BEIndex
from repro.runtime import ParallelRuntime
from repro.service import (
    DecompositionArtifact,
    QueryEngine,
    build_artifact,
    load_artifact,
    save_artifact,
)

#: The paper's reference [5] names the edge-level hierarchy the *wing*
#: decomposition; bitruss is the same object, so expose the alias.
wing_decomposition = bitruss_decomposition

__version__ = "1.0.0"

__all__ = [
    "ALGORITHMS",
    "BEIndex",
    "BipartiteGraph",
    "BitrussDecomposition",
    "DecompositionArtifact",
    "ParallelRuntime",
    "QueryEngine",
    "__version__",
    "bitruss_decomposition",
    "build_artifact",
    "load_artifact",
    "load_decomposition",
    "save_artifact",
    "save_decomposition",
    "tip_decomposition",
    "wing_decomposition",
]

"""Structured phase profiling: a nested timer tree, free when disabled.

The paper evaluates its algorithms by decomposing runtime into counting,
index-build and peeling phases; this module makes that decomposition a
first-class signal.  Call sites wrap work in ``with phases.phase(name):``
— when profiling is **disabled** (the default) ``phase()`` returns one
shared no-op context manager, so the whole mechanism costs a global read
and a function call (~100 ns); hot loops can stay instrumented.  When
**enabled** (``REPRO_PROFILE=1`` or the CLI ``--profile`` flags) each
entry pushes a node onto a stack, producing a tree like::

    decompose                      2.41s
      index construction           0.93s
        butterfly counting         0.61s
      peeling                      1.48s
        wave 1                     0.52s
          kernel                   0.44s

:class:`~repro.utils.stats.PhaseTimer` (the per-run sink every algorithm
already accepts) feeds this profiler automatically while profiling is
enabled, so the existing ``timer.time("peeling")`` sites appear in the
tree without duplicate instrumentation.

Worker processes profile into their own tree; the runtime harvests it as
a plain dict (:func:`snapshot`) and the parent folds it into the node
that dispatched the tasks (:func:`merge_tree`), so sharded-kernel time
nests under the wave that dispatched it.
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Optional

_ENV_FLAG = "REPRO_PROFILE"


class _Node:
    __slots__ = ("name", "seconds", "count", "children")

    def __init__(self, name: str) -> None:
        self.name = name
        self.seconds = 0.0
        self.count = 0
        self.children: Dict[str, "_Node"] = {}

    def child(self, name: str) -> "_Node":
        node = self.children.get(name)
        if node is None:
            node = self.children[name] = _Node(name)
        return node

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "seconds": self.seconds,
            "count": self.count,
            "children": [
                child.to_dict() for child in self.children.values()
            ],
        }

    def merge_dict(self, tree: dict) -> None:
        self.seconds += float(tree.get("seconds", 0.0))
        self.count += int(tree.get("count", 0))
        for sub in tree.get("children", ()):
            self.child(str(sub["name"])).merge_dict(sub)


class _PhaseContext:
    __slots__ = ("_profiler", "_name", "_start")

    def __init__(self, profiler: "PhaseProfiler", name: str) -> None:
        self._profiler = profiler
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_PhaseContext":
        self._profiler._push(self._name)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._profiler._pop(time.perf_counter() - self._start)


class _Noop:
    __slots__ = ()

    def __enter__(self) -> "_Noop":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NOOP = _Noop()


class PhaseProfiler:
    """A stack-based profiler accumulating a nested phase tree."""

    def __init__(self) -> None:
        self._root = _Node("total")
        self._stack: List[_Node] = [self._root]

    # ----------------------------------------------------------- recording

    def phase(self, name: str) -> _PhaseContext:
        """Context manager timing one (possibly nested) phase entry."""
        return _PhaseContext(self, name)

    def _push(self, name: str) -> None:
        self._stack.append(self._stack[-1].child(name))

    def _pop(self, seconds: float) -> None:
        node = self._stack.pop()
        node.seconds += seconds
        node.count += 1

    def add(self, name: str, seconds: float, count: int = 1) -> None:
        """Directly accumulate into a child of the current phase."""
        node = self._stack[-1].child(name)
        node.seconds += seconds
        node.count += count

    def merge_tree(self, tree: Optional[dict]) -> None:
        """Fold a harvested :func:`snapshot` under the current phase.

        The snapshot's root is anonymous; its children become (or add
        into) children of whatever phase is currently open — typically
        the dispatch phase of the waves that ran the harvested workers.
        """
        if not tree:
            return
        current = self._stack[-1]
        for sub in tree.get("children", ()):
            current.child(str(sub["name"])).merge_dict(sub)

    # ---------------------------------------------------------- inspection

    def tree(self) -> dict:
        """The recorded tree as plain dicts (root node is ``"total"``)."""
        return self._root.to_dict()

    def reset(self) -> None:
        """Drop everything recorded (open phases survive as fresh nodes)."""
        self._root = _Node("total")
        # Re-anchor any open phases on the new root so their exits are
        # harmless after a mid-phase reset (count/seconds land on nodes
        # that the next tree() call reports — negligible and safe).
        self._stack = [self._root] + [
            self._root.child(node.name) for node in self._stack[1:]
        ]

    def render(self, *, min_seconds: float = 0.0) -> str:
        """Human-readable indented tree (see also :func:`render_tree`)."""
        return render_tree(self.tree(), min_seconds=min_seconds)


def render_tree(tree: dict, *, min_seconds: float = 0.0) -> str:
    """Render a :meth:`PhaseProfiler.tree` dict as an indented table."""
    lines: List[str] = []

    def walk(node: dict, depth: int) -> None:
        if depth >= 0:
            if node["seconds"] < min_seconds and not node["children"]:
                return
            label = "  " * depth + str(node["name"])
            count = int(node.get("count", 0))
            suffix = f" x{count}" if count > 1 else ""
            lines.append(f"{label:<44s} {node['seconds']:9.4f}s{suffix}")
        for child in node.get("children", ()):
            walk(child, depth + 1)

    walk(tree, -1)
    return "\n".join(lines) if lines else "(no phases recorded)"


def leaf_seconds(tree: dict) -> float:
    """Sum of leaf-phase seconds — the profiler's covered wall time."""
    children = tree.get("children", ())
    if not children:
        return float(tree.get("seconds", 0.0))
    return sum(leaf_seconds(child) for child in children)


# -------------------------------------------------------------- module API

_PROFILER = PhaseProfiler()
_enabled = os.environ.get(_ENV_FLAG, "").strip().lower() in ("1", "true", "yes", "on")


def enabled() -> bool:
    """Whether phase profiling is currently on."""
    return _enabled


def enable(on: bool = True) -> None:
    """Turn phase profiling on (or off with ``enable(False)``)."""
    global _enabled
    _enabled = bool(on)


def profiler() -> PhaseProfiler:
    """The process-global profiler instance."""
    return _PROFILER


def phase(name: str):
    """Time a phase when profiling is enabled; a shared no-op otherwise."""
    if not _enabled:
        return _NOOP
    return _PROFILER.phase(name)


def add(name: str, seconds: float, count: int = 1) -> None:
    """Accumulate directly (no-op while disabled)."""
    if _enabled:
        _PROFILER.add(name, seconds, count)


def merge_tree(tree: Optional[dict]) -> None:
    """Fold a harvested worker tree under the current phase (if enabled)."""
    if _enabled:
        _PROFILER.merge_tree(tree)


def tree() -> dict:
    """The global profiler's recorded tree."""
    return _PROFILER.tree()


def reset() -> None:
    """Reset the global profiler."""
    _PROFILER.reset()


def reset_in_worker() -> None:
    """Hard reset for a freshly forked worker process.

    A fork-started worker inherits the parent's profiler mid-phase; those
    open phases never exit in the child, so :meth:`PhaseProfiler.reset`'s
    stack re-anchoring would keep grafting worker phases under phantom
    parent nodes.  Replace the profiler outright: empty tree, empty stack.
    """
    global _PROFILER
    _PROFILER = PhaseProfiler()


def snapshot() -> Optional[dict]:
    """Picklable harvest for worker processes: the tree, then a reset.

    Returns ``None`` when profiling is disabled or nothing was recorded,
    so the common case ships no payload back through the pool.
    """
    if not _enabled:
        return None
    captured = _PROFILER.tree()
    if not captured["children"]:
        return None
    _PROFILER.reset()
    return captured

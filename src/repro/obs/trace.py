"""Lightweight request tracing: trace ids and span contexts.

One trace id is minted (or adopted from an ``X-Trace-Id`` header) per
HTTP request and stored in a :mod:`contextvars` variable, so everything
the request touches — coalescer windows, engine calls, log records —
can correlate without threading an argument through every signature.
Across process boundaries the id rides the pickled task tuples of the
:class:`~repro.runtime.pool.ParallelRuntime` (see ``pool._run_task``),
so worker-side log records and harvested metrics carry the originating
request's id.

:func:`span` is the legacy entry point; it now delegates to
:mod:`repro.obs.spans`, which records a real :class:`~repro.obs.spans.Span`
when a trace is active (and still feeds the phase tree when profiling
is enabled) but stays a shared no-op on untraced paths — tracing never
taxes the hot path.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Iterator, Optional

_TRACE_ID: ContextVar[Optional[str]] = ContextVar("repro_trace_id", default=None)


def new_trace_id() -> str:
    """A fresh 16-hex-char trace id."""
    return os.urandom(8).hex()


def current_trace_id() -> Optional[str]:
    """The trace id of the current context, or None outside any trace."""
    return _TRACE_ID.get()


def set_trace_id(trace_id: Optional[str]):
    """Install ``trace_id`` on the current context; returns a reset token."""
    return _TRACE_ID.set(trace_id)


def reset_trace_id(token) -> None:
    """Undo a :func:`set_trace_id` (restores the previous id)."""
    _TRACE_ID.reset(token)


@contextmanager
def trace_context(trace_id: Optional[str] = None) -> Iterator[str]:
    """Run a block under a trace id (minting one when not supplied)."""
    tid = trace_id if trace_id is not None else new_trace_id()
    token = _TRACE_ID.set(tid)
    try:
        yield tid
    finally:
        _TRACE_ID.reset(token)


def span(name: str, **attrs):
    """A span context: records a real span inside a trace, else a no-op.

    Import is deferred — :mod:`repro.obs.spans` imports this module for
    the trace-id contextvar, so a top-level import would be circular.
    """
    from repro.obs import spans as _spans

    return _spans.span(name, **attrs)

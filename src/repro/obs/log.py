"""Structured logging: the ``repro.*`` logger tree and a JSON formatter.

Two output styles over stdlib :mod:`logging`:

* **human** — bare messages (the CLI's stdout lines route through the
  ``repro.cli`` logger so ``--quiet`` can raise its level and suppress
  everything but the payload);
* **json** — one JSON object per line with timestamp, level, logger,
  message and — when a request trace is active — its ``trace_id``, plus
  any extra fields passed via ``logger.info(..., extra={...})``.

Handlers resolve ``sys.stdout``/``sys.stderr`` dynamically at emit time
(not at configure time), so pytest's capture fixtures and daemon-style
redirections both see the records.

The slow-query log is just the ``repro.server.slow`` logger: the HTTP
server emits one WARNING per request whose latency crosses the
configured threshold (``serve --slow-query-ms``).
"""

from __future__ import annotations

import json
import logging
import sys
from typing import Optional

from repro.obs import trace

ROOT = "repro"

#: Attributes of a LogRecord that are bookkeeping, not user-given extras.
_RESERVED = frozenset(
    logging.LogRecord("", 0, "", 0, "", (), None).__dict__
) | {"message", "asctime", "taskName"}


class JsonFormatter(logging.Formatter):
    """One JSON object per record, with trace-id correlation."""

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "message": record.getMessage(),
        }
        trace_id = trace.current_trace_id()
        if trace_id is not None:
            payload["trace_id"] = trace_id
        for key, value in record.__dict__.items():
            if key not in _RESERVED and not key.startswith("_"):
                payload[key] = value
        if record.exc_info:
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload, default=str)


class _DynamicStreamHandler(logging.StreamHandler):
    """A StreamHandler bound to the *name* stdout/stderr, not the object."""

    def __init__(self, stream_name: str) -> None:
        self._stream_name = stream_name
        super().__init__()

    @property
    def stream(self):
        return getattr(sys, self._stream_name)

    @stream.setter
    def stream(self, value) -> None:  # StreamHandler.__init__ assigns it
        pass


def get_logger(name: str = "") -> logging.Logger:
    """A logger under the ``repro`` tree (``get_logger("server")`` etc.)."""
    _ensure_configured()
    return logging.getLogger(f"{ROOT}.{name}" if name else ROOT)


_configured = False


def _ensure_configured() -> None:
    global _configured
    if _configured:
        return
    _configured = True
    root = logging.getLogger(ROOT)
    if not root.handlers:
        handler = _DynamicStreamHandler("stderr")
        handler.setFormatter(logging.Formatter("%(levelname)s %(name)s: %(message)s"))
        root.addHandler(handler)
        root.setLevel(logging.INFO)
    root.propagate = False
    cli = logging.getLogger(f"{ROOT}.cli")
    if not cli.handlers:
        handler = _DynamicStreamHandler("stdout")
        handler.setFormatter(logging.Formatter("%(message)s"))
        cli.addHandler(handler)
    cli.propagate = False


def configure(
    *,
    level: int = logging.INFO,
    json_output: bool = False,
    quiet: bool = False,
) -> None:
    """(Re)configure the ``repro`` logger tree.

    Parameters
    ----------
    level:
        Level of the shared (stderr) tree.
    json_output:
        Emit :class:`JsonFormatter` lines instead of plain text on the
        stderr tree (the CLI stdout tree always stays human-readable).
    quiet:
        Raise the ``repro.cli`` stdout logger to WARNING so only
        payloads (and errors) reach stdout.
    """
    _ensure_configured()
    root = logging.getLogger(ROOT)
    root.setLevel(level)
    formatter: logging.Formatter = (
        JsonFormatter()
        if json_output
        else logging.Formatter("%(levelname)s %(name)s: %(message)s")
    )
    for handler in root.handlers:
        handler.setFormatter(formatter)
    cli = logging.getLogger(f"{ROOT}.cli")
    cli.setLevel(logging.WARNING if quiet else logging.NOTSET)


def slow_query_logger() -> logging.Logger:
    """The slow-query log (``repro.server.slow``)."""
    return get_logger("server.slow")


def log_slow_query(
    *,
    endpoint: str,
    dataset: str,
    seconds: float,
    threshold: float,
    status: int,
    trace_id: Optional[str] = None,
) -> None:
    """Emit one slow-query WARNING with structured fields."""
    slow_query_logger().warning(
        "slow query: %s took %.1f ms (threshold %.1f ms)",
        f"/{dataset}/{endpoint}" if dataset else f"/{endpoint}",
        seconds * 1000.0,
        threshold * 1000.0,
        extra={
            "endpoint": endpoint,
            "dataset": dataset,
            "seconds": round(seconds, 6),
            "threshold_seconds": threshold,
            "status": status,
            **({"trace_id": trace_id} if trace_id else {}),
        },
    )

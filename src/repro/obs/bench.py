"""Performance-trajectory plane: schema'd bench results + regression gating.

PRs 7–8 gave the system live metrics and tracing for *one process at one
moment*; this module adds the missing time axis.  Every benchmark run is
captured as a :class:`BenchResult` — named metric series with units and
better-directions, the contract pass/fails the bench asserted, and an
:class:`EnvFingerprint` of the machine and build that produced them — and
:func:`publish` appends it to a longitudinal ``trajectory.jsonl`` next to
the canonical per-bench JSON.  :func:`diff_results` then compares the
latest run against a committed baseline with a relative threshold *plus* a
median-absolute-deviation noise window learned from the trajectory, the
same continuous-benchmarking discipline ASV and Conbench bring to
numpy/Arrow.

Design points:

* **Stdlib-only.**  Like the rest of :mod:`repro.obs`, importable from the
  server, the CLI and the benches without dragging numpy in (numpy is only
  *reported on*, via a lazy version probe).
* **Direction-aware metrics.**  ``lower`` (latencies), ``higher``
  (throughput, speedups) and ``fixed`` — deterministic invariants such as
  support-update counts, butterfly totals and modelled index bytes, where
  *any* drift is suspicious.  ``fixed`` metrics are machine-independent and
  gate everywhere; timing metrics only gate against baselines pinned on a
  matching machine (hostname + cpu model), because cross-machine wall-clock
  comparison is noise by construction.
* **Versioned (de)serialization.**  Documents carry ``schema_version``;
  legacy pre-envelope bench JSONs load as version 0, and metric units are
  normalized on load (``ms``/``us`` → seconds, with the matching ``_ms`` /
  ``_us`` name suffix rewrite) so trajectories written under older naming
  conventions stay comparable.
"""

from __future__ import annotations

import json
import math
import os
import platform
import re
import resource
import socket
import subprocess
import sys
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

SCHEMA_VERSION = 1

#: Which way is "better" for a metric.  ``fixed`` marks deterministic
#: invariants (counts, modelled sizes) where any drift beyond tolerance is
#: flagged in both directions.
DIRECTIONS = ("lower", "higher", "fixed")

#: Unit aliases normalized on load: ``unit -> (canonical unit, scale)``.
#: Keeps old trajectory lines comparable after a unit-convention change.
_UNIT_SCALES: Dict[str, Tuple[str, float]] = {
    "s": ("seconds", 1.0),
    "sec": ("seconds", 1.0),
    "secs": ("seconds", 1.0),
    "ms": ("seconds", 1e-3),
    "milliseconds": ("seconds", 1e-3),
    "us": ("seconds", 1e-6),
    "microseconds": ("seconds", 1e-6),
    "kb": ("bytes", 1024.0),
    "kib": ("bytes", 1024.0),
    "mb": ("bytes", 1024.0 * 1024.0),
    "mib": ("bytes", 1024.0 * 1024.0),
}

#: Name-suffix rewrites applied alongside a unit conversion, so the series
#: ``latency_ms`` (ms) continues as ``latency_seconds`` (seconds).
_NAME_SUFFIXES = {"_ms": "_seconds", "_us": "_seconds", "_kb": "_bytes"}

#: Default relative tolerance by canonical unit for directional (non-fixed)
#: metrics without an explicit per-metric tolerance.  Wall-clock is noisy
#: even on one machine; deterministic units get the global threshold.
_UNIT_TOLERANCES = {"seconds": 1.5, "bytes": 0.5}

#: Tolerance for ``fixed`` metrics: deterministic, so essentially exact
#: (the epsilon absorbs float round-tripping only).
FIXED_TOLERANCE = 1e-3

DEFAULT_THRESHOLD = 0.25
DEFAULT_NOISE_MULT = 4.0
DEFAULT_HISTORY_WINDOW = 20
MIN_NOISE_SAMPLES = 3


def peak_rss_bytes() -> int:
    """High-water resident set size of this process, in bytes.

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS; normalise so
    every consumer records one comparable column.
    """
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        return int(rss)
    return int(rss) * 1024


# --------------------------------------------------------------------------
# schema


@dataclass(frozen=True)
class Metric:
    """One named measurement of a bench run."""

    name: str
    value: float
    unit: str = "seconds"
    direction: str = "lower"

    def __post_init__(self) -> None:
        if self.direction not in DIRECTIONS:
            raise ValueError(
                f"metric {self.name!r}: direction {self.direction!r} "
                f"not in {DIRECTIONS}"
            )

    def normalized(self) -> "Metric":
        """Canonical-unit form (``ms`` → seconds with the name rewritten)."""
        unit = self.unit.lower()
        if unit not in _UNIT_SCALES:
            return self
        canonical, scale = _UNIT_SCALES[unit]
        name = self.name
        for suffix, repl in _NAME_SUFFIXES.items():
            if name.endswith(suffix):
                name = name[: -len(suffix)] + repl
                break
        return Metric(name, self.value * scale, canonical, self.direction)

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "value": self.value,
            "unit": self.unit,
            "direction": self.direction,
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, object]) -> "Metric":
        return cls(
            name=str(doc["name"]),
            value=float(doc["value"]),  # type: ignore[arg-type]
            unit=str(doc.get("unit", "seconds")),
            direction=str(doc.get("direction", "lower")),
        ).normalized()


@dataclass(frozen=True)
class Contract:
    """One asserted acceptance bar (e.g. ``>= 5x coalesced throughput``)."""

    name: str
    passed: bool
    required: float
    measured: float

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "passed": self.passed,
            "required": self.required,
            "measured": self.measured,
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, object]) -> "Contract":
        return cls(
            name=str(doc["name"]),
            passed=bool(doc["passed"]),
            required=float(doc.get("required", 0.0)),  # type: ignore[arg-type]
            measured=float(doc.get("measured", 0.0)),  # type: ignore[arg-type]
        )


def _git_sha() -> str:
    """Best-effort commit id: ``REPRO_GIT_SHA`` env, else ``git rev-parse``.

    Tried from the current directory first (benches run from the repo
    checkout), then from the package directory (editable installs).
    """
    sha = os.environ.get("REPRO_GIT_SHA")
    if sha:
        return sha
    for cwd in (Path.cwd(), Path(__file__).resolve().parent):
        try:
            out = subprocess.run(
                ["git", "rev-parse", "HEAD"],
                cwd=cwd,
                capture_output=True,
                text=True,
                timeout=5,
            )
        except (OSError, subprocess.SubprocessError):
            continue
        if out.returncode == 0 and out.stdout.strip():
            return out.stdout.strip()
    return "unknown"


def _cpu_model() -> str:
    try:
        with open("/proc/cpuinfo", "r", encoding="utf-8") as handle:
            for line in handle:
                if line.lower().startswith("model name"):
                    return line.split(":", 1)[1].strip()
    except OSError:
        pass
    return platform.processor() or platform.machine() or "unknown"


def _numpy_version() -> Optional[str]:
    try:
        import numpy
    except ImportError:  # pragma: no cover - numpy is a hard dep in practice
        return None
    return str(numpy.__version__)


@dataclass
class EnvFingerprint:
    """Where and on what a result was produced — what makes it comparable.

    Two results are wall-clock comparable when ``hostname`` and
    ``cpu_model`` (and ideally ``cpu_count``) agree; ``git_sha`` pins the
    code, ``repro_knobs`` the active ``REPRO_*`` configuration, and
    ``peak_rss_bytes`` the process high-water mark at collection time.
    """

    git_sha: str = "unknown"
    python: str = ""
    numpy: Optional[str] = None
    platform: str = ""
    hostname: str = ""
    cpu_count: int = 0
    cpu_model: str = ""
    repro_knobs: Dict[str, str] = field(default_factory=dict)
    peak_rss_bytes: int = 0

    @classmethod
    def collect(cls) -> "EnvFingerprint":
        return cls(
            git_sha=_git_sha(),
            python=sys.version.split()[0],
            numpy=_numpy_version(),
            platform=platform.platform(),
            hostname=socket.gethostname(),
            cpu_count=os.cpu_count() or 0,
            cpu_model=_cpu_model(),
            repro_knobs={
                key: value
                for key, value in sorted(os.environ.items())
                if key.startswith("REPRO_")
            },
            peak_rss_bytes=peak_rss_bytes(),
        )

    def matches_machine(self, other: "EnvFingerprint") -> bool:
        """Same box for wall-clock purposes: host, CPU model and count."""
        return (
            self.hostname == other.hostname
            and self.cpu_model == other.cpu_model
            and self.cpu_count == other.cpu_count
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "git_sha": self.git_sha,
            "python": self.python,
            "numpy": self.numpy,
            "platform": self.platform,
            "hostname": self.hostname,
            "cpu_count": self.cpu_count,
            "cpu_model": self.cpu_model,
            "repro_knobs": dict(self.repro_knobs),
            "peak_rss_bytes": self.peak_rss_bytes,
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, object]) -> "EnvFingerprint":
        return cls(
            git_sha=str(doc.get("git_sha", "unknown")),
            python=str(doc.get("python", "")),
            numpy=doc.get("numpy"),  # type: ignore[arg-type]
            platform=str(doc.get("platform", "")),
            hostname=str(doc.get("hostname", "")),
            cpu_count=int(doc.get("cpu_count", 0)),  # type: ignore[arg-type]
            cpu_model=str(doc.get("cpu_model", "")),
            repro_knobs=dict(doc.get("repro_knobs", {})),  # type: ignore[arg-type]
            peak_rss_bytes=int(doc.get("peak_rss_bytes", 0)),  # type: ignore[arg-type]
        )


_FINGERPRINT: Optional[EnvFingerprint] = None


def get_fingerprint(refresh: bool = False) -> EnvFingerprint:
    """Process-cached fingerprint (the git subprocess runs at most once)."""
    global _FINGERPRINT
    if _FINGERPRINT is None or refresh:
        _FINGERPRINT = EnvFingerprint.collect()
    return _FINGERPRINT


@dataclass
class BenchResult:
    """One bench execution: metrics + contracts + environment + payload.

    ``payload`` carries the bench's full legacy record (tables, profile
    blocks) and lands in the canonical ``BENCH_<name>.json`` only; the
    trajectory line keeps the compact, longitudinally-comparable core.
    """

    bench: str
    metrics: List[Metric] = field(default_factory=list)
    contracts: List[Contract] = field(default_factory=list)
    env: EnvFingerprint = field(default_factory=get_fingerprint)
    payload: Dict[str, object] = field(default_factory=dict)
    created_unix: float = field(default_factory=time.time)
    repeats: int = 1
    schema_version: int = SCHEMA_VERSION

    def metric(self, name: str) -> Optional[Metric]:
        for metric in self.metrics:
            if metric.name == name:
                return metric
        return None

    def to_dict(self, *, trajectory: bool = False) -> Dict[str, object]:
        doc: Dict[str, object] = {
            "schema_version": self.schema_version,
            "bench": self.bench,
            "created_unix": self.created_unix,
            "repeats": self.repeats,
            "env": self.env.to_dict(),
            "metrics": [m.to_dict() for m in self.metrics],
            "contracts": [c.to_dict() for c in self.contracts],
        }
        if not trajectory:
            doc["payload"] = self.payload
        return doc

    @classmethod
    def from_dict(
        cls, doc: Dict[str, object], *, bench: Optional[str] = None
    ) -> "BenchResult":
        """Load any schema version (see :func:`migrate`)."""
        doc = migrate(doc, bench=bench)
        return cls(
            bench=str(doc["bench"]),
            metrics=[Metric.from_dict(m) for m in doc.get("metrics", [])],  # type: ignore[union-attr]
            contracts=[
                Contract.from_dict(c) for c in doc.get("contracts", [])  # type: ignore[union-attr]
            ],
            env=EnvFingerprint.from_dict(doc.get("env", {})),  # type: ignore[arg-type]
            payload=dict(doc.get("payload", {})),  # type: ignore[arg-type]
            created_unix=float(doc.get("created_unix", 0.0)),  # type: ignore[arg-type]
            repeats=int(doc.get("repeats", 1)),  # type: ignore[arg-type]
            schema_version=SCHEMA_VERSION,
        )


def migrate(
    doc: Dict[str, object], *, bench: Optional[str] = None
) -> Dict[str, object]:
    """Bring a result document to the current schema version.

    Version 0 is the pre-envelope era: the raw ad-hoc payload every bench
    used to write (``{"bench": ..., "records": [...]}`` or similar, no
    ``schema_version`` key).  It wraps into an envelope with the payload
    preserved and no comparable metrics — history starts at version 1, but
    old files keep loading.  Unit/name normalization for metrics happens in
    :meth:`Metric.from_dict` and applies to every version.
    """
    if not isinstance(doc, dict):
        raise ValueError(f"bench result must be a JSON object, got {type(doc)}")
    version = doc.get("schema_version")
    if version is None:
        name = bench or str(doc.get("bench", "unknown"))
        return {
            "schema_version": SCHEMA_VERSION,
            "bench": name,
            "created_unix": float(doc.get("created_unix", 0.0)),  # type: ignore[arg-type]
            "repeats": 1,
            "env": {},
            "metrics": [],
            "contracts": [],
            "payload": doc,
        }
    if not isinstance(version, int) or version < 0:
        raise ValueError(f"bad schema_version {version!r}")
    if version > SCHEMA_VERSION:
        raise ValueError(
            f"result written by a newer schema (version {version}, "
            f"this build reads <= {SCHEMA_VERSION})"
        )
    return doc


def merge_results(results: Sequence[BenchResult]) -> BenchResult:
    """Best-of merge across repeats of one bench.

    Per metric: ``lower`` keeps the min, ``higher`` the max, ``fixed`` the
    last (and any disagreement between repeats of a fixed metric is left
    visible to the detector rather than papered over).  Contracts and the
    payload come from the last repeat; ``repeats`` records the fold count.
    """
    if not results:
        raise ValueError("merge_results needs at least one result")
    last = results[-1]
    if len(results) == 1:
        return last
    merged: List[Metric] = []
    for metric in last.metrics:
        values = [
            r.metric(metric.name).value  # type: ignore[union-attr]
            for r in results
            if r.metric(metric.name) is not None
        ]
        if metric.direction == "lower":
            value = min(values)
        elif metric.direction == "higher":
            value = max(values)
        else:
            value = values[-1]
        merged.append(replace(metric, value=value))
    return replace(
        last,
        metrics=merged,
        repeats=sum(r.repeats for r in results),
        created_unix=last.created_unix,
    )


# --------------------------------------------------------------------------
# publication


def result_filename(bench: str) -> str:
    return f"BENCH_{bench}.json"


def publish(
    result: BenchResult,
    results_dir: Path,
    *,
    root_dir: Optional[Path] = None,
    trajectory_path: Optional[Path] = None,
) -> Path:
    """Write the canonical per-bench JSON and append the trajectory line.

    Three sinks, one call:

    * ``results_dir/BENCH_<bench>.json`` — the full envelope including the
      bench's payload (tables, profile trees), regenerated in place;
    * ``root_dir/BENCH_<bench>.json`` — a repo-root copy of the same
      document (ROADMAP reviews and external tooling read the root);
    * ``trajectory_path`` (default ``results_dir/trajectory.jsonl``) — one
      compact line per run, the longitudinal record ``bench diff`` learns
      noise from.
    """
    results_dir = Path(results_dir)
    results_dir.mkdir(parents=True, exist_ok=True)
    document = json.dumps(result.to_dict(), indent=2, default=str) + "\n"
    canonical = results_dir / result_filename(result.bench)
    canonical.write_text(document)
    if root_dir is not None:
        Path(root_dir).mkdir(parents=True, exist_ok=True)
        (Path(root_dir) / result_filename(result.bench)).write_text(document)
    if trajectory_path is None:
        trajectory_path = results_dir / "trajectory.jsonl"
    line = json.dumps(result.to_dict(trajectory=True), default=str)
    with open(trajectory_path, "a", encoding="utf-8") as handle:
        handle.write(line + "\n")
    return canonical


def load_result(path: Path) -> BenchResult:
    """Load one ``BENCH_<name>.json`` (any schema version)."""
    path = Path(path)
    with open(path, "r", encoding="utf-8") as handle:
        doc = json.load(handle)
    match = re.match(r"BENCH_(.+)\.json$", path.name)
    return BenchResult.from_dict(doc, bench=match.group(1) if match else None)


def read_trajectory(path: Path) -> List[BenchResult]:
    """All parseable trajectory lines, oldest first (bad lines skipped)."""
    results: List[BenchResult] = []
    path = Path(path)
    if not path.exists():
        return results
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                results.append(BenchResult.from_dict(json.loads(line)))
            except (json.JSONDecodeError, ValueError, KeyError, TypeError):
                continue
    return results


# --------------------------------------------------------------------------
# baselines + the noise-aware regression detector


BASELINES_VERSION = 1


def default_tolerance(metric: Metric) -> Optional[float]:
    """Per-metric slack when the baseline pins none explicitly."""
    if metric.direction == "fixed":
        return FIXED_TOLERANCE
    return _UNIT_TOLERANCES.get(metric.unit.lower())


def make_baselines(
    results: Iterable[BenchResult],
    previous: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Pin the given results as the new baselines document.

    Benches absent from ``results`` keep their previous pins, so a partial
    ``bench accept --only`` never silently drops the rest of the suite.
    """
    benches: Dict[str, object] = {}
    if previous and isinstance(previous.get("benches"), dict):
        benches.update(previous["benches"])  # type: ignore[arg-type]
    for result in results:
        benches[result.bench] = {
            "pinned_unix": result.created_unix,
            "env": result.env.to_dict(),
            "metrics": {
                metric.name: {
                    "value": metric.value,
                    "unit": metric.unit,
                    "direction": metric.direction,
                    "tolerance": default_tolerance(metric),
                }
                for metric in result.metrics
            },
        }
    return {"baselines_version": BASELINES_VERSION, "benches": benches}


@dataclass
class MetricDelta:
    """One row of the ``bench diff`` table."""

    bench: str
    metric: str
    unit: str
    direction: str
    baseline: Optional[float]
    latest: Optional[float]
    delta_rel: Optional[float]
    allowed_rel: float
    noise_rel: float
    samples: int
    #: ``ok`` | ``regression`` | ``improvement`` | ``missing`` | ``new`` |
    #: ``info`` (env mismatch: reported, not gated)
    status: str = "ok"

    @property
    def gating(self) -> bool:
        return self.status == "regression"


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def relative_noise(history: Sequence[float]) -> float:
    """Robust relative spread of a metric's history: 1.4826·MAD / |median|.

    Empty or near-constant histories yield 0.0 — the detector then falls
    back to the static threshold alone.
    """
    if len(history) < MIN_NOISE_SAMPLES:
        return 0.0
    med = _median(history)
    mad = _median([abs(v - med) for v in history])
    scale = max(abs(med), 1e-12)
    return 1.4826 * mad / scale


def compare_metric(
    bench: str,
    baseline_entry: Dict[str, object],
    latest: Optional[Metric],
    history: Sequence[float],
    *,
    name: str,
    threshold: float = DEFAULT_THRESHOLD,
    noise_mult: float = DEFAULT_NOISE_MULT,
    gate: bool = True,
) -> MetricDelta:
    """Compare one metric's latest value against its pinned baseline."""
    direction = str(baseline_entry.get("direction", "lower"))
    unit = str(baseline_entry.get("unit", "seconds"))
    base = baseline_entry.get("value")
    base_value = float(base) if base is not None else None
    tolerance = baseline_entry.get("tolerance")
    floor = (
        float(tolerance)
        if tolerance is not None
        else (
            default_tolerance(Metric(name, 0.0, unit, direction))
            if direction in DIRECTIONS
            else None
        )
    )
    if floor is None:
        floor = threshold
    noise = relative_noise(history)
    allowed = max(floor, noise_mult * noise)

    if latest is None:
        return MetricDelta(
            bench, name, unit, direction, base_value, None, None,
            allowed, noise, len(history), status="missing",
        )
    if base_value is None:
        return MetricDelta(
            bench, name, unit, direction, None, latest.value, None,
            allowed, noise, len(history), status="new",
        )
    if base_value == 0.0:
        delta = 0.0 if latest.value == 0.0 else math.inf
    else:
        delta = (latest.value - base_value) / abs(base_value)

    status = "ok"
    if direction == "lower":
        if delta > allowed:
            status = "regression"
        elif delta < -allowed:
            status = "improvement"
    elif direction == "higher":
        if delta < -allowed:
            status = "regression"
        elif delta > allowed:
            status = "improvement"
    else:  # fixed
        if abs(delta) > allowed:
            status = "regression"
    if status == "regression" and not gate:
        status = "info"
    return MetricDelta(
        bench, name, unit, direction, base_value, latest.value, delta,
        allowed, noise, len(history), status=status,
    )


def diff_results(
    trajectory: Sequence[BenchResult],
    baselines: Dict[str, object],
    *,
    threshold: float = DEFAULT_THRESHOLD,
    noise_mult: float = DEFAULT_NOISE_MULT,
    history_window: int = DEFAULT_HISTORY_WINDOW,
    strict_env: bool = False,
    only: Optional[Sequence[str]] = None,
) -> List[MetricDelta]:
    """The regression detector: latest trajectory run vs pinned baselines.

    Per bench, the *latest* trajectory entry is the candidate; earlier
    entries recorded on the same machine (hostname + cpu model + count)
    supply the noise window.  A metric regresses when its relative delta
    against the baseline exceeds ``max(tolerance-or-threshold,
    noise_mult · MAD-noise)`` in the bad direction.

    Machine discipline: ``fixed`` metrics gate unconditionally (they are
    deterministic); timing metrics gate only when the baseline was pinned
    on the same machine as the candidate run — otherwise they are demoted
    to ``info`` rows (``strict_env=True`` gates them anyway).
    """
    benches = baselines.get("benches", {})
    if not isinstance(benches, dict):
        raise ValueError("baselines document has no 'benches' mapping")
    by_bench: Dict[str, List[BenchResult]] = {}
    for result in trajectory:
        by_bench.setdefault(result.bench, []).append(result)

    deltas: List[MetricDelta] = []
    for bench, pinned in sorted(benches.items()):
        if only and bench not in only:
            continue
        runs = by_bench.get(bench, [])
        if not runs:
            continue  # nothing measured this time; nothing to compare
        latest = runs[-1]
        history_runs = [
            r for r in runs[:-1] if r.env.matches_machine(latest.env)
        ][-history_window:]
        base_env = EnvFingerprint.from_dict(pinned.get("env", {}))  # type: ignore[arg-type]
        same_machine = base_env.matches_machine(latest.env)
        pinned_metrics = pinned.get("metrics", {})
        if not isinstance(pinned_metrics, dict):
            continue
        for name, entry in sorted(pinned_metrics.items()):
            direction = str(entry.get("direction", "lower"))
            gate = strict_env or same_machine or direction == "fixed"
            history = [
                m.value
                for r in history_runs
                for m in [r.metric(name)]
                if m is not None
            ]
            deltas.append(
                compare_metric(
                    bench,
                    entry,
                    latest.metric(name),
                    history,
                    name=name,
                    threshold=threshold,
                    noise_mult=noise_mult,
                    gate=gate,
                )
            )
        for metric in latest.metrics:
            if metric.name not in pinned_metrics:
                deltas.append(
                    MetricDelta(
                        bench, metric.name, metric.unit, metric.direction,
                        None, metric.value, None, 0.0, 0.0, 0, status="new",
                    )
                )
    return deltas


# --------------------------------------------------------------------------
# discovery-based runner

TIERS = ("smoke", "full")


@dataclass(frozen=True)
class BenchSpec:
    """One discovered ``benchmarks/bench_*.py`` module."""

    name: str
    path: Path
    tier: str
    summary: str

    def in_tier(self, tier: str) -> bool:
        return tier == "full" or self.tier == tier


def discover(bench_dir: Path) -> List[BenchSpec]:
    """Find bench modules and read their tier + docstring, without import.

    A module opts into the fast tier with a top-level ``BENCH_TIER =
    "smoke"`` assignment; everything else is ``full``-tier.  Parsing is
    :mod:`ast`-based so discovery never pays (or crashes on) the module's
    imports.
    """
    import ast

    specs: List[BenchSpec] = []
    for path in sorted(Path(bench_dir).glob("bench_*.py")):
        tier = "full"
        summary = ""
        try:
            tree = ast.parse(path.read_text(encoding="utf-8"))
        except SyntaxError:
            summary = "(unparseable)"
        else:
            doc = ast.get_docstring(tree)
            if doc:
                summary = doc.strip().splitlines()[0]
            for node in tree.body:
                if (
                    isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                    and node.targets[0].id == "BENCH_TIER"
                    and isinstance(node.value, ast.Constant)
                    and node.value.value in TIERS
                ):
                    tier = node.value.value
        specs.append(
            BenchSpec(
                name=path.stem[len("bench_"):], path=path, tier=tier,
                summary=summary,
            )
        )
    return specs


@dataclass
class RunOutcome:
    """What one ``bench run`` execution of one module produced."""

    spec: BenchSpec
    #: ``ok`` | ``failed`` | ``no-result`` (tests passed or were skipped
    #: but nothing was published — e.g. a platform-gated bench)
    status: str
    seconds: float
    returncode: int
    results: List[BenchResult] = field(default_factory=list)
    tail: str = ""


def _trajectory_size(path: Path) -> int:
    try:
        return path.stat().st_size
    except OSError:
        return 0


def _read_trajectory_from(path: Path, offset: int) -> List[BenchResult]:
    results: List[BenchResult] = []
    if not path.exists():
        return results
    with open(path, "r", encoding="utf-8") as handle:
        handle.seek(offset)
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                results.append(BenchResult.from_dict(json.loads(line)))
            except (json.JSONDecodeError, ValueError, KeyError, TypeError):
                continue
    return results


def run_module(
    spec: BenchSpec,
    *,
    repo_root: Path,
    results_dir: Path,
    trajectory_path: Path,
    repeat: int = 1,
    extra_env: Optional[Dict[str, str]] = None,
) -> RunOutcome:
    """Execute one bench module ``repeat`` times under pytest.

    Each execution is a fresh interpreter (``python -m pytest <file> -q``)
    from the repository root, so benches publish through their normal
    in-module path and every run lands on the trajectory.  With
    ``repeat > 1`` the per-repeat results are folded min-of-N (direction
    aware, :func:`merge_results`) and the merged result is republished —
    the canonical file and the final trajectory line carry the best-of
    while the individual repeats stay on record.
    """
    repo_root = Path(repo_root)
    env = dict(os.environ)
    src = repo_root / "src"
    extra_paths = [str(repo_root)] + ([str(src)] if src.is_dir() else [])
    current = env.get("PYTHONPATH")
    env["PYTHONPATH"] = os.pathsep.join(
        extra_paths + ([current] if current else [])
    )
    if extra_env:
        env.update(extra_env)

    start = time.perf_counter()
    collected: Dict[str, List[BenchResult]] = {}
    returncode = 0
    tail = ""
    for _ in range(max(1, repeat)):
        offset = _trajectory_size(trajectory_path)
        proc = subprocess.run(
            [
                sys.executable, "-m", "pytest", str(spec.path), "-q",
                "-p", "no:cacheprovider",
            ],
            cwd=repo_root,
            env=env,
            capture_output=True,
            text=True,
        )
        returncode = proc.returncode
        if proc.returncode != 0:
            tail = "\n".join(
                (proc.stdout + "\n" + proc.stderr).strip().splitlines()[-25:]
            )
            break
        for result in _read_trajectory_from(trajectory_path, offset):
            collected.setdefault(result.bench, []).append(result)
    seconds = time.perf_counter() - start

    if returncode != 0:
        return RunOutcome(spec, "failed", seconds, returncode, [], tail)

    merged: List[BenchResult] = []
    for name, runs in collected.items():
        # Within one execution a module may publish the same bench twice
        # (e.g. a second test enriching the record); fold across repeats
        # on the per-repeat *last* publication.
        if repeat > 1 and len(runs) > 1:
            best = merge_results(runs)
            publish(
                best,
                results_dir,
                root_dir=repo_root,
                trajectory_path=trajectory_path,
            )
            merged.append(best)
        else:
            merged.append(runs[-1])
    status = "ok" if merged else "no-result"
    return RunOutcome(spec, status, seconds, returncode, merged)


def format_delta_table(deltas: Sequence[MetricDelta]) -> List[str]:
    """The per-metric delta table ``bench diff`` prints."""
    header = [
        "bench", "metric", "dir", "baseline", "latest", "delta",
        "allowed", "noise", "n", "status",
    ]
    rows: List[List[str]] = []

    def fmt(value: Optional[float]) -> str:
        if value is None:
            return "-"
        if value != value or abs(value) == math.inf:
            return "inf"
        if value == 0:
            return "0"
        if abs(value) >= 1e6 or abs(value) < 1e-4:
            return f"{value:.3e}"
        return f"{value:.6g}"

    for d in deltas:
        delta = (
            "-"
            if d.delta_rel is None
            else ("inf" if abs(d.delta_rel) == math.inf else f"{d.delta_rel:+.1%}")
        )
        rows.append(
            [
                d.bench, d.metric, d.direction, fmt(d.baseline),
                fmt(d.latest), delta, f"{d.allowed_rel:.1%}",
                f"{d.noise_rel:.1%}", str(d.samples), d.status,
            ]
        )
    widths = [len(h) for h in header]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    return [line(header), line(["-" * w for w in widths])] + [
        line(row) for row in rows
    ]

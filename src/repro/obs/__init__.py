"""Unified observability layer: metrics, tracing, phase profiling, logging.

A dependency-free (stdlib + numpy-free) telemetry toolkit threaded through
every pillar of the codebase:

* :mod:`repro.obs.metrics` — process-local :class:`MetricsRegistry` with
  ``Counter`` / ``Gauge`` / fixed-bucket ``Histogram`` primitives and a
  Prometheus text-format encoder.  Cheap enough for hot paths: plain
  attribute bumps, no locks on the single-threaded asyncio path, and
  picklable snapshots so worker-process registries can be harvested back
  through the :class:`~repro.runtime.pool.ParallelRuntime` pool and merged.
* :mod:`repro.obs.trace` — lightweight trace ids and span contexts.  One
  trace id per HTTP request, carried in a :mod:`contextvars` variable,
  propagated through the query coalescer and across process boundaries
  into pool workers (the id rides the pickled task tuples).
* :mod:`repro.obs.phases` — the structured phase profiler.  Off by
  default at near-zero cost (a module-level no-op context manager);
  enabled via ``REPRO_PROFILE=1`` or the CLI ``--profile`` flags, it
  records a nested phase tree (the paper's counting / index-build /
  peeling decomposition made first-class) that surfaces in logs, bench
  JSONs and ``repro-bitruss stats``.
* :mod:`repro.obs.bench` — the performance-trajectory plane: schema'd
  :class:`BenchResult` documents with an :class:`EnvFingerprint` of the
  producing machine/build, ``publish()`` into canonical per-bench JSONs
  plus a longitudinal ``trajectory.jsonl``, and a noise-aware regression
  detector (relative threshold + MAD window) behind ``repro-bitruss
  bench diff``.
* :mod:`repro.obs.log` — stdlib-``logging`` helpers: a JSON formatter
  with trace-id correlation and the shared ``repro.*`` logger tree the
  server, update manager and CLI log through instead of bare prints.

The existing per-run sinks in :mod:`repro.utils.stats` (``PhaseTimer``,
``UpdateCounter``) are unchanged — ``PhaseTimer`` additionally feeds the
phase profiler when profiling is enabled, so every already-instrumented
algorithm phase appears in the tree for free.
"""

from repro.obs import bench, log, metrics, phases, spans, store, trace
from repro.obs.bench import BenchResult, Contract, EnvFingerprint, Metric
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry, get_registry
from repro.obs.phases import PhaseProfiler
from repro.obs.spans import Span, SpanRecorder, get_recorder
from repro.obs.store import TraceRecord, TraceStore
from repro.obs.trace import current_trace_id, new_trace_id, span

__all__ = [
    "BenchResult",
    "Contract",
    "EnvFingerprint",
    "Metric",
    "bench",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PhaseProfiler",
    "Span",
    "SpanRecorder",
    "TraceRecord",
    "TraceStore",
    "current_trace_id",
    "get_recorder",
    "get_registry",
    "log",
    "metrics",
    "new_trace_id",
    "phases",
    "span",
    "spans",
    "store",
    "trace",
]

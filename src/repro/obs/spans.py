"""Always-on span recording: a bounded flight recorder for live tracing.

Where :mod:`repro.obs.phases` answers "where does a *run* spend its
time" (opt-in, aggregate), spans answer "why was *this request* slow"
(always on, per trace).  A :class:`Span` is one timed operation with a
trace id, its own span id and a parent span id, so a request's spans
assemble into a tree — including spans recorded inside pool workers,
which ship home as dicts in the task harvest and graft under the
dispatching span (see :func:`remote_child` and ``pool._run_task``).

The cost model keeps this safe to leave on in production:

* outside a trace (bare library calls, CLI runs without ``--trace``)
  :func:`span` degrades to :func:`repro.obs.phases.phase` — a shared
  no-op unless profiling is enabled;
* inside a trace, each span is one small object, two monotonic clock
  reads and one lock-guarded ring-buffer write (``tests/test_spans.py``
  pins the total below 3% of a ``bit-bu-csr`` decompose);
* **head sampling** (``REPRO_TRACE_SAMPLE``, default 1.0) decides per
  trace — deterministically from the trace id, so workers agree with
  the dispatcher without coordination — and **tail promotion** retains
  any trace whose root crosses the slow threshold even when the head
  decision said drop, so the slowest requests are always inspectable.

The :class:`SpanRecorder` is process-global (:func:`get_recorder`); the
server drains completed traces out of it into a
:class:`repro.obs.store.TraceStore` for the ``/debug/traces`` plane.
"""

from __future__ import annotations

import hashlib
import os
import threading
import time
from collections import OrderedDict
from contextvars import ContextVar
from typing import Any, Dict, List, Optional

from repro.obs import phases, trace

_ENV_SAMPLE = "REPRO_TRACE_SAMPLE"
_ENV_BUFFER = "REPRO_TRACE_BUFFER"
_ENV_SLOW_MS = "REPRO_TRACE_SLOW_MS"

_DEFAULT_CAPACITY = 4096
_DEFAULT_SLOW_MS = 250.0
_MAX_OPEN_TRACES = 256
_MAX_SPANS_PER_TRACE = 512


def new_span_id() -> str:
    """A fresh 8-hex-char span id."""
    return os.urandom(4).hex()


class Span:
    """One timed operation inside a trace.

    Timestamps are ``time.monotonic_ns()`` — on Linux CLOCK_MONOTONIC is
    system-wide, so spans recorded in worker processes are directly
    comparable with (and nest correctly under) the dispatcher's spans.
    """

    __slots__ = (
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "start_ns",
        "end_ns",
        "attrs",
        "status",
        "error",
        "pid",
        "tid",
    )

    def __init__(
        self,
        trace_id: str,
        name: str,
        *,
        parent_id: Optional[str] = None,
        attrs: Optional[Dict[str, Any]] = None,
        span_id: Optional[str] = None,
        start_ns: Optional[int] = None,
    ) -> None:
        self.trace_id = trace_id
        self.span_id = span_id if span_id is not None else new_span_id()
        self.parent_id = parent_id
        self.name = name
        self.start_ns = start_ns if start_ns is not None else time.monotonic_ns()
        self.end_ns: Optional[int] = None
        self.attrs: Dict[str, Any] = attrs if attrs is not None else {}
        self.status = "open"
        self.error: Optional[str] = None
        self.pid = os.getpid()
        self.tid = threading.get_ident()

    def finish(self, error: Optional[BaseException] = None) -> None:
        """Stamp the end time and final status (``ok`` or ``error``)."""
        self.end_ns = time.monotonic_ns()
        if error is not None:
            self.status = "error"
            self.error = f"{type(error).__name__}: {error}"
        else:
            self.status = "ok"

    @property
    def duration_ns(self) -> int:
        end = self.end_ns if self.end_ns is not None else time.monotonic_ns()
        return end - self.start_ns

    @property
    def duration_s(self) -> float:
        return self.duration_ns / 1e9

    def to_dict(self) -> Dict[str, Any]:
        """A picklable/JSON-safe form (rides the worker harvest home)."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "attrs": dict(self.attrs),
            "status": self.status,
            "error": self.error,
            "pid": self.pid,
            "tid": self.tid,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Span":
        span = cls(
            data["trace_id"],
            data["name"],
            parent_id=data.get("parent_id"),
            attrs=dict(data.get("attrs") or {}),
            span_id=data["span_id"],
            start_ns=data["start_ns"],
        )
        span.end_ns = data.get("end_ns")
        span.status = data.get("status", "ok")
        span.error = data.get("error")
        span.pid = data.get("pid", span.pid)
        span.tid = data.get("tid", span.tid)
        return span

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, trace={self.trace_id}, span={self.span_id}, "
            f"parent={self.parent_id}, {self.duration_ns / 1e6:.3f}ms, {self.status})"
        )


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name, "")
    if not raw:
        return default
    try:
        return float(raw)
    except ValueError:
        return default


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name, "")
    if not raw:
        return default
    try:
        return max(1, int(raw))
    except ValueError:
        return default


class SpanRecorder:
    """Lock-guarded ring buffer of completed spans plus per-trace assembly.

    Two stores under one lock:

    * a fixed-capacity **ring** of the most recent completed spans across
      all traces (the raw flight recorder — oldest entries overwritten,
      never an allocation beyond the preallocated slots);
    * an **open-trace map** accumulating each live trace's spans until
      :meth:`finish_trace` decides retention: keep if the head-sampling
      decision said so *or* the trace crossed the slow threshold (tail
      promotion), else drop.  Bounded by ``max_open_traces`` (oldest
      trace evicted) and ``max_spans_per_trace`` (excess spans counted
      as dropped, ring still written).
    """

    def __init__(
        self,
        capacity: int = _DEFAULT_CAPACITY,
        *,
        sample: float = 1.0,
        slow_s: float = _DEFAULT_SLOW_MS / 1000.0,
        max_open_traces: int = _MAX_OPEN_TRACES,
        max_spans_per_trace: int = _MAX_SPANS_PER_TRACE,
    ) -> None:
        self.capacity = max(1, int(capacity))
        self.sample = float(sample)
        self.slow_s = float(slow_s)
        self.max_open_traces = max(1, int(max_open_traces))
        self.max_spans_per_trace = max(1, int(max_spans_per_trace))
        self._lock = threading.Lock()
        self._ring: List[Optional[Span]] = [None] * self.capacity
        self._head = 0
        self._recorded = 0
        self._dropped = 0
        self._evicted_traces = 0
        self._retained_traces = 0
        self._discarded_traces = 0
        self._open: "OrderedDict[str, List[Span]]" = OrderedDict()

    def configure(
        self, *, sample: Optional[float] = None, slow_s: Optional[float] = None
    ) -> None:
        """Adjust the sampling rate / tail-promotion threshold at runtime."""
        if sample is not None:
            self.sample = float(sample)
        if slow_s is not None:
            self.slow_s = float(slow_s)

    def sample_trace(self, trace_id: str) -> bool:
        """The head-sampling decision for ``trace_id``.

        Deterministic in the trace id (a hash, not a coin flip) so every
        process touching the trace — dispatcher, workers — reaches the
        same verdict without coordination.
        """
        if self.sample >= 1.0:
            return True
        if self.sample <= 0.0:
            return False
        digest = hashlib.blake2b(trace_id.encode("ascii", "replace"), digest_size=8)
        return int.from_bytes(digest.digest(), "big") / 2.0**64 < self.sample

    def record(self, span: Span) -> None:
        """Append a completed span to the ring and its trace's open buffer."""
        with self._lock:
            self._ring[self._head] = span
            self._head = (self._head + 1) % self.capacity
            self._recorded += 1
            buf = self._open.get(span.trace_id)
            if buf is None:
                if len(self._open) >= self.max_open_traces:
                    self._open.popitem(last=False)
                    self._evicted_traces += 1
                buf = []
                self._open[span.trace_id] = buf
            if len(buf) < self.max_spans_per_trace:
                buf.append(span)
            else:
                self._dropped += 1

    def import_spans(self, dicts: List[Dict[str, Any]]) -> None:
        """Graft spans harvested from a worker process into this recorder."""
        for data in dicts:
            self.record(Span.from_dict(data))

    def finish_trace(self, trace_id: str) -> Optional[List[Span]]:
        """Close a trace and decide retention.

        Returns the trace's spans (start-ordered) when the trace is
        retained — head-sampled, or promoted because its root span (the
        longest span as a fallback) crossed ``slow_s`` — else None.
        """
        with self._lock:
            spans = self._open.pop(trace_id, None)
        if not spans:
            return None
        if not self.sample_trace(trace_id):
            roots = [s for s in spans if s.parent_id is None]
            anchor = roots[0] if roots else max(spans, key=lambda s: s.duration_ns)
            if self.slow_s <= 0.0 or anchor.duration_s < self.slow_s:
                self._discarded_traces += 1
                return None
        self._retained_traces += 1
        return sorted(spans, key=lambda s: (s.start_ns, s.span_id))

    def take_trace(self, trace_id: str) -> List[Span]:
        """Pop a trace's open spans unconditionally (worker harvest path)."""
        with self._lock:
            spans = self._open.pop(trace_id, None)
        if not spans:
            return []
        return sorted(spans, key=lambda s: (s.start_ns, s.span_id))

    def spans(self) -> List[Span]:
        """A snapshot of the ring, oldest first."""
        with self._lock:
            tail = self._ring[self._head :] + self._ring[: self._head]
        return [s for s in tail if s is not None]

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "capacity": self.capacity,
                "sample": self.sample,
                "slow_ms": self.slow_s * 1000.0,
                "recorded": self._recorded,
                "dropped": self._dropped,
                "open_traces": len(self._open),
                "evicted_traces": self._evicted_traces,
                "retained_traces": self._retained_traces,
                "discarded_traces": self._discarded_traces,
            }

    def reset(self) -> None:
        with self._lock:
            self._ring = [None] * self.capacity
            self._head = 0
            self._recorded = 0
            self._dropped = 0
            self._evicted_traces = 0
            self._retained_traces = 0
            self._discarded_traces = 0
            self._open.clear()


_RECORDER = SpanRecorder(
    capacity=_env_int(_ENV_BUFFER, _DEFAULT_CAPACITY),
    sample=_env_float(_ENV_SAMPLE, 1.0),
    slow_s=_env_float(_ENV_SLOW_MS, _DEFAULT_SLOW_MS) / 1000.0,
)


def get_recorder() -> SpanRecorder:
    """The process-global recorder (workers get their own after reset)."""
    return _RECORDER


def configure(
    *, sample: Optional[float] = None, slow_s: Optional[float] = None
) -> None:
    """Adjust the global recorder's knobs (``serve --trace-sample``)."""
    _RECORDER.configure(sample=sample, slow_s=slow_s)


def reset_in_worker() -> None:
    """Hard-reset span state in a freshly initialised pool worker.

    Forked workers inherit the parent's ring and open traces; clearing
    both keeps worker harvests free of phantom parent spans (mirrors
    ``phases.reset_in_worker`` / the registry reset in ``_worker_init``).
    """
    _RECORDER.reset()
    _STATE.set(None)


class _TraceState:
    """Per-trace mutable cursor: the currently open span for parentage.

    One instance per (context, trace id); spans of one trace open and
    close strictly nested within a single logical flow (the request's
    task plus executor hops via ``contextvars.copy_context``), so plain
    attribute mutation is safe without a lock.
    """

    __slots__ = ("trace_id", "current", "remote_parent")

    def __init__(self, trace_id: str, remote_parent: Optional[str] = None) -> None:
        self.trace_id = trace_id
        self.current: Optional[Span] = None
        self.remote_parent = remote_parent


_STATE: ContextVar[Optional[_TraceState]] = ContextVar(
    "repro_trace_state", default=None
)


def _state_for(trace_id: str) -> _TraceState:
    # The trace-id contextvar is the source of truth: a stale state left
    # behind by a previous request on the same connection task is detected
    # by trace-id mismatch and replaced.  The state object itself travels
    # by reference through ``contextvars.copy_context`` (executor hops,
    # coalescer flush tasks), so one trace's spans share one cursor.
    state = _STATE.get()
    if state is None or state.trace_id != trace_id:
        state = _TraceState(trace_id)
        _STATE.set(state)
    return state


def current_span() -> Optional[Span]:
    """The innermost open span of the current trace, if any."""
    tid = trace.current_trace_id()
    if tid is None:
        return None
    state = _STATE.get()
    if state is None or state.trace_id != tid:
        return None
    return state.current


class _SpanContext:
    """Context manager recording one span (and feeding the phase tree)."""

    __slots__ = ("_state", "_name", "_attrs", "_span", "_parent", "_phase", "_bridge")

    def __init__(
        self,
        state: _TraceState,
        name: str,
        attrs: Dict[str, Any],
        bridge_phases: bool = True,
    ) -> None:
        self._state = state
        self._name = name
        self._attrs = attrs
        self._bridge = bridge_phases

    def __enter__(self) -> Span:
        self._phase = phases.phase(self._name) if self._bridge else phases._NOOP
        self._phase.__enter__()
        parent = self._state.current
        self._parent = parent
        self._span = Span(
            self._state.trace_id,
            self._name,
            parent_id=parent.span_id if parent is not None else self._state.remote_parent,
            attrs=self._attrs,
        )
        self._state.current = self._span
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._state.current = self._parent
        self._span.finish(error=exc)
        _RECORDER.record(self._span)
        self._phase.__exit__(exc_type, exc, tb)
        return False


def span(name: str, **attrs: Any):
    """A span context for the current trace.

    Outside any trace — or with sampling hard-off (``sample <= 0``) —
    this degrades to :func:`repro.obs.phases.phase`, i.e. a shared no-op
    unless profiling is on: the always-on recorder costs a contextvar
    read and a float compare on untraced paths.
    """
    tid = trace.current_trace_id()
    if tid is None or _RECORDER.sample <= 0.0:
        return phases.phase(name)
    return _SpanContext(_state_for(tid), name, attrs)


def trace_span(name: str, **attrs: Any):
    """A span context that never creates a phase-tree node.

    For request-plumbing sites (coalescer windows, pool dispatch,
    per-query ops) that belong in waterfalls but would distort the
    aggregate phase tree's established shape; outside a trace this is
    the shared no-op.
    """
    tid = trace.current_trace_id()
    if tid is None or _RECORDER.sample <= 0.0:
        return phases._NOOP
    return _SpanContext(_state_for(tid), name, attrs, bridge_phases=False)


class _RemoteChild:
    """Install a trace state whose spans parent under a remote span id.

    Used by pool workers: the dispatcher ships ``(trace_id,
    parent_span_id)`` in the task tuple; the worker's spans then link
    under the dispatching span even though the parent object lives in
    another process.
    """

    __slots__ = ("_trace_id", "_parent_id", "_token", "_prev")

    def __init__(self, trace_id: str, parent_span_id: Optional[str]) -> None:
        self._trace_id = trace_id
        self._parent_id = parent_span_id

    def __enter__(self) -> None:
        self._token = trace.set_trace_id(self._trace_id)
        self._prev = _STATE.set(
            _TraceState(self._trace_id, remote_parent=self._parent_id)
        )
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        _STATE.reset(self._prev)
        trace.reset_trace_id(self._token)
        return False


def remote_child(trace_id: str, parent_span_id: Optional[str]) -> _RemoteChild:
    return _RemoteChild(trace_id, parent_span_id)

"""Completed-trace retention: recent ring, top-K slowest, rollups.

The :class:`SpanRecorder` assembles spans per trace; once a root span
closes and the trace survives sampling, the server hands the span list
to a :class:`TraceStore`, which keeps

* the last N completed traces (a deque — the "what just happened" view),
* the K slowest traces ever seen (a min-heap — the "what hurts" view,
  which tail promotion feeds even when head sampling is dialed down),
* per-(endpoint, dataset) rollups (count / total / max duration).

Each retained trace is a :class:`TraceRecord`, able to render itself as
a parent-linked waterfall (``/debug/traces/{id}``) or as Chrome
trace-event JSON (``?format=chrome``) loadable in Perfetto or
``chrome://tracing``.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from collections import deque
from typing import Any, Dict, List, Optional

from repro.obs.spans import Span


class TraceRecord:
    """One completed, retained trace: its spans plus derived summary."""

    __slots__ = (
        "trace_id",
        "name",
        "endpoint",
        "dataset",
        "status",
        "start_ns",
        "duration_ns",
        "added_at",
        "spans",
    )

    def __init__(self, spans: List[Span]) -> None:
        if not spans:
            raise ValueError("a TraceRecord needs at least one span")
        self.spans = list(spans)
        roots = [s for s in self.spans if s.parent_id is None]
        root = roots[0] if roots else min(self.spans, key=lambda s: s.start_ns)
        self.trace_id = root.trace_id
        self.name = root.name
        self.endpoint = str(root.attrs.get("endpoint", ""))
        self.dataset = str(root.attrs.get("dataset", ""))
        self.status = root.status
        self.start_ns = min(s.start_ns for s in self.spans)
        end_ns = max(s.end_ns if s.end_ns is not None else s.start_ns for s in self.spans)
        root_end = root.end_ns if root.end_ns is not None else end_ns
        self.duration_ns = max(root_end - root.start_ns, 0)
        self.added_at = time.time()

    def summary(self) -> Dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "name": self.name,
            "endpoint": self.endpoint,
            "dataset": self.dataset,
            "status": self.status,
            "duration_ms": self.duration_ns / 1e6,
            "spans": len(self.spans),
            "completed_unix": self.added_at,
        }

    def waterfall(self) -> Dict[str, Any]:
        """Parent-linked span tree with millisecond offsets from trace start.

        Spans whose parent never made it into the record (evicted, or a
        worker span whose dispatcher dropped out) graft at the top level
        rather than disappearing.
        """
        by_id = {s.span_id: s for s in self.spans}
        children: Dict[Optional[str], List[Span]] = {}
        for s in self.spans:
            key = s.parent_id if s.parent_id in by_id else None
            children.setdefault(key, []).append(s)

        def node(s: Span) -> Dict[str, Any]:
            kids = sorted(
                children.get(s.span_id, ()), key=lambda c: (c.start_ns, c.span_id)
            )
            out: Dict[str, Any] = {
                "name": s.name,
                "span_id": s.span_id,
                "parent_id": s.parent_id,
                "start_ms": (s.start_ns - self.start_ns) / 1e6,
                "duration_ms": s.duration_ns / 1e6,
                "status": s.status,
                "pid": s.pid,
                "attrs": dict(s.attrs),
            }
            if s.error:
                out["error"] = s.error
            if kids:
                out["children"] = [node(c) for c in kids]
            return out

        roots = sorted(children.get(None, ()), key=lambda c: (c.start_ns, c.span_id))
        return {
            "trace_id": self.trace_id,
            "name": self.name,
            "endpoint": self.endpoint,
            "dataset": self.dataset,
            "status": self.status,
            "duration_ms": self.duration_ns / 1e6,
            "completed_unix": self.added_at,
            "spans": [node(r) for r in roots],
        }

    def chrome(self) -> Dict[str, Any]:
        """Chrome trace-event JSON (complete ``X`` events, µs timestamps).

        Load at https://ui.perfetto.dev or ``chrome://tracing``.
        """
        events: List[Dict[str, Any]] = []
        for pid in sorted({s.pid for s in self.spans}):
            events.append(
                {
                    "ph": "M",
                    "name": "process_name",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": f"repro pid {pid}"},
                }
            )
        for s in sorted(self.spans, key=lambda s: (s.start_ns, s.span_id)):
            end_ns = s.end_ns if s.end_ns is not None else s.start_ns
            events.append(
                {
                    "ph": "X",
                    "name": s.name,
                    "cat": "repro",
                    "ts": (s.start_ns - self.start_ns) / 1e3,
                    "dur": max(end_ns - s.start_ns, 0) / 1e3,
                    "pid": s.pid,
                    "tid": s.tid,
                    "args": {
                        "trace_id": s.trace_id,
                        "span_id": s.span_id,
                        "parent_id": s.parent_id,
                        "status": s.status,
                        **{k: v for k, v in s.attrs.items()},
                    },
                }
            )
        return {"displayTimeUnit": "ms", "traceEvents": events}


class TraceStore:
    """Bounded retention of completed traces, lock-guarded.

    ``recent`` is a deque of the last N records; ``slowest`` a min-heap
    of the K largest durations ever seen (a slow trace stays inspectable
    long after it scrolls out of ``recent``); rollups aggregate count /
    total / max duration per (endpoint, dataset).
    """

    def __init__(self, recent: int = 128, slowest: int = 32) -> None:
        self.recent_capacity = max(1, int(recent))
        self.slowest_capacity = max(1, int(slowest))
        self._lock = threading.Lock()
        self._recent: "deque[TraceRecord]" = deque(maxlen=self.recent_capacity)
        self._slowest: List[tuple] = []  # (duration_ns, seq, record) min-heap
        self._seq = itertools.count()
        self._added = 0
        self._rollups: Dict[tuple, List[float]] = {}  # key -> [count, total_ns, max_ns]

    def add(self, spans: List[Span]) -> Optional[TraceRecord]:
        if not spans:
            return None
        record = TraceRecord(spans)
        with self._lock:
            self._added += 1
            self._recent.append(record)
            entry = (record.duration_ns, next(self._seq), record)
            if len(self._slowest) < self.slowest_capacity:
                heapq.heappush(self._slowest, entry)
            elif entry[0] > self._slowest[0][0]:
                heapq.heapreplace(self._slowest, entry)
            agg = self._rollups.setdefault(
                (record.endpoint, record.dataset), [0, 0.0, 0.0]
            )
            agg[0] += 1
            agg[1] += record.duration_ns
            agg[2] = max(agg[2], record.duration_ns)
        return record

    def get(self, trace_id: str) -> Optional[TraceRecord]:
        with self._lock:
            for record in reversed(self._recent):
                if record.trace_id == trace_id:
                    return record
            for _, _, record in self._slowest:
                if record.trace_id == trace_id:
                    return record
        return None

    @staticmethod
    def _matches(
        record: TraceRecord, endpoint: Optional[str], dataset: Optional[str]
    ) -> bool:
        if endpoint is not None and record.endpoint != endpoint:
            return False
        if dataset is not None and record.dataset != dataset:
            return False
        return True

    def recent_traces(
        self,
        *,
        endpoint: Optional[str] = None,
        dataset: Optional[str] = None,
        limit: int = 50,
    ) -> List[TraceRecord]:
        """Newest-first retained traces, optionally filtered."""
        out: List[TraceRecord] = []
        with self._lock:
            for record in reversed(self._recent):
                if self._matches(record, endpoint, dataset):
                    out.append(record)
                    if len(out) >= limit:
                        break
        return out

    def slowest_traces(
        self,
        *,
        endpoint: Optional[str] = None,
        dataset: Optional[str] = None,
        limit: int = 50,
    ) -> List[TraceRecord]:
        """Slowest-first retained traces, optionally filtered."""
        with self._lock:
            ranked = sorted(self._slowest, key=lambda e: (-e[0], e[1]))
        out: List[TraceRecord] = []
        for _, _, record in ranked:
            if self._matches(record, endpoint, dataset):
                out.append(record)
                if len(out) >= limit:
                    break
        return out

    def rollups(self) -> List[Dict[str, Any]]:
        with self._lock:
            items = sorted(self._rollups.items())
        out = []
        for (endpoint, dataset), (count, total_ns, max_ns) in items:
            out.append(
                {
                    "endpoint": endpoint,
                    "dataset": dataset,
                    "count": int(count),
                    "total_ms": total_ns / 1e6,
                    "avg_ms": (total_ns / count) / 1e6 if count else 0.0,
                    "max_ms": max_ns / 1e6,
                }
            )
        return out

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "recent": len(self._recent),
                "recent_capacity": self.recent_capacity,
                "slowest": len(self._slowest),
                "slowest_capacity": self.slowest_capacity,
                "traces_added": self._added,
            }

    def reset(self) -> None:
        with self._lock:
            self._recent.clear()
            self._slowest.clear()
            self._rollups.clear()
            self._added = 0

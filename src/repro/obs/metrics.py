"""Process-local metrics: counters, gauges, fixed-bucket histograms.

The primitives are deliberately minimal — plain Python attribute bumps
with no locks, safe on the server's single-threaded asyncio path and
cheap enough for per-request bookkeeping.  Labelled series live in one
dict per family keyed by the label-value tuple, so the common unlabelled
case is a single dict lookup with the empty tuple.

Two consumers shape the API:

* the HTTP server encodes a registry (plus scrape-time synthesized
  families) into the Prometheus text exposition format via
  :meth:`MetricsRegistry.to_prometheus`;
* the shared-memory runtime harvests each worker process's registry as a
  picklable :meth:`~MetricsRegistry.snapshot` and folds it into the
  parent's with :meth:`~MetricsRegistry.merge_snapshot` (counters and
  histogram buckets add; gauges last-write-win).

A process-global registry (:func:`get_registry`) carries the metrics of
library code that has no server to attach to — runtime task counts,
incremental-repair counters; the server keeps its own per-instance
registry for HTTP series and merges the global one at scrape time.
"""

from __future__ import annotations

import time as _time
from bisect import bisect_left
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

LabelValues = Tuple[str, ...]


def _now() -> float:
    return _time.time()

#: Default latency buckets (seconds): sub-millisecond cache hits up to
#: multi-second cold decompositions, roughly logarithmic.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
)


def _check_labels(
    label_names: Tuple[str, ...], labels: Sequence[str]
) -> LabelValues:
    if len(labels) != len(label_names):
        raise ValueError(
            f"expected {len(label_names)} label value(s) "
            f"{label_names!r}, got {len(labels)}"
        )
    return tuple(str(v) for v in labels)


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    # Prometheus accepts integers and floats; keep integers exact so the
    # golden-file exposition is stable across platforms.
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _labels_text(names: Tuple[str, ...], values: LabelValues) -> str:
    if not names:
        return ""
    inner = ",".join(
        f'{n}="{_escape_label(v)}"' for n, v in zip(names, values)
    )
    return "{" + inner + "}"


def _exemplar_text(slot: list) -> str:
    labels, value, ts = slot
    inner = ",".join(
        f'{n}="{_escape_label(str(v))}"' for n, v in sorted(labels.items())
    )
    return f" # {{{inner}}} {_format_value(value)} {ts:.3f}"


class Counter:
    """A monotonically increasing family of labelled counters."""

    kind = "counter"

    __slots__ = ("name", "help", "label_names", "_values")

    def __init__(
        self, name: str, help: str, label_names: Tuple[str, ...] = ()
    ) -> None:
        self.name = name
        self.help = help
        self.label_names = label_names
        self._values: Dict[LabelValues, float] = {}

    def inc(self, amount: float = 1.0, labels: Sequence[str] = ()) -> None:
        """Add ``amount`` (must be >= 0) to the labelled series."""
        if amount < 0:
            raise ValueError("counters only go up")
        key = _check_labels(self.label_names, labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def set_to(self, value: float, labels: Sequence[str] = ()) -> None:
        """Overwrite the labelled series (for mirroring external counts).

        Used when a counter maintained elsewhere (e.g. the update
        manager's per-dataset dicts) is reflected into a scrape-time
        registry; never for live accounting.
        """
        key = _check_labels(self.label_names, labels)
        self._values[key] = float(value)

    def value(self, labels: Sequence[str] = ()) -> float:
        """Current value of the labelled series (0 when never bumped)."""
        return self._values.get(_check_labels(self.label_names, labels), 0.0)

    def series(self) -> Dict[LabelValues, float]:
        """All labelled series, keyed by label-value tuple."""
        return dict(self._values)


class Gauge(Counter):
    """A settable family of labelled values (can go up and down)."""

    kind = "gauge"

    __slots__ = ()

    def set(self, value: float, labels: Sequence[str] = ()) -> None:
        """Set the labelled series to ``value``."""
        key = _check_labels(self.label_names, labels)
        self._values[key] = float(value)

    def inc(self, amount: float = 1.0, labels: Sequence[str] = ()) -> None:
        key = _check_labels(self.label_names, labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, labels: Sequence[str] = ()) -> None:
        self.inc(-amount, labels)


class Histogram:
    """Fixed-bucket latency histogram (cumulative on encode, not in RAM).

    Per labelled series: one per-bucket count list (non-cumulative,
    ``len(buckets) + 1`` slots, the last being the ``+Inf`` overflow),
    a value sum and an observation count.  ``observe`` is a bisect plus
    three attribute bumps — no numpy, no locks.
    """

    kind = "histogram"

    __slots__ = ("name", "help", "label_names", "buckets", "_series", "_exemplars")

    def __init__(
        self,
        name: str,
        help: str,
        label_names: Tuple[str, ...] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError("buckets must be a sorted, de-duplicated list")
        self.name = name
        self.help = help
        self.label_names = label_names
        self.buckets = bounds
        # label tuple -> [counts list, sum, count]
        self._series: Dict[LabelValues, List[object]] = {}
        # label tuple -> per-bucket [labels dict, value, unix ts] or None;
        # the last observation landing in each bucket wins (OpenMetrics
        # exemplars join histogram buckets to trace ids).
        self._exemplars: Dict[LabelValues, List[Optional[list]]] = {}

    def observe(
        self,
        value: float,
        labels: Sequence[str] = (),
        exemplar: Optional[Mapping[str, str]] = None,
    ) -> None:
        """Record one observation, optionally tagged with exemplar labels.

        ``exemplar`` is a small label mapping (typically
        ``{"trace_id": ...}``) attached to the bucket the observation
        lands in and surfaced by the OpenMetrics exposition, joining
        latency buckets to inspectable traces.
        """
        key = _check_labels(self.label_names, labels)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = [
                [0] * (len(self.buckets) + 1),
                0.0,
                0,
            ]
        idx = bisect_left(self.buckets, value)
        series[0][idx] += 1
        series[1] += value
        series[2] += 1
        if exemplar:
            slots = self._exemplars.get(key)
            if slots is None:
                slots = self._exemplars[key] = [None] * (len(self.buckets) + 1)
            slots[idx] = [dict(exemplar), float(value), _now()]

    def exemplars(self, labels: Sequence[str] = ()) -> List[Optional[list]]:
        """Per-bucket exemplars (``[labels, value, ts]`` or None) for a series."""
        slots = self._exemplars.get(_check_labels(self.label_names, labels))
        if slots is None:
            return [None] * (len(self.buckets) + 1)
        return [list(s) if s is not None else None for s in slots]

    def count(self, labels: Sequence[str] = ()) -> int:
        """Observations recorded into the labelled series."""
        series = self._series.get(_check_labels(self.label_names, labels))
        return int(series[2]) if series is not None else 0

    def sum(self, labels: Sequence[str] = ()) -> float:
        """Sum of observed values of the labelled series."""
        series = self._series.get(_check_labels(self.label_names, labels))
        return float(series[1]) if series is not None else 0.0

    def bucket_counts(self, labels: Sequence[str] = ()) -> List[int]:
        """Non-cumulative per-bucket counts (last slot is ``+Inf``)."""
        series = self._series.get(_check_labels(self.label_names, labels))
        if series is None:
            return [0] * (len(self.buckets) + 1)
        return list(series[0])

    def series(self) -> Dict[LabelValues, Tuple[List[int], float, int]]:
        """All labelled series as ``(bucket_counts, sum, count)``."""
        return {
            key: (list(counts), float(total), int(n))
            for key, (counts, total, n) in self._series.items()
        }


class MetricsRegistry:
    """A named collection of metric families.

    Families are get-or-create: asking for an existing name with the same
    kind and labels returns the live family, so modules can declare their
    metrics at call sites without import-order coupling.
    """

    def __init__(self) -> None:
        self._families: Dict[str, object] = {}

    # ------------------------------------------------------------ families

    def _get_or_create(self, cls, name: str, help: str, label_names, **kwargs):
        family = self._families.get(name)
        if family is not None:
            if type(family) is not cls or family.label_names != tuple(label_names):
                raise ValueError(
                    f"metric {name!r} already registered with a different "
                    "kind or label set"
                )
            return family
        family = cls(name, help, tuple(label_names), **kwargs)
        self._families[name] = family
        return family

    def counter(
        self, name: str, help: str = "", label_names: Sequence[str] = ()
    ) -> Counter:
        """Get or create a counter family."""
        return self._get_or_create(Counter, name, help, label_names)

    def gauge(
        self, name: str, help: str = "", label_names: Sequence[str] = ()
    ) -> Gauge:
        """Get or create a gauge family."""
        return self._get_or_create(Gauge, name, help, label_names)

    def histogram(
        self,
        name: str,
        help: str = "",
        label_names: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        """Get or create a histogram family."""
        return self._get_or_create(
            Histogram, name, help, label_names, buckets=buckets
        )

    def families(self) -> List[object]:
        """All families in name order."""
        return [self._families[name] for name in sorted(self._families)]

    def get(self, name: str) -> Optional[object]:
        """The named family, or None."""
        return self._families.get(name)

    def reset(self) -> None:
        """Drop every family (tests and worker harvest cycles)."""
        self._families.clear()

    def __len__(self) -> int:
        return len(self._families)

    # ------------------------------------------------------ harvest/merge

    def snapshot(self) -> Dict[str, dict]:
        """A picklable snapshot of every family (plain dicts and lists)."""
        out: Dict[str, dict] = {}
        for name, family in self._families.items():
            entry: Dict[str, object] = {
                "kind": family.kind,
                "help": family.help,
                "label_names": list(family.label_names),
            }
            if isinstance(family, Histogram):
                entry["buckets"] = list(family.buckets)
                entry["series"] = {
                    key: [list(counts), total, n]
                    for key, (counts, total, n) in family.series().items()
                }
                if family._exemplars:
                    entry["exemplars"] = {
                        key: [list(s) if s is not None else None for s in slots]
                        for key, slots in family._exemplars.items()
                    }
            else:
                entry["series"] = dict(family.series())
            out[name] = entry
        return out

    def merge_snapshot(self, snap: Mapping[str, dict]) -> None:
        """Fold a :meth:`snapshot` in: counters/histograms add, gauges set."""
        for name, entry in snap.items():
            kind = entry["kind"]
            label_names = tuple(entry["label_names"])
            if kind == "histogram":
                family = self.histogram(
                    name, entry.get("help", ""), label_names, entry["buckets"]
                )
                if tuple(float(b) for b in entry["buckets"]) != family.buckets:
                    raise ValueError(
                        f"histogram {name!r}: snapshot buckets differ"
                    )
                for key, (counts, total, n) in entry["series"].items():
                    key = tuple(key)
                    series = family._series.get(key)
                    if series is None:
                        family._series[key] = [list(counts), float(total), int(n)]
                    else:
                        for i, c in enumerate(counts):
                            series[0][i] += c
                        series[1] += total
                        series[2] += n
                for key, slots in entry.get("exemplars", {}).items():
                    key = tuple(key)
                    mine = family._exemplars.setdefault(
                        key, [None] * (len(family.buckets) + 1)
                    )
                    for i, incoming in enumerate(slots):
                        if incoming is None:
                            continue
                        if mine[i] is None or incoming[2] >= mine[i][2]:
                            mine[i] = [dict(incoming[0]), incoming[1], incoming[2]]
            elif kind == "gauge":
                family = self.gauge(name, entry.get("help", ""), label_names)
                for key, value in entry["series"].items():
                    family.set(value, tuple(key))
            elif kind == "counter":
                family = self.counter(name, entry.get("help", ""), label_names)
                for key, value in entry["series"].items():
                    family.inc(value, tuple(key))
            else:  # pragma: no cover - snapshot always round-trips our kinds
                raise ValueError(f"unknown metric kind {kind!r}")

    # ------------------------------------------------------------ encoding

    def to_prometheus(self, *, openmetrics: bool = False) -> str:
        """Encode every family in the Prometheus text exposition format.

        Families are emitted in name order and series in label order, so
        the output is deterministic (the golden-file tests rely on it).
        Histograms emit cumulative ``_bucket{le=...}`` series plus
        ``_sum`` and ``_count``, per the exposition format.

        With ``openmetrics=True`` the output additionally carries bucket
        exemplars (``... # {trace_id="..."} value ts``) and the ``# EOF``
        terminator; the classic text format stays byte-identical so
        existing golden files and scrapers are unaffected.
        """
        lines: List[str] = []
        for family in self.families():
            lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            names = family.label_names
            if isinstance(family, Histogram):
                for key in sorted(family._series):
                    counts, total, n = family._series[key]
                    slots = family._exemplars.get(key) if openmetrics else None
                    cumulative = 0
                    for i, (bound, c) in enumerate(zip(family.buckets, counts)):
                        cumulative += c
                        le = _labels_text(names + ("le",), key + (_format_value(bound),))
                        line = f"{family.name}_bucket{le} {cumulative}"
                        if slots is not None and slots[i] is not None:
                            line += _exemplar_text(slots[i])
                        lines.append(line)
                    cumulative += counts[-1]
                    le = _labels_text(names + ("le",), key + ("+Inf",))
                    line = f"{family.name}_bucket{le} {cumulative}"
                    if slots is not None and slots[-1] is not None:
                        line += _exemplar_text(slots[-1])
                    lines.append(line)
                    plain = _labels_text(names, key)
                    lines.append(
                        f"{family.name}_sum{plain} {_format_value(total)}"
                    )
                    lines.append(f"{family.name}_count{plain} {n}")
            else:
                for key in sorted(family._values):
                    labels = _labels_text(names, key)
                    value = _format_value(family._values[key])
                    lines.append(f"{family.name}{labels} {value}")
        if openmetrics:
            lines.append("# EOF")
        return "\n".join(lines) + "\n"


#: The process-global registry: library-level metrics with no server to
#: attach to (runtime task counts, incremental-repair counters, ...).
_GLOBAL = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-global :class:`MetricsRegistry`."""
    return _GLOBAL


def reset_registry() -> None:
    """Reset the process-global registry (test isolation)."""
    _GLOBAL.reset()

"""The BE-Index (Bloom-Edge-Index) of the paper's Section IV.

The index links every *maximal priority-obeyed bloom* (Definition 8) of a
bipartite graph with the edges it contains.  A bloom anchored by the dominant
pair ``(a, w)`` — where ``a`` out-ranks every other bloom vertex — consists of
the ``k`` priority-obeyed wedges ``(a, v, w)``; it holds ``C(k, 2)``
butterflies (Lemma 1) and each of its ``2k`` edges is paired with exactly one
*twin* (the other edge of its wedge, Definition 9/Lemma 4).

Because every butterfly lies in exactly one such bloom (Lemma 3), removing an
edge ``e`` only needs to walk the blooms linked to ``e`` — ``O(sup(e))`` work
(Lemma 5) — instead of the combination-based enumeration of the earlier
algorithms.

This module implements

* ``BEIndex.build``        — Algorithm 3 (IndexConstruction), and, when an
  ``assigned`` mask is given, Algorithm 6 (CompressedIndexConstruction):
  assigned edges contribute their wedges to bloom counts but are not inserted
  into ``L(I)``, so peeling never updates them;
* ``BEIndex.remove_edge``  — Algorithm 2 (RemoveEdge);
* ``BEIndex.detach_edge``  — the pass-1 half of Algorithm 5 (BiT-BU++):
  unlink an edge and its twins, incrementing per-bloom removal counters,
  leaving the bulk support updates to ``apply_bloom_batch``;
* ``BEIndex.apply_bloom_batch`` — the pass-2 half of Algorithm 5.

Fidelity note (also in DESIGN.md §3): Algorithm 2 as printed removes the twin
link only when the twin's support is strictly above the removed edge's.  A
twin at/below the peel level would then keep a stale link and later charge
updates for butterflies that no longer exist.  We always sever *both* links
of the dying wedge and apply the paper's guard only to the numeric support
updates; tests validate the result against brute-force recounting.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.butterfly.counting import collect_wedges
from repro.graph.bipartite import BipartiteGraph
from repro.utils.stats import UpdateCounter


class Bloom:
    """One maximal priority-obeyed bloom ``B*``.

    Attributes
    ----------
    anchor, partner:
        Global ids of the dominant pair; ``anchor`` has the highest priority
        in the bloom.
    k:
        Number of *live* wedges.  The bloom's butterfly count is
        ``⋈B = k (k − 1) / 2`` — storing ``k`` avoids re-solving
        ``C(k, 2) = ⋈B`` on every access (the paper's line "compute k from
        ``C(k,2) = ⋈B``").
    twin:
        Mapping ``edge id -> twin edge id`` realizing both the ``E(I)``
        membership of live edges and the per-pair ``twin(B*, e)`` pointers.
        In a compressed index an *assigned* edge never appears as a key, but
        may appear as a value (its unassigned twin still points at it).
    """

    __slots__ = ("bloom_id", "anchor", "partner", "k", "twin")

    def __init__(self, bloom_id: int, anchor: int, partner: int, k: int) -> None:
        self.bloom_id = bloom_id
        self.anchor = anchor
        self.partner = partner
        self.k = k
        self.twin: Dict[int, int] = {}

    @property
    def butterfly_count(self) -> int:
        """⋈B — the number of butterflies currently inside the bloom."""
        return self.k * (self.k - 1) // 2

    def __repr__(self) -> str:
        return (
            f"Bloom(id={self.bloom_id}, anchor={self.anchor}, "
            f"partner={self.partner}, k={self.k}, links={len(self.twin)})"
        )


class BEIndex:
    """Bloom-Edge-Index over a bipartite graph.

    Not built directly — use :meth:`build`.  The index owns the per-edge
    butterfly-support array ``support`` (length = number of edges of the
    indexed graph) which the peeling algorithms read and mutate through the
    removal operations below.

    Examples
    --------
    >>> from repro.graph.generators import planted_bloom
    >>> index = BEIndex.build(planted_bloom(3))   # one 3-bloom, C(3,2) = 3
    >>> index.size_components()
    (1, 6, 6)
    >>> index.support.tolist()
    [2, 2, 2, 2, 2, 2]
    >>> index.remove_edge(0)                      # Algorithm 2
    >>> index.num_indexed_edges
    4
    """

    def __init__(
        self,
        graph: BipartiteGraph,
        support: np.ndarray,
        blooms: Dict[int, Bloom],
        edge_blooms: Dict[int, Set[int]],
    ) -> None:
        self.graph = graph
        self.support = support
        self.blooms = blooms
        self.edge_blooms = edge_blooms

    # ------------------------------------------------------------ building

    @classmethod
    def build(
        cls,
        graph: BipartiteGraph,
        *,
        priorities: Optional[np.ndarray] = None,
        assigned: Optional[np.ndarray] = None,
    ) -> "BEIndex":
        """Construct the index (Algorithm 3 / Algorithm 6).

        Parameters
        ----------
        graph : BipartiteGraph
            The (sub)graph to index.
        priorities : numpy.ndarray, optional
            Optional precomputed Definition 7 ranking.
        assigned : numpy.ndarray, optional
            Optional boolean mask over edge ids.  When given, construction is
            the *compressed* variant of Algorithm 6: wedges of assigned edges
            still count towards bloom sizes (so unassigned supports stay
            correct), but assigned edges are not inserted into ``L(I)`` and
            carry no links — peeling never touches them.

        Returns
        -------
        BEIndex
            The index over ``graph``, owning the per-edge ``support`` array.

        Notes
        -----
        The traversal runs on the graph's shared priority-sorted CSR
        (:meth:`~repro.graph.bipartite.BipartiteGraph.csr_gid_sorted`): each
        "priority < p(start)" filter is a ``searchsorted`` prefix lookup
        instead of a scan over the whole row.  The per-edge supports are
        computed as a by-product of the same wedge traversal (each wedge of
        a ``k``-wedge anchor contributes ``k − 1`` butterflies to each of
        its two edges), so no separate counting pass is needed.

        Examples
        --------
        >>> from repro.graph.generators import planted_bloom
        >>> BEIndex.build(planted_bloom(3)).num_blooms
        1
        """
        prio = priorities if priorities is not None else graph.priorities()
        indptr, nbr_arr, eid_arr, row_prios = graph.csr_gid_sorted_with_prios(
            priorities
        )
        support = np.zeros(graph.num_edges, dtype=np.int64)

        blooms: Dict[int, Bloom] = {}
        edge_blooms: Dict[int, Set[int]] = {}
        next_bloom_id = 0

        is_assigned = assigned if assigned is not None else None

        for start in range(graph.num_vertices):
            wedges = collect_wedges(
                indptr, nbr_arr, eid_arr, row_prios, prio, start
            )
            if wedges is None:
                continue
            # wedge group per end vertex: list of (middle, e_uv, e_vw)
            groups: Dict[int, List[Tuple[int, int, int]]] = {}
            for w, v, e_uv, e_vw in wedges:
                groups.setdefault(w, []).append((v, e_uv, e_vw))
            for end, wedges in groups.items():
                k = len(wedges)
                if k < 2:
                    continue
                bloom = Bloom(next_bloom_id, start, end, k)
                next_bloom_id += 1
                blooms[bloom.bloom_id] = bloom
                for _v, e_uv, e_vw in wedges:
                    support[e_uv] += k - 1
                    support[e_vw] += k - 1
                    keep_uv = is_assigned is None or not is_assigned[e_uv]
                    keep_vw = is_assigned is None or not is_assigned[e_vw]
                    if keep_uv:
                        bloom.twin[e_uv] = e_vw
                        edge_blooms.setdefault(e_uv, set()).add(bloom.bloom_id)
                    if keep_vw:
                        bloom.twin[e_vw] = e_uv
                        edge_blooms.setdefault(e_vw, set()).add(bloom.bloom_id)
        return cls(graph, support, blooms, edge_blooms)

    # ---------------------------------------------------------- inspection

    @property
    def num_blooms(self) -> int:
        """Number of blooms currently stored (``|U(I)|``)."""
        return len(self.blooms)

    @property
    def num_indexed_edges(self) -> int:
        """Number of edges present in ``L(I)``."""
        return len(self.edge_blooms)

    @property
    def num_links(self) -> int:
        """Number of live (bloom, edge) links (``|E(I)|``)."""
        return sum(len(b.twin) for b in self.blooms.values())

    def size_components(self) -> Tuple[int, int, int]:
        """``(blooms, indexed edges, links)`` for the Fig. 11 size model."""
        return self.num_blooms, self.num_indexed_edges, self.num_links

    def blooms_of(self, edge: int) -> List[int]:
        """Bloom ids currently linked to ``edge`` (``N_I(e)``).

        Parameters
        ----------
        edge : int
            Edge id of the indexed graph.

        Returns
        -------
        list of int
            Ids of the blooms whose live link set contains ``edge``; empty
            when the edge is unlinked (butterfly-free or already removed).
        """
        return list(self.edge_blooms.get(edge, ()))

    def live_edges(self, bloom: Bloom) -> Iterator[int]:
        """Edges currently linked to ``bloom`` (``N_I(B*)``).

        Parameters
        ----------
        bloom : Bloom
            A bloom of this index.

        Returns
        -------
        iterator of int
            The edge ids with a live link into ``bloom``.
        """
        return iter(bloom.twin)

    def twin_of(self, bloom: Bloom, edge: int) -> int:
        """``twin(B*, e)`` — the other edge of ``e``'s wedge in the bloom.

        Parameters
        ----------
        bloom : Bloom
            A bloom of this index.
        edge : int
            An edge with a live link into ``bloom``.

        Returns
        -------
        int
            The twin edge id (Definition 9).

        Raises
        ------
        KeyError
            If ``edge`` has no live link into ``bloom``.
        """
        return bloom.twin[edge]

    # ------------------------------------------------------------- removal

    def _sever_pair(self, bloom: Bloom, edge: int, twin: int) -> None:
        """Drop the dying wedge's links (both directions) and shrink k."""
        bloom.twin.pop(edge, None)
        if bloom.twin.pop(twin, None) is not None:
            twin_blooms = self.edge_blooms.get(twin)
            if twin_blooms is not None:
                twin_blooms.discard(bloom.bloom_id)
                if not twin_blooms:
                    del self.edge_blooms[twin]
        bloom.k -= 1
        if bloom.k <= 1:
            self._drop_bloom(bloom)

    def _drop_bloom(self, bloom: Bloom) -> None:
        """Remove a butterfly-free bloom and its residual links entirely."""
        for edge in list(bloom.twin):
            edge_blooms = self.edge_blooms.get(edge)
            if edge_blooms is not None:
                edge_blooms.discard(bloom.bloom_id)
                if not edge_blooms:
                    del self.edge_blooms[edge]
        bloom.twin.clear()
        del self.blooms[bloom.bloom_id]

    def remove_edge(
        self,
        edge: int,
        *,
        counter: Optional[UpdateCounter] = None,
        on_change: Optional[Callable[[int, int], None]] = None,
    ) -> None:
        """Perform the edge removal operation for ``edge`` (Algorithm 2).

        For each bloom ``B*`` linked to ``edge``: the twin loses ``k − 1``
        butterflies and every other live edge of the bloom loses one, in each
        case only when its current support exceeds ``edge``'s (the peeling
        guard); then the bloom shrinks by one wedge.  Finally ``edge`` leaves
        ``L(I)``.

        Parameters
        ----------
        edge : int
            Edge id to remove; a no-op when the edge holds no live links.
        counter : UpdateCounter, optional
            Records one update per support decrement.
        on_change : callable, optional
            ``on_change(other_edge, new_support)`` notifies the caller's
            peeling queue after each support write.
        """
        guard = int(self.support[edge])
        bloom_ids = self.edge_blooms.pop(edge, None)
        if bloom_ids is None:
            return
        for bloom_id in list(bloom_ids):
            bloom = self.blooms.get(bloom_id)
            if bloom is None:
                continue
            k = bloom.k
            twin = bloom.twin.get(edge)
            if twin is None:
                continue
            for other in list(bloom.twin):
                if other == edge:
                    continue
                if self.support[other] > guard:
                    if other == twin:
                        self.support[other] -= k - 1
                    else:
                        self.support[other] -= 1
                    if counter is not None:
                        counter.record(other)
                    if on_change is not None:
                        on_change(other, int(self.support[other]))
            self._sever_pair(bloom, edge, twin)

    # ---------------------------------------------------- batch operations

    def detach_edge(
        self,
        edge: int,
        removal_counts: Dict[int, int],
        *,
        floor: int,
        counter: Optional[UpdateCounter] = None,
        on_change: Optional[Callable[[int, int], None]] = None,
    ) -> None:
        """Pass 1 of Algorithm 5 for one batch member ``edge``.

        Unlinks ``edge`` from all its blooms, updates each live twin
        immediately (it loses every butterfly it shared with the bloom:
        ``k − 1``, floored at the batch minimum ``floor``), and increments
        ``removal_counts[bloom_id]`` — the ``C(B*)`` of the paper.  Each
        removed wedge pair is counted exactly once because severing the pair
        also drops the twin's link, so a twin that is itself in the batch
        will not see this bloom again.

        A twin that is *assigned* (compressed index) or already detached has
        no live link and is skipped, which is exactly the paper's "if
        ``twin(B*, e)`` is not assigned" condition.

        Parameters
        ----------
        edge : int
            The batch member to detach.
        removal_counts : dict of int to int
            Per-bloom removed-pair counters (``C(B*)``), updated in place.
        floor : int
            The batch's minimum support ``MBS``; twin updates never drop a
            support below it (Algorithm 5 line 12).
        counter : UpdateCounter, optional
            Records one update per twin support write.
        on_change : callable, optional
            ``on_change(twin, new_support)`` queue notification.
        """
        bloom_ids = self.edge_blooms.pop(edge, None)
        if bloom_ids is None:
            return
        for bloom_id in list(bloom_ids):
            bloom = self.blooms.get(bloom_id)
            if bloom is None:
                continue
            twin = bloom.twin.get(edge)
            if twin is None:
                continue
            removal_counts[bloom_id] = removal_counts.get(bloom_id, 0) + 1
            # Sever the edge's own half of the pair first.
            bloom.twin.pop(edge, None)
            # The twin keeps a live link only while unassigned and attached.
            if bloom.twin.pop(twin, None) is not None:
                twin_blooms = self.edge_blooms.get(twin)
                if twin_blooms is not None:
                    twin_blooms.discard(bloom_id)
                    if not twin_blooms:
                        del self.edge_blooms[twin]
                new_value = max(floor, int(self.support[twin]) - (bloom.k - 1))
                if new_value != self.support[twin]:
                    self.support[twin] = new_value
                    if counter is not None:
                        counter.record(twin)
                    if on_change is not None:
                        on_change(twin, new_value)
            # The k decrement is postponed to pass 2 (`apply_bloom_batch`):
            # all pairs of one batch leave against the same original k.

    def apply_bloom_batch(
        self,
        removal_counts: Dict[int, int],
        *,
        floor: int,
        counter: Optional[UpdateCounter] = None,
        on_change: Optional[Callable[[int, int], None]] = None,
    ) -> None:
        """Pass 2 of Algorithm 5: per-bloom bulk updates.

        Every bloom that lost ``C`` wedge pairs shrinks from ``k`` to
        ``k − C`` wedges, and each of its surviving live edges loses exactly
        ``C`` butterflies (one per removed wedge), floored at the batch's
        minimum support ``floor``.

        Parameters
        ----------
        removal_counts : dict of int to int
            The ``C(B*)`` counters accumulated by :meth:`detach_edge` over
            the whole batch.
        floor : int
            The batch's minimum support ``MBS`` (Algorithm 5 line 18).
        counter : UpdateCounter, optional
            Records one update per surviving-edge support write.
        on_change : callable, optional
            ``on_change(edge, new_support)`` queue notification.
        """
        for bloom_id, removed in removal_counts.items():
            bloom = self.blooms.get(bloom_id)
            if bloom is None:
                continue
            for other in list(bloom.twin):
                new_value = max(floor, int(self.support[other]) - removed)
                if new_value != self.support[other]:
                    self.support[other] = new_value
                    if counter is not None:
                        counter.record(other)
                    if on_change is not None:
                        on_change(other, new_value)
            bloom.k -= removed
            if bloom.k <= 1:
                self._drop_bloom(bloom)

    def remove_edge_accumulate(
        self,
        edge: int,
        deltas: Dict[int, int],
        skip: Set[int],
    ) -> None:
        """Batch *edge* processing without batch bloom processing (BiT-BU+).

        Walks every bloom of ``edge`` as :meth:`remove_edge` does, but
        instead of writing supports immediately it accumulates per-edge
        losses into ``deltas`` (the caller applies them once per affected
        edge at the end of the batch).  Edges in ``skip`` — the batch ``S``
        itself — are never charged (Lemma 9: removing an edge cannot change
        the bitruss number of an equal-support edge).

        Unlike pass 1/2 of BiT-BU++, each bloom is re-walked for every batch
        member it contains; the bloom's ``k`` shrinks pair by pair, which
        yields the same totals as the simultaneous-removal formula.

        Parameters
        ----------
        edge : int
            The batch member to remove.
        deltas : dict of int to int
            Per-edge accumulated support losses, updated in place.
        skip : set of int
            The batch ``S`` itself; members are never charged.
        """
        bloom_ids = self.edge_blooms.pop(edge, None)
        if bloom_ids is None:
            return
        for bloom_id in list(bloom_ids):
            bloom = self.blooms.get(bloom_id)
            if bloom is None:
                continue
            twin = bloom.twin.get(edge)
            if twin is None:
                continue
            k = bloom.k
            for other in bloom.twin:
                if other == edge or other in skip:
                    continue
                if other == twin:
                    deltas[other] = deltas.get(other, 0) + (k - 1)
                else:
                    deltas[other] = deltas.get(other, 0) + 1
            self._sever_pair(bloom, edge, twin)

    # ---------------------------------------------------------- validation

    def validate(self) -> None:
        """Check structural invariants; used heavily by the test suite."""
        for edge, bloom_ids in self.edge_blooms.items():
            for bloom_id in bloom_ids:
                bloom = self.blooms.get(bloom_id)
                if bloom is None:
                    raise AssertionError(f"edge {edge} links to dead bloom {bloom_id}")
                if edge not in bloom.twin:
                    raise AssertionError(f"edge {edge} missing from bloom {bloom_id}")
        for bloom in self.blooms.values():
            if bloom.k < 2:
                raise AssertionError(f"bloom {bloom.bloom_id} should have been pruned")
            for edge, twin in bloom.twin.items():
                if bloom.bloom_id not in self.edge_blooms.get(edge, ()):
                    raise AssertionError(
                        f"bloom {bloom.bloom_id} lists edge {edge} without a back-link"
                    )
                # A live edge's twin, when itself live, must point back.
                if twin in bloom.twin and bloom.twin[twin] != edge:
                    raise AssertionError(
                        f"twin pairing broken in bloom {bloom.bloom_id}: "
                        f"{edge} -> {twin} -> {bloom.twin[twin]}"
                    )

"""The BE-Index (Bloom-Edge-Index) of Section IV, plus its compressed form."""

from repro.index.be_index import BEIndex, Bloom

__all__ = ["BEIndex", "Bloom"]

"""Explicit butterfly / wedge / bloom enumeration.

These routines materialize the structures the fast algorithms only count.
They are the reference implementations behind the test suite (Lemma checks,
cross-validation) and supply the combination-based inner loop of the baseline
BiT-BS algorithm.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

import numpy as np

from repro.graph.bipartite import BipartiteGraph
from repro.utils.priority import vertex_priorities

# A butterfly is canonically (u, v, w, x): upper u < w, lower v < x, with all
# four edges (u,v), (u,x), (w,v), (w,x) present.
Butterfly = Tuple[int, int, int, int]


def enumerate_butterflies(graph: BipartiteGraph) -> Iterator[Butterfly]:
    """Yield every butterfly once, in canonical form.

    Groups lower vertices by upper pairs: for each lower vertex ``v`` and
    each pair ``u < w`` of its neighbours, record ``v`` under anchor
    ``(u, w)``; every pair of recorded lower vertices for an anchor is a
    butterfly.
    """
    by_anchor: Dict[Tuple[int, int], List[int]] = {}
    for v in range(graph.num_lower):
        uppers = sorted(graph.neighbors_of_lower(v).tolist())
        for i in range(len(uppers)):
            for j in range(i + 1, len(uppers)):
                by_anchor.setdefault((uppers[i], uppers[j]), []).append(v)
    for (u, w), lowers in by_anchor.items():
        lowers.sort()
        for i in range(len(lowers)):
            for j in range(i + 1, len(lowers)):
                yield (u, lowers[i], w, lowers[j])


def butterflies_containing_edge(graph: BipartiteGraph, u: int, v: int) -> List[Butterfly]:
    """All butterflies through edge ``(u, v)``, in canonical form.

    This is the combination-based enumeration used by the existing solutions
    [5], [9]: pick ``w ∈ N(v)∖{u}``, then check which ``x ∈ N(w)∖{v}`` also
    neighbours ``u``.
    """
    results: List[Butterfly] = []
    nu: Set[int] = set(graph.neighbors_of_upper(u).tolist())
    for w in graph.neighbors_of_lower(v).tolist():
        if w == u:
            continue
        for x in graph.neighbors_of_upper(w).tolist():
            if x != v and x in nu:
                a, b = (u, w) if u < w else (w, u)
                c, d = (v, x) if v < x else (x, v)
                results.append((a, c, b, d))
    # Each butterfly is found twice (once per (w, x) orientation)?  No: w is
    # determined by the butterfly's other upper vertex and x by its other
    # lower vertex, so each butterfly appears exactly once.
    return results


def enumerate_wedges(graph: BipartiteGraph) -> Iterator[Tuple[int, int, int]]:
    """Yield every wedge ``(start, middle, end)`` in global ids (Def. 1)."""
    adj, _ = graph.adjacency_by_gid()
    for middle in range(graph.num_vertices):
        ends = adj[middle]
        for i in range(len(ends)):
            for j in range(len(ends)):
                if i != j:
                    yield (ends[i], middle, ends[j])


def enumerate_priority_obeyed_wedges(
    graph: BipartiteGraph,
    *,
    priorities: Optional[np.ndarray] = None,
) -> Iterator[Tuple[int, int, int]]:
    """Yield wedges whose start vertex out-ranks middle and end (Def. 10)."""
    prio = priorities if priorities is not None else vertex_priorities(graph.degrees())
    adj, _ = graph.adjacency_by_gid()
    for start in range(graph.num_vertices):
        p_start = prio[start]
        for middle in adj[start]:
            if prio[middle] >= p_start:
                continue
            for end in adj[middle]:
                if prio[end] >= p_start:
                    continue
                yield (start, middle, end)


def reference_blooms(
    graph: BipartiteGraph,
    *,
    priorities: Optional[np.ndarray] = None,
) -> Dict[Tuple[int, int], List[int]]:
    """Maximal priority-obeyed blooms, straight from Definition 8.

    Returns ``{(anchor, partner): sorted middle gids}`` where ``anchor`` is
    the dominant-layer vertex of highest priority, ``partner`` the other
    dominant vertex, and the middles are every common neighbour ranked below
    the anchor.  Only blooms containing at least one butterfly (two or more
    middles) are returned, matching what the BE-Index stores.
    """
    prio = priorities if priorities is not None else vertex_priorities(graph.degrees())
    adj, _ = graph.adjacency_by_gid()
    blooms: Dict[Tuple[int, int], List[int]] = {}
    for start in range(graph.num_vertices):
        p_start = prio[start]
        middles_by_end: Dict[int, List[int]] = {}
        for middle in adj[start]:
            if prio[middle] >= p_start:
                continue
            for end in adj[middle]:
                if prio[end] >= p_start:
                    continue
                middles_by_end.setdefault(end, []).append(middle)
        for end, middles in middles_by_end.items():
            if len(middles) > 1:
                blooms[(start, end)] = sorted(middles)
    return blooms


def bloom_of_butterfly(
    graph: BipartiteGraph,
    butterfly: Butterfly,
    *,
    priorities: Optional[np.ndarray] = None,
) -> Tuple[int, int]:
    """Return the dominant pair (anchor, partner) owning ``butterfly``.

    Implements the uniqueness argument of Lemma 3: the dominant layer is the
    layer of the butterfly's highest-priority vertex; the anchor is that
    vertex and the partner its same-layer mate.
    """
    prio = priorities if priorities is not None else vertex_priorities(graph.degrees())
    u, v, w, x = butterfly
    gu, gw = graph.gid_of_upper(u), graph.gid_of_upper(w)
    gv, gx = graph.gid_of_lower(v), graph.gid_of_lower(x)
    best = max((gu, gw, gv, gx), key=lambda g: prio[g])
    if best in (gu, gw):
        anchor, partner = (gu, gw) if prio[gu] > prio[gw] else (gw, gu)
    else:
        anchor, partner = (gv, gx) if prio[gv] > prio[gx] else (gx, gv)
    return anchor, partner


def count_butterflies_brute_force(graph: BipartiteGraph) -> int:
    """Total butterflies by explicit enumeration (tests only)."""
    return sum(1 for _ in enumerate_butterflies(graph))


def supports_from_enumeration(graph: BipartiteGraph) -> np.ndarray:
    """Per-edge supports by explicit enumeration (tests only)."""
    support = np.zeros(graph.num_edges, dtype=np.int64)
    for u, v, w, x in enumerate_butterflies(graph):
        for a, b in ((u, v), (u, x), (w, v), (w, x)):
            support[graph.edge_id(a, b)] += 1
    return support

"""Process-parallel butterfly counting (thin wrapper over the runtime).

The paper cites parallel butterfly computation ([26], Shi & Shun) as the
scalability frontier; the heavy lifting now lives in :mod:`repro.runtime`:
a :class:`~repro.runtime.pool.ParallelRuntime` publishes the graph's
priority-sorted CSR arrays into shared memory once and keeps a persistent
worker pool attached zero-copy.  The historical cost model — the full edge
list pickled to every worker, a :class:`BipartiteGraph` rebuilt (CSR sort,
priority ranking and all) per process, break-even around a second of
counting work — is gone; workers ``mmap`` the already-sorted arrays and
run the vectorized range kernel directly.

This module keeps the original entry point and semantics:
``count_per_edge_parallel`` has the same signature, partial supports are
still merged deterministically in ascending start-range order, and
``workers=1`` remains the in-process fallback that skips the pool (and the
shared-memory machinery) entirely — also the fallback on platforms without
POSIX shared memory.
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.butterfly.counting import count_per_edge
from repro.graph.bipartite import BipartiteGraph
from repro.runtime.shm import is_available


def count_per_edge_parallel(
    graph: BipartiteGraph,
    *,
    workers: int = 2,
    chunks_per_worker: int = 4,
) -> np.ndarray:
    """Per-edge butterfly supports using ``workers`` processes.

    Equivalent to :func:`repro.butterfly.counting.count_per_edge`.  Start
    vertices are split into ``workers * chunks_per_worker`` contiguous
    ranges for load balancing (high-priority vertices cluster at the top of
    the gid range on skewed graphs); each range runs the vectorized kernel
    against the worker's zero-copy view of the shared CSR arrays, and the
    partial supports are summed in range order.
    """
    if workers < 1:
        raise ValueError("workers must be positive")
    if workers > 1 and not is_available():
        warnings.warn(
            "POSIX shared memory unavailable; counting in-process instead "
            f"of across {workers} workers",
            RuntimeWarning,
            stacklevel=2,
        )
        workers = 1
    if workers == 1 or graph.num_vertices == 0:
        return count_per_edge(graph)

    from repro.runtime.pool import ParallelRuntime

    with ParallelRuntime(
        graph, workers=workers, chunks_per_worker=chunks_per_worker
    ) as runtime:
        return runtime.count_per_edge()

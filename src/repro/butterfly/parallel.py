"""Process-parallel butterfly counting.

The paper cites parallel butterfly computation ([26], Shi & Shun) as the
scalability frontier; this module provides the embarrassingly-parallel part
of it: the vertex-priority counting traversal is independent per start
vertex, so start vertices are partitioned across worker processes and the
per-edge partial supports are summed.

Because workers are *processes* (CPython threads would serialize on the
GIL), the graph is shipped once per worker; the break-even point is
therefore on the order of a second of single-core counting work.  The
helper refuses silly configurations (0 workers) but deliberately allows
``workers=1`` as an in-process fallback that skips the pool entirely.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import List, Optional, Tuple

import numpy as np

from repro.butterfly.counting import count_per_edge
from repro.graph.bipartite import BipartiteGraph

# Worker state (set once per process by the pool initializer).  Each worker
# rebuilds the graph from the shipped edge list — processes share no memory —
# and then reads the graph's own cached CSR arrays, exactly like the
# single-process path.
_worker_graph: Optional[BipartiteGraph] = None


def _init_worker(edges, num_upper, num_lower) -> None:
    global _worker_graph
    _worker_graph = BipartiteGraph(num_upper, num_lower, edges)
    _worker_graph.csr_gid_sorted()  # warm the shared CSR + priority caches


def _count_range(bounds: Tuple[int, int]) -> np.ndarray:
    """Partial per-edge supports from start vertices in [lo, hi)."""
    assert _worker_graph is not None
    return count_per_edge(_worker_graph, start_range=bounds)


def count_per_edge_parallel(
    graph: BipartiteGraph,
    *,
    workers: int = 2,
    chunks_per_worker: int = 4,
) -> np.ndarray:
    """Per-edge butterfly supports using ``workers`` processes.

    Equivalent to :func:`repro.butterfly.counting.count_per_edge`.  Start
    vertices are split into ``workers * chunks_per_worker`` contiguous
    ranges for load balancing (high-priority vertices cluster at the top of
    the gid range on skewed graphs).
    """
    if workers < 1:
        raise ValueError("workers must be positive")
    if workers == 1:
        return count_per_edge(graph)
    n = graph.num_vertices
    if n == 0:
        return np.zeros(graph.num_edges, dtype=np.int64)

    num_chunks = max(1, min(n, workers * chunks_per_worker))
    bounds: List[Tuple[int, int]] = []
    step = (n + num_chunks - 1) // num_chunks
    for lo in range(0, n, step):
        bounds.append((lo, min(lo + step, n)))

    edges = graph.to_edge_list()
    with ProcessPoolExecutor(
        max_workers=workers,
        initializer=_init_worker,
        initargs=(edges, graph.num_upper, graph.num_lower),
    ) as pool:
        partials = list(pool.map(_count_range, bounds))
    total = np.zeros(graph.num_edges, dtype=np.int64)
    for part in partials:
        total += part
    return total

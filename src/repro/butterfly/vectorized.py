"""Numpy-vectorized butterfly counting.

Same vertex-priority algorithm as :func:`repro.butterfly.counting.count_per_edge`
but with the inner wedge loops replaced by array operations: per start
vertex, the two-hop frontier is materialized as one concatenated array, the
per-anchor wedge counts come from ``np.bincount``, and the per-edge
contributions are scattered with ``np.add.at``.

This is the library's answer to the pure-Python speed gap (no numba/C
extensions available): on *dense* graphs, whose start vertices own large
two-hop frontiers, the vectorized path is ~6x faster; on sparse-row graphs
with tiny frontiers the per-vertex numpy overhead makes the scalar loop the
better choice.  The ablation bench (`benchmarks/bench_ablation_counting.py`)
quantifies the crossover, and the tests pin both implementations (plus the
naive counter) to identical outputs.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.graph.bipartite import BipartiteGraph
from repro.utils.priority import vertex_priorities


def _csr_by_gid(
    graph: BipartiteGraph,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """CSR arrays (indptr, neighbor gids, edge ids) over global vertex ids."""
    adj, adj_eids = graph.adjacency_by_gid()
    indptr = np.zeros(graph.num_vertices + 1, dtype=np.int64)
    for g in range(graph.num_vertices):
        indptr[g + 1] = indptr[g] + len(adj[g])
    neighbors = np.empty(indptr[-1], dtype=np.int64)
    edge_ids = np.empty(indptr[-1], dtype=np.int64)
    for g in range(graph.num_vertices):
        neighbors[indptr[g]:indptr[g + 1]] = adj[g]
        edge_ids[indptr[g]:indptr[g + 1]] = adj_eids[g]
    return indptr, neighbors, edge_ids


def count_per_edge_vectorized(
    graph: BipartiteGraph,
    *,
    priorities: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Butterfly support of every edge (vectorized vertex-priority).

    Exactly equivalent to :func:`repro.butterfly.counting.count_per_edge`.
    """
    n = graph.num_vertices
    support = np.zeros(graph.num_edges, dtype=np.int64)
    if n == 0 or graph.num_edges == 0:
        return support
    prio = (
        np.asarray(priorities)
        if priorities is not None
        else vertex_priorities(graph.degrees())
    )
    indptr, neighbors, edge_ids = _csr_by_gid(graph)

    # Pre-sort each adjacency list by priority so the "priority < p(start)"
    # filter becomes a prefix lookup (searchsorted), not a boolean mask.
    for g in range(n):
        lo, hi = int(indptr[g]), int(indptr[g + 1])
        if hi - lo > 1:
            row_order = np.argsort(prio[neighbors[lo:hi]], kind="stable")
            neighbors[lo:hi] = neighbors[lo:hi][row_order]
            edge_ids[lo:hi] = edge_ids[lo:hi][row_order]
    row_prios = prio[neighbors]

    for start in range(n):
        lo, hi = int(indptr[start]), int(indptr[start + 1])
        if hi - lo < 2:
            continue
        p_start = prio[start]
        # middles: the prefix of start's (priority-sorted) neighbours
        cut = int(np.searchsorted(row_prios[lo:hi], p_start))
        if cut == 0:
            continue
        middles = neighbors[lo:lo + cut]
        mid_edges = edge_ids[lo:lo + cut]

        # Build the concatenated two-hop frontier: for each middle v, the
        # prefix of v's neighbours with priority < p_start.
        cuts = np.empty(len(middles), dtype=np.int64)
        for i, v in enumerate(middles):
            vlo, vhi = int(indptr[v]), int(indptr[v + 1])
            cuts[i] = np.searchsorted(row_prios[vlo:vhi], p_start)
        total = int(cuts.sum())
        if total == 0:
            continue
        ends = np.empty(total, dtype=np.int64)
        end_edges = np.empty(total, dtype=np.int64)
        wedge_mid_edge = np.empty(total, dtype=np.int64)
        pos = 0
        for i, v in enumerate(middles):
            c = int(cuts[i])
            if c == 0:
                continue
            vlo = int(indptr[v])
            ends[pos:pos + c] = neighbors[vlo:vlo + c]
            end_edges[pos:pos + c] = edge_ids[vlo:vlo + c]
            wedge_mid_edge[pos:pos + c] = mid_edges[i]
            pos += c

        counts = np.bincount(ends, minlength=n)
        wedge_counts = counts[ends]  # per wedge: its anchor-pair's k
        contrib = wedge_counts - 1
        contrib[contrib < 0] = 0
        # zero out wedges whose anchor pair has k == 1 (no butterfly)
        active = wedge_counts > 1
        if not active.any():
            continue
        np.add.at(support, end_edges[active], contrib[active])
        np.add.at(support, wedge_mid_edge[active], contrib[active])
    return support


def count_total_vectorized(
    graph: BipartiteGraph,
    *,
    priorities: Optional[np.ndarray] = None,
) -> int:
    """Total butterfly count via the vectorized traversal."""
    support = count_per_edge_vectorized(graph, priorities=priorities)
    return int(support.sum()) // 4

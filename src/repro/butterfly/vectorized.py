"""Numpy-vectorized butterfly counting.

Same vertex-priority algorithm as :func:`repro.butterfly.counting.count_per_edge`
but with the inner wedge loops replaced by array operations: per start
vertex, the two-hop frontier is materialized as one concatenated array, the
per-anchor wedge counts come from ``np.bincount``, and the per-edge
contributions are scattered with ``np.add.at``.

The traversal runs directly on the graph's shared CSR arrays
(:meth:`repro.graph.bipartite.BipartiteGraph.csr_gid_sorted`): rows arrive
pre-sorted by neighbour priority, so the "priority < p(start)" filter is a
prefix lookup (``np.searchsorted``), and no per-call adjacency copy is built.

This is the library's answer to the pure-Python speed gap (no numba/C
extensions available): on *dense* graphs, whose start vertices own large
two-hop frontiers, the vectorized path is ~6x faster; on sparse-row graphs
with tiny frontiers the per-vertex numpy overhead makes the scalar loop the
better choice.  The ablation bench (`benchmarks/bench_ablation_counting.py`)
quantifies the crossover, and the tests pin both implementations (plus the
naive counter) to identical outputs.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.graph.bipartite import BipartiteGraph
from repro.obs import phases as obs_phases


def gather_two_hop(
    indptr: np.ndarray,
    neighbors: np.ndarray,
    edge_ids: np.ndarray,
    row_prios: np.ndarray,
    start: int,
    p_start: int,
) -> Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Concatenated priority-obeyed two-hop frontier of ``start``.

    Rows must be pre-sorted by neighbour priority (``csr_gid_sorted``), so
    each "priority < p_start" filter is one ``searchsorted`` prefix lookup.

    Returns ``(ends, end_edges, wedge_mid_edge)`` — one slot per
    priority-obeyed wedge ``(start, v, w)`` holding the end vertex ``w``,
    the edge id of ``(v, w)`` and the edge id of ``(start, v)`` — or
    ``None`` when the frontier is empty.
    """
    lo, hi = int(indptr[start]), int(indptr[start + 1])
    if hi - lo < 2:
        return None
    cut = int(np.searchsorted(row_prios[lo:hi], p_start))
    if cut == 0:
        return None
    middles = neighbors[lo : lo + cut]
    mid_edges = edge_ids[lo : lo + cut]

    cuts = np.empty(len(middles), dtype=np.int64)
    for i, v in enumerate(middles):
        vlo, vhi = int(indptr[v]), int(indptr[v + 1])
        cuts[i] = np.searchsorted(row_prios[vlo:vhi], p_start)
    total = int(cuts.sum())
    if total == 0:
        return None
    ends = np.empty(total, dtype=np.int64)
    end_edges = np.empty(total, dtype=np.int64)
    wedge_mid_edge = np.empty(total, dtype=np.int64)
    pos = 0
    for i, v in enumerate(middles):
        c = int(cuts[i])
        if c == 0:
            continue
        vlo = int(indptr[v])
        ends[pos : pos + c] = neighbors[vlo : vlo + c]
        end_edges[pos : pos + c] = edge_ids[vlo : vlo + c]
        wedge_mid_edge[pos : pos + c] = mid_edges[i]
        pos += c
    return ends, end_edges, wedge_mid_edge


def count_range_on_arrays(
    indptr: np.ndarray,
    neighbors: np.ndarray,
    edge_ids: np.ndarray,
    row_prios: np.ndarray,
    prio: np.ndarray,
    num_edges: int,
    start_lo: int,
    start_hi: int,
) -> np.ndarray:
    """Partial per-edge supports from start vertices in ``[start_lo, start_hi)``.

    The kernel underneath :func:`count_per_edge_vectorized`, phrased over
    raw priority-sorted gid-CSR arrays instead of a graph object so that
    shared-memory workers (:mod:`repro.runtime`) can run it against
    attached views without rebuilding a :class:`BipartiteGraph`.  Summing
    the partial arrays of a disjoint start-range partition reproduces the
    full supports exactly (integer contributions are per start vertex).
    """
    n = len(indptr) - 1
    support = np.zeros(num_edges, dtype=np.int64)
    for start in range(start_lo, start_hi):
        frontier = gather_two_hop(
            indptr, neighbors, edge_ids, row_prios, start, prio[start]
        )
        if frontier is None:
            continue
        ends, end_edges, wedge_mid_edge = frontier

        counts = np.bincount(ends, minlength=n)
        wedge_counts = counts[ends]  # per wedge: its anchor-pair's k
        contrib = wedge_counts - 1
        contrib[contrib < 0] = 0
        # zero out wedges whose anchor pair has k == 1 (no butterfly)
        active = wedge_counts > 1
        if not active.any():
            continue
        np.add.at(support, end_edges[active], contrib[active])
        np.add.at(support, wedge_mid_edge[active], contrib[active])
    return support


def count_per_edge_vectorized(
    graph: BipartiteGraph,
    *,
    priorities: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Butterfly support of every edge (vectorized vertex-priority).

    Exactly equivalent to :func:`repro.butterfly.counting.count_per_edge`.
    """
    n = graph.num_vertices
    if n == 0 or graph.num_edges == 0:
        return np.zeros(graph.num_edges, dtype=np.int64)
    prio = (
        np.asarray(priorities) if priorities is not None else graph.priorities()
    )
    indptr, neighbors, edge_ids, row_prios = graph.csr_gid_sorted_with_prios(
        priorities
    )
    with obs_phases.phase("butterfly counting"):
        return count_range_on_arrays(
            indptr, neighbors, edge_ids, row_prios, prio, graph.num_edges, 0, n
        )


def count_total_vectorized(
    graph: BipartiteGraph,
    *,
    priorities: Optional[np.ndarray] = None,
) -> int:
    """Total butterfly count via the vectorized traversal."""
    support = count_per_edge_vectorized(graph, priorities=priorities)
    return int(support.sum()) // 4

"""Per-edge butterfly counting.

Implements the vertex-priority counting algorithm of Wang et al. (VLDB 2019),
the paper's reference [8] and its chosen counting phase for *all* evaluated
algorithms.  The algorithm processes, from every start vertex ``u``, the
wedges ``(u, v, w)`` whose middle and end vertices both have lower priority
than ``u`` (Definition 10: *priority-obeyed wedges*).  Grouping those wedges
by end vertex ``w`` yields, for each pair ``(u, w)``, the number ``c`` of
common low-priority neighbours; the pair then hosts ``C(c, 2)`` butterflies
and each of its wedges' two edges gains ``c - 1`` support.

Because every butterfly lives in exactly one maximal priority-obeyed bloom
(Lemma 3) — equivalently, its four edges are covered by the wedge group of
exactly one ``(u, w)`` anchor — the counts are exact, and the total work is
``O(sum over edges of min(d(u), d(v)))``.

:func:`count_per_edge_naive` is an independent list-intersection counter used
for cross-validation in tests, and is also the per-edge counting the earlier
works [5], [9] relied on.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.graph.bipartite import BipartiteGraph


def collect_wedges(
    indptr: np.ndarray,
    nbr_arr: np.ndarray,
    eid_arr: np.ndarray,
    row_prios: np.ndarray,
    prio: np.ndarray,
    start: int,
) -> Optional[List[Tuple[int, int, int, int]]]:
    """Priority-obeyed wedges of one start vertex, from the sorted gid CSR.

    The single scalar copy of the prefix-lookup scaffold shared by the
    counters below and :meth:`repro.index.be_index.BEIndex.build`: rows are
    pre-sorted by neighbour priority (``csr_gid_sorted``), so each
    "priority < p(start)" filter is one ``searchsorted`` cut.

    Returns a list of ``(w, v, e_uv, e_vw)`` tuples — end vertex, middle
    vertex, and the wedge's two edge ids — or ``None`` when the start owns
    no wedge.
    """
    lo, hi = int(indptr[start]), int(indptr[start + 1])
    if hi - lo < 2:
        return None
    p_start = prio[start]
    cut = int(np.searchsorted(row_prios[lo:hi], p_start))
    if cut == 0:
        return None
    wedges: List[Tuple[int, int, int, int]] = []
    for v, e_uv in zip(
        nbr_arr[lo : lo + cut].tolist(), eid_arr[lo : lo + cut].tolist()
    ):
        vlo = int(indptr[v])
        vcut = int(np.searchsorted(row_prios[vlo : int(indptr[v + 1])], p_start))
        for w, e_vw in zip(
            nbr_arr[vlo : vlo + vcut].tolist(),
            eid_arr[vlo : vlo + vcut].tolist(),
        ):
            wedges.append((w, v, e_uv, e_vw))
    return wedges or None


def count_per_edge(
    graph: BipartiteGraph,
    *,
    priorities: Optional[np.ndarray] = None,
    start_range: Optional[Tuple[int, int]] = None,
) -> np.ndarray:
    """Butterfly support of every edge, by vertex-priority wedge processing.

    Returns an ``int64`` array indexed by edge id.  ``priorities`` may be
    supplied to reuse a precomputed Definition 7 ranking.  ``start_range``
    restricts the traversal to start vertices in ``[lo, hi)`` and returns
    the *partial* supports contributed by those starts — the parallel
    counter sums such partials across workers.
    """
    prio = priorities if priorities is not None else graph.priorities()
    indptr, nbr_arr, eid_arr, row_prios = graph.csr_gid_sorted_with_prios(
        priorities
    )
    support = np.zeros(graph.num_edges, dtype=np.int64)

    lo_bound, hi_bound = (
        (0, graph.num_vertices) if start_range is None else start_range
    )
    for start in range(lo_bound, hi_bound):
        wedges = collect_wedges(indptr, nbr_arr, eid_arr, row_prios, prio, start)
        if wedges is None:
            continue
        count_wedge: Dict[int, int] = {}
        for w, _v, _e_uv, _e_vw in wedges:
            count_wedge[w] = count_wedge.get(w, 0) + 1
        for w, _v, e_uv, e_vw in wedges:
            c = count_wedge[w]
            if c > 1:
                support[e_uv] += c - 1
                support[e_vw] += c - 1
    return support


def count_butterflies_total(
    graph: BipartiteGraph,
    *,
    priorities: Optional[np.ndarray] = None,
) -> int:
    """Total number of butterflies in ``graph`` (the paper's ⋈G).

    Same wedge traversal as :func:`count_per_edge`, accumulating
    ``C(c, 2)`` per anchor pair instead of touching edges — slightly cheaper
    when only the global count is needed (Table II).
    """
    prio = priorities if priorities is not None else graph.priorities()
    indptr, nbr_arr, eid_arr, row_prios = graph.csr_gid_sorted_with_prios(
        priorities
    )
    total = 0

    for start in range(graph.num_vertices):
        wedges = collect_wedges(indptr, nbr_arr, eid_arr, row_prios, prio, start)
        if wedges is None:
            continue
        count_wedge: Dict[int, int] = {}
        for w, _v, _e_uv, _e_vw in wedges:
            count_wedge[w] = count_wedge.get(w, 0) + 1
        for c in count_wedge.values():
            if c > 1:
                total += c * (c - 1) // 2
    return total


def count_per_edge_naive(graph: BipartiteGraph) -> np.ndarray:
    """Independent O(m·Δ²) reference counter (list intersection).

    For an edge ``(u, v)`` the butterflies containing it are the pairs
    ``(w, x)`` with ``w ∈ N(v)∖{u}``, ``x ∈ N(u)∖{v}`` and ``(w, x) ∈ E``,
    i.e. ``sup(u, v) = Σ_{w ∈ N(v)∖u} |N(w) ∩ N(u) ∖ {v}|``.  This is the
    enumeration style of the pre-BE-Index algorithms [5], [9]; tests use it
    to validate :func:`count_per_edge`.
    """
    support = np.zeros(graph.num_edges, dtype=np.int64)
    neighbors_upper = [
        graph.neighbors_of_upper(u).tolist() for u in range(graph.num_upper)
    ]
    neighbors_lower = [
        graph.neighbors_of_lower(v).tolist() for v in range(graph.num_lower)
    ]
    neighbor_sets_upper = [set(nbrs) for nbrs in neighbors_upper]
    for eid in range(graph.num_edges):
        u, v = graph.edge_endpoints(eid)
        nu = neighbor_sets_upper[u]
        count = 0
        for w in neighbors_lower[v]:
            if w == u:
                continue
            for x in neighbors_upper[w]:
                if x != v and x in nu:
                    count += 1
        support[eid] = count
    return support


def support_histogram(support: np.ndarray) -> Dict[int, int]:
    """Map each support value to the number of edges holding it."""
    values, counts = np.unique(np.asarray(support), return_counts=True)
    return {int(v): int(c) for v, c in zip(values, counts)}


def max_support(support: np.ndarray) -> int:
    """Largest butterfly support of any edge (Table II's sup_max)."""
    return int(np.max(support)) if len(support) else 0

"""Butterfly counting and enumeration (the paper's substrate [8])."""

from repro.butterfly.counting import (
    count_butterflies_total,
    count_per_edge,
    count_per_edge_naive,
)
from repro.butterfly.enumeration import (
    butterflies_containing_edge,
    enumerate_butterflies,
    enumerate_priority_obeyed_wedges,
)

__all__ = [
    "butterflies_containing_edge",
    "count_butterflies_total",
    "count_per_edge",
    "count_per_edge_naive",
    "enumerate_butterflies",
    "enumerate_priority_obeyed_wedges",
]

"""Named synthetic stand-ins for the paper's 15 KONECT datasets.

The original evaluation (Table II) uses KONECT networks from 58 K to 140 M
edges.  Those files are not available offline and pure-Python peeling cannot
process 10^8-edge graphs in a benchmark run, so this registry provides
*seeded, deterministic* synthetic graphs that preserve the properties the
paper's conclusions rest on, per dataset:

* **skewed degree distributions** (all Chung–Lu based entries) — the source
  of hub edges whose support vastly exceeds their bitruss number;
* **lopsided layer ratios** — ``d-style`` (383 lower vertices for 5.7 M
  edges in the paper) and ``wiki-it`` keep one tiny layer, which creates the
  giant blooms and extreme hub edges that motivate BiT-PC;
* **community structure** (affiliation-based entries: condmat, marvel,
  amazon, dblp) — realistic bitruss hierarchies with modest sup_max, where
  the paper observes BiT-PC's pre-processing overhead can make it *slightly
  slower* than BiT-BU++.

Scales are reduced ~1000x; every figure reproduction therefore compares
algorithms on shape (ordering, ratios, crossovers), not absolute times.
See DESIGN.md §4 for the substitution rationale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.graph.bipartite import BipartiteGraph
from repro.graph.generators import affiliation_bipartite, chung_lu_bipartite


@dataclass(frozen=True)
class DatasetSpec:
    """A named dataset: its builder plus bookkeeping for the benches."""

    name: str
    builder: Callable[[], BipartiteGraph]
    description: str
    #: Whether BiT-BS is run on this dataset in the benches.  Mirrors the
    #: paper's protocol: BiT-BS exceeded the 30 h timeout on Wiki-it and
    #: Wiki-fr, so those stand-ins report INF for BS in Figure 9.
    bs_friendly: bool = True


def _spec(name, builder, description, bs_friendly=True):
    return DatasetSpec(name, builder, description, bs_friendly)


_REGISTRY: Dict[str, DatasetSpec] = {}


def _register(spec: DatasetSpec) -> None:
    _REGISTRY[spec.name] = spec


_register(_spec(
    "condmat",
    lambda: affiliation_bipartite(
        600, 800, 150, community_upper=4, community_lower=5,
        p_in=0.5, noise_edges=300, seed=101,
    ),
    "author-paper collaboration; sparse communities, small supports",
))
_register(_spec(
    "marvel",
    lambda: affiliation_bipartite(
        120, 250, 60, community_upper=6, community_lower=10,
        p_in=0.6, noise_edges=200, seed=102,
    ),
    "character-comic appearances; dense overlapping casts",
))
_register(_spec(
    "dbpedia",
    lambda: chung_lu_bipartite(
        900, 700, 2600, exponent_upper=2.1, exponent_lower=2.3, seed=103,
    ),
    "entity-category links; moderate power-law skew",
))
_register(_spec(
    "github",
    lambda: chung_lu_bipartite(
        500, 900, 3500, exponent_upper=2.0, exponent_lower=2.2, seed=104,
    ),
    "user-repository membership; skewed, mid-density",
))
_register(_spec(
    "twitter",
    lambda: chung_lu_bipartite(
        700, 1200, 5000, exponent_upper=1.9, exponent_lower=2.1, seed=105,
    ),
    "user-hashtag usage; heavy-tailed",
))
_register(_spec(
    "d-label",
    lambda: chung_lu_bipartite(
        1500, 400, 6000, exponent_upper=2.0, exponent_lower=1.9, seed=106,
    ),
    "song-label catalogue; skewed with a compact lower layer",
))
_register(_spec(
    "d-style",
    lambda: chung_lu_bipartite(
        3000, 30, 9000, exponent_upper=2.6, exponent_lower=1.6, seed=107,
    ),
    "song-style tags; tiny lower layer -> giant blooms and hub edges "
    "(the paper's 383-vertex layer), BiT-PC's showcase",
))
_register(_spec(
    "amazon",
    lambda: affiliation_bipartite(
        1500, 1200, 250, community_upper=3, community_lower=4,
        p_in=0.5, noise_edges=800, seed=108,
    ),
    "user-product ratings; sparse communities, small sup_max (paper notes "
    "BiT-PC is slightly slower here)",
))
_register(_spec(
    "dblp",
    lambda: affiliation_bipartite(
        2000, 1500, 400, community_upper=3, community_lower=3,
        p_in=0.55, noise_edges=500, seed=109,
    ),
    "author-publication; very sparse, low bitruss numbers",
))
_register(_spec(
    "wiki-it",
    lambda: chung_lu_bipartite(
        2500, 100, 8000, exponent_upper=2.5, exponent_lower=1.7, seed=110,
    ),
    "editor-article edits (italian); compact lower layer, extreme skew",
    bs_friendly=False,
))
_register(_spec(
    "wiki-fr",
    lambda: chung_lu_bipartite(
        200, 2500, 8000, exponent_upper=1.8, exponent_lower=2.2, seed=111,
    ),
    "editor-article edits (french); compact UPPER layer",
    bs_friendly=False,
))
_register(_spec(
    "delicious",
    lambda: chung_lu_bipartite(
        1000, 3000, 12000, exponent_upper=1.9, exponent_lower=2.3, seed=112,
    ),
    "user-bookmark tags; large, heavy-tailed",
))
_register(_spec(
    "live-journal",
    lambda: chung_lu_bipartite(
        2500, 3500, 15000, exponent_upper=2.0, exponent_lower=2.0, seed=113,
    ),
    "user-community membership; large",
))
_register(_spec(
    "wiki-en",
    lambda: chung_lu_bipartite(
        2000, 4000, 15000, exponent_upper=2.0, exponent_lower=2.2, seed=114,
    ),
    "editor-article edits (english); large",
))
_register(_spec(
    "tracker",
    lambda: chung_lu_bipartite(
        3500, 2500, 18000, exponent_upper=1.9, exponent_lower=2.1, seed=115,
    ),
    "tracker-domain inclusion; largest stand-in",
))

#: The four datasets the paper singles out for Figures 5, 7, 10-14.
REPRESENTATIVE = ("github", "d-label", "d-style", "wiki-it")
#: The hub-edge showcase of Figure 7.
HUB_SHOWCASE = "d-style"

_cache: Dict[str, BipartiteGraph] = {}


def dataset_names() -> List[str]:
    """All registered dataset names, in the paper's Table II order."""
    return list(_REGISTRY)


def dataset_spec(name: str) -> DatasetSpec:
    """The :class:`DatasetSpec` for ``name`` (``KeyError`` if unknown)."""
    return _REGISTRY[name]


def load_dataset(name: str, *, cache: bool = True) -> BipartiteGraph:
    """Build (or fetch the cached) stand-in graph called ``name``.

    Generation is seeded, so repeated loads are identical; with
    ``cache=True`` (default) the same object is reused within a process —
    callers that mutate should pass ``cache=False`` or ``copy()``.
    """
    if cache and name in _cache:
        return _cache[name]
    graph = _REGISTRY[name].builder()
    if cache:
        _cache[name] = graph
    return graph

"""Command-line interface: ``repro-bitruss`` / ``python -m repro``.

Subcommands
-----------
``decompose``   load an edge list (or a bundled dataset), run a chosen
                algorithm, optionally write per-edge bitruss numbers.
``k-bitruss``   extract the edges of the k-bitruss to a file.
``community``   connected k-bitruss community around a query vertex.
``stats``       Table II-style summary of a graph.
``generate``    materialize a bundled synthetic dataset to an edge-list file.
``gen``         stream a synthetic *scale* workload (chung-lu / erdos-renyi)
                to an edge-list file in numpy chunks — million-edge graphs
                without ever holding the graph in memory.
``datasets``    list bundled datasets.
``index``       decompose once and save a serving artifact (``.npz``).
``query``       answer k-bitruss / community / max-k / path / histogram /
                stats queries against a saved artifact — no recompute.
``serve``       host one or more datasets/artifacts over HTTP (asyncio,
                request coalescing, hot-swap rebuilds on mutation).
``trace``       inspect a running server's live tracing plane: list the
                recent/slowest traces, print one trace's waterfall, or
                export it as Chrome trace-event JSON for Perfetto.
``bench``       the performance-trajectory plane: ``list``/``run`` the
                discovered bench modules, ``history`` of any metric
                series, noise-aware ``diff`` against pinned baselines
                (exits non-zero on regression), ``accept`` to re-pin.

Examples
--------
::

    repro-bitruss decompose --dataset github --algorithm pc --tau 0.05
    repro-bitruss decompose --dataset github --workers 4
    repro-bitruss decompose graph.txt --base 1 --output phi.txt
    repro-bitruss stats --dataset d-style
    repro-bitruss generate d-label d-label.txt
    repro-bitruss index --dataset github --algorithm bu-csr --output github.npz
    repro-bitruss index --dataset github --workers 4 --output github.npz
    repro-bitruss query github.npz community -k 4 --upper 17
    repro-bitruss query github.npz k-bitruss -k 6 --output h6.txt
    repro-bitruss serve --dataset github --dataset marvel --port 8642
    repro-bitruss serve --artifact github.npz --mutable --workers 4
    repro-bitruss trace --slowest 5
    repro-bitruss trace --id 4b5dd1e06c15a4f1 --export-chrome trace.json
    repro-bitruss gen chung-lu --upper 500000 --lower 500000 \
        --edges 1000000 scale.txt.gz
    repro-bitruss index scale.txt.gz --streaming --algorithm bu-csr \
        --output scale_artifact
    repro-bitruss query scale_artifact --mmap stats

``decompose`` and ``index`` accept ``--workers N`` (default 1): with more
than one worker the shared-memory runtime (:mod:`repro.runtime`) shards
the work across a persistent zero-copy process pool via the
``bit-bu-par`` algorithm.

The million-edge path: every file-input command accepts ``--streaming``
(chunked numpy ingestion, no Python list of pairs); ``index --output``
without a ``.npz`` suffix writes the memory-mappable directory layout,
which ``query``/``serve`` reopen with ``--mmap`` in O(1) resident memory.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import List, Optional

from repro import datasets
from repro.butterfly.counting import count_butterflies_total, count_per_edge
from repro.core.api import ALGORITHMS, bitruss_decomposition
from repro.graph.bipartite import BipartiteGraph
from repro.graph.io import (
    load_edge_list,
    load_edge_list_streaming,
    save_edge_list,
    save_phi,
    write_edge_chunks,
)
from repro.obs import bench as obs_bench
from repro.obs import log as obs_log
from repro.obs import phases as obs_phases
from repro.utils.stats import UpdateCounter

#: Human narration goes through this stdout logger so ``--quiet`` can
#: silence everything except machine-readable payloads (which ``print``).
_LOG = obs_log.get_logger("cli")


def _say(message: str) -> None:
    _LOG.info(message)


def _load_graph(args: argparse.Namespace) -> BipartiteGraph:
    if args.dataset is not None and args.path is not None:
        raise SystemExit("give either a file path or --dataset, not both")
    if args.dataset is not None:
        if getattr(args, "streaming", False):
            raise SystemExit(
                "--streaming applies to edge-list files; bundled datasets "
                "are generated in memory"
            )
        return datasets.load_dataset(args.dataset)
    if args.path is None:
        raise SystemExit("a file path or --dataset is required")
    if getattr(args, "streaming", False):
        return load_edge_list_streaming(args.path, base=args.base)
    return load_edge_list(args.path, base=args.base)


def _add_input_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("path", nargs="?", help="edge-list file (text or .gz)")
    parser.add_argument(
        "--dataset",
        choices=datasets.dataset_names(),
        help="use a bundled synthetic dataset instead of a file",
    )
    parser.add_argument(
        "--base",
        type=int,
        default=0,
        help="id base of the input file (KONECT files use 1; default 0)",
    )
    parser.add_argument(
        "--streaming",
        action="store_true",
        help="ingest the edge list in fixed-size numpy chunks (out-of-core "
        "path: same graph, a fraction of the peak memory)",
    )


def _resolve_algorithm(args: argparse.Namespace, serial_default: str) -> str:
    """Resolve the ``--algorithm/--workers`` pair to an algorithm name.

    ``--workers N`` with N > 1 selects the shared-memory runtime, which
    only ``bit-bu-par`` implements: when the user left ``--algorithm`` at
    its default, it resolves to ``bit-bu-par``; an explicit serial choice
    plus ``--workers`` is a contradiction and exits with guidance instead
    of silently running single-core.
    """
    from repro.core.api import ALGORITHMS, PARALLEL_ALGORITHMS

    workers = getattr(args, "workers", 1)
    if workers < 1:
        raise SystemExit("--workers must be a positive integer")
    if workers > 1:
        from repro.runtime import is_available

        if not is_available():
            raise SystemExit(
                "--workers needs POSIX shared memory, which this platform "
                "lacks; rerun with --workers 1 (the scalar path)"
            )
    if args.algorithm is None:
        return "bit-bu-par" if workers > 1 else serial_default
    if workers > 1 and ALGORITHMS[args.algorithm] not in PARALLEL_ALGORITHMS:
        raise SystemExit(
            f"--workers {workers} needs a parallel-capable algorithm; "
            f"drop --algorithm {args.algorithm} or use --algorithm bu-par"
        )
    return args.algorithm


def _cmd_decompose(args: argparse.Namespace) -> int:
    if args.profile:
        obs_phases.reset()
    wall_start = time.perf_counter()
    with obs_phases.phase("load graph"):
        graph = _load_graph(args)
    counter = UpdateCounter()
    result = bitruss_decomposition(
        graph,
        algorithm=_resolve_algorithm(args, "bit-bu++"),
        tau=args.tau,
        workers=args.workers,
        counter=counter,
    )
    with obs_phases.phase("hierarchy"):
        hierarchy = result.hierarchy()
    wall_seconds = time.perf_counter() - wall_start
    _say(f"graph: |U|={graph.num_upper} |L|={graph.num_lower} m={graph.num_edges}")
    _say(result.stats.summary())
    _say(f"max bitruss number: {result.max_k}")
    shown = sorted(hierarchy)[: args.levels]
    for k in shown:
        _say(f"  |E(H_{k})| = {hierarchy[k]}")
    if len(hierarchy) > args.levels:
        _say(f"  ... ({len(hierarchy) - args.levels} more levels)")
    profile_block = None
    if args.profile:
        tree = obs_phases.tree()
        profile_block = {"wall_seconds": wall_seconds, "tree": tree}
        _say("phase profile:")
        _say(obs_phases.render_tree(tree))
    if args.json:
        payload = {
            "algorithm": result.stats.algorithm,
            "max_k": result.max_k,
            "hierarchy": {str(k): c for k, c in hierarchy.items()},
            "updates": result.stats.updates,
            "timings": result.stats.timings,
        }
        if profile_block is not None:
            payload["profile"] = profile_block
        print(json.dumps(payload, indent=2))
    if args.output:
        save_phi(result.phi, args.output)
        _say(f"wrote bitruss numbers to {args.output}")
    return 0


def _cmd_k_bitruss(args: argparse.Namespace) -> int:
    from repro.core.bitruss import k_bitruss_direct

    graph = _load_graph(args)
    eids = k_bitruss_direct(graph, args.k)
    sub, _ = graph.subgraph_from_edge_ids(eids)
    print(f"{args.k}-bitruss: {len(eids)} edges")
    if args.output:
        save_edge_list(sub, args.output, base=args.base)
        print(f"wrote {args.k}-bitruss edge list to {args.output}")
    return 0


def _cmd_community(args: argparse.Namespace) -> int:
    from repro.apps.community_search import bitruss_community

    graph = _load_graph(args)
    kwargs = {}
    if args.upper is not None:
        kwargs["upper"] = args.upper
    if args.lower is not None:
        kwargs["lower"] = args.lower
    community = bitruss_community(graph, k=args.k, **kwargs)
    print(
        f"community at k={args.k}: {len(community.upper)} upper, "
        f"{len(community.lower)} lower, {len(community.edges)} edges"
    )
    for u, v in sorted(community.edges)[: args.limit]:
        print(f"  {u} {v}")
    if len(community.edges) > args.limit:
        print(f"  ... ({len(community.edges) - args.limit} more)")
    return 0


def _extract_profile_tree(payload: object) -> Optional[dict]:
    """Find a phase tree in a saved JSON document.

    Accepts a bare tree (``{"name": ..., "children": [...]}``), a profile
    block (``{"wall_seconds": ..., "tree": ...}``) or a whole ``decompose
    --json`` payload containing a ``"profile"`` entry.
    """
    if not isinstance(payload, dict):
        return None
    if "children" in payload and "name" in payload:
        return payload
    for key in ("tree", "profile"):
        found = _extract_profile_tree(payload.get(key))
        if found is not None:
            return found
    return None


def _print_profile_block(payload: object) -> bool:
    """Render a contained phase tree (and wall time); False when absent."""
    tree = _extract_profile_tree(payload)
    if tree is None:
        return False
    block = payload
    if isinstance(payload, dict) and isinstance(payload.get("profile"), dict):
        block = payload["profile"]
    if isinstance(block, dict) and "wall_seconds" in block:
        wall = float(block["wall_seconds"])
        leaves = obs_phases.leaf_seconds(tree)
        print(f"wall time: {wall:.4f}s")
        if wall > 0:
            print(
                f"leaf coverage: {leaves:.4f}s ({100.0 * leaves / wall:.1f}% of wall)"
            )
    print(obs_phases.render_tree(tree))
    return True


def _cmd_stats(args: argparse.Namespace) -> int:
    if args.profile_path:
        with open(args.profile_path, "r", encoding="utf-8") as handle:
            try:
                payload = json.load(handle)
            except json.JSONDecodeError as exc:
                raise SystemExit(f"{args.profile_path}: invalid JSON: {exc}")
        if not _print_profile_block(payload):
            raise SystemExit(
                f"{args.profile_path}: no phase tree found (expected a "
                "`decompose --profile --json` payload or a profile block)"
            )
        return 0
    if args.scrape:
        from urllib.error import URLError
        from urllib.request import urlopen

        url = args.scrape
        if "://" not in url:
            url = f"http://{url}"
        if not url.rstrip("/").endswith("/metrics"):
            url = url.rstrip("/") + "/metrics"
        try:
            with urlopen(url) as response:
                payload = json.load(response)
        except (URLError, OSError, json.JSONDecodeError) as exc:
            raise SystemExit(f"cannot scrape {url}: {exc}")
        server = payload.get("server", {})
        print(f"server: {url}")
        print(f"  requests_total: {server.get('requests_total')}")
        print(f"  errors_total:   {server.get('errors_total')}")
        uptime = server.get("uptime_seconds")
        if uptime is not None:
            print(f"  uptime:         {uptime:.1f}s")
        for name, entry in sorted(payload.get("datasets", {}).items()):
            cache = entry.get("cache", {})
            hits, misses = cache.get("hits", 0), cache.get("misses", 0)
            rate = hits / (hits + misses) if hits + misses else 0.0
            print(
                f"  {name}: v{entry.get('version')} served={entry.get('served')} "
                f"cache_hit_rate={rate:.2f}"
            )
        coal = payload.get("coalescer")
        if coal:
            flushes = coal.get("flushes", 0)
            fold = coal.get("submitted", 0) / flushes if flushes else 0.0
            print(f"  coalescer: fold_ratio={fold:.2f} ({coal})")
        build = None
        try:
            vars_url = url[: -len("/metrics")] + "/debug/vars"
            with urlopen(vars_url) as response:
                build = json.load(response).get("build")
        except (URLError, OSError, json.JSONDecodeError):
            build = None
        if build:
            print("  build:")
            print(f"    git_sha:   {build.get('git_sha')}")
            print(
                f"    python:    {build.get('python')}"
                f"  numpy: {build.get('numpy')}"
            )
            print(
                f"    machine:   {build.get('hostname')} "
                f"({build.get('cpu_count')}x {build.get('cpu_model')})"
            )
            knobs = build.get("repro_knobs") or {}
            if knobs:
                rendered = " ".join(f"{k}={v}" for k, v in sorted(knobs.items()))
                print(f"    knobs:     {rendered}")
        if not _print_profile_block(payload):
            print("  (no profile block; start the server with --profile)")
        return 0
    graph = _load_graph(args)
    support = count_per_edge(graph)
    butterflies = count_butterflies_total(graph)
    print(f"|E|      = {graph.num_edges}")
    print(f"|U|      = {graph.num_upper}")
    print(f"|L|      = {graph.num_lower}")
    print(f"⋈G       = {butterflies}")
    print(f"sup_max  = {int(support.max()) if len(support) else 0}")
    if args.phi_max:
        result = bitruss_decomposition(graph, algorithm="bit-pc")
        print(f"φ_max    = {result.max_k}")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    graph = datasets.load_dataset(args.dataset)
    save_edge_list(graph, args.output, base=args.base)
    print(
        f"wrote {args.dataset} ({graph.num_edges} edges, "
        f"|U|={graph.num_upper}, |L|={graph.num_lower}) to {args.output}"
    )
    return 0


def _cmd_gen(args: argparse.Namespace) -> int:
    from repro.graph.generators import (
        chung_lu_edge_chunks,
        erdos_renyi_edge_chunks,
    )

    if args.upper < 1 or args.lower < 1 or args.edges < 1:
        raise SystemExit("--upper/--lower/--edges must be positive")
    if args.chunk_edges < 1:
        raise SystemExit("--chunk-edges must be positive")
    if args.model == "chung-lu":
        chunks = chung_lu_edge_chunks(
            args.upper,
            args.lower,
            args.edges,
            exponent_upper=args.exponent,
            exponent_lower=args.exponent,
            seed=args.seed,
            chunk_edges=args.chunk_edges,
        )
    else:
        chunks = erdos_renyi_edge_chunks(
            args.upper,
            args.lower,
            args.edges,
            seed=args.seed,
            chunk_edges=args.chunk_edges,
        )
    try:
        written = write_edge_chunks(
            args.output,
            chunks,
            base=args.base,
            header=f"bip unweighted ({args.model} |U|={args.upper} "
            f"|L|={args.lower} m={args.edges} seed={args.seed})",
        )
    except (ValueError, RuntimeError) as exc:
        raise SystemExit(str(exc))
    print(
        f"wrote {written} {args.model} edges "
        f"(|U|={args.upper}, |L|={args.lower}, seed={args.seed}) "
        f"to {args.output}"
    )
    return 0


def _cmd_index(args: argparse.Namespace) -> int:
    from repro.service import build_artifact, save_artifact

    if args.profile:
        obs_phases.reset()
    wall_start = time.perf_counter()
    with obs_phases.phase("load graph"):
        graph = _load_graph(args)
    artifact = build_artifact(
        graph,
        algorithm=_resolve_algorithm(args, "bit-bu++"),
        tau=args.tau,
        workers=args.workers,
    )
    with obs_phases.phase("save artifact"):
        save_artifact(artifact, args.output)
    wall_seconds = time.perf_counter() - wall_start
    _say(f"graph: |U|={graph.num_upper} |L|={graph.num_lower} m={graph.num_edges}")
    _say(f"algorithm: {artifact.algorithm}")
    _say(f"max bitruss number: {artifact.max_k}")
    _say(f"graph hash: {artifact.graph_hash[:16]}…")
    _say(f"wrote artifact to {args.output}")
    if args.profile:
        tree = obs_phases.tree()
        _say(f"phase profile (wall {wall_seconds:.4f}s):")
        _say(obs_phases.render_tree(tree))
    return 0


def _load_engine(args: argparse.Namespace):
    from repro.service import ArtifactError, QueryEngine

    try:
        return QueryEngine.load(
            args.artifact,
            mmap_mode="r" if getattr(args, "mmap", False) else None,
        )
    except ArtifactError as exc:
        raise SystemExit(str(exc))


def _print_edges(edges, limit: int) -> None:
    for u, v in edges[:limit]:
        _say(f"  {u} {v}")
    if len(edges) > limit:
        _say(f"  ... ({len(edges) - limit} more)")


def _emit_json(payload: object) -> None:
    print(json.dumps(payload, indent=2, default=str))


def _cmd_query_k_bitruss(args: argparse.Namespace) -> int:
    engine = _load_engine(args)
    eids = engine.k_bitruss(args.k)
    edges = sorted(
        [int(u), int(v)]
        for u, v in (engine.graph.edge_endpoints(e) for e in eids)
    )
    if args.json:
        _emit_json({"k": args.k, "count": len(eids), "edges": edges})
    else:
        _say(f"{args.k}-bitruss: {len(eids)} edges")
    if args.output:
        sub, _ = engine.graph.subgraph_from_edge_ids(eids)
        save_edge_list(sub, args.output, base=args.base)
        _say(f"wrote {args.k}-bitruss edge list to {args.output}")
    elif not args.json:
        _print_edges(edges, args.limit)
    return 0


def _cmd_query_community(args: argparse.Namespace) -> int:
    engine = _load_engine(args)
    kwargs = {}
    if args.upper is not None:
        kwargs["upper"] = args.upper
    if args.lower is not None:
        kwargs["lower"] = args.lower
    community = engine.community(args.k, **kwargs)
    if args.json:
        _emit_json(
            {
                "k": args.k,
                "upper": sorted(int(u) for u in community.upper),
                "lower": sorted(int(v) for v in community.lower),
                "edges": sorted([int(u), int(v)] for u, v in community.edges),
            }
        )
        return 0
    _say(
        f"community at k={args.k}: {len(community.upper)} upper, "
        f"{len(community.lower)} lower, {len(community.edges)} edges"
    )
    _print_edges(sorted(community.edges), args.limit)
    return 0


def _cmd_query_max_k(args: argparse.Namespace) -> int:
    engine = _load_engine(args)
    if args.upper is not None:
        side, vertex = "upper", args.upper
        k = engine.max_k(upper=args.upper)
    else:
        side, vertex = "lower", args.lower
        k = engine.max_k(lower=args.lower)
    if args.json:
        _emit_json({"side": side, "vertex": vertex, "max_k": int(k)})
    else:
        _say(f"max k of {side} vertex {vertex}: {k}")
    return 0


def _cmd_query_path(args: argparse.Namespace) -> int:
    engine = _load_engine(args)
    u, v = args.edge
    try:
        path = engine.hierarchy_path(edge=(u, v))
    except KeyError:
        raise SystemExit(f"edge ({u}, {v}) not in the indexed graph")
    if args.json:
        _emit_json(
            {
                "edge": [u, v],
                "phi": int(engine.phi_of(u, v)),
                "path": [
                    {
                        "level": int(level),
                        "node": int(node),
                        "edges": len(engine.hierarchy.component_edges(node)),
                    }
                    for level, node in path
                ],
            }
        )
        return 0
    _say(f"edge ({u}, {v}): phi = {engine.phi_of(u, v)}")
    for level, node in path:
        size = len(engine.hierarchy.component_edges(node))
        _say(f"  level {level}: component node {node} ({size} edges)")
    return 0


def _cmd_query_histogram(args: argparse.Namespace) -> int:
    engine = _load_engine(args)
    histogram = engine.phi_histogram()
    if args.json:
        _emit_json({str(k): int(c) for k, c in sorted(histogram.items())})
        return 0
    for k, count in sorted(histogram.items()):
        _say(f"  phi={k}: {count} edges")
    return 0


def _cmd_query_stats(args: argparse.Namespace) -> int:
    engine = _load_engine(args)
    info = engine.stats()
    if args.json:
        _emit_json({k: v for k, v in info.items()})
        return 0
    levels = info.pop("level_sizes")
    for key, value in info.items():
        _say(f"{key}: {value}")
    shown = sorted(levels)[: args.levels]
    for k in shown:
        _say(f"  |E(H_{k})| = {levels[k]}")
    if len(levels) > args.levels:
        _say(f"  ... ({len(levels) - args.levels} more levels)")
    return 0


def _cmd_query_batch(args: argparse.Namespace) -> int:
    engine = _load_engine(args)
    with open(args.file, "r", encoding="utf-8") as handle:
        queries = json.load(handle)
    if not isinstance(queries, list):
        raise SystemExit(f"{args.file}: expected a JSON list of query objects")

    def _encode(value):
        if hasattr(value, "upper") and hasattr(value, "edges"):  # Community
            return {
                "k": value.k,
                "upper": sorted(value.upper),
                "lower": sorted(value.lower),
                "edges": sorted(value.edges),
            }
        return value

    results = engine.batch(queries)
    print(json.dumps([_encode(r) for r in results], indent=2, default=str))
    return 0


def _build_serve_registry(args: argparse.Namespace):
    """Resolve ``--dataset``/``--artifact`` into a populated registry."""
    from repro.server import ArtifactRegistry, UpdateManager
    from repro.service import ArtifactError, build_artifact, load_artifact

    names = args.dataset or []
    artifacts = args.artifact or []
    if not names and not artifacts:
        raise SystemExit(
            "nothing to serve: give at least one --dataset NAME or "
            "--artifact [NAME=]PATH"
        )
    registry = ArtifactRegistry(cache_size=args.cache_size)
    sources = {}
    for name in names:
        if name in sources:
            raise SystemExit(f"dataset {name!r} given twice")
        _say(f"building artifact for dataset {name!r} ...")
        artifact = build_artifact(
            datasets.load_dataset(name),
            algorithm=_resolve_algorithm(args, "bit-bu-csr"),
            workers=args.workers,
        )
        sources[name] = artifact
    for spec in artifacts:
        name, sep, path = spec.partition("=")
        if not sep:
            name, path = None, spec
        if name is None:
            import os.path

            name = os.path.splitext(os.path.basename(path))[0]
        if not name:
            raise SystemExit(f"--artifact {spec!r}: empty dataset name")
        if name in sources:
            raise SystemExit(f"dataset {name!r} given twice")
        try:
            sources[name] = load_artifact(
                path, mmap_mode="r" if args.mmap else None
            )
        except ArtifactError as exc:
            raise SystemExit(str(exc))
    for name, artifact in sources.items():
        try:
            registry.register(name, artifact, allow_stale=args.mutable)
        except ValueError as exc:
            raise SystemExit(str(exc))

    updates = None
    if args.mutable:
        updates = UpdateManager(
            registry,
            debounce=args.debounce,
            workers=args.workers,
            # Rebuilds must honour the same --algorithm/--workers choice as
            # the startup builds, or the served artifact silently changes
            # algorithm (and rebuild latency) after the first mutation.
            algorithm=_resolve_algorithm(args, "bit-bu-csr"),
            incremental=args.rebuild_threshold > 0,
            rebuild_threshold=args.rebuild_threshold,
            max_incremental_batch=args.max_incremental_batch,
            predict=not args.no_predict,
            adaptive_budget=not args.no_adaptive_budget,
        )
        for name in registry.names():
            updates.attach(name)
    return registry, updates


async def _serve_async(args: argparse.Namespace, registry, updates) -> None:
    import errno

    from repro.server import BitrussServer

    server = BitrussServer(
        registry,
        host=args.host,
        port=args.port,
        coalesce=not args.no_coalesce,
        window=args.window_ms / 1000.0,
        updates=updates,
        slow_query_s=(
            args.slow_query_ms / 1000.0 if args.slow_query_ms > 0 else None
        ),
        trace_sample=args.trace_sample,
    )
    try:
        await server.start()
    except OSError as exc:
        if exc.errno == errno.EADDRINUSE:
            raise SystemExit(
                f"port {args.port} is already in use on {args.host}; "
                "pick a free one with --port (0 = auto-assign)"
            )
        if exc.errno == errno.EACCES:
            raise SystemExit(
                f"permission denied binding {args.host}:{args.port} "
                "(ports below 1024 need elevated privileges); pick a "
                "higher port with --port"
            )
        raise SystemExit(f"cannot bind {args.host}:{args.port}: {exc}")
    _say(
        f"serving {len(registry)} dataset(s) on "
        f"http://{args.host}:{server.port}"
    )
    for entry in registry:
        mutable = updates is not None and updates.is_mutable(entry.name)
        _say(
            f"  /{entry.name}  m={entry.engine.graph.num_edges} "
            f"max_k={entry.artifact.max_k}"
            f"{'  (mutable)' if mutable else ''}"
        )
    _say(
        "endpoints: /datasets /healthz /metrics /debug/vars /debug/traces "
        "/{ds}/stats /{ds}/histogram /{ds}/community /{ds}/max_k "
        "/{ds}/hierarchy_path POST /{ds}/batch POST /{ds}/edges"
    )
    try:
        await server.serve_forever()
    finally:
        await server.stop()


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    if not 0 <= args.port <= 65535:
        raise SystemExit(f"--port {args.port} is outside [0, 65535]")
    if args.workers < 1:
        raise SystemExit("--workers must be a positive integer")
    if args.workers > 1:
        from repro.runtime import is_available

        if not is_available():
            raise SystemExit(
                "--workers needs POSIX shared memory, which this platform "
                "lacks; rerun with --workers 1 (the scalar path)"
            )
    if args.window_ms < 0:
        raise SystemExit("--window-ms must be non-negative")
    if args.debounce < 0:
        raise SystemExit("--debounce must be non-negative")
    if not 0.0 <= args.rebuild_threshold <= 1.0:
        raise SystemExit("--rebuild-threshold must be within [0, 1]")
    if args.max_incremental_batch < 1:
        raise SystemExit("--max-incremental-batch must be positive")
    if args.cache_size < 0:
        raise SystemExit("--cache-size must be non-negative")
    if args.slow_query_ms < 0:
        raise SystemExit("--slow-query-ms must be non-negative")
    if args.trace_sample is not None and not 0.0 <= args.trace_sample <= 1.0:
        raise SystemExit("--trace-sample must be within [0, 1]")
    registry, updates = _build_serve_registry(args)
    try:
        asyncio.run(_serve_async(args, registry, updates))
    except KeyboardInterrupt:
        _say("shutting down")
    return 0


def _debug_get(base: str, path: str) -> object:
    """Fetch one ``/debug/*`` JSON document from a running server."""
    from urllib.error import HTTPError as UrlHTTPError
    from urllib.error import URLError
    from urllib.request import urlopen

    url = base + path
    try:
        with urlopen(url) as response:
            return json.load(response)
    except UrlHTTPError as exc:
        try:
            detail = json.load(exc).get("message", "")
        except Exception:  # noqa: BLE001 - best-effort error body
            detail = ""
        raise SystemExit(
            f"{url}: HTTP {exc.code}" + (f" ({detail})" if detail else "")
        )
    except (URLError, OSError, json.JSONDecodeError) as exc:
        raise SystemExit(f"cannot reach {url}: {exc}")


def _render_waterfall(node: dict, depth: int = 0) -> None:
    """One line per span: offset, duration, name, error marker."""
    marker = "  !" if node.get("status") == "error" else ""
    pid = node.get("pid")
    pid_note = f"  [pid {pid}]" if depth and pid is not None else ""
    _say(
        f"  {'  ' * depth}{node['start_ms']:8.3f}ms "
        f"+{node['duration_ms']:.3f}ms  {node['name']}{pid_note}{marker}"
    )
    for child in node.get("children", ()):
        _render_waterfall(child, depth + 1)


def _cmd_trace(args: argparse.Namespace) -> int:
    base = args.url
    if "://" not in base:
        base = f"http://{base}"
    base = base.rstrip("/")

    if args.export_chrome and args.id is None:
        # No explicit trace: export the slowest retained one.
        listing = _debug_get(base, "/debug/traces?limit=1")
        slowest = listing.get("slowest") or listing.get("recent") or []
        if not slowest:
            raise SystemExit("server has no retained traces to export")
        args.id = slowest[0]["trace_id"]
        _say(f"exporting slowest trace {args.id}")

    if args.id is not None:
        if args.export_chrome:
            payload = _debug_get(
                base, f"/debug/traces/{args.id}?format=chrome"
            )
            with open(args.export_chrome, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
            _say(
                f"wrote {len(payload.get('traceEvents', []))} trace events "
                f"to {args.export_chrome} (load at https://ui.perfetto.dev)"
            )
            return 0
        payload = _debug_get(base, f"/debug/traces/{args.id}")
        if args.json:
            _emit_json(payload)
            return 0
        _say(
            f"trace {payload['trace_id']}  {payload['name']}  "
            f"{payload['duration_ms']:.3f}ms  status={payload['status']}"
        )
        for root in payload.get("spans", ()):
            _render_waterfall(root)
        return 0

    query = [f"limit={args.slowest or args.limit}"]
    if args.endpoint:
        query.append(f"endpoint={args.endpoint}")
    if args.dataset:
        query.append(f"dataset={args.dataset}")
    listing = _debug_get(base, "/debug/traces?" + "&".join(query))
    if args.json:
        _emit_json(listing)
        return 0
    sections = (
        [("slowest", listing.get("slowest", []))]
        if args.slowest
        else [
            ("recent", listing.get("recent", [])),
            ("slowest", listing.get("slowest", [])),
        ]
    )
    for title, rows in sections:
        _say(f"{title}:")
        if not rows:
            _say("  (none)")
        for row in rows:
            where = row["endpoint"] or row["name"]
            if row.get("dataset"):
                where += f" [{row['dataset']}]"
            _say(
                f"  {row['trace_id']}  {row['duration_ms']:9.3f}ms  "
                f"{row['spans']:3d} spans  {where}"
                + ("  !" if row["status"] == "error" else "")
            )
    return 0


def _cmd_datasets(_args: argparse.Namespace) -> int:
    for name in datasets.dataset_names():
        spec = datasets.dataset_spec(name)
        print(f"{name:14s} {spec.description}")
    return 0


def _bench_dir(args: argparse.Namespace) -> Path:
    """Locate ``benchmarks/``: ``--bench-dir``, cwd, or next to the package."""
    if getattr(args, "bench_dir", None):
        bench_dir = Path(args.bench_dir)
        if not bench_dir.is_dir():
            raise SystemExit(f"--bench-dir {bench_dir}: not a directory")
        return bench_dir
    candidates = [
        Path.cwd() / "benchmarks",
        Path(__file__).resolve().parents[2] / "benchmarks",
    ]
    for candidate in candidates:
        if candidate.is_dir():
            return candidate
    raise SystemExit(
        "cannot find a benchmarks/ directory (run from the repository "
        "root or pass --bench-dir)"
    )


def _bench_paths(args: argparse.Namespace):
    bench_dir = _bench_dir(args)
    results_dir = bench_dir / "results"
    return (
        bench_dir,
        bench_dir.parent,  # repo root
        results_dir,
        results_dir / "trajectory.jsonl",
        bench_dir / "baselines.json",
    )


def _bench_select(
    specs, *, tier: str = "full", only: Optional[str] = None
):
    import fnmatch

    chosen = [s for s in specs if s.in_tier(tier)]
    if only:
        chosen = [s for s in chosen if fnmatch.fnmatch(s.name, only)]
    return chosen


def _cmd_bench_list(args: argparse.Namespace) -> int:
    bench_dir, _, _, _, _ = _bench_paths(args)
    specs = _bench_select(
        obs_bench.discover(bench_dir), tier=args.tier, only=args.only
    )
    if not specs:
        print("no benches matched")
        return 1
    width = max(len(s.name) for s in specs)
    for spec in specs:
        print(f"{spec.name.ljust(width)}  {spec.tier:5s}  {spec.summary}")
    return 0


def _cmd_bench_run(args: argparse.Namespace) -> int:
    bench_dir, repo_root, results_dir, trajectory, _ = _bench_paths(args)
    specs = _bench_select(
        obs_bench.discover(bench_dir), tier=args.tier, only=args.only
    )
    if not specs:
        print("no benches matched")
        return 1
    _say(
        f"running {len(specs)} bench module(s), tier={args.tier}, "
        f"repeat={args.repeat}"
    )
    failed = 0
    for spec in specs:
        outcome = obs_bench.run_module(
            spec,
            repo_root=repo_root,
            results_dir=results_dir,
            trajectory_path=trajectory,
            repeat=args.repeat,
        )
        published = ", ".join(sorted(r.bench for r in outcome.results))
        if outcome.status == "failed":
            failed += 1
            print(f"FAIL  {spec.name}  ({outcome.seconds:.1f}s)")
            if outcome.tail:
                print(outcome.tail)
        elif outcome.status == "no-result":
            print(
                f"pass  {spec.name}  ({outcome.seconds:.1f}s)  "
                "[no result published — skipped or legacy bench]"
            )
        else:
            print(
                f"pass  {spec.name}  ({outcome.seconds:.1f}s)  -> {published}"
            )
    if failed:
        print(f"{failed}/{len(specs)} bench module(s) failed")
        return 1
    return 0


def _cmd_bench_history(args: argparse.Namespace) -> int:
    _, _, _, trajectory, _ = _bench_paths(args)
    entries = [
        r for r in obs_bench.read_trajectory(trajectory)
        if r.bench == args.bench
    ]
    if not entries:
        print(f"no trajectory entries for {args.bench!r} in {trajectory}")
        return 1
    entries = entries[-args.limit:]
    for result in entries:
        stamp = time.strftime(
            "%Y-%m-%d %H:%M:%S", time.localtime(result.created_unix)
        )
        metrics = "  ".join(
            f"{m.name}={m.value:.6g}{'' if m.unit == 'count' else ' ' + m.unit}"
            for m in result.metrics
        )
        print(
            f"{stamp}  {result.env.git_sha[:8]:8s}  "
            f"host={result.env.hostname or '?'}  x{result.repeats}  {metrics}"
        )
    return 0


def _cmd_bench_diff(args: argparse.Namespace) -> int:
    _, _, _, trajectory, baselines_path = _bench_paths(args)
    if not baselines_path.exists():
        print(
            f"no baselines at {baselines_path} — run `repro-bitruss bench "
            "accept` after a trusted run to pin them"
        )
        return 0
    with open(baselines_path, "r", encoding="utf-8") as handle:
        baselines = json.load(handle)
    results = obs_bench.read_trajectory(trajectory)
    if not results:
        print(f"trajectory {trajectory} is empty — nothing to diff")
        return 0
    only = args.only.split(",") if args.only else None
    deltas = obs_bench.diff_results(
        results,
        baselines,
        threshold=args.threshold,
        noise_mult=args.noise_mult,
        history_window=args.window,
        strict_env=args.strict_env,
        only=only,
    )
    if not deltas:
        print("no overlapping benches between trajectory and baselines")
        return 0
    for line in obs_bench.format_delta_table(deltas):
        print(line)
    regressions = [d for d in deltas if d.gating]
    if regressions:
        print(
            f"\n{len(regressions)} metric(s) regressed beyond the "
            "noise-aware threshold"
        )
        return 2
    infos = sum(1 for d in deltas if d.status == "info")
    if infos:
        print(
            f"\nok ({infos} wall-clock metric(s) reported info-only: "
            "baseline pinned on a different machine)"
        )
    else:
        print("\nok — no regressions")
    return 0


def _cmd_bench_accept(args: argparse.Namespace) -> int:
    _, _, _, trajectory, baselines_path = _bench_paths(args)
    results = obs_bench.read_trajectory(trajectory)
    if not results:
        raise SystemExit(
            f"trajectory {trajectory} is empty — run `repro-bitruss bench "
            "run` first"
        )
    latest: dict = {}
    for result in results:
        latest[result.bench] = result
    if args.only:
        import fnmatch

        latest = {
            name: result
            for name, result in latest.items()
            if fnmatch.fnmatch(name, args.only)
        }
        if not latest:
            raise SystemExit(f"no trajectory benches match --only {args.only}")
    previous = None
    if baselines_path.exists():
        with open(baselines_path, "r", encoding="utf-8") as handle:
            previous = json.load(handle)
    doc = obs_bench.make_baselines(latest.values(), previous)
    baselines_path.write_text(json.dumps(doc, indent=2) + "\n")
    print(
        f"pinned {len(latest)} bench(es) "
        f"({', '.join(sorted(latest))}) -> {baselines_path}"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-bitruss",
        description="Bitruss decomposition for bipartite graphs (Wang et al., ICDE 2020)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_dec = sub.add_parser("decompose", help="compute bitruss numbers")
    _add_input_options(p_dec)
    p_dec.add_argument(
        "--algorithm",
        default=None,
        choices=sorted(ALGORITHMS),
        help="decomposition algorithm (default bit-bu++; "
        "bit-bu-par when --workers > 1)",
    )
    p_dec.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for the shared-memory runtime "
        "(default 1 = in-process scalar path)",
    )
    p_dec.add_argument("--tau", type=float, default=0.02, help="BiT-PC tau")
    p_dec.add_argument("--output", help="write per-edge bitruss numbers here")
    p_dec.add_argument(
        "--levels", type=int, default=10, help="hierarchy levels to print"
    )
    p_dec.add_argument(
        "--json", action="store_true", help="also print a JSON summary"
    )
    p_dec.add_argument(
        "--profile",
        action="store_true",
        help="record per-phase wall times and print the phase tree "
        "(adds a `profile` block to --json output)",
    )
    p_dec.add_argument(
        "--quiet",
        action="store_true",
        help="suppress human narration; only machine-readable payloads "
        "(--json, --output) are emitted",
    )
    p_dec.set_defaults(func=_cmd_decompose)

    p_kb = sub.add_parser("k-bitruss", help="extract the k-bitruss subgraph")
    _add_input_options(p_kb)
    p_kb.add_argument("-k", type=int, required=True, help="cohesion level")
    p_kb.add_argument("--output", help="write the subgraph edge list here")
    p_kb.set_defaults(func=_cmd_k_bitruss)

    p_com = sub.add_parser(
        "community", help="k-bitruss community around a query vertex"
    )
    _add_input_options(p_com)
    p_com.add_argument("-k", type=int, required=True, help="cohesion level")
    group = p_com.add_mutually_exclusive_group(required=True)
    group.add_argument("--upper", type=int, help="query upper-layer vertex")
    group.add_argument("--lower", type=int, help="query lower-layer vertex")
    p_com.add_argument(
        "--limit", type=int, default=20, help="edges to print (default 20)"
    )
    p_com.set_defaults(func=_cmd_community)

    p_stats = sub.add_parser("stats", help="Table II-style graph summary")
    _add_input_options(p_stats)
    p_stats.add_argument(
        "--phi-max",
        action="store_true",
        help="also run a decomposition to report φ_max (slower)",
    )
    p_stats.add_argument(
        "--profile",
        dest="profile_path",
        metavar="FILE",
        help="pretty-print the phase tree saved in a `decompose --profile "
        "--json` payload (or bench JSON) instead of analysing a graph",
    )
    p_stats.add_argument(
        "--scrape",
        metavar="URL",
        help="summarize the /metrics endpoint of a running server "
        "(host:port or full URL) instead of analysing a graph",
    )
    p_stats.set_defaults(func=_cmd_stats)

    p_gen = sub.add_parser("generate", help="write a bundled dataset to a file")
    p_gen.add_argument("dataset", choices=datasets.dataset_names())
    p_gen.add_argument("output")
    p_gen.add_argument("--base", type=int, default=0)
    p_gen.set_defaults(func=_cmd_generate)

    p_ls = sub.add_parser("datasets", help="list bundled datasets")
    p_ls.set_defaults(func=_cmd_datasets)

    p_g = sub.add_parser(
        "gen",
        help="stream a synthetic scale workload to an edge-list file "
        "(never materializes the graph)",
    )
    p_g.add_argument("model", choices=["chung-lu", "erdos-renyi"])
    p_g.add_argument("output", help="edge-list file to write (text or .gz)")
    p_g.add_argument("--upper", type=int, required=True, help="|U|")
    p_g.add_argument("--lower", type=int, required=True, help="|L|")
    p_g.add_argument("--edges", type=int, required=True, help="edge count m")
    p_g.add_argument("--seed", type=int, default=7, help="RNG seed (default 7)")
    p_g.add_argument(
        "--exponent",
        type=float,
        default=2.5,
        help="chung-lu power-law exponent for both layers (default 2.5)",
    )
    p_g.add_argument(
        "--chunk-edges",
        type=int,
        default=1 << 18,
        help="edges generated per chunk (default 262144)",
    )
    p_g.add_argument("--base", type=int, default=0, help="output id base")
    p_g.set_defaults(func=_cmd_gen)

    p_idx = sub.add_parser(
        "index", help="decompose once and save a serving artifact"
    )
    _add_input_options(p_idx)
    p_idx.add_argument(
        "--algorithm",
        default=None,
        choices=sorted(ALGORITHMS),
        help="decomposition algorithm (default bit-bu++; "
        "bit-bu-par when --workers > 1)",
    )
    p_idx.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for the offline build "
        "(default 1 = in-process scalar path)",
    )
    p_idx.add_argument("--tau", type=float, default=0.02, help="BiT-PC tau")
    # An --output flag, not a second positional: the input path is already
    # an optional positional, and argparse cannot split two positionals
    # across intervening option flags.
    p_idx.add_argument(
        "--output",
        required=True,
        help="artifact to write: a .npz path gives one compressed archive; "
        "any other path gives the mmappable directory layout",
    )
    p_idx.add_argument(
        "--profile",
        action="store_true",
        help="record per-phase wall times and print the phase tree",
    )
    p_idx.add_argument(
        "--quiet",
        action="store_true",
        help="suppress human narration",
    )
    p_idx.set_defaults(func=_cmd_index)

    p_q = sub.add_parser(
        "query", help="serve queries against a saved artifact"
    )
    p_q.add_argument(
        "artifact", help="artifact (.npz or directory) written by `index`"
    )
    p_q.add_argument(
        "--mmap",
        action="store_true",
        help="memory-map a directory-layout artifact instead of reading "
        "it eagerly (O(1) resident open)",
    )
    p_q.add_argument(
        "--json",
        action="store_true",
        help="emit the answer as a JSON payload instead of narration",
    )
    p_q.add_argument(
        "--quiet",
        action="store_true",
        help="suppress human narration; only machine-readable payloads "
        "(--json, --output) are emitted",
    )
    qsub = p_q.add_subparsers(dest="query_op", required=True)

    q_kb = qsub.add_parser("k-bitruss", help="edges of the k-bitruss")
    q_kb.add_argument("-k", type=int, required=True, help="cohesion level")
    q_kb.add_argument("--output", help="write the subgraph edge list here")
    q_kb.add_argument("--base", type=int, default=0, help="output id base")
    q_kb.add_argument(
        "--limit", type=int, default=20, help="edges to print (default 20)"
    )
    q_kb.set_defaults(func=_cmd_query_k_bitruss)

    q_com = qsub.add_parser(
        "community", help="k-bitruss community around a query vertex"
    )
    q_com.add_argument("-k", type=int, required=True, help="cohesion level")
    group = q_com.add_mutually_exclusive_group(required=True)
    group.add_argument("--upper", type=int, help="query upper-layer vertex")
    group.add_argument("--lower", type=int, help="query lower-layer vertex")
    q_com.add_argument(
        "--limit", type=int, default=20, help="edges to print (default 20)"
    )
    q_com.set_defaults(func=_cmd_query_community)

    q_mk = qsub.add_parser(
        "max-k", help="deepest bitruss level a vertex reaches"
    )
    group = q_mk.add_mutually_exclusive_group(required=True)
    group.add_argument("--upper", type=int, help="query upper-layer vertex")
    group.add_argument("--lower", type=int, help="query lower-layer vertex")
    q_mk.set_defaults(func=_cmd_query_max_k)

    q_path = qsub.add_parser(
        "path", help="chain of enclosing components of one edge"
    )
    q_path.add_argument(
        "--edge",
        nargs=2,
        type=int,
        required=True,
        metavar=("U", "V"),
        help="edge endpoints (upper lower)",
    )
    q_path.set_defaults(func=_cmd_query_path)

    q_hist = qsub.add_parser("histogram", help="edges per exact phi level")
    q_hist.set_defaults(func=_cmd_query_histogram)

    q_stats = qsub.add_parser("stats", help="artifact + hierarchy summary")
    q_stats.add_argument(
        "--levels", type=int, default=10, help="hierarchy levels to print"
    )
    q_stats.set_defaults(func=_cmd_query_stats)

    q_batch = qsub.add_parser(
        "batch", help="answer a JSON file of mixed queries"
    )
    q_batch.add_argument("file", help="JSON list of {op: ..., ...} objects")
    q_batch.set_defaults(func=_cmd_query_batch)

    p_srv = sub.add_parser(
        "serve", help="host datasets over HTTP (asyncio JSON server)"
    )
    p_srv.add_argument(
        "--dataset",
        action="append",
        choices=datasets.dataset_names(),
        metavar="NAME",
        help="bundled dataset to build and host (repeatable)",
    )
    p_srv.add_argument(
        "--artifact",
        action="append",
        metavar="[NAME=]PATH",
        help="saved artifact (.npz or directory) to host (repeatable; "
        "name defaults to the file stem)",
    )
    p_srv.add_argument(
        "--mmap",
        action="store_true",
        help="memory-map directory-layout --artifact entries instead of "
        "reading them eagerly",
    )
    p_srv.add_argument("--host", default="127.0.0.1", help="bind address")
    p_srv.add_argument(
        "--port", type=int, default=8642, help="bind port (0 = auto-assign)"
    )
    p_srv.add_argument(
        "--algorithm",
        default=None,
        choices=sorted(ALGORITHMS),
        help="build algorithm for --dataset entries (default bit-bu-csr; "
        "bit-bu-par when --workers > 1)",
    )
    p_srv.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for builds and background rebuilds "
        "(default 1 = scalar path)",
    )
    p_srv.add_argument(
        "--cache-size",
        type=int,
        default=1024,
        help="per-dataset LRU result-cache capacity (default 1024)",
    )
    p_srv.add_argument(
        "--mutable",
        action="store_true",
        help="accept POST /{ds}/edges mutations; rebuilds are debounced "
        "and hot-swapped in the background",
    )
    p_srv.add_argument(
        "--debounce",
        type=float,
        default=0.2,
        metavar="SECONDS",
        help="quiet period after the last mutation before a rebuild "
        "(default 0.2)",
    )
    p_srv.add_argument(
        "--rebuild-threshold",
        type=float,
        default=0.15,
        metavar="FRACTION",
        help="ceiling on the per-op φ-repair region as a fraction of the "
        "edge count; the effective budget adapts below it from an EWMA "
        "of observed region sizes, and ops that exceed (or are predicted "
        "to exceed) it fall back to the debounced full rebuild "
        "(default 0.15; 0 disables incremental maintenance)",
    )
    p_srv.add_argument(
        "--max-incremental-batch",
        type=int,
        default=64,
        metavar="OPS",
        help="mutation batches with more net ops than this skip the "
        "batched in-place repair and go straight to one debounced "
        "rebuild (default 64)",
    )
    p_srv.add_argument(
        "--no-predict",
        action="store_true",
        help="disable the fallback predictor (always run the region "
        "search, paying the abort cost when it blows the budget)",
    )
    p_srv.add_argument(
        "--no-adaptive-budget",
        action="store_true",
        help="pin the φ-repair region budget at the static "
        "--rebuild-threshold ceiling instead of adapting it from "
        "observed region sizes",
    )
    p_srv.add_argument(
        "--window-ms",
        type=float,
        default=2.0,
        help="request-coalescing window in milliseconds (default 2)",
    )
    p_srv.add_argument(
        "--no-coalesce",
        action="store_true",
        help="disable request coalescing (one engine call per request)",
    )
    p_srv.add_argument(
        "--profile",
        action="store_true",
        help="enable phase profiling; the phase tree appears in the "
        "/metrics JSON under `profile`",
    )
    p_srv.add_argument(
        "--slow-query-ms",
        type=float,
        default=250.0,
        metavar="MS",
        help="log queries slower than this threshold to the "
        "repro.server.slow logger (default 250; 0 disables)",
    )
    p_srv.add_argument(
        "--trace-sample",
        type=float,
        default=None,
        metavar="FRACTION",
        help="fraction of traces the span recorder retains (0..1; "
        "default: REPRO_TRACE_SAMPLE or 1.0; slow traces are always "
        "kept; 0 disables span recording entirely)",
    )
    p_srv.set_defaults(func=_cmd_serve)

    p_tr = sub.add_parser(
        "trace", help="inspect a running server's live tracing plane"
    )
    p_tr.add_argument(
        "--url",
        default="127.0.0.1:8642",
        help="server address (host:port or full URL; default 127.0.0.1:8642)",
    )
    p_tr.add_argument(
        "--id",
        metavar="TRACE_ID",
        help="print one trace's waterfall instead of the listing",
    )
    p_tr.add_argument(
        "--slowest",
        type=int,
        default=None,
        metavar="N",
        help="list only the N slowest retained traces",
    )
    p_tr.add_argument(
        "--export-chrome",
        metavar="FILE",
        help="write Chrome trace-event JSON (for --id, or the slowest "
        "trace when --id is omitted); load at https://ui.perfetto.dev",
    )
    p_tr.add_argument("--endpoint", help="filter the listing by endpoint")
    p_tr.add_argument("--dataset", help="filter the listing by dataset")
    p_tr.add_argument(
        "--limit", type=int, default=20, help="listing size (default 20)"
    )
    p_tr.add_argument(
        "--json",
        action="store_true",
        help="emit the raw /debug/traces payload instead of narration",
    )
    p_tr.add_argument(
        "--quiet",
        action="store_true",
        help="suppress human narration; only machine-readable payloads "
        "(--json, --export-chrome) are emitted",
    )
    p_tr.set_defaults(func=_cmd_trace)

    p_bench = sub.add_parser(
        "bench",
        help="run benches, inspect the perf trajectory, gate regressions",
    )
    bsub = p_bench.add_subparsers(dest="bench_command", required=True)

    def _bench_common(p):
        p.add_argument(
            "--bench-dir",
            default=None,
            metavar="DIR",
            help="benchmarks/ directory (default: ./benchmarks or the "
            "checkout next to the installed package)",
        )

    b_list = bsub.add_parser("list", help="discovered bench modules")
    _bench_common(b_list)
    b_list.add_argument(
        "--tier", choices=obs_bench.TIERS, default="full",
        help="only modules in this tier (default full = everything)",
    )
    b_list.add_argument(
        "--only", default=None, metavar="GLOB", help="filter by module name"
    )
    b_list.set_defaults(func=_cmd_bench_list)

    b_run = bsub.add_parser(
        "run", help="execute bench modules and record the trajectory"
    )
    _bench_common(b_run)
    b_run.add_argument(
        "--tier", choices=obs_bench.TIERS, default="smoke",
        help="smoke = fast CI subset, full = every module (default smoke)",
    )
    b_run.add_argument(
        "--only", default=None, metavar="GLOB", help="filter by module name"
    )
    b_run.add_argument(
        "--repeat", type=int, default=1, metavar="N",
        help="repeats per module; timing metrics fold min-of-N (default 1)",
    )
    b_run.set_defaults(func=_cmd_bench_run)

    b_hist = bsub.add_parser(
        "history", help="print one bench's trajectory entries"
    )
    _bench_common(b_hist)
    b_hist.add_argument("bench", help="bench name (see `bench list`)")
    b_hist.add_argument(
        "--limit", type=int, default=20, metavar="N",
        help="most recent N entries (default 20)",
    )
    b_hist.set_defaults(func=_cmd_bench_history)

    b_diff = bsub.add_parser(
        "diff",
        help="latest runs vs pinned baselines; exit 2 on regression",
    )
    _bench_common(b_diff)
    b_diff.add_argument(
        "--threshold", type=float, default=obs_bench.DEFAULT_THRESHOLD,
        help="relative regression floor when no tolerance is pinned "
        f"(default {obs_bench.DEFAULT_THRESHOLD})",
    )
    b_diff.add_argument(
        "--noise-mult", type=float, default=obs_bench.DEFAULT_NOISE_MULT,
        help="multiples of the MAD noise window a delta must exceed "
        f"(default {obs_bench.DEFAULT_NOISE_MULT})",
    )
    b_diff.add_argument(
        "--window", type=int, default=obs_bench.DEFAULT_HISTORY_WINDOW,
        help="trajectory entries per metric for the noise estimate "
        f"(default {obs_bench.DEFAULT_HISTORY_WINDOW})",
    )
    b_diff.add_argument(
        "--strict-env", action="store_true",
        help="gate wall-clock metrics even when the baseline was pinned "
        "on a different machine",
    )
    b_diff.add_argument(
        "--only", default=None, metavar="BENCH[,BENCH...]",
        help="restrict to these benches",
    )
    b_diff.add_argument(
        "--fail-on-regression", action="store_true",
        help="explicit CI alias; regressions already exit non-zero",
    )
    b_diff.set_defaults(func=_cmd_bench_diff)

    b_acc = bsub.add_parser(
        "accept", help="re-pin baselines.json from the latest trajectory runs"
    )
    _bench_common(b_acc)
    b_acc.add_argument(
        "--only", default=None, metavar="GLOB",
        help="pin only matching benches (others keep their previous pins)",
    )
    b_acc.set_defaults(func=_cmd_bench_accept)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    obs_log.configure(quiet=bool(getattr(args, "quiet", False)))
    # `stats --profile FILE` reuses the flag name with a string dest, so
    # only a boolean True means "turn the profiler on for this run".
    if getattr(args, "profile", False) is True:
        obs_phases.enable(True)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())

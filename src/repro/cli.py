"""Command-line interface: ``repro-bitruss`` / ``python -m repro``.

Subcommands
-----------
``decompose``   load an edge list (or a bundled dataset), run a chosen
                algorithm, optionally write per-edge bitruss numbers.
``k-bitruss``   extract the edges of the k-bitruss to a file.
``community``   connected k-bitruss community around a query vertex.
``stats``       Table II-style summary of a graph.
``generate``    materialize a bundled synthetic dataset to an edge-list file.
``datasets``    list bundled datasets.

Examples
--------
::

    repro-bitruss decompose --dataset github --algorithm pc --tau 0.05
    repro-bitruss decompose graph.txt --base 1 --output phi.txt
    repro-bitruss stats --dataset d-style
    repro-bitruss generate d-label d-label.txt
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro import datasets
from repro.butterfly.counting import count_butterflies_total, count_per_edge
from repro.core.api import ALGORITHMS, bitruss_decomposition
from repro.graph.bipartite import BipartiteGraph
from repro.graph.io import load_edge_list, save_edge_list, save_phi
from repro.utils.stats import UpdateCounter


def _load_graph(args: argparse.Namespace) -> BipartiteGraph:
    if args.dataset is not None and args.path is not None:
        raise SystemExit("give either a file path or --dataset, not both")
    if args.dataset is not None:
        return datasets.load_dataset(args.dataset)
    if args.path is None:
        raise SystemExit("a file path or --dataset is required")
    return load_edge_list(args.path, base=args.base)


def _add_input_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("path", nargs="?", help="edge-list file (text or .gz)")
    parser.add_argument(
        "--dataset",
        choices=datasets.dataset_names(),
        help="use a bundled synthetic dataset instead of a file",
    )
    parser.add_argument(
        "--base",
        type=int,
        default=0,
        help="id base of the input file (KONECT files use 1; default 0)",
    )


def _cmd_decompose(args: argparse.Namespace) -> int:
    graph = _load_graph(args)
    counter = UpdateCounter()
    result = bitruss_decomposition(
        graph,
        algorithm=args.algorithm,
        tau=args.tau,
        counter=counter,
    )
    print(f"graph: |U|={graph.num_upper} |L|={graph.num_lower} m={graph.num_edges}")
    print(result.stats.summary())
    print(f"max bitruss number: {result.max_k}")
    hierarchy = result.hierarchy()
    shown = sorted(hierarchy)[: args.levels]
    for k in shown:
        print(f"  |E(H_{k})| = {hierarchy[k]}")
    if len(hierarchy) > args.levels:
        print(f"  ... ({len(hierarchy) - args.levels} more levels)")
    if args.json:
        payload = {
            "algorithm": result.stats.algorithm,
            "max_k": result.max_k,
            "hierarchy": {str(k): c for k, c in hierarchy.items()},
            "updates": result.stats.updates,
            "timings": result.stats.timings,
        }
        print(json.dumps(payload, indent=2))
    if args.output:
        save_phi(result.phi, args.output)
        print(f"wrote bitruss numbers to {args.output}")
    return 0


def _cmd_k_bitruss(args: argparse.Namespace) -> int:
    from repro.core.bitruss import k_bitruss_direct

    graph = _load_graph(args)
    eids = k_bitruss_direct(graph, args.k)
    sub, _ = graph.subgraph_from_edge_ids(eids)
    print(f"{args.k}-bitruss: {len(eids)} edges")
    if args.output:
        save_edge_list(sub, args.output, base=args.base)
        print(f"wrote {args.k}-bitruss edge list to {args.output}")
    return 0


def _cmd_community(args: argparse.Namespace) -> int:
    from repro.apps.community_search import bitruss_community

    graph = _load_graph(args)
    kwargs = {}
    if args.upper is not None:
        kwargs["upper"] = args.upper
    if args.lower is not None:
        kwargs["lower"] = args.lower
    community = bitruss_community(graph, k=args.k, **kwargs)
    print(
        f"community at k={args.k}: {len(community.upper)} upper, "
        f"{len(community.lower)} lower, {len(community.edges)} edges"
    )
    for u, v in sorted(community.edges)[: args.limit]:
        print(f"  {u} {v}")
    if len(community.edges) > args.limit:
        print(f"  ... ({len(community.edges) - args.limit} more)")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    graph = _load_graph(args)
    support = count_per_edge(graph)
    butterflies = count_butterflies_total(graph)
    print(f"|E|      = {graph.num_edges}")
    print(f"|U|      = {graph.num_upper}")
    print(f"|L|      = {graph.num_lower}")
    print(f"⋈G       = {butterflies}")
    print(f"sup_max  = {int(support.max()) if len(support) else 0}")
    if args.phi_max:
        result = bitruss_decomposition(graph, algorithm="bit-pc")
        print(f"φ_max    = {result.max_k}")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    graph = datasets.load_dataset(args.dataset)
    save_edge_list(graph, args.output, base=args.base)
    print(
        f"wrote {args.dataset} ({graph.num_edges} edges, "
        f"|U|={graph.num_upper}, |L|={graph.num_lower}) to {args.output}"
    )
    return 0


def _cmd_datasets(_args: argparse.Namespace) -> int:
    for name in datasets.dataset_names():
        spec = datasets.dataset_spec(name)
        print(f"{name:14s} {spec.description}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-bitruss",
        description="Bitruss decomposition for bipartite graphs (Wang et al., ICDE 2020)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_dec = sub.add_parser("decompose", help="compute bitruss numbers")
    _add_input_options(p_dec)
    p_dec.add_argument(
        "--algorithm",
        default="bit-bu++",
        choices=sorted(ALGORITHMS),
        help="decomposition algorithm (default bit-bu++)",
    )
    p_dec.add_argument("--tau", type=float, default=0.02, help="BiT-PC tau")
    p_dec.add_argument("--output", help="write per-edge bitruss numbers here")
    p_dec.add_argument(
        "--levels", type=int, default=10, help="hierarchy levels to print"
    )
    p_dec.add_argument(
        "--json", action="store_true", help="also print a JSON summary"
    )
    p_dec.set_defaults(func=_cmd_decompose)

    p_kb = sub.add_parser("k-bitruss", help="extract the k-bitruss subgraph")
    _add_input_options(p_kb)
    p_kb.add_argument("-k", type=int, required=True, help="cohesion level")
    p_kb.add_argument("--output", help="write the subgraph edge list here")
    p_kb.set_defaults(func=_cmd_k_bitruss)

    p_com = sub.add_parser(
        "community", help="k-bitruss community around a query vertex"
    )
    _add_input_options(p_com)
    p_com.add_argument("-k", type=int, required=True, help="cohesion level")
    group = p_com.add_mutually_exclusive_group(required=True)
    group.add_argument("--upper", type=int, help="query upper-layer vertex")
    group.add_argument("--lower", type=int, help="query lower-layer vertex")
    p_com.add_argument(
        "--limit", type=int, default=20, help="edges to print (default 20)"
    )
    p_com.set_defaults(func=_cmd_community)

    p_stats = sub.add_parser("stats", help="Table II-style graph summary")
    _add_input_options(p_stats)
    p_stats.add_argument(
        "--phi-max",
        action="store_true",
        help="also run a decomposition to report φ_max (slower)",
    )
    p_stats.set_defaults(func=_cmd_stats)

    p_gen = sub.add_parser("generate", help="write a bundled dataset to a file")
    p_gen.add_argument("dataset", choices=datasets.dataset_names())
    p_gen.add_argument("output")
    p_gen.add_argument("--base", type=int, default=0)
    p_gen.set_defaults(func=_cmd_generate)

    p_ls = sub.add_parser("datasets", help="list bundled datasets")
    p_ls.set_defaults(func=_cmd_datasets)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())

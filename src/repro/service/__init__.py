"""Service layer: compute-once / query-many serving of decompositions.

The paper's decomposition is expensive to produce and cheap to exploit —
every application (community search, fraud, recommendation) only ever
*reads* φ.  This package turns a finished decomposition into a serving
stack:

* :mod:`repro.service.artifacts` — freeze a decomposition (CSR arrays,
  per-edge φ, provenance metadata) into a single ``.npz`` file with
  integrity checks, so it is computed once and reopened instantly;
* :mod:`repro.service.hierarchy` — the nested k-bitruss containment
  forest, built by one φ-descending union-find sweep and stored in flat
  numpy arrays, making every structural query output-linear;
* :mod:`repro.service.engine` — :class:`~repro.service.engine.QueryEngine`,
  the online query surface (``k_bitruss``, ``community``, ``max_k``,
  ``hierarchy_path``, φ statistics, batches) with an LRU result cache.
"""

from repro.service.artifacts import (
    ArtifactError,
    ArtifactIntegrityError,
    DecompositionArtifact,
    StaleArtifactError,
    build_artifact,
    load_artifact,
    save_artifact,
)
from repro.service.engine import QueryEngine
from repro.service.hierarchy import BitrussHierarchy, build_hierarchy

__all__ = [
    "ArtifactError",
    "ArtifactIntegrityError",
    "BitrussHierarchy",
    "DecompositionArtifact",
    "QueryEngine",
    "StaleArtifactError",
    "build_artifact",
    "build_hierarchy",
    "load_artifact",
    "save_artifact",
]

"""The online query engine over a decomposition artifact.

:class:`QueryEngine` is the query-many half of the service split: it wraps
a :class:`~repro.service.artifacts.DecompositionArtifact` (freshly built or
reopened from disk), builds the
:class:`~repro.service.hierarchy.BitrussHierarchy` once, and then answers
every structural query in output-linear time — no query ever re-runs a
decomposition.  Results are memoized in a small LRU cache keyed by the
normalized query, so repeated mixed workloads (the "millions of users"
traffic shape) hit memory, not the peeling algorithms.

Supported queries
-----------------
``k_bitruss(k)``           edge ids of ``H_k`` (suffix slice of a sorted φ)
``community(k, ...)``      connected ``H_k`` component around a vertex
``max_k(...)``             deepest level a vertex reaches
``hierarchy_path(...)``    chain of enclosing components of one edge
``phi_histogram()``        exact-φ edge counts
``stats()``                artifact + hierarchy summary
``batch(queries)``         heterogeneous query list through one dispatch

Staleness
---------
When the artifact has been invalidated (e.g. by a registered
:class:`~repro.maintenance.dynamic.DynamicBipartiteGraph`), every query
raises :class:`~repro.service.artifacts.StaleArtifactError` instead of
serving outdated φ; :meth:`QueryEngine.refresh` recomputes and resumes.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.result import BitrussDecomposition
from repro.graph.bipartite import BipartiteGraph
from repro.obs import spans as obs_spans
from repro.service.artifacts import (
    DecompositionArtifact,
    StaleArtifactError,
    build_artifact,
    load_artifact,
)
from repro.service.hierarchy import BitrussHierarchy, build_hierarchy


class QueryEngine:
    """Serve bitruss-hierarchy queries from a frozen decomposition.

    Parameters
    ----------
    artifact : DecompositionArtifact
        The decomposition to serve.
    cache_size : int, optional
        Maximum number of memoized query results (default 128; 0 disables
        caching).
    allow_stale : bool, optional
        When true, queries keep answering after the artifact is
        invalidated (for read-mostly deployments that tolerate lag);
        default false — stale queries raise.

    Examples
    --------
    >>> from repro.graph.generators import paper_figure4_graph
    >>> from repro.service import build_artifact
    >>> engine = QueryEngine(build_artifact(paper_figure4_graph()))
    >>> engine.max_k(upper=0)
    2
    >>> len(engine.k_bitruss(2))
    6
    """

    def __init__(
        self,
        artifact: DecompositionArtifact,
        *,
        cache_size: int = 128,
        allow_stale: bool = False,
    ) -> None:
        if cache_size < 0:
            raise ValueError("cache_size must be non-negative")
        self.artifact = artifact
        self.graph: BipartiteGraph = artifact.graph
        self.phi: np.ndarray = artifact.phi
        with obs_spans.span("hierarchy build"):
            self.hierarchy: BitrussHierarchy = build_hierarchy(
                artifact.graph, artifact.phi
            )
        self.allow_stale = allow_stale
        self._cache: "OrderedDict[Tuple, object]" = OrderedDict()
        self._cache_size = cache_size
        self._hits = 0
        self._misses = 0
        self._decomposition: Optional[BitrussDecomposition] = None

    # ------------------------------------------------------- constructors

    @classmethod
    def from_decomposition(
        cls, result: BitrussDecomposition, **kwargs
    ) -> "QueryEngine":
        """Wrap a finished decomposition without going through disk."""
        return cls(DecompositionArtifact.from_decomposition(result), **kwargs)

    @classmethod
    def from_graph(
        cls,
        graph: BipartiteGraph,
        algorithm: str = "bit-bu++",
        **kwargs,
    ) -> "QueryEngine":
        """Decompose ``graph`` and serve the result."""
        return cls(build_artifact(graph, algorithm=algorithm), **kwargs)

    @classmethod
    def load(
        cls,
        path,
        *,
        mmap_mode=None,
        check: bool = True,
        **kwargs,
    ) -> "QueryEngine":
        """Open a saved artifact (integrity-checked) and serve it.

        ``mmap_mode="r"`` memory-maps a directory-layout artifact so the
        engine serves straight from page cache — O(1) resident open, pages
        faulted in as queries touch them.
        """
        return cls(
            load_artifact(path, mmap_mode=mmap_mode, check=check), **kwargs
        )

    # ---------------------------------------------------------- lifecycle

    @property
    def stale(self) -> bool:
        """Whether the underlying artifact has been invalidated."""
        return self.artifact.stale

    def invalidate(self) -> None:
        """Mark the served artifact stale (forwarded to the artifact)."""
        self.artifact.invalidate()

    def refresh(self, graph: Optional[BipartiteGraph] = None) -> None:
        """Recompute the decomposition and resume serving fresh answers.

        Parameters
        ----------
        graph : BipartiteGraph, optional
            The new graph snapshot (e.g. from
            :meth:`~repro.maintenance.dynamic.DynamicBipartiteGraph.snapshot`);
            defaults to re-decomposing the artifact's current graph.
        """
        algorithm = self.artifact.algorithm or "bit-bu++"
        self.artifact = build_artifact(graph or self.graph, algorithm=algorithm)
        self.graph = self.artifact.graph
        self.phi = self.artifact.phi
        self.hierarchy = build_hierarchy(self.artifact.graph, self.artifact.phi)
        self._decomposition = None
        self.clear_cache()

    def patch(
        self,
        graph: BipartiteGraph,
        phi: np.ndarray,
        *,
        max_affected_k: Optional[int] = None,
        affected_gids: Optional[set] = None,
    ) -> None:
        """Adopt an incrementally repaired decomposition without recompute.

        The write side of localized φ maintenance
        (:meth:`repro.maintenance.dynamic.DynamicBipartiteGraph.apply`):
        the underlying artifact is patched in place, the hierarchy is
        re-derived from the patched φ (one union-find sweep — no peeling),
        and the memoized results are invalidated *selectively* when the
        caller says how far the repair reached:

        * ``community`` entries survive for levels strictly above
          ``max_affected_k`` — the k-bitrusses there are untouched, and the
          cached value stores endpoint pairs, not (reassigned) edge ids;
        * ``max_k`` entries survive for vertices outside ``affected_gids``
          (no incident edge changed φ or existence);
        * everything keyed by edge ids (``k_bitruss``,
          ``hierarchy_path``) and the global ``phi_histogram`` drop
          unconditionally — edge ids shift whenever the snapshot resorts.

        Without both hints, the whole cache is dropped.
        """
        # Vertex-keyed cache entries are only transplantable while the gid
        # space is unchanged (adding a lower vertex shifts every upper gid).
        same_layers = (
            self.graph.num_upper == graph.num_upper
            and self.graph.num_lower == graph.num_lower
        )
        self.artifact.patch(graph, phi)
        self.graph = self.artifact.graph
        self.phi = self.artifact.phi
        self.hierarchy = build_hierarchy(self.artifact.graph, self.artifact.phi)
        self._decomposition = None
        if max_affected_k is None or affected_gids is None or not same_layers:
            self.clear_cache()
            return
        survivors = OrderedDict()
        for key, value in self._cache.items():
            op = key[0]
            if op == "community" and key[1] > max_affected_k:
                survivors[key] = value
            elif op == "max_k" and key[1] not in affected_gids:
                survivors[key] = value
        self._cache = survivors

    def adopt_cache(
        self,
        predecessor: "QueryEngine",
        *,
        max_affected_k: Optional[int] = None,
        affected_gids: Optional[set] = None,
    ) -> int:
        """Carry a predecessor engine's surviving cache across a hot-swap.

        The server publishes a batch as a *new* engine (in-flight leases
        keep the old one), which used to mean every publish started cold.
        This applies :meth:`patch`'s selective-invalidation rule across
        instances instead: ``community`` entries strictly above the batch's
        ``max_affected_k`` and ``max_k`` entries for vertices outside
        ``affected_gids`` are bitwise unaffected by the batch, so they are
        copied into this engine's cache.  Entries are adopted only up to
        the cache capacity; without both hints, or when the layer sizes
        differ (the gid space shifted), nothing is adopted.

        Returns the number of adopted entries.
        """
        if max_affected_k is None or affected_gids is None:
            return 0
        if (
            self.graph.num_upper != predecessor.graph.num_upper
            or self.graph.num_lower != predecessor.graph.num_lower
        ):
            return 0
        adopted = 0
        for key, value in predecessor._cache.items():
            op = key[0]
            if (op == "community" and key[1] > max_affected_k) or (
                op == "max_k" and key[1] not in affected_gids
            ):
                if len(self._cache) >= self._cache_size:
                    break
                self._cache[key] = value
                adopted += 1
        return adopted

    def _check_fresh(self) -> None:
        if self.artifact.stale and not self.allow_stale:
            raise StaleArtifactError(
                "artifact invalidated by a graph update; call refresh() "
                "or construct the engine with allow_stale=True"
            )

    # -------------------------------------------------------------- cache

    def _cached(self, key: Tuple, compute):
        self._check_fresh()
        if self._cache_size == 0:
            self._misses += 1
            return compute()
        hit = self._cache.get(key, _MISSING)
        if hit is not _MISSING:
            self._hits += 1
            self._cache.move_to_end(key)
            return hit
        self._misses += 1
        value = compute()
        self._cache[key] = value
        if len(self._cache) > self._cache_size:
            self._cache.popitem(last=False)
        return value

    def clear_cache(self) -> None:
        """Drop all memoized results (hit/miss counters survive)."""
        self._cache.clear()

    def cache_info(self) -> Dict[str, int]:
        """Cache statistics: hits, misses, current size, capacity."""
        return {
            "hits": self._hits,
            "misses": self._misses,
            "size": len(self._cache),
            "maxsize": self._cache_size,
        }

    # ------------------------------------------------------------ queries

    @property
    def max_phi(self) -> int:
        """Largest bitruss number in the served decomposition."""
        return self.artifact.max_k

    @property
    def decomposition(self) -> BitrussDecomposition:
        """The artifact as a :class:`BitrussDecomposition` (built once).

        Subject to the same staleness rule as the query methods: reading
        it from an invalidated engine raises, so no consumer can sidestep
        the freshness guarantee by going through the raw decomposition.
        """
        self._check_fresh()
        if self._decomposition is None:
            self._decomposition = self.artifact.to_decomposition()
        return self._decomposition

    def phi_of(self, u: int, v: int) -> int:
        """Bitruss number of edge ``(u, v)``."""
        self._check_fresh()
        return int(self.phi[self.graph.edge_id(u, v)])

    def k_bitruss(self, k: int) -> List[int]:
        """Edge ids of the k-bitruss ``H_k``, ascending.

        Identical to
        :meth:`~repro.core.result.BitrussDecomposition.edges_with_phi_at_least`
        but answered from the φ-sorted index in output-linear time.
        """
        return list(
            self._cached(
                ("k_bitruss", int(k)),
                lambda: [int(e) for e in self.hierarchy.k_bitruss_edges(k)],
            )
        )

    def k_bitruss_subgraph(self, k: int) -> BipartiteGraph:
        """The k-bitruss as a subgraph (vertex ids preserved)."""
        self._check_fresh()
        sub, _ = self.graph.subgraph_from_edge_ids(
            self.hierarchy.k_bitruss_edges(k)
        )
        return sub

    def _seed_gid(self, upper: Optional[int], lower: Optional[int]) -> int:
        if (upper is None) == (lower is None):
            raise ValueError("give exactly one of upper= or lower=")
        if upper is not None:
            if not 0 <= upper < self.graph.num_upper:
                raise ValueError(f"upper vertex {upper} out of range")
            return self.graph.gid_of_upper(upper)
        assert lower is not None
        if not 0 <= lower < self.graph.num_lower:
            raise ValueError(f"lower vertex {lower} out of range")
        return self.graph.gid_of_lower(lower)

    def community(
        self,
        k: int,
        *,
        upper: Optional[int] = None,
        lower: Optional[int] = None,
    ):
        """Connected k-bitruss community around a query vertex.

        Returns the same :class:`~repro.apps.community_search.Community`
        the recompute path produces, but from one hierarchy walk plus one
        contiguous slice — output-linear, no peeling, no BFS.
        """
        from repro.apps.community_search import Community

        gid = self._seed_gid(upper, lower)
        cached = self._cached(
            ("community", int(k), int(gid)),
            lambda: self._community_of_gid(int(k), int(gid)),
        )
        # Fresh copy per call: Community is mutable (sets + list), and a
        # caller mutating the result must not poison the cache.
        return Community(
            cached.k, set(cached.upper), set(cached.lower), list(cached.edges)
        )

    def _community_of_gid(self, k: int, gid: int):
        from repro.apps.community_search import Community

        eids = self.hierarchy.community_edges(gid, k)
        uppers = {int(u) for u in self.graph.edge_upper[eids]}
        lowers = {int(v) for v in self.graph.edge_lower[eids]}
        edges = [
            (int(u), int(v))
            for u, v in zip(
                self.graph.edge_upper[eids], self.graph.edge_lower[eids]
            )
        ]
        return Community(k, uppers, lowers, edges)

    def max_k(
        self,
        *,
        upper: Optional[int] = None,
        lower: Optional[int] = None,
    ) -> int:
        """Deepest bitruss level any incident edge of the vertex reaches."""
        gid = self._seed_gid(upper, lower)
        return self._cached(
            ("max_k", int(gid)),
            lambda: self.hierarchy.max_k_of_vertex(int(gid)),
        )

    def hierarchy_path(
        self,
        edge: Optional[Tuple[int, int]] = None,
        *,
        eid: Optional[int] = None,
    ) -> List[Tuple[int, int]]:
        """Chain of enclosing components of one edge, innermost first.

        Parameters
        ----------
        edge : tuple of (int, int), optional
            The edge as an ``(u, v)`` endpoint pair.
        eid : int, optional
            The edge by dense id (exactly one of ``edge``/``eid``).

        Returns
        -------
        list of (int, int)
            ``(level, node_id)`` pairs from ``H_{φ(e)}``'s component up to
            the forest root.
        """
        if (edge is None) == (eid is None):
            raise ValueError("give exactly one of edge= or eid=")
        if edge is not None:
            eid = self.graph.edge_id(*edge)
        assert eid is not None
        if not 0 <= eid < self.graph.num_edges:
            raise ValueError(f"edge id {eid} out of range")
        return list(
            self._cached(
                ("hierarchy_path", int(eid)),
                lambda: self.hierarchy.hierarchy_path(int(eid)),
            )
        )

    def phi_histogram(self) -> Dict[int, int]:
        """``{k: #edges with φ == k}`` for every occurring level."""
        return dict(
            self._cached(
                ("phi_histogram",),
                lambda: {
                    int(k): int(c)
                    for k, c in enumerate(self.hierarchy.phi_histogram())
                    if c
                },
            )
        )

    def stats(self) -> Dict[str, object]:
        """Summary of the served artifact and its hierarchy index."""
        self._check_fresh()
        return {
            "algorithm": self.artifact.algorithm,
            "num_upper": self.graph.num_upper,
            "num_lower": self.graph.num_lower,
            "num_edges": self.graph.num_edges,
            "max_k": self.max_phi,
            "hierarchy_nodes": self.hierarchy.num_nodes,
            "level_sizes": self.hierarchy.level_sizes(),
            "graph_hash": self.artifact.graph_hash,
            "stale": self.stale,
        }

    # -------------------------------------------------------------- batch

    def batch(self, queries: Sequence[Dict[str, object]]) -> List[object]:
        """Answer a heterogeneous list of queries through one dispatch.

        Each query is a dict with an ``"op"`` key naming a query method
        plus that method's keyword arguments, e.g.::

            engine.batch([
                {"op": "k_bitruss", "k": 3},
                {"op": "community", "k": 2, "upper": 7},
                {"op": "max_k", "lower": 4},
                {"op": "hierarchy_path", "edge": [0, 1]},
                {"op": "phi_histogram"},
                {"op": "stats"},
            ])

        Results come back in query order; the shared LRU cache makes
        repeated sub-queries within one batch free.
        """
        dispatch = {
            "k_bitruss": self.k_bitruss,
            "community": self.community,
            "max_k": self.max_k,
            "hierarchy_path": self.hierarchy_path,
            "phi_histogram": self.phi_histogram,
            "stats": self.stats,
            "phi_of": self.phi_of,
        }
        results: List[object] = []
        with obs_spans.span("engine batch", queries=len(queries)):
            for query in queries:
                params = dict(query)
                op = params.pop("op", None)
                if op not in dispatch:
                    raise ValueError(
                        f"unknown batch op {op!r}; choose from {sorted(dispatch)}"
                    )
                if op == "hierarchy_path" and "edge" in params:
                    params["edge"] = tuple(params["edge"])  # JSON lists arrive
                with obs_spans.trace_span(f"query:{op}"):
                    results.append(dispatch[op](**params))
        return results

    def __repr__(self) -> str:
        return (
            f"QueryEngine(m={self.graph.num_edges}, max_k={self.max_phi}, "
            f"nodes={self.hierarchy.num_nodes}, stale={self.stale})"
        )


class _Missing:
    __slots__ = ()


_MISSING = _Missing()

"""The nested k-bitruss containment forest, in flat numpy storage.

The k-bitrusses of a graph nest (``H_0 ⊇ H_1 ⊇ ... ⊇ H_φmax``) and so do
their connected components: every component of ``H_k`` lies inside exactly
one component of ``H_{k-1}``.  That containment relation is a forest whose
nodes are *super-nodes* — maximal sets of edges that share a connected
k-bitruss component at the node's level but settle no deeper — and it is
the entire query index of the service layer: once built (one φ-descending
union-find sweep, ``O(m α(n))`` after the sort), every structural query is
answered in time linear in its output.

Construction sweep
------------------
Edges are processed by *descending* φ.  A union-find over global vertex
ids maintains the connected components of the subgraph seen so far, which
after finishing level ``k`` is exactly ``H_k``.  Finishing a level creates
one new super-node per component that gained edges, whose children are the
super-nodes of the previously-existing components it swallowed; levels at
which a component is unchanged create no node, so the forest is compressed
(parent levels strictly decrease along every upward path).

Flat storage
------------
Nodes are renumbered in DFS preorder so that every subtree occupies a
contiguous id range ``[n, subtree_end[n])``, and edges are grouped by
settle node in the same order.  A component's edge set is then one slice
of one array — the trick that makes ``community()`` output-linear instead
of graph-linear.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.graph.bipartite import BipartiteGraph


class BitrussHierarchy:
    """Queryable containment forest over the k-bitruss components.

    Build with :func:`build_hierarchy`; all arrays are read-only.

    Attributes
    ----------
    node_level:
        ``node_level[n]`` — the level k of super-node ``n``; the node's
        own edges have φ == k exactly.  Nodes are in DFS preorder, so
        parents precede children and ancestor levels strictly decrease.
    node_parent:
        Parent node id, ``-1`` at forest roots.
    subtree_end:
        Exclusive end of node ``n``'s DFS range: the descendants of ``n``
        are exactly the ids ``n+1 .. subtree_end[n]-1``.
    edge_node:
        ``edge_node[e]`` — the super-node at which edge ``e`` settles (the
        component of ``H_{φ(e)}`` containing it).
    """

    def __init__(
        self,
        graph: BipartiteGraph,
        phi: np.ndarray,
        node_level: np.ndarray,
        node_parent: np.ndarray,
        subtree_end: np.ndarray,
        edge_node: np.ndarray,
        node_edge_ptr: np.ndarray,
        node_edges: np.ndarray,
        vertex_best_edge: np.ndarray,
    ) -> None:
        self.graph = graph
        self.phi = phi
        self.node_level = node_level
        self.node_parent = node_parent
        self.subtree_end = subtree_end
        self.edge_node = edge_node
        self._node_edge_ptr = node_edge_ptr
        self._node_edges = node_edges
        self._vertex_best_edge = vertex_best_edge
        # φ ascending with edge-id tie-break: the k-bitruss is a suffix.
        self._phi_order = np.argsort(phi, kind="stable")
        self._phi_sorted = phi[self._phi_order]
        for arr in (
            self.phi,
            self.node_level,
            self.node_parent,
            self.subtree_end,
            self.edge_node,
            self._node_edge_ptr,
            self._node_edges,
            self._vertex_best_edge,
            self._phi_order,
            self._phi_sorted,
        ):
            arr.flags.writeable = False

    # ------------------------------------------------------------- shape

    @property
    def num_nodes(self) -> int:
        """Number of super-nodes in the forest."""
        return len(self.node_level)

    @property
    def max_k(self) -> int:
        """Largest bitruss number present."""
        return int(self.phi.max()) if len(self.phi) else 0

    def roots(self) -> np.ndarray:
        """Ids of the forest roots (components of the sparsest level)."""
        return np.nonzero(self.node_parent == -1)[0]

    # ----------------------------------------------------------- queries

    def k_bitruss_edges(self, k: int) -> np.ndarray:
        """Edge ids of ``H_k`` in ascending order, output-linear time.

        The φ-sorted permutation makes edges with ``φ >= k`` one suffix;
        only that suffix is touched.
        """
        if k <= 0:
            return np.arange(len(self.phi), dtype=np.int64)
        start = int(np.searchsorted(self._phi_sorted, k, side="left"))
        return np.sort(self._phi_order[start:])

    def node_of_vertex(self, gid: int, k: int) -> int:
        """Super-node of the ``H_k`` component containing global vertex ``gid``.

        Returns ``-1`` when the vertex has no incident edge with
        ``φ >= k``.  All edges with ``φ >= k`` incident to one vertex lie
        in the same ``H_k`` component (they share the vertex), so it
        suffices to start from the vertex's best edge and walk up.
        """
        best = int(self._vertex_best_edge[gid])
        if best < 0 or self.phi[best] < k:
            return -1
        return self._ancestor_at_level(int(self.edge_node[best]), k)

    def node_of_edge(self, eid: int, k: int) -> int:
        """Super-node of the ``H_k`` component containing edge ``eid``.

        Returns ``-1`` when ``φ(eid) < k``.
        """
        if self.phi[eid] < k:
            return -1
        return self._ancestor_at_level(int(self.edge_node[eid]), k)

    def _ancestor_at_level(self, node: int, k: int) -> int:
        """Highest ancestor of ``node`` whose level is still ``>= k``."""
        parent = self.node_parent
        level = self.node_level
        while parent[node] >= 0 and level[parent[node]] >= k:
            node = int(parent[node])
        return node

    def component_edges(self, node: int) -> np.ndarray:
        """All edges of a super-node's component, ascending edge ids.

        The component of a node at level k consists of every edge settling
        in its subtree; DFS-contiguous numbering makes that one slice.
        """
        lo = self._node_edge_ptr[node]
        hi = self._node_edge_ptr[self.subtree_end[node]]
        return np.sort(self._node_edges[lo:hi])

    def community_edges(self, gid: int, k: int) -> np.ndarray:
        """Edges of the connected ``H_k`` component around a vertex.

        Empty when the vertex does not reach ``H_k``.  For ``k <= 0`` the
        component is taken at the sparsest occurring level (``H_0`` minus
        isolated parts equals the graph's own connected components
        restricted to edges, which is what level-0 nodes hold).
        """
        node = self.node_of_vertex(gid, max(k, 0))
        if node < 0:
            return np.empty(0, dtype=np.int64)
        return self.component_edges(node)

    def max_k_of_vertex(self, gid: int) -> int:
        """Deepest level any incident edge of ``gid`` reaches (0 if none)."""
        best = int(self._vertex_best_edge[gid])
        return int(self.phi[best]) if best >= 0 else 0

    def hierarchy_path(self, eid: int) -> List[Tuple[int, int]]:
        """The edge's chain of enclosing components, innermost first.

        Returns ``(level, node_id)`` pairs from the settle node of ``eid``
        up to its forest root — the node at level k is the component of
        ``H_k`` (and of every empty level above the next entry) containing
        the edge.
        """
        node = int(self.edge_node[eid])
        path: List[Tuple[int, int]] = []
        while node >= 0:
            path.append((int(self.node_level[node]), node))
            node = int(self.node_parent[node])
        return path

    def phi_histogram(self) -> np.ndarray:
        """``hist[k]`` — number of edges with φ exactly ``k``."""
        if not len(self.phi):
            return np.zeros(1, dtype=np.int64)
        return np.bincount(self.phi, minlength=self.max_k + 1)

    def level_sizes(self) -> Dict[int, int]:
        """``{k: |E(H_k)|}`` for k = 0..max_k (cumulative, nested)."""
        hist = self.phi_histogram()
        suffix = np.cumsum(hist[::-1])[::-1]
        return {k: int(suffix[k]) for k in range(len(suffix))}

    # -------------------------------------------------------------- debug

    def validate(self) -> None:
        """Structural self-check used by the test suite.

        Raises
        ------
        AssertionError
            If DFS ranges, parent levels, or edge grouping are broken.
        """
        n = self.num_nodes
        if n == 0:
            if len(self.phi):
                raise AssertionError("edges present but no hierarchy nodes")
            return
        for node in range(n):
            parent = int(self.node_parent[node])
            if parent >= 0:
                if self.node_level[parent] >= self.node_level[node]:
                    raise AssertionError("parent level must strictly decrease")
                if not (parent < node < self.subtree_end[parent]):
                    raise AssertionError("child outside parent's DFS range")
            if not (node < self.subtree_end[node] <= n):
                raise AssertionError("bad subtree range")
        grouped = self._node_edges[
            self._node_edge_ptr[0] : self._node_edge_ptr[-1]
        ]
        if len(grouped) != len(self.phi):
            raise AssertionError("edge grouping does not cover all edges")
        for eid in range(len(self.phi)):
            node = int(self.edge_node[eid])
            if self.node_level[node] != self.phi[eid]:
                raise AssertionError("edge settled at wrong level")


class _UnionFind:
    """Array-based union-find with path halving and union by size."""

    def __init__(self, n: int) -> None:
        self.parent = list(range(n))
        self.size = [1] * n

    def find(self, x: int) -> int:
        parent = self.parent
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(self, a: int, b: int) -> int:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra
        if self.size[ra] < self.size[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        self.size[ra] += self.size[rb]
        return ra


def build_hierarchy(graph: BipartiteGraph, phi: np.ndarray) -> BitrussHierarchy:
    """Build the containment forest from a finished decomposition.

    Parameters
    ----------
    graph : BipartiteGraph
        The decomposed graph.
    phi : numpy.ndarray
        Per-edge bitruss numbers.

    Returns
    -------
    BitrussHierarchy
        The flat-array forest; construction is a single φ-descending
        union-find sweep plus one DFS renumbering.
    """
    # Private copy: the hierarchy freezes its φ, which must not leak into
    # a caller-owned (possibly still writable) array.
    phi = np.array(phi, dtype=np.int64, copy=True)
    m = graph.num_edges
    if len(phi) != m:
        raise ValueError("phi must have one entry per edge")

    n_l = graph.num_lower
    edge_gu = (graph.edge_upper + n_l).tolist()
    edge_gv = graph.edge_lower.tolist()
    phi_list = phi.tolist()

    uf = _UnionFind(graph.num_vertices)
    comp_node: Dict[int, int] = {}  # current UF root -> its newest node
    levels: List[int] = []
    parents: List[int] = []
    edge_node = np.full(m, -1, dtype=np.int64)

    order = np.argsort(phi, kind="stable")
    sorted_phi = phi[order]
    # Occupied levels, descending; each creates the nodes of that level.
    for k in np.unique(phi)[::-1].tolist():
        lo = int(np.searchsorted(sorted_phi, k, side="left"))
        hi = int(np.searchsorted(sorted_phi, k, side="right"))
        level_eids = order[lo:hi].tolist()

        # Components (from deeper levels) that this level's edges touch.
        pre_roots = set()
        for eid in level_eids:
            pre_roots.add(uf.find(edge_gu[eid]))
            pre_roots.add(uf.find(edge_gv[eid]))
        for eid in level_eids:
            uf.union(edge_gu[eid], edge_gv[eid])

        # One new node per component that gained edges at this level.
        new_nodes: Dict[int, int] = {}
        for eid in level_eids:
            root = uf.find(edge_gu[eid])
            node = new_nodes.get(root)
            if node is None:
                node = len(levels)
                levels.append(k)
                parents.append(-1)
                new_nodes[root] = node
            edge_node[eid] = node
        # Swallowed components hang their old nodes under the new one.
        for old_root in pre_roots:
            old_node = comp_node.pop(old_root, None)
            if old_node is not None:
                parents[old_node] = new_nodes[uf.find(old_root)]
        comp_node.update(
            (root, node) for root, node in new_nodes.items()
        )

    n_nodes = len(levels)
    node_level = np.asarray(levels, dtype=np.int64)
    node_parent_raw = np.asarray(parents, dtype=np.int64)

    # DFS preorder renumbering: subtrees become contiguous id ranges.
    children: List[List[int]] = [[] for _ in range(n_nodes)]
    roots: List[int] = []
    for node in range(n_nodes):
        parent = int(node_parent_raw[node])
        if parent >= 0:
            children[parent].append(node)
        else:
            roots.append(node)
    new_id = np.empty(n_nodes, dtype=np.int64)
    dfs_level = np.empty(n_nodes, dtype=np.int64)
    dfs_parent = np.full(n_nodes, -1, dtype=np.int64)
    subtree_end = np.empty(n_nodes, dtype=np.int64)
    counter = 0
    for root in roots:
        # (node, child-cursor) explicit stack; post-visit sets the range end.
        stack: List[Tuple[int, int]] = [(root, 0)]
        new_id[root] = counter
        dfs_level[counter] = node_level[root]
        counter += 1
        while stack:
            node, cursor = stack[-1]
            if cursor < len(children[node]):
                stack[-1] = (node, cursor + 1)
                child = children[node][cursor]
                new_id[child] = counter
                dfs_level[counter] = node_level[child]
                dfs_parent[counter] = new_id[node]
                counter += 1
                stack.append((child, 0))
            else:
                stack.pop()
                subtree_end[new_id[node]] = counter

    if n_nodes:
        edge_node = new_id[edge_node]

    # Group edge ids by settle node (nodes already in DFS order).
    if m:
        grouping = np.argsort(edge_node, kind="stable")
        node_edges = grouping.astype(np.int64)
        node_edge_ptr = np.zeros(n_nodes + 1, dtype=np.int64)
        np.cumsum(
            np.bincount(edge_node, minlength=n_nodes), out=node_edge_ptr[1:]
        )
    else:
        node_edges = np.empty(0, dtype=np.int64)
        node_edge_ptr = np.zeros(n_nodes + 1, dtype=np.int64)

    # Per-vertex best (max-φ) incident edge: ascending-φ writes, last wins.
    vertex_best = np.full(graph.num_vertices, -1, dtype=np.int64)
    if m:
        asc = order
        vertex_best[graph.edge_lower[asc]] = asc
        vertex_best[graph.edge_upper[asc] + n_l] = asc

    return BitrussHierarchy(
        graph,
        phi,
        dfs_level,
        dfs_parent,
        subtree_end,
        edge_node,
        node_edge_ptr,
        node_edges,
        vertex_best,
    )

"""Decomposition artifacts: a frozen decomposition in a single ``.npz``.

A :class:`DecompositionArtifact` is the offline half of the service layer's
compute-once / query-many split: the graph's CSR arrays
(``indptr``/``indices``/``edge_id`` for both layers), the per-edge bitruss
numbers φ, and provenance metadata (algorithm, graph hash, format version)
packed into one compressed numpy archive.  Building one costs a full
decomposition; reopening one costs a file read plus integrity checks.

Integrity
---------
Two SHA-256 digests travel with the file: one over the graph structure
(layer sizes + endpoint arrays) and one over φ.  :func:`load_artifact`
recomputes both and refuses files whose content no longer matches —
truncation, bit rot, or a hand-edited φ array all raise
:class:`ArtifactIntegrityError` instead of silently serving wrong answers.
The rehydrated graph additionally runs the CSR/endpoint consistency checks
of :meth:`~repro.graph.bipartite.BipartiteGraph.validate`.  Hashes are
streamed over bounded slices, so verifying a memory-mapped multi-GB array
never materializes an in-RAM copy of it.

Layouts
-------
Two on-disk layouts share one header and one loader:

* ``.npz`` (the default for paths ending in ``.npz``) — a single
  compressed archive; smallest on disk, but the zip container cannot be
  memory-mapped, so reopening is O(size) in RAM.
* **directory** (any other path) — ``header.json`` plus one raw ``.npy``
  file per array.  ``load_artifact(path, mmap_mode="r")`` (or
  :meth:`DecompositionArtifact.load`) then opens every array as a numpy
  memmap: O(1) resident memory, pages faulted in on demand — the serving
  posture for artifacts larger than RAM.

Staleness
---------
An artifact can be registered with a
:class:`~repro.maintenance.dynamic.DynamicBipartiteGraph`; any edge update
then calls :meth:`DecompositionArtifact.invalidate`, and a
:class:`~repro.service.engine.QueryEngine` serving the artifact raises
:class:`StaleArtifactError` rather than answering from outdated φ.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.core.result import BitrussDecomposition
from repro.graph.bipartite import BipartiteGraph
from repro.utils.stats import DecompositionStats

#: On-disk format tag; bump :data:`ARTIFACT_VERSION` on layout changes.
ARTIFACT_FORMAT = "repro-bitruss-artifact"
ARTIFACT_VERSION = 1


class ArtifactError(ValueError):
    """A file is not a readable decomposition artifact."""


class ArtifactIntegrityError(ArtifactError):
    """An artifact's stored hashes no longer match its content."""


class StaleArtifactError(RuntimeError):
    """A query was attempted against an invalidated artifact."""


#: Bytes hashed per slice when digesting an array (bounds resident memory
#: when the array is memory-mapped).
_HASH_SLICE_BYTES = 1 << 22


def _update_digest(digest, array: np.ndarray) -> None:
    """Feed an int64 array into a digest in bounded slices (mmap-safe).

    Byte-identical to ``digest.update(array.tobytes())`` but never holds
    more than one slice's copy in memory, so hashing a memory-mapped
    multi-GB array stays O(1) resident.
    """
    flat = np.ascontiguousarray(array, dtype=np.int64).reshape(-1)
    step = max(1, _HASH_SLICE_BYTES // flat.itemsize)
    for start in range(0, flat.size, step):
        digest.update(flat[start : start + step].tobytes())


def graph_sha256(graph: BipartiteGraph) -> str:
    """Content hash of a graph: layer sizes plus endpoint arrays.

    Two graphs hash equal iff they have the same layer sizes and the same
    ``(u, v)`` pair at every edge id — exactly the identity under which a
    saved φ remains valid.
    """
    digest = hashlib.sha256()
    digest.update(f"{graph.num_upper},{graph.num_lower};".encode())
    _update_digest(digest, graph.edge_upper)
    _update_digest(digest, graph.edge_lower)
    return digest.hexdigest()


def _phi_sha256(phi: np.ndarray) -> str:
    digest = hashlib.sha256()
    _update_digest(digest, phi)
    return digest.hexdigest()


def phi_by_endpoints(graph: BipartiteGraph, phi: np.ndarray) -> Dict:
    """φ keyed by ``(u, v)`` endpoint pairs instead of edge ids.

    The id-stable form the incremental maintenance layer tracks: edge ids
    are reassigned whenever a snapshot resorts, endpoints never are.  Used
    to seed and reseed :class:`~repro.maintenance.incremental.IncrementalBitruss`
    from any (graph, φ) pair.
    """
    return {
        graph.edge_endpoints(eid): int(phi[eid])
        for eid in range(graph.num_edges)
    }


@dataclass
class DecompositionArtifact:
    """A frozen decomposition: graph + φ + provenance, ready to serve.

    Attributes
    ----------
    graph:
        The decomposed graph (immutable, CSR-backed).
    phi:
        ``int64`` bitruss numbers indexed by edge id, read-only.
    algorithm:
        Canonical name of the algorithm that produced φ.
    graph_hash:
        SHA-256 over the graph structure (see :func:`graph_sha256`).
    meta:
        Free-form provenance carried through save/load (timings, update
        counts, parameters — JSON-serializable values only).
    stale:
        Set by :meth:`invalidate` when the source graph has changed since
        φ was computed; engines refuse stale artifacts.
    """

    graph: BipartiteGraph
    phi: np.ndarray
    algorithm: str = ""
    graph_hash: str = ""
    meta: Dict[str, object] = field(default_factory=dict)
    stale: bool = False

    def __post_init__(self) -> None:
        phi = self.phi
        if (
            isinstance(phi, np.ndarray)
            and phi.dtype == np.int64
            and not phi.flags.writeable
        ):
            # Already immutable (e.g. a read-only memmap): share it — a
            # copy would defeat the O(1)-resident mmap load path.
            self.phi = phi
        else:
            # Private copy: freezing a caller-owned writable array in place
            # would leak the artifact's immutability into the caller's
            # objects.
            self.phi = np.array(phi, dtype=np.int64, copy=True)
            self.phi.flags.writeable = False
        if len(self.phi) != self.graph.num_edges:
            raise ArtifactError("phi must have one entry per edge")
        if not self.graph_hash:
            self.graph_hash = graph_sha256(self.graph)

    @classmethod
    def from_decomposition(
        cls, result: BitrussDecomposition, **meta: object
    ) -> "DecompositionArtifact":
        """Wrap a finished :class:`BitrussDecomposition`."""
        provenance: Dict[str, object] = {
            "updates": result.stats.updates,
            "timings": dict(result.stats.timings),
            "iterations": result.stats.iterations,
        }
        provenance.update(meta)
        return cls(
            graph=result.graph,
            phi=result.phi,
            algorithm=result.stats.algorithm,
            meta=provenance,
        )

    def to_decomposition(self) -> BitrussDecomposition:
        """The artifact as a :class:`BitrussDecomposition` (stats restored)."""
        stats = DecompositionStats(
            algorithm=self.algorithm,
            updates=int(self.meta.get("updates", 0) or 0),
            timings=dict(self.meta.get("timings", {}) or {}),
            iterations=int(self.meta.get("iterations", 0) or 0),
        )
        return BitrussDecomposition(self.graph, self.phi.copy(), stats)

    # ---------------------------------------------------------- lifecycle

    def invalidate(self) -> None:
        """Mark the artifact stale (its source graph has changed)."""
        self.stale = True

    def patch(
        self,
        graph: BipartiteGraph,
        phi: np.ndarray,
        **_info: object,
    ) -> None:
        """Replace the served content in place and clear staleness.

        The incremental-maintenance path
        (:meth:`repro.maintenance.dynamic.DynamicBipartiteGraph.apply`)
        calls this after a localized φ repair: the patched snapshot and φ
        array become the artifact's new content, the graph hash is
        recomputed, and the artifact is fresh again — no decomposition ran.
        Extra keyword arguments (``max_affected_k``, ``affected_gids``) are
        accepted for signature compatibility with
        :meth:`repro.service.engine.QueryEngine.patch` and ignored here.
        """
        phi = np.array(phi, dtype=np.int64, copy=True)
        if len(phi) != graph.num_edges:
            raise ArtifactError("phi must have one entry per edge")
        phi.flags.writeable = False
        self.graph = graph
        self.phi = phi
        self.graph_hash = graph_sha256(graph)
        self.meta["patches"] = int(self.meta.get("patches", 0) or 0) + 1
        self.stale = False

    def save(self, path, *, layout: str = "auto") -> None:
        """Write the artifact to ``path`` (see :func:`save_artifact`)."""
        save_artifact(self, path, layout=layout)

    @classmethod
    def load(
        cls,
        path,
        *,
        mmap_mode: Optional[str] = None,
        check: bool = True,
    ) -> "DecompositionArtifact":
        """Open a saved artifact (see :func:`load_artifact`).

        ``mmap_mode="r"`` memory-maps every array of a directory-layout
        artifact: the open cost is O(1) resident memory regardless of
        artifact size, with pages faulted in as queries touch them.
        """
        return load_artifact(path, mmap_mode=mmap_mode, check=check)

    def phi_by_endpoints(self) -> Dict:
        """This artifact's φ keyed by endpoints (see :func:`phi_by_endpoints`)."""
        return phi_by_endpoints(self.graph, self.phi)

    @property
    def max_k(self) -> int:
        """Largest bitruss number in the artifact (0 when edgeless)."""
        return int(self.phi.max()) if len(self.phi) else 0

    def __repr__(self) -> str:
        return (
            f"DecompositionArtifact(m={self.graph.num_edges}, "
            f"max_k={self.max_k}, algorithm={self.algorithm!r}, "
            f"stale={self.stale})"
        )


def build_artifact(
    graph: BipartiteGraph,
    algorithm: str = "bit-bu++",
    *,
    workers: int = 1,
    parallel: Optional[bool] = None,
    **kwargs: object,
) -> DecompositionArtifact:
    """Run a decomposition and freeze it into an artifact.

    Parameters
    ----------
    graph : BipartiteGraph
        The graph to decompose.
    algorithm : str, optional
        Any name accepted by :func:`repro.core.api.bitruss_decomposition`.
    workers : int, optional
        Offline builds are the runtime's natural customer: with
        ``workers > 1`` the decomposition runs on the shared-memory pool
        (:mod:`repro.runtime`).  When the requested algorithm is the
        serial default it is upgraded to ``"bit-bu-par"``; an explicitly
        parallel-incapable choice raises :class:`ValueError` (via
        :func:`~repro.core.api.bitruss_decomposition`) instead of silently
        building single-core.
    parallel : bool, optional
        Convenience toggle: ``parallel=True`` with the default
        ``workers=1`` asks for one worker per spare CPU core.
    **kwargs :
        Forwarded to the decomposition (``tau``, ``prefilter``, ...).

    Returns
    -------
    DecompositionArtifact
        Ready to save or to hand to a
        :class:`~repro.service.engine.QueryEngine`.
    """
    import os

    from repro.core.api import bitruss_decomposition

    if parallel and workers == 1:
        workers = max(2, (os.cpu_count() or 2) - 1)
    if workers > 1 and algorithm in ("bit-bu++", "bu++"):
        algorithm = "bit-bu-par"
    result = bitruss_decomposition(
        graph, algorithm=algorithm, workers=workers, **kwargs
    )
    artifact = DecompositionArtifact.from_decomposition(result)
    artifact.meta["workers"] = workers
    return artifact


def _build_header(artifact: DecompositionArtifact) -> Dict[str, object]:
    graph = artifact.graph
    return {
        "format": ARTIFACT_FORMAT,
        "version": ARTIFACT_VERSION,
        "algorithm": artifact.algorithm,
        "num_upper": graph.num_upper,
        "num_lower": graph.num_lower,
        "num_edges": graph.num_edges,
        "graph_hash": artifact.graph_hash,
        "phi_hash": _phi_sha256(artifact.phi),
        "meta": artifact.meta,
    }


def _array_map(artifact: DecompositionArtifact) -> Dict[str, np.ndarray]:
    graph = artifact.graph
    up_indptr, up_nbrs, up_eids = graph.csr_upper()
    lo_indptr, lo_nbrs, lo_eids = graph.csr_lower()
    return {
        "edge_upper": graph.edge_upper,
        "edge_lower": graph.edge_lower,
        "up_indptr": up_indptr,
        "up_indices": up_nbrs,
        "up_edge_ids": up_eids,
        "lo_indptr": lo_indptr,
        "lo_indices": lo_nbrs,
        "lo_edge_ids": lo_eids,
        "phi": artifact.phi,
    }


def save_artifact(
    artifact: DecompositionArtifact, path, *, layout: str = "auto"
) -> None:
    """Persist an artifact in one of two layouts.

    Parameters
    ----------
    artifact :
        The artifact to write.
    path :
        Target path.
    layout : str, optional
        ``"npz"`` — one compressed archive (endpoint arrays, both CSR
        blocks, φ, and a JSON header with the format tag, version,
        algorithm, both content hashes and the free-form ``meta`` dict);
        ``"dir"`` — a directory of raw ``.npy`` files plus ``header.json``,
        reopenable with ``mmap_mode="r"`` in O(1) resident memory;
        ``"auto"`` (default) — ``"npz"`` when ``path`` ends in ``.npz``,
        ``"dir"`` otherwise.
    """
    if layout == "auto":
        layout = "npz" if str(path).endswith(".npz") else "dir"
    if layout not in ("npz", "dir"):
        raise ValueError(f"unknown artifact layout {layout!r}")
    header = _build_header(artifact)
    arrays = _array_map(artifact)
    if layout == "npz":
        with open(path, "wb") as handle:
            np.savez_compressed(
                handle,
                header=np.frombuffer(
                    json.dumps(header).encode("utf-8"), dtype=np.uint8
                ),
                **arrays,
            )
        return
    os.makedirs(path, exist_ok=True)
    with open(os.path.join(path, "header.json"), "w", encoding="utf-8") as fh:
        json.dump(header, fh, indent=2)
    for key, array in arrays.items():
        np.save(os.path.join(path, f"{key}.npy"), array)


_REQUIRED_KEYS = (
    "header",
    "edge_upper",
    "edge_lower",
    "up_indptr",
    "up_indices",
    "up_edge_ids",
    "lo_indptr",
    "lo_indices",
    "lo_edge_ids",
    "phi",
)

_ARRAY_KEYS = _REQUIRED_KEYS[1:]


def _read_npz(path) -> Dict[str, np.ndarray]:
    try:
        with np.load(path) as archive:
            missing = [k for k in _REQUIRED_KEYS if k not in archive.files]
            if missing:
                raise ArtifactError(
                    f"{path}: not a decomposition artifact (missing {missing})"
                )
            return {k: archive[k] for k in _REQUIRED_KEYS}
    except (OSError, ValueError) as exc:
        if isinstance(exc, ArtifactError):
            raise
        raise ArtifactError(f"{path}: cannot read artifact ({exc})") from exc


def _read_dir(path, mmap_mode: Optional[str]) -> Dict[str, np.ndarray]:
    header_path = os.path.join(path, "header.json")
    if not os.path.exists(header_path):
        raise ArtifactError(
            f"{path}: not a decomposition artifact (missing header.json)"
        )
    try:
        with open(header_path, "r", encoding="utf-8") as fh:
            header_bytes = fh.read().encode("utf-8")
    except OSError as exc:
        raise ArtifactError(f"{path}: cannot read artifact ({exc})") from exc
    data: Dict[str, np.ndarray] = {
        "header": np.frombuffer(header_bytes, dtype=np.uint8)
    }
    for key in _ARRAY_KEYS:
        member = os.path.join(path, f"{key}.npy")
        if not os.path.exists(member):
            raise ArtifactError(
                f"{path}: not a decomposition artifact (missing [{key!r}])"
            )
        try:
            data[key] = np.load(member, mmap_mode=mmap_mode)
        except (OSError, ValueError) as exc:
            raise ArtifactError(
                f"{path}: cannot read artifact ({exc})"
            ) from exc
    return data


def load_artifact(
    path, *, check: bool = True, mmap_mode: Optional[str] = None
) -> DecompositionArtifact:
    """Load an artifact written by :func:`save_artifact`, verifying it.

    Parameters
    ----------
    path :
        An ``.npz`` file or a directory-layout artifact.
    check : bool, optional
        When true (default) recompute both content hashes and run the
        graph's structural validation; pass ``False`` only for trusted
        files on hot restart paths.  Hashing streams over bounded slices,
        so checking a memory-mapped artifact never copies whole arrays.
    mmap_mode : str, optional
        ``"r"`` memory-maps every array of a directory-layout artifact —
        an O(1)-resident open regardless of artifact size.  Compressed
        ``.npz`` archives cannot be mapped; asking raises
        :class:`ArtifactError` pointing at the directory layout.

    Raises
    ------
    ArtifactError
        Not an artifact file, or an unsupported version.
    ArtifactIntegrityError
        Stored hashes disagree with the file's content.
    """
    if os.path.isdir(path):
        data = _read_dir(path, mmap_mode)
    elif mmap_mode is not None:
        raise ArtifactError(
            f"{path}: .npz archives cannot be memory-mapped; save the "
            "artifact in the directory layout (save_artifact(..., "
            "layout='dir')) to use mmap_mode"
        )
    else:
        data = _read_npz(path)

    try:
        header = json.loads(bytes(data["header"].tobytes()).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ArtifactError(f"{path}: corrupt artifact header") from exc
    if header.get("format") != ARTIFACT_FORMAT:
        raise ArtifactError(f"{path}: not a decomposition artifact")
    if header.get("version") != ARTIFACT_VERSION:
        raise ArtifactError(
            f"{path}: unsupported artifact version {header.get('version')!r}"
        )

    try:
        graph = BipartiteGraph.from_csr(
            int(header["num_upper"]),
            int(header["num_lower"]),
            data["edge_upper"],
            data["edge_lower"],
            (data["up_indptr"], data["up_indices"], data["up_edge_ids"]),
            (data["lo_indptr"], data["lo_indices"], data["lo_edge_ids"]),
            check=check,
        )
    except (AssertionError, ValueError, IndexError) as exc:
        raise ArtifactIntegrityError(
            f"{path}: stored CSR arrays are internally inconsistent ({exc})"
        ) from exc
    phi = np.ascontiguousarray(data["phi"], dtype=np.int64)
    if len(phi) != graph.num_edges:
        raise ArtifactIntegrityError(
            f"{path}: phi length {len(phi)} != edge count {graph.num_edges}"
        )
    if check:
        if graph_sha256(graph) != header.get("graph_hash"):
            raise ArtifactIntegrityError(
                f"{path}: graph content does not match its stored hash"
            )
        if _phi_sha256(phi) != header.get("phi_hash"):
            raise ArtifactIntegrityError(
                f"{path}: phi does not match its stored hash"
            )
    return DecompositionArtifact(
        graph=graph,
        phi=phi,
        algorithm=header.get("algorithm", ""),
        graph_hash=header.get("graph_hash", ""),
        meta=dict(header.get("meta", {}) or {}),
    )

"""Edge-list IO in the KONECT style.

The paper's datasets all come from KONECT, whose bipartite network files are
whitespace-separated edge lists with optional ``%`` comment lines::

    % bip unweighted
    1 1
    1 2
    2 1

KONECT ids are 1-based per layer; this module accepts both 0- and 1-based
files via ``base`` and writes 0-based files by default.  Gzip-compressed
files are handled transparently by extension.
"""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import IO, Iterator, List, Tuple, Union

import numpy as np

from repro.graph.bipartite import BipartiteGraph

PathLike = Union[str, Path]


def _open_text(path: PathLike, mode: str) -> IO[str]:
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="utf-8")  # type: ignore[return-value]
    return open(path, mode, encoding="utf-8")


def iter_edge_lines(path: PathLike) -> Iterator[Tuple[int, int]]:
    """Yield raw ``(u, v)`` integer pairs, skipping comments and blanks."""
    with _open_text(path, "r") as handle:
        for line_no, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith(("%", "#")):
                continue
            parts = stripped.split()
            if len(parts) < 2:
                raise ValueError(f"{path}:{line_no}: expected two columns, got {stripped!r}")
            try:
                u = int(parts[0])
                v = int(parts[1])
            except ValueError as exc:
                raise ValueError(f"{path}:{line_no}: non-integer endpoint in {stripped!r}") from exc
            yield u, v


def load_edge_list(
    path: PathLike,
    *,
    base: int = 0,
    dedup: bool = True,
) -> BipartiteGraph:
    """Load a bipartite edge list.

    Parameters
    ----------
    path:
        Text or ``.gz`` file of ``u v`` pairs; ``%``/``#`` lines are comments.
    base:
        Id base of the file (KONECT uses 1).
    dedup:
        Drop repeated interactions instead of raising (KONECT interaction
        data often contains duplicates).
    """
    pairs = [pair for pair in iter_edge_lines(path)]
    if not pairs:
        return BipartiteGraph(0, 0, ())
    arr = np.asarray(pairs, dtype=np.int64) - base
    if (arr < 0).any():
        raise ValueError(
            f"{path}: negative id after subtracting base={base}; "
            "check the file's id base"
        )
    num_upper = int(arr[:, 0].max()) + 1
    num_lower = int(arr[:, 1].max()) + 1
    return BipartiteGraph(num_upper, num_lower, arr, dedup=dedup)


def save_edge_list(
    graph: BipartiteGraph,
    path: PathLike,
    *,
    base: int = 0,
    header: str = "bip unweighted",
) -> None:
    """Write ``graph`` as a KONECT-style edge list."""
    with _open_text(path, "w") as handle:
        if header:
            handle.write(f"% {header}\n")
        for u, v in graph.edges():
            handle.write(f"{u + base} {v + base}\n")


def load_phi(path: PathLike) -> List[int]:
    """Load bitruss numbers written by :func:`save_phi` (one int per line)."""
    values: List[int] = []
    with _open_text(path, "r") as handle:
        for line in handle:
            stripped = line.strip()
            if not stripped or stripped.startswith(("%", "#")):
                continue
            values.append(int(stripped))
    return values


def save_phi(phi, path: PathLike) -> None:
    """Write bitruss numbers, one per line, in edge-id order."""
    with _open_text(path, "w") as handle:
        handle.write("% bitruss number per edge id\n")
        for value in phi:
            handle.write(f"{int(value)}\n")


def load_matrix_market(path: PathLike, *, dedup: bool = True) -> BipartiteGraph:
    """Load a bipartite graph from a Matrix Market coordinate file.

    Accepts ``matrix coordinate (pattern|integer|real) general`` headers;
    any non-zero stored entry becomes an edge (rows = upper layer).  Ids in
    the body are 1-based per the format.
    """
    with _open_text(path, "r") as handle:
        header = handle.readline()
        if not header.startswith("%%MatrixMarket"):
            raise ValueError(f"{path}: missing %%MatrixMarket header")
        fields = header.split()
        if len(fields) < 5 or fields[1] != "matrix" or fields[2] != "coordinate":
            raise ValueError(f"{path}: only coordinate matrices are supported")
        value_type = fields[3]
        if value_type not in ("pattern", "integer", "real"):
            raise ValueError(f"{path}: unsupported value type {value_type!r}")
        line = handle.readline()
        while line.startswith("%"):
            line = handle.readline()
        rows, cols, _nnz = (int(x) for x in line.split()[:3])
        pairs: List[Tuple[int, int]] = []
        for raw in handle:
            stripped = raw.strip()
            if not stripped or stripped.startswith("%"):
                continue
            parts = stripped.split()
            u = int(parts[0]) - 1
            v = int(parts[1]) - 1
            if value_type != "pattern" and float(parts[2]) == 0.0:
                continue
            pairs.append((u, v))
    return BipartiteGraph(rows, cols, pairs, dedup=dedup)


def save_matrix_market(graph: BipartiteGraph, path: PathLike) -> None:
    """Write ``graph`` as a Matrix Market pattern matrix (rows = upper)."""
    with _open_text(path, "w") as handle:
        handle.write("%%MatrixMarket matrix coordinate pattern general\n")
        handle.write(
            f"{graph.num_upper} {graph.num_lower} {graph.num_edges}\n"
        )
        for u, v in graph.edges():
            handle.write(f"{u + 1} {v + 1}\n")

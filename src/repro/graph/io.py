"""Edge-list IO in the KONECT style.

The paper's datasets all come from KONECT, whose bipartite network files are
whitespace-separated edge lists with optional ``%`` comment lines::

    % bip unweighted
    1 1
    1 2
    2 1

KONECT ids are 1-based per layer; this module accepts both 0- and 1-based
files via ``base`` and writes 0-based files by default.  Gzip-compressed
files are handled transparently by extension.

Two ingestion paths share the same parser:

* :func:`load_edge_list` — the in-memory path: the whole file becomes a
  Python list of pairs before the graph is built.  Simple, but the list of
  boxed tuples costs ~100 bytes per edge, two orders of magnitude short of
  million-edge files.
* :func:`load_edge_list_streaming` — the out-of-core path: the file is
  parsed into fixed-size ``int64`` numpy chunks
  (:func:`iter_edge_chunks`), deduplicated by sorted-array passes instead
  of dictionaries, and assembled directly into CSR form
  (:func:`edges_to_csr_chunked`).  The result is **bitwise identical** to
  the in-memory path on every input; only the peak memory differs.
"""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import IO, Iterable, Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.graph.bipartite import BipartiteGraph
from repro.obs import phases as obs_phases

PathLike = Union[str, Path]

_INT64_MIN = -(2**63)
_INT64_MAX = 2**63 - 1

#: Default parse-chunk size of the streaming loader (edges per chunk).
DEFAULT_CHUNK_EDGES = 1 << 18


def _open_text(path: PathLike, mode: str) -> IO[str]:
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="utf-8")  # type: ignore[return-value]
    return open(path, mode, encoding="utf-8")


def _parse_edge_line(path: PathLike, line_no: int, stripped: str) -> Tuple[int, int]:
    """Parse and validate one non-comment edge line."""
    parts = stripped.split()
    if len(parts) < 2:
        raise ValueError(f"{path}:{line_no}: expected two columns, got {stripped!r}")
    try:
        u = int(parts[0])
        v = int(parts[1])
    except ValueError as exc:
        raise ValueError(f"{path}:{line_no}: non-integer endpoint in {stripped!r}") from exc
    if u < 0 or v < 0:
        raise ValueError(
            f"{path}:{line_no}: negative vertex id in {stripped!r}"
        )
    if u > _INT64_MAX or v > _INT64_MAX:
        raise ValueError(
            f"{path}:{line_no}: vertex id too large for int64 in {stripped!r}"
        )
    return u, v


def iter_edge_lines(path: PathLike) -> Iterator[Tuple[int, int]]:
    """Yield raw ``(u, v)`` integer pairs, skipping comments and blanks.

    Malformed lines — fewer than two columns, non-integer, negative, or
    int64-overflowing ids — raise :class:`ValueError` naming the file and
    line number instead of surfacing later as a numpy cast error.
    """
    with _open_text(path, "r") as handle:
        for line_no, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith(("%", "#")):
                continue
            yield _parse_edge_line(path, line_no, stripped)


def iter_edge_chunks(
    path: PathLike,
    *,
    base: int = 0,
    chunk_edges: int = DEFAULT_CHUNK_EDGES,
) -> Iterator[np.ndarray]:
    """Parse an edge list into fixed-size ``(n, 2)`` ``int64`` chunks.

    The streaming half of :func:`load_edge_list_streaming`: at most
    ``chunk_edges`` edges are buffered as Python ints at any moment; each
    full buffer is converted to one numpy array (``base`` already
    subtracted) and yielded.  Validation matches :func:`iter_edge_lines`
    (file/line-numbered errors) plus the id-base check of
    :func:`load_edge_list`.
    """
    if chunk_edges < 1:
        raise ValueError("chunk_edges must be a positive integer")

    def _flush(buf_u: List[int], buf_v: List[int]) -> np.ndarray:
        chunk = np.empty((len(buf_u), 2), dtype=np.int64)
        chunk[:, 0] = buf_u
        chunk[:, 1] = buf_v
        if base:
            chunk -= base
            if (chunk < 0).any():
                raise ValueError(
                    f"{path}: negative id after subtracting base={base}; "
                    "check the file's id base"
                )
        return chunk

    buf_u: List[int] = []
    buf_v: List[int] = []
    with _open_text(path, "r") as handle:
        for line_no, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith(("%", "#")):
                continue
            u, v = _parse_edge_line(path, line_no, stripped)
            buf_u.append(u)
            buf_v.append(v)
            if len(buf_u) >= chunk_edges:
                yield _flush(buf_u, buf_v)
                buf_u, buf_v = [], []
    if buf_u:
        yield _flush(buf_u, buf_v)


def edges_to_csr_chunked(
    chunks: Iterable[np.ndarray],
    *,
    num_upper: Optional[int] = None,
    num_lower: Optional[int] = None,
    dedup: bool = True,
) -> BipartiteGraph:
    """Assemble edge chunks into a CSR graph without Python-object state.

    Chunks are gathered into one ``(m, 2)`` ``int64`` array, deduplicated
    by a sorted-array pass (``np.unique`` over linearized codes, first
    occurrence kept in original order — the exact rule of the
    :class:`BipartiteGraph` constructor), and the per-layer CSR blocks are
    built directly and installed via :meth:`BipartiteGraph.from_csr`.  No
    per-edge Python tuple, list or dict is ever materialized, so peak
    memory stays a small constant factor of the final arrays.

    Parameters
    ----------
    chunks : iterable of numpy.ndarray
        ``(n, 2)`` arrays of ``(u, v)`` pairs, e.g. from
        :func:`iter_edge_chunks` or a streaming generator.
    num_upper, num_lower : int, optional
        Layer sizes; inferred as ``max + 1`` when omitted (matching
        :func:`load_edge_list`).
    dedup : bool, optional
        Drop repeated ``(u, v)`` pairs (default) instead of raising.

    Returns
    -------
    BipartiteGraph
        Bitwise identical — endpoint arrays and both CSR blocks — to
        ``BipartiteGraph(num_upper, num_lower, all_edges, dedup=dedup)``.
    """
    parts = [
        np.ascontiguousarray(chunk, dtype=np.int64).reshape(-1, 2)
        for chunk in chunks
    ]
    parts = [part for part in parts if part.size]
    if parts:
        pairs = parts[0] if len(parts) == 1 else np.concatenate(parts)
    else:
        pairs = np.empty((0, 2), dtype=np.int64)
    del parts
    edge_u = np.ascontiguousarray(pairs[:, 0])
    edge_v = np.ascontiguousarray(pairs[:, 1])
    del pairs

    m = edge_u.shape[0]
    if m and (edge_u.min() < 0 or edge_v.min() < 0):
        raise ValueError("negative vertex id in edge chunks")
    n_u = int(num_upper) if num_upper is not None else (int(edge_u.max()) + 1 if m else 0)
    n_l = int(num_lower) if num_lower is not None else (int(edge_v.max()) + 1 if m else 0)
    if m:
        if int(edge_u.max()) >= n_u:
            raise ValueError(
                f"upper endpoint {int(edge_u.max())} out of range [0, {n_u})"
            )
        if int(edge_v.max()) >= n_l:
            raise ValueError(
                f"lower endpoint {int(edge_v.max())} out of range [0, {n_l})"
            )
        # Sorted-array dedup on linearized (u, v) codes — same first-
        # occurrence rule as the BipartiteGraph constructor.
        codes = edge_u * n_l + edge_v
        _unique, first = np.unique(codes, return_index=True)
        if len(first) != len(codes):
            if not dedup:
                mask = np.ones(len(codes), dtype=bool)
                mask[first] = False
                dup = int(np.argmax(mask))
                raise ValueError(
                    f"duplicate edge ({int(edge_u[dup])}, {int(edge_v[dup])})"
                )
            keep = np.sort(first)
            edge_u = np.ascontiguousarray(edge_u[keep])
            edge_v = np.ascontiguousarray(edge_v[keep])
            del keep
        del codes, _unique, first

    # Per-layer CSR, replicating the constructor's exact layout: a stable
    # argsort keeps each row's slots in edge-id order.
    order_u = np.argsort(edge_u, kind="stable")
    up_indptr = np.zeros(n_u + 1, dtype=np.int64)
    np.cumsum(np.bincount(edge_u, minlength=n_u), out=up_indptr[1:])
    up_nbrs = edge_v[order_u]

    order_l = np.argsort(edge_v, kind="stable")
    lo_indptr = np.zeros(n_l + 1, dtype=np.int64)
    np.cumsum(np.bincount(edge_v, minlength=n_l), out=lo_indptr[1:])
    lo_nbrs = edge_u[order_l]

    return BipartiteGraph.from_csr(
        n_u,
        n_l,
        edge_u,
        edge_v,
        (up_indptr, up_nbrs, order_u),
        (lo_indptr, lo_nbrs, order_l),
        check=False,
    )


def load_edge_list_streaming(
    path: PathLike,
    *,
    base: int = 0,
    dedup: bool = True,
    chunk_edges: int = DEFAULT_CHUNK_EDGES,
) -> BipartiteGraph:
    """Load a bipartite edge list out-of-core (chunked numpy ingestion).

    The drop-in scale variant of :func:`load_edge_list`: the file is
    parsed in ``chunk_edges``-sized numpy chunks and assembled straight
    into CSR form, never holding a Python list of pairs.  The returned
    graph is bitwise identical to the in-memory loader's on any input;
    peak resident memory is a fraction of it on large files.
    """
    with obs_phases.phase("streaming ingest"):
        return edges_to_csr_chunked(
            iter_edge_chunks(path, base=base, chunk_edges=chunk_edges),
            dedup=dedup,
        )


def write_edge_chunks(
    path: PathLike,
    chunks: Iterable[np.ndarray],
    *,
    base: int = 0,
    header: str = "bip unweighted",
) -> int:
    """Stream ``(n, 2)`` edge chunks to a KONECT-style edge-list file.

    The writing half of the scale-workload pipeline: a chunk generator
    (e.g. :func:`repro.graph.generators.chung_lu_edge_chunks`) is drained
    chunk by chunk, so graphs far larger than memory can be materialized
    to text or ``.gz`` files.  Returns the number of edges written.
    """
    written = 0
    with _open_text(path, "w") as handle:
        if header:
            handle.write(f"% {header}\n")
        for chunk in chunks:
            arr = np.asarray(chunk, dtype=np.int64).reshape(-1, 2)
            if base:
                arr = arr + base
            np.savetxt(handle, arr, fmt="%d")
            written += arr.shape[0]
    return written


def load_edge_list(
    path: PathLike,
    *,
    base: int = 0,
    dedup: bool = True,
) -> BipartiteGraph:
    """Load a bipartite edge list.

    Parameters
    ----------
    path:
        Text or ``.gz`` file of ``u v`` pairs; ``%``/``#`` lines are comments.
    base:
        Id base of the file (KONECT uses 1).
    dedup:
        Drop repeated interactions instead of raising (KONECT interaction
        data often contains duplicates).
    """
    pairs = [pair for pair in iter_edge_lines(path)]
    if not pairs:
        return BipartiteGraph(0, 0, ())
    arr = np.asarray(pairs, dtype=np.int64) - base
    if (arr < 0).any():
        raise ValueError(
            f"{path}: negative id after subtracting base={base}; "
            "check the file's id base"
        )
    num_upper = int(arr[:, 0].max()) + 1
    num_lower = int(arr[:, 1].max()) + 1
    return BipartiteGraph(num_upper, num_lower, arr, dedup=dedup)


def save_edge_list(
    graph: BipartiteGraph,
    path: PathLike,
    *,
    base: int = 0,
    header: str = "bip unweighted",
) -> None:
    """Write ``graph`` as a KONECT-style edge list."""
    with _open_text(path, "w") as handle:
        if header:
            handle.write(f"% {header}\n")
        for u, v in graph.edges():
            handle.write(f"{u + base} {v + base}\n")


def load_phi(path: PathLike) -> List[int]:
    """Load bitruss numbers written by :func:`save_phi` (one int per line)."""
    values: List[int] = []
    with _open_text(path, "r") as handle:
        for line in handle:
            stripped = line.strip()
            if not stripped or stripped.startswith(("%", "#")):
                continue
            values.append(int(stripped))
    return values


def save_phi(phi, path: PathLike) -> None:
    """Write bitruss numbers, one per line, in edge-id order."""
    with _open_text(path, "w") as handle:
        handle.write("% bitruss number per edge id\n")
        for value in phi:
            handle.write(f"{int(value)}\n")


def load_matrix_market(path: PathLike, *, dedup: bool = True) -> BipartiteGraph:
    """Load a bipartite graph from a Matrix Market coordinate file.

    Accepts ``matrix coordinate (pattern|integer|real) general`` headers;
    any non-zero stored entry becomes an edge (rows = upper layer).  Ids in
    the body are 1-based per the format.
    """
    with _open_text(path, "r") as handle:
        header = handle.readline()
        if not header.startswith("%%MatrixMarket"):
            raise ValueError(f"{path}: missing %%MatrixMarket header")
        fields = header.split()
        if len(fields) < 5 or fields[1] != "matrix" or fields[2] != "coordinate":
            raise ValueError(f"{path}: only coordinate matrices are supported")
        value_type = fields[3]
        if value_type not in ("pattern", "integer", "real"):
            raise ValueError(f"{path}: unsupported value type {value_type!r}")
        line = handle.readline()
        while line.startswith("%"):
            line = handle.readline()
        rows, cols, _nnz = (int(x) for x in line.split()[:3])
        pairs: List[Tuple[int, int]] = []
        for raw in handle:
            stripped = raw.strip()
            if not stripped or stripped.startswith("%"):
                continue
            parts = stripped.split()
            u = int(parts[0]) - 1
            v = int(parts[1]) - 1
            if value_type != "pattern" and float(parts[2]) == 0.0:
                continue
            pairs.append((u, v))
    return BipartiteGraph(rows, cols, pairs, dedup=dedup)


def save_matrix_market(graph: BipartiteGraph, path: PathLike) -> None:
    """Write ``graph`` as a Matrix Market pattern matrix (rows = upper)."""
    with _open_text(path, "w") as handle:
        handle.write("%%MatrixMarket matrix coordinate pattern general\n")
        handle.write(
            f"{graph.num_upper} {graph.num_lower} {graph.num_edges}\n"
        )
        for u, v in graph.edges():
            handle.write(f"{u + 1} {v + 1}\n")

"""The core bipartite-graph structure, CSR-backed.

Vertices live in two disjoint layers: *upper* vertices ``0 .. n_u - 1`` and
*lower* vertices ``0 .. n_l - 1``, each in its own id space.  Edges connect an
upper vertex to a lower vertex and carry dense integer ids ``0 .. m - 1``; all
per-edge algorithm state (butterfly supports, bitruss numbers, queue keys) is
stored in arrays indexed by edge id.

Memory layout
-------------
The graph is stored in **compressed sparse row (CSR)** form — the adjacency-
array representation the paper assumes for its ``O(Σ min(d(u), d(v)) + ⋈G)``
bounds.  Three parallel ``int64`` arrays describe each layer's adjacency::

    indptr  : length n + 1, row i spans indptr[i] .. indptr[i + 1]
    indices : neighbour ids, concatenated row by row
    edge_ids: edge id of each (vertex, neighbour) slot, parallel to indices

All arrays are built **once**, vectorized, at construction and are exposed
read-only; neighbour accessors return zero-copy slices of them.  The legacy
list-of-lists view (:meth:`BipartiteGraph.adjacency_by_gid`) is a cached
compatibility view *derived from* the CSR arrays — no algorithm module builds
its own adjacency copy.

Global ids
----------
Several algorithms (vertex-priority counting, BE-Index construction) iterate
over *all* vertices regardless of layer.  The *global id* linearizes the two
layers as::

    gid(v in L) = v
    gid(u in U) = n_l + u

which also realizes the paper's convention that every upper-layer id is
larger than every lower-layer id (used by the priority tie-break of
Definition 7).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.utils.priority import vertex_priorities

Edge = Tuple[int, int]

#: ``(indptr, indices, edge_ids)`` — one CSR adjacency block.
CSR = Tuple[np.ndarray, np.ndarray, np.ndarray]


def _freeze(*arrays: np.ndarray) -> None:
    """Mark shared CSR arrays read-only so zero-copy views are safe."""
    for arr in arrays:
        arr.flags.writeable = False


class BipartiteGraph:
    """An undirected bipartite graph with dense vertex and edge ids.

    The graph is immutable: upper/lower adjacency is stored as
    ``indptr``/``indices``/``edge_ids`` numpy arrays (CSR) built once at
    construction, and every accessor below is either a zero-copy slice of
    those arrays or a cached view derived from them.

    Parameters
    ----------
    num_upper, num_lower : int
        Sizes of the two vertex layers.
    edges : iterable of (int, int) pairs, or an ``(m, 2)`` ndarray
        ``(u, v)`` pairs with ``0 <= u < num_upper`` and
        ``0 <= v < num_lower``.  Edge ids are assigned in iteration order.
    dedup : bool, optional
        When ``True``, silently drop duplicate ``(u, v)`` pairs (bipartite
        interaction data frequently repeats edges); when ``False`` (default),
        duplicates raise :class:`ValueError`.

    Raises
    ------
    ValueError
        On negative layer sizes, endpoints out of range, or (with
        ``dedup=False``) duplicate edges.

    Examples
    --------
    >>> g = BipartiteGraph(2, 3, [(0, 0), (0, 1), (1, 0)])
    >>> g.num_edges
    3
    >>> g.neighbors_of_upper(0).tolist()
    [0, 1]
    >>> indptr, indices, eids = g.csr_upper()
    >>> indices[indptr[0]:indptr[1]].tolist()
    [0, 1]
    """

    def __init__(
        self,
        num_upper: int,
        num_lower: int,
        edges: Iterable[Edge] = (),
        *,
        dedup: bool = False,
    ) -> None:
        if num_upper < 0 or num_lower < 0:
            raise ValueError("layer sizes must be non-negative")
        self._n_u = int(num_upper)
        self._n_l = int(num_lower)

        if isinstance(edges, np.ndarray):
            # Always copy: a zero-copy view here would alias caller-owned
            # memory into the (immutable, frozen) graph.
            pairs = np.array(edges, dtype=np.int64, copy=True).reshape(-1, 2)
        else:
            listed = list(edges)
            pairs = (
                np.asarray(listed, dtype=np.int64).reshape(-1, 2)
                if listed
                else np.empty((0, 2), dtype=np.int64)
            )
        edge_u = np.ascontiguousarray(pairs[:, 0])
        edge_v = np.ascontiguousarray(pairs[:, 1])

        if edge_u.size:
            bad_u = (edge_u < 0) | (edge_u >= self._n_u)
            if bad_u.any():
                offender = int(edge_u[int(np.argmax(bad_u))])
                raise ValueError(
                    f"upper endpoint {offender} out of range [0, {self._n_u})"
                )
            bad_v = (edge_v < 0) | (edge_v >= self._n_l)
            if bad_v.any():
                offender = int(edge_v[int(np.argmax(bad_v))])
                raise ValueError(
                    f"lower endpoint {offender} out of range [0, {self._n_l})"
                )
            # Duplicate detection on the linearized (u, v) codes.  m > 0
            # implies n_l >= 1 (the range check above), so the code is exact.
            codes = edge_u * self._n_l + edge_v
            _unique, first = np.unique(codes, return_index=True)
            if len(first) != len(codes):
                if not dedup:
                    mask = np.ones(len(codes), dtype=bool)
                    mask[first] = False
                    dup = int(np.argmax(mask))
                    raise ValueError(
                        f"duplicate edge ({int(edge_u[dup])}, {int(edge_v[dup])})"
                    )
                keep = np.sort(first)  # first occurrences, original order
                edge_u = edge_u[keep]
                edge_v = edge_v[keep]

        self._edge_u = edge_u
        self._edge_v = edge_v

        # Per-layer CSR.  A stable argsort on the endpoint keeps each row's
        # slots in edge-id order, matching the historical append order.
        m = edge_u.shape[0]
        order_u = np.argsort(edge_u, kind="stable")
        self._up_indptr = np.zeros(self._n_u + 1, dtype=np.int64)
        np.cumsum(np.bincount(edge_u, minlength=self._n_u), out=self._up_indptr[1:])
        self._up_eids = order_u
        self._up_nbrs = edge_v[order_u]

        order_l = np.argsort(edge_v, kind="stable")
        self._lo_indptr = np.zeros(self._n_l + 1, dtype=np.int64)
        np.cumsum(np.bincount(edge_v, minlength=self._n_l), out=self._lo_indptr[1:])
        self._lo_eids = order_l
        self._lo_nbrs = edge_u[order_l]

        _freeze(
            self._edge_u,
            self._edge_v,
            self._up_indptr,
            self._up_nbrs,
            self._up_eids,
            self._lo_indptr,
            self._lo_nbrs,
            self._lo_eids,
        )

        # Lazily-built caches, all derived from the CSR arrays above.
        self._edge_index: Optional[Dict[Edge, int]] = None
        self._gid_csr: Optional[CSR] = None
        self._gid_csr_sorted: Optional[CSR] = None
        self._gid_sorted_prios: Optional[np.ndarray] = None
        self._prio: Optional[np.ndarray] = None
        self._gid_adj: Optional[List[List[int]]] = None
        self._gid_adj_eids: Optional[List[List[int]]] = None

    @classmethod
    def from_csr(
        cls,
        num_upper: int,
        num_lower: int,
        edge_upper: np.ndarray,
        edge_lower: np.ndarray,
        upper_csr: CSR,
        lower_csr: CSR,
        *,
        check: bool = True,
    ) -> "BipartiteGraph":
        """Rehydrate a graph from pre-built endpoint and CSR arrays.

        The normal constructor derives the CSR blocks from the edge list;
        this alternate constructor *installs* arrays that were built (and
        validated) earlier — the fast path for reopening a saved
        :class:`~repro.service.artifacts.DecompositionArtifact`, where the
        arrays come straight out of an ``.npz`` file.

        Parameters
        ----------
        num_upper, num_lower : int
            Layer sizes.
        edge_upper, edge_lower : numpy.ndarray
            Endpoint arrays indexed by edge id.
        upper_csr, lower_csr : tuple of numpy.ndarray
            ``(indptr, indices, edge_ids)`` triples for each layer, laid
            out exactly as :meth:`csr_upper` / :meth:`csr_lower` return
            them.
        check : bool, optional
            When true (default) run the vectorized structural checks
            (:meth:`_validate_arrays`) on the result so a corrupted or
            mismatched array set cannot produce a silently broken graph;
            stays O(m) at numpy speed, no Python-level per-edge loop.

        Returns
        -------
        BipartiteGraph
            A graph sharing (frozen copies of) the supplied arrays.
        """
        if num_upper < 0 or num_lower < 0:
            raise ValueError("layer sizes must be non-negative")
        self = cls.__new__(cls)
        self._n_u = int(num_upper)
        self._n_l = int(num_lower)
        self._edge_u = np.ascontiguousarray(edge_upper, dtype=np.int64)
        self._edge_v = np.ascontiguousarray(edge_lower, dtype=np.int64)
        (self._up_indptr, self._up_nbrs, self._up_eids) = (
            np.ascontiguousarray(a, dtype=np.int64) for a in upper_csr
        )
        (self._lo_indptr, self._lo_nbrs, self._lo_eids) = (
            np.ascontiguousarray(a, dtype=np.int64) for a in lower_csr
        )
        if len(self._up_indptr) != self._n_u + 1:
            raise ValueError("upper indptr length does not match num_upper")
        if len(self._lo_indptr) != self._n_l + 1:
            raise ValueError("lower indptr length does not match num_lower")
        _freeze(
            self._edge_u,
            self._edge_v,
            self._up_indptr,
            self._up_nbrs,
            self._up_eids,
            self._lo_indptr,
            self._lo_nbrs,
            self._lo_eids,
        )
        self._edge_index = None
        self._gid_csr = None
        self._gid_csr_sorted = None
        self._gid_sorted_prios = None
        self._prio = None
        self._gid_adj = None
        self._gid_adj_eids = None
        if check:
            self._validate_arrays()
        return self

    # ------------------------------------------------------------------ size

    @property
    def num_upper(self) -> int:
        """Number of upper-layer vertices ``|U|``."""
        return self._n_u

    @property
    def num_lower(self) -> int:
        """Number of lower-layer vertices ``|L|``."""
        return self._n_l

    @property
    def num_vertices(self) -> int:
        """Total vertex count ``|U| + |L|``."""
        return self._n_u + self._n_l

    @property
    def num_edges(self) -> int:
        """Number of edges ``m``."""
        return self._edge_u.shape[0]

    def __repr__(self) -> str:
        return (
            f"BipartiteGraph(|U|={self._n_u}, |L|={self._n_l}, "
            f"m={self.num_edges})"
        )

    # ----------------------------------------------------------------- edges

    @property
    def edge_upper(self) -> np.ndarray:
        """Read-only ``int64`` array of upper endpoints indexed by edge id."""
        return self._edge_u

    @property
    def edge_lower(self) -> np.ndarray:
        """Read-only ``int64`` array of lower endpoints indexed by edge id."""
        return self._edge_v

    def edge_endpoints(self, eid: int) -> Edge:
        """Return the endpoints of one edge.

        Parameters
        ----------
        eid : int
            Edge id in ``[0, m)``.

        Returns
        -------
        tuple of (int, int)
            The ``(u, v)`` pair of edge ``eid``.

        Examples
        --------
        >>> BipartiteGraph(2, 2, [(1, 0)]).edge_endpoints(0)
        (1, 0)
        """
        return int(self._edge_u[eid]), int(self._edge_v[eid])

    def _index(self) -> Dict[Edge, int]:
        """The lazily-built ``(u, v) -> edge id`` dictionary."""
        if self._edge_index is None:
            self._edge_index = {
                (u, v): eid
                for eid, (u, v) in enumerate(
                    zip(self._edge_u.tolist(), self._edge_v.tolist())
                )
            }
        return self._edge_index

    def edge_id(self, u: int, v: int) -> int:
        """Return the edge id of ``(u, v)``.

        Parameters
        ----------
        u, v : int
            Upper and lower endpoint.

        Returns
        -------
        int
            The dense edge id.

        Raises
        ------
        KeyError
            If the edge is absent.

        Examples
        --------
        >>> BipartiteGraph(2, 2, [(0, 1), (1, 1)]).edge_id(1, 1)
        1
        """
        return self._index()[(int(u), int(v))]

    def has_edge(self, u: int, v: int) -> bool:
        """Return ``True`` if the edge ``(u, v)`` exists.

        Examples
        --------
        >>> BipartiteGraph(1, 1, [(0, 0)]).has_edge(0, 0)
        True
        """
        return (int(u), int(v)) in self._index()

    def edges(self) -> Iterator[Edge]:
        """Iterate over ``(u, v)`` pairs in edge-id order.

        Yields
        ------
        tuple of (int, int)
            One endpoint pair per edge, ordered by edge id.
        """
        yield from zip(self._edge_u.tolist(), self._edge_v.tolist())

    # ----------------------------------------------------------- CSR access

    def csr_upper(self) -> CSR:
        """CSR adjacency of the upper layer.

        Returns
        -------
        tuple of numpy.ndarray
            ``(indptr, indices, edge_ids)`` — row ``u`` spans
            ``indptr[u]:indptr[u + 1]``; ``indices`` holds lower-layer
            neighbour ids and ``edge_ids`` the parallel edge ids.  The
            arrays are shared and read-only (zero-copy).
        """
        return self._up_indptr, self._up_nbrs, self._up_eids

    def csr_lower(self) -> CSR:
        """CSR adjacency of the lower layer.

        Returns
        -------
        tuple of numpy.ndarray
            ``(indptr, indices, edge_ids)`` with upper-layer neighbour ids;
            shared and read-only (zero-copy).
        """
        return self._lo_indptr, self._lo_nbrs, self._lo_eids

    def csr_gid(self) -> CSR:
        """CSR adjacency over *global* vertex ids.

        Rows ``0 .. n_l - 1`` are the lower layer (neighbours are upper gids
        ``n_l + u``); rows ``n_l .. n_l + n_u - 1`` are the upper layer
        (neighbours are lower gids ``v``).  Built once from the per-layer
        CSR blocks and cached; the wedge-processing algorithms are written
        against this layout.

        Returns
        -------
        tuple of numpy.ndarray
            ``(indptr, indices, edge_ids)``, shared and read-only.
        """
        if self._gid_csr is None:
            indptr = np.concatenate(
                (self._lo_indptr, self._lo_indptr[-1] + self._up_indptr[1:])
            )
            indices = np.concatenate((self._lo_nbrs + self._n_l, self._up_nbrs))
            eids = np.concatenate((self._lo_eids, self._up_eids))
            _freeze(indptr, indices, eids)
            self._gid_csr = (indptr, indices, eids)
        return self._gid_csr

    def priorities(self) -> np.ndarray:
        """The Definition 7 vertex ranking, computed once and cached.

        Returns
        -------
        numpy.ndarray
            ``prio[g]`` is the 1-based priority of global vertex ``g``
            (higher degree wins, ties broken by global id); read-only.
        """
        if self._prio is None:
            prio = vertex_priorities(self.degrees())
            _freeze(prio)
            self._prio = prio
        return self._prio

    def csr_gid_sorted(self, priorities: Optional[np.ndarray] = None) -> CSR:
        """Global-id CSR with every row sorted by ascending neighbour priority.

        Priority-sorted rows turn the "priority < p(start)" filters of the
        counting/indexing traversals into prefix lookups
        (``np.searchsorted``) instead of boolean masks.  The default-priority
        variant is built once (one ``np.lexsort`` over all slots) and cached.

        Parameters
        ----------
        priorities : numpy.ndarray, optional
            A custom Definition 7 ranking; when omitted the graph's own
            cached :meth:`priorities` are used and the result is cached too.

        Returns
        -------
        tuple of numpy.ndarray
            ``(indptr, indices, edge_ids)`` — same ``indptr`` object as
            :meth:`csr_gid`, with ``indices``/``edge_ids`` permuted row-wise.
        """
        custom = priorities is not None
        if not custom and self._gid_csr_sorted is not None:
            return self._gid_csr_sorted
        indptr, indices, eids = self.csr_gid()
        prio = np.asarray(priorities) if custom else self.priorities()
        rows = np.repeat(
            np.arange(self.num_vertices, dtype=np.int64), np.diff(indptr)
        )
        # Stable two-key sort: primary row, secondary neighbour priority.
        order = np.lexsort((prio[indices], rows))
        sorted_csr = (indptr, indices[order], eids[order])
        if not custom:
            _freeze(sorted_csr[1], sorted_csr[2])
            self._gid_csr_sorted = sorted_csr
        return sorted_csr

    def csr_gid_sorted_with_prios(
        self, priorities: Optional[np.ndarray] = None
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """:meth:`csr_gid_sorted` plus the per-slot neighbour priorities.

        The traversals all need ``prio[indices]`` (one gather over all
        ``2m`` CSR slots) next to the sorted CSR; for the default ranking it
        is computed once and cached alongside the sorted arrays.

        Parameters
        ----------
        priorities : numpy.ndarray, optional
            A custom Definition 7 ranking; when omitted the cached default
            is used.

        Returns
        -------
        tuple of numpy.ndarray
            ``(indptr, indices, edge_ids, row_prios)`` with
            ``row_prios[slot]`` the priority of ``indices[slot]``.
        """
        custom = priorities is not None
        indptr, indices, eids = self.csr_gid_sorted(priorities)
        if custom:
            return indptr, indices, eids, np.asarray(priorities)[indices]
        if self._gid_sorted_prios is None:
            row_prios = self.priorities()[indices]
            _freeze(row_prios)
            self._gid_sorted_prios = row_prios
        return indptr, indices, eids, self._gid_sorted_prios

    # ------------------------------------------------------------- adjacency

    def neighbors_of_upper(self, u: int) -> np.ndarray:
        """Lower-layer neighbours of upper vertex ``u``.

        Returns
        -------
        numpy.ndarray
            Zero-copy, read-only slice of the upper CSR ``indices`` array.
        """
        return self._up_nbrs[self._up_indptr[u] : self._up_indptr[u + 1]]

    def neighbors_of_lower(self, v: int) -> np.ndarray:
        """Upper-layer neighbours of lower vertex ``v``.

        Returns
        -------
        numpy.ndarray
            Zero-copy, read-only slice of the lower CSR ``indices`` array.
        """
        return self._lo_nbrs[self._lo_indptr[v] : self._lo_indptr[v + 1]]

    def edges_of_upper(self, u: int) -> np.ndarray:
        """Edge ids incident to upper vertex ``u`` (parallel to neighbours).

        Returns
        -------
        numpy.ndarray
            Zero-copy, read-only slice of the upper CSR ``edge_ids`` array.
        """
        return self._up_eids[self._up_indptr[u] : self._up_indptr[u + 1]]

    def edges_of_lower(self, v: int) -> np.ndarray:
        """Edge ids incident to lower vertex ``v`` (parallel to neighbours).

        Returns
        -------
        numpy.ndarray
            Zero-copy, read-only slice of the lower CSR ``edge_ids`` array.
        """
        return self._lo_eids[self._lo_indptr[v] : self._lo_indptr[v + 1]]

    def degree_upper(self, u: int) -> int:
        """Degree of upper vertex ``u``."""
        return int(self._up_indptr[u + 1] - self._up_indptr[u])

    def degree_lower(self, v: int) -> int:
        """Degree of lower vertex ``v``."""
        return int(self._lo_indptr[v + 1] - self._lo_indptr[v])

    def degrees(self) -> np.ndarray:
        """Degrees of all vertices indexed by global id.

        Returns
        -------
        numpy.ndarray
            ``int64`` array of length ``num_vertices``: lower-layer degrees
            first (gids ``0 .. n_l - 1``), then upper-layer degrees.
        """
        return np.concatenate(
            (np.diff(self._lo_indptr), np.diff(self._up_indptr))
        )

    # ------------------------------------------------------------ global ids

    def gid_of_upper(self, u: int) -> int:
        """Global id of upper vertex ``u`` (``n_l + u``)."""
        return self._n_l + u

    def gid_of_lower(self, v: int) -> int:
        """Global id of lower vertex ``v`` (``v``)."""
        return v

    def is_upper_gid(self, gid: int) -> bool:
        """Return ``True`` when ``gid`` denotes an upper-layer vertex."""
        return gid >= self._n_l

    def upper_of_gid(self, gid: int) -> int:
        """Upper-layer id of a global id (caller must know the layer)."""
        return gid - self._n_l

    def adjacency_by_gid(self) -> Tuple[List[List[int]], List[List[int]]]:
        """Legacy list-of-lists adjacency view over global vertex ids.

        This is a thin compatibility view for the scalar reference
        traversals: it is materialized **once** from the gid CSR arrays
        (plain Python ints iterate faster than boxed numpy scalars in
        pure-Python inner loops) and cached on the graph, so no caller ever
        builds its own adjacency copy.

        Returns
        -------
        tuple of (list of list of int, list of list of int)
            ``(adj, adj_eids)`` indexed by global vertex id: ``adj[g]``
            lists neighbour gids of vertex ``g`` and ``adj_eids[g]`` the
            parallel edge ids.
        """
        if self._gid_adj is None:
            indptr, indices, eids = self.csr_gid()
            bounds = indptr.tolist()
            flat_adj = indices.tolist()
            flat_eids = eids.tolist()
            self._gid_adj = [
                flat_adj[bounds[g] : bounds[g + 1]]
                for g in range(self.num_vertices)
            ]
            self._gid_adj_eids = [
                flat_eids[bounds[g] : bounds[g + 1]]
                for g in range(self.num_vertices)
            ]
        assert self._gid_adj_eids is not None
        return self._gid_adj, self._gid_adj_eids

    # ------------------------------------------------------------- subgraphs

    def subgraph_from_edge_ids(
        self, edge_ids: Sequence[int]
    ) -> Tuple["BipartiteGraph", np.ndarray]:
        """Edge-induced subgraph, keeping the original vertex id spaces.

        Parameters
        ----------
        edge_ids : sequence of int
            Edge ids of this graph; duplicates are dropped and the subgraph
            keeps them in ascending original-id order.

        Returns
        -------
        tuple of (BipartiteGraph, numpy.ndarray)
            ``(subgraph, orig_eids)`` where ``orig_eids[new_eid]`` maps a
            subgraph edge id back to this graph's edge id.  Vertex ids are
            *not* relabelled, so vertex-level results transfer directly;
            vertices untouched by the edge subset simply become isolated.

        Examples
        --------
        >>> g = BipartiteGraph(2, 2, [(0, 0), (0, 1), (1, 1)])
        >>> sub, orig = g.subgraph_from_edge_ids([2, 0])
        >>> orig.tolist()
        [0, 2]
        """
        edge_ids = np.unique(np.asarray(edge_ids, dtype=np.int64))
        pairs = np.stack(
            (self._edge_u[edge_ids], self._edge_v[edge_ids]), axis=1
        )
        sub = BipartiteGraph(self._n_u, self._n_l, pairs)
        return sub, edge_ids

    def induced_subgraph(
        self,
        upper_subset: Iterable[int],
        lower_subset: Iterable[int],
        *,
        relabel: bool = True,
    ) -> "BipartiteGraph":
        """Vertex-induced subgraph (used by the Fig. 12 sampling experiment).

        Parameters
        ----------
        upper_subset, lower_subset : iterable of int
            Vertices to keep in each layer.
        relabel : bool, optional
            When true (default) the kept vertices are renumbered densely in
            ascending order of their original id.

        Returns
        -------
        BipartiteGraph
            The subgraph induced by the kept vertices; the edge-membership
            filter is evaluated vectorized over the edge-endpoint arrays.
        """
        upper_ids = np.unique(np.asarray(list(upper_subset), dtype=np.int64))
        lower_ids = np.unique(np.asarray(list(lower_subset), dtype=np.int64))
        mask_u = np.zeros(self._n_u, dtype=bool)
        mask_u[upper_ids[(upper_ids >= 0) & (upper_ids < self._n_u)]] = True
        mask_l = np.zeros(self._n_l, dtype=bool)
        mask_l[lower_ids[(lower_ids >= 0) & (lower_ids < self._n_l)]] = True
        keep = mask_u[self._edge_u] & mask_l[self._edge_v]
        kept_u = self._edge_u[keep]
        kept_v = self._edge_v[keep]
        if not relabel:
            return BipartiteGraph(
                self._n_u, self._n_l, np.stack((kept_u, kept_v), axis=1)
            )
        remap_u = np.zeros(max(self._n_u, int(upper_ids.max()) + 1 if len(upper_ids) else 0), dtype=np.int64)
        remap_u[upper_ids] = np.arange(len(upper_ids))
        remap_l = np.zeros(max(self._n_l, int(lower_ids.max()) + 1 if len(lower_ids) else 0), dtype=np.int64)
        remap_l[lower_ids] = np.arange(len(lower_ids))
        relabelled = np.stack((remap_u[kept_u], remap_l[kept_v]), axis=1)
        return BipartiteGraph(len(upper_ids), len(lower_ids), relabelled)

    # -------------------------------------------------------------- exports

    def to_edge_list(self) -> List[Edge]:
        """Return the edges as a list of ``(u, v)`` pairs in edge-id order."""
        return list(self.edges())

    def copy(self) -> "BipartiteGraph":
        """Return a structural copy (fresh CSR arrays, same edge ids)."""
        return BipartiteGraph(
            self._n_u,
            self._n_l,
            np.stack((self._edge_u, self._edge_v), axis=1),
        )

    def validate(self) -> None:
        """Internal-consistency check used by tests and IO round-trips.

        Runs the vectorized array checks plus a Python-level audit of the
        lazily-built edge-id dictionary.

        Raises
        ------
        AssertionError
            If the edge index, CSR blocks, and endpoint arrays disagree.
        """
        self._validate_arrays()
        if len(self._index()) != self.num_edges:
            raise AssertionError("edge index size mismatch")
        for eid, (u, v) in enumerate(self.edges()):
            if self._index()[(u, v)] != eid:
                raise AssertionError(f"edge index broken at {eid}")

    def _validate_arrays(self) -> None:
        """Vectorized structural checks over the endpoint and CSR arrays.

        Everything :meth:`validate` asserts except the edge-id dictionary
        audit, at numpy speed — this is the integrity gate of the artifact
        fast path (:meth:`from_csr`), where a per-edge Python loop would
        dominate reopen time.

        Raises
        ------
        AssertionError
            If endpoints are out of range, edges repeat, or the CSR blocks
            disagree with the endpoint arrays.
        """
        m = self.num_edges
        if m:
            if (
                (self._edge_u < 0).any()
                or (self._edge_u >= self._n_u).any()
                or (self._edge_v < 0).any()
                or (self._edge_v >= self._n_l).any()
            ):
                raise AssertionError("edge endpoint out of range")
            codes = self._edge_u * self._n_l + self._edge_v
            if len(np.unique(codes)) != m:
                raise AssertionError("duplicate edges")
        for indptr, eids, label in (
            (self._up_indptr, self._up_eids, "upper"),
            (self._lo_indptr, self._lo_eids, "lower"),
        ):
            if int(indptr[-1]) != self.num_edges:
                raise AssertionError(f"{label} CSR/edge count mismatch")
            if (np.diff(indptr) < 0).any():
                raise AssertionError(f"{label} indptr not monotone")
            if len(eids) and (
                int(eids.min()) < 0 or int(eids.max()) >= self.num_edges
            ):
                raise AssertionError(f"{label} CSR edge id out of range")
            if len(np.unique(eids)) != self.num_edges:
                raise AssertionError(f"{label} CSR edge ids not a permutation")
        # Endpoint consistency: each upper-CSR slot (u, nbrs[slot]) must be
        # the endpoints of eids[slot].
        rows_u = np.repeat(
            np.arange(self._n_u, dtype=np.int64), np.diff(self._up_indptr)
        )
        if not (
            np.array_equal(self._edge_u[self._up_eids], rows_u)
            and np.array_equal(self._edge_v[self._up_eids], self._up_nbrs)
        ):
            raise AssertionError("upper CSR disagrees with edge endpoints")
        rows_l = np.repeat(
            np.arange(self._n_l, dtype=np.int64), np.diff(self._lo_indptr)
        )
        if not (
            np.array_equal(self._edge_v[self._lo_eids], rows_l)
            and np.array_equal(self._edge_u[self._lo_eids], self._lo_nbrs)
        ):
            raise AssertionError("lower CSR disagrees with edge endpoints")


class LabelMap:
    """A bidirectional mapping between external labels and dense ids.

    Used by IO and the application modules so that user-facing code can work
    with author names, page urls, product SKUs, etc. while the algorithms see
    dense integers.

    Examples
    --------
    >>> lm = LabelMap()
    >>> lm.intern("alice")
    0
    >>> lm.label_of(0)
    'alice'
    """

    def __init__(self) -> None:
        self._to_id: Dict[Hashable, int] = {}
        self._to_label: List[Hashable] = []

    def __len__(self) -> int:
        return len(self._to_label)

    def __contains__(self, label: Hashable) -> bool:
        return label in self._to_id

    def intern(self, label: Hashable) -> int:
        """Return the id of ``label``, assigning the next id if new."""
        existing = self._to_id.get(label)
        if existing is not None:
            return existing
        new_id = len(self._to_label)
        self._to_id[label] = new_id
        self._to_label.append(label)
        return new_id

    def id_of(self, label: Hashable) -> int:
        """Return the id of a known ``label`` (``KeyError`` if unknown)."""
        return self._to_id[label]

    def label_of(self, idx: int) -> Hashable:
        """Return the label stored at ``idx``."""
        return self._to_label[idx]

    def labels(self) -> List[Hashable]:
        """All labels in id order."""
        return list(self._to_label)


def build_labeled_graph(
    pairs: Iterable[Tuple[Hashable, Hashable]],
    *,
    dedup: bool = True,
) -> Tuple[BipartiteGraph, LabelMap, LabelMap]:
    """Build a graph from labelled pairs, returning both label maps.

    Parameters
    ----------
    pairs : iterable of (hashable, hashable)
        ``(upper_label, lower_label)`` interactions.
    dedup : bool, optional
        Drop duplicate interactions instead of raising (default ``True``).

    Returns
    -------
    tuple of (BipartiteGraph, LabelMap, LabelMap)
        The graph plus the upper- and lower-layer label maps.

    Examples
    --------
    >>> g, upper, lower = build_labeled_graph([("alice", "p1"), ("bob", "p1")])
    >>> g.has_edge(upper.id_of("bob"), lower.id_of("p1"))
    True
    """
    upper = LabelMap()
    lower = LabelMap()
    edges = [(upper.intern(a), lower.intern(b)) for a, b in pairs]
    graph = BipartiteGraph(len(upper), len(lower), edges, dedup=dedup)
    return graph, upper, lower

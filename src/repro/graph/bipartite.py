"""The core bipartite-graph structure.

Vertices live in two disjoint layers: *upper* vertices ``0 .. n_u - 1`` and
*lower* vertices ``0 .. n_l - 1``, each in its own id space.  Edges connect an
upper vertex to a lower vertex and carry dense integer ids ``0 .. m - 1``; all
per-edge algorithm state (butterfly supports, bitruss numbers, queue keys) is
stored in arrays indexed by edge id.

Global ids
----------
Several algorithms (vertex-priority counting, BE-Index construction) iterate
over *all* vertices regardless of layer.  The *global id* linearizes the two
layers as::

    gid(v in L) = v
    gid(u in U) = n_l + u

which also realizes the paper's convention that every upper-layer id is
larger than every lower-layer id (used by the priority tie-break of
Definition 7).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

Edge = Tuple[int, int]


class BipartiteGraph:
    """An undirected bipartite graph with dense vertex and edge ids.

    Parameters
    ----------
    num_upper, num_lower:
        Sizes of the two vertex layers.
    edges:
        Iterable of ``(u, v)`` pairs with ``0 <= u < num_upper`` and
        ``0 <= v < num_lower``.  Edge ids are assigned in iteration order.
    dedup:
        When ``True``, silently drop duplicate ``(u, v)`` pairs (bipartite
        interaction data frequently repeats edges); when ``False``,
        duplicates raise :class:`ValueError`.
    """

    def __init__(
        self,
        num_upper: int,
        num_lower: int,
        edges: Iterable[Edge] = (),
        *,
        dedup: bool = False,
    ) -> None:
        if num_upper < 0 or num_lower < 0:
            raise ValueError("layer sizes must be non-negative")
        self._n_u = int(num_upper)
        self._n_l = int(num_lower)

        edge_index: Dict[Edge, int] = {}
        edge_u: List[int] = []
        edge_v: List[int] = []
        for u, v in edges:
            u = int(u)
            v = int(v)
            if not (0 <= u < self._n_u):
                raise ValueError(f"upper endpoint {u} out of range [0, {self._n_u})")
            if not (0 <= v < self._n_l):
                raise ValueError(f"lower endpoint {v} out of range [0, {self._n_l})")
            if (u, v) in edge_index:
                if dedup:
                    continue
                raise ValueError(f"duplicate edge ({u}, {v})")
            edge_index[(u, v)] = len(edge_u)
            edge_u.append(u)
            edge_v.append(v)

        self._edge_index = edge_index
        self._edge_u = np.asarray(edge_u, dtype=np.int64)
        self._edge_v = np.asarray(edge_v, dtype=np.int64)

        self._adj_upper: List[List[int]] = [[] for _ in range(self._n_u)]
        self._adj_lower: List[List[int]] = [[] for _ in range(self._n_l)]
        # Parallel edge-id lists, so a neighbour scan also yields edge ids.
        self._adj_upper_eids: List[List[int]] = [[] for _ in range(self._n_u)]
        self._adj_lower_eids: List[List[int]] = [[] for _ in range(self._n_l)]
        for eid in range(len(edge_u)):
            u = edge_u[eid]
            v = edge_v[eid]
            self._adj_upper[u].append(v)
            self._adj_upper_eids[u].append(eid)
            self._adj_lower[v].append(u)
            self._adj_lower_eids[v].append(eid)

        self._gid_adj: Optional[List[List[int]]] = None
        self._gid_adj_eids: Optional[List[List[int]]] = None

    # ------------------------------------------------------------------ size

    @property
    def num_upper(self) -> int:
        """Number of upper-layer vertices ``|U|``."""
        return self._n_u

    @property
    def num_lower(self) -> int:
        """Number of lower-layer vertices ``|L|``."""
        return self._n_l

    @property
    def num_vertices(self) -> int:
        """Total vertex count ``|U| + |L|``."""
        return self._n_u + self._n_l

    @property
    def num_edges(self) -> int:
        """Number of edges ``m``."""
        return self._edge_u.shape[0]

    def __repr__(self) -> str:
        return (
            f"BipartiteGraph(|U|={self._n_u}, |L|={self._n_l}, "
            f"m={self.num_edges})"
        )

    # ----------------------------------------------------------------- edges

    @property
    def edge_upper(self) -> np.ndarray:
        """Array of upper endpoints indexed by edge id."""
        return self._edge_u

    @property
    def edge_lower(self) -> np.ndarray:
        """Array of lower endpoints indexed by edge id."""
        return self._edge_v

    def edge_endpoints(self, eid: int) -> Edge:
        """Return ``(u, v)`` for edge id ``eid``."""
        return int(self._edge_u[eid]), int(self._edge_v[eid])

    def edge_id(self, u: int, v: int) -> int:
        """Return the edge id of ``(u, v)``; raises ``KeyError`` if absent."""
        return self._edge_index[(u, v)]

    def has_edge(self, u: int, v: int) -> bool:
        """Return ``True`` if the edge ``(u, v)`` exists."""
        return (u, v) in self._edge_index

    def edges(self) -> Iterator[Edge]:
        """Iterate over ``(u, v)`` pairs in edge-id order."""
        for eid in range(self.num_edges):
            yield int(self._edge_u[eid]), int(self._edge_v[eid])

    # ------------------------------------------------------------- adjacency

    def neighbors_of_upper(self, u: int) -> List[int]:
        """Lower-layer neighbours of upper vertex ``u``."""
        return self._adj_upper[u]

    def neighbors_of_lower(self, v: int) -> List[int]:
        """Upper-layer neighbours of lower vertex ``v``."""
        return self._adj_lower[v]

    def edges_of_upper(self, u: int) -> List[int]:
        """Edge ids incident to upper vertex ``u`` (parallel to neighbours)."""
        return self._adj_upper_eids[u]

    def edges_of_lower(self, v: int) -> List[int]:
        """Edge ids incident to lower vertex ``v`` (parallel to neighbours)."""
        return self._adj_lower_eids[v]

    def degree_upper(self, u: int) -> int:
        """Degree of upper vertex ``u``."""
        return len(self._adj_upper[u])

    def degree_lower(self, v: int) -> int:
        """Degree of lower vertex ``v``."""
        return len(self._adj_lower[v])

    def degrees(self) -> np.ndarray:
        """Degrees of all vertices indexed by global id."""
        deg = np.zeros(self.num_vertices, dtype=np.int64)
        for v in range(self._n_l):
            deg[v] = len(self._adj_lower[v])
        for u in range(self._n_u):
            deg[self._n_l + u] = len(self._adj_upper[u])
        return deg

    # ------------------------------------------------------------ global ids

    def gid_of_upper(self, u: int) -> int:
        """Global id of upper vertex ``u``."""
        return self._n_l + u

    def gid_of_lower(self, v: int) -> int:
        """Global id of lower vertex ``v``."""
        return v

    def is_upper_gid(self, gid: int) -> bool:
        """Return ``True`` when ``gid`` denotes an upper-layer vertex."""
        return gid >= self._n_l

    def upper_of_gid(self, gid: int) -> int:
        """Upper-layer id of a global id (caller must know the layer)."""
        return gid - self._n_l

    def adjacency_by_gid(self) -> Tuple[List[List[int]], List[List[int]]]:
        """Return ``(adj, adj_eids)`` indexed by global vertex id.

        ``adj[g]`` lists neighbour global ids of vertex ``g`` and
        ``adj_eids[g]`` the parallel edge ids.  Built once and cached; the
        wedge-processing algorithms are written against this view.
        """
        if self._gid_adj is None:
            n_l = self._n_l
            adj: List[List[int]] = [[] for _ in range(self.num_vertices)]
            adj_eids: List[List[int]] = [[] for _ in range(self.num_vertices)]
            for v in range(n_l):
                adj[v] = [n_l + u for u in self._adj_lower[v]]
                adj_eids[v] = list(self._adj_lower_eids[v])
            for u in range(self._n_u):
                adj[n_l + u] = list(self._adj_upper[u])
                adj_eids[n_l + u] = list(self._adj_upper_eids[u])
            self._gid_adj = adj
            self._gid_adj_eids = adj_eids
        assert self._gid_adj_eids is not None
        return self._gid_adj, self._gid_adj_eids

    # ------------------------------------------------------------- subgraphs

    def subgraph_from_edge_ids(
        self, edge_ids: Sequence[int]
    ) -> Tuple["BipartiteGraph", np.ndarray]:
        """Edge-induced subgraph, keeping the original vertex id spaces.

        Returns ``(subgraph, orig_eids)`` where ``orig_eids[new_eid]`` maps a
        subgraph edge id back to this graph's edge id.  Vertex ids are *not*
        relabelled, so vertex-level results transfer directly; vertices
        untouched by the edge subset simply become isolated.
        """
        edge_ids = np.asarray(sorted(set(int(e) for e in edge_ids)), dtype=np.int64)
        pairs = [(int(self._edge_u[e]), int(self._edge_v[e])) for e in edge_ids]
        sub = BipartiteGraph(self._n_u, self._n_l, pairs)
        return sub, edge_ids

    def induced_subgraph(
        self,
        upper_subset: Iterable[int],
        lower_subset: Iterable[int],
        *,
        relabel: bool = True,
    ) -> "BipartiteGraph":
        """Vertex-induced subgraph (used by the Fig. 12 sampling experiment).

        When ``relabel`` is true (default) the kept vertices are renumbered
        densely in ascending order of their original id.
        """
        upper_set = set(int(u) for u in upper_subset)
        lower_set = set(int(v) for v in lower_subset)
        kept = [
            (u, v)
            for u, v in self.edges()
            if u in upper_set and v in lower_set
        ]
        if not relabel:
            return BipartiteGraph(self._n_u, self._n_l, kept)
        upper_map = {u: i for i, u in enumerate(sorted(upper_set))}
        lower_map = {v: i for i, v in enumerate(sorted(lower_set))}
        relabelled = [(upper_map[u], lower_map[v]) for u, v in kept]
        return BipartiteGraph(len(upper_map), len(lower_map), relabelled)

    # -------------------------------------------------------------- exports

    def to_edge_list(self) -> List[Edge]:
        """Return the edges as a list of ``(u, v)`` pairs."""
        return list(self.edges())

    def copy(self) -> "BipartiteGraph":
        """Return a structural copy (fresh adjacency, same edge ids)."""
        return BipartiteGraph(self._n_u, self._n_l, self.edges())

    def validate(self) -> None:
        """Internal-consistency check used by tests and IO round-trips."""
        if len(self._edge_index) != self.num_edges:
            raise AssertionError("edge index size mismatch")
        for eid, (u, v) in enumerate(self.edges()):
            if self._edge_index[(u, v)] != eid:
                raise AssertionError(f"edge index broken at {eid}")
        deg_sum_u = sum(len(a) for a in self._adj_upper)
        deg_sum_l = sum(len(a) for a in self._adj_lower)
        if deg_sum_u != self.num_edges or deg_sum_l != self.num_edges:
            raise AssertionError("adjacency/edge count mismatch")


class LabelMap:
    """A bidirectional mapping between external labels and dense ids.

    Used by IO and the application modules so that user-facing code can work
    with author names, page urls, product SKUs, etc. while the algorithms see
    dense integers.
    """

    def __init__(self) -> None:
        self._to_id: Dict[Hashable, int] = {}
        self._to_label: List[Hashable] = []

    def __len__(self) -> int:
        return len(self._to_label)

    def __contains__(self, label: Hashable) -> bool:
        return label in self._to_id

    def intern(self, label: Hashable) -> int:
        """Return the id of ``label``, assigning the next id if new."""
        existing = self._to_id.get(label)
        if existing is not None:
            return existing
        new_id = len(self._to_label)
        self._to_id[label] = new_id
        self._to_label.append(label)
        return new_id

    def id_of(self, label: Hashable) -> int:
        """Return the id of a known ``label`` (``KeyError`` if unknown)."""
        return self._to_id[label]

    def label_of(self, idx: int) -> Hashable:
        """Return the label stored at ``idx``."""
        return self._to_label[idx]

    def labels(self) -> List[Hashable]:
        """All labels in id order."""
        return list(self._to_label)


def build_labeled_graph(
    pairs: Iterable[Tuple[Hashable, Hashable]],
    *,
    dedup: bool = True,
) -> Tuple[BipartiteGraph, LabelMap, LabelMap]:
    """Build a graph from labelled pairs, returning both label maps.

    ``pairs`` yields ``(upper_label, lower_label)``.  Duplicate interactions
    are dropped by default (``dedup=True``).
    """
    upper = LabelMap()
    lower = LabelMap()
    edges = [(upper.intern(a), lower.intern(b)) for a, b in pairs]
    graph = BipartiteGraph(len(upper), len(lower), edges, dedup=dedup)
    return graph, upper, lower

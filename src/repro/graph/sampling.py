"""Vertex sampling for the scalability experiment (paper Fig. 12).

The paper varies graph size by sampling 20%–100% of the vertices uniformly at
random and taking the induced subgraph.  :func:`sample_vertices` reproduces
that procedure deterministically.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.graph.bipartite import BipartiteGraph


def sample_vertices(
    graph: BipartiteGraph,
    fraction: float,
    *,
    seed: Optional[int] = None,
    relabel: bool = True,
) -> BipartiteGraph:
    """Return the subgraph induced by a uniform ``fraction`` of each layer.

    Sampling is per-layer (so a 20% sample keeps ~20% of the upper *and*
    ~20% of the lower vertices), matching the paper's setup of sampling
    vertices of the original graphs.  The induced-subgraph filter is a
    vectorized mask over the graph's edge-endpoint arrays, so sampling a
    million-edge graph costs one boolean pass, not an edge-by-edge walk.
    """
    if not (0.0 < fraction <= 1.0):
        raise ValueError("fraction must be in (0, 1]")
    if fraction == 1.0:
        return graph.copy() if relabel else graph
    rng = np.random.default_rng(seed)
    keep_u = max(1, int(round(fraction * graph.num_upper)))
    keep_l = max(1, int(round(fraction * graph.num_lower)))
    upper = rng.choice(graph.num_upper, size=keep_u, replace=False)
    lower = rng.choice(graph.num_lower, size=keep_l, replace=False)
    return graph.induced_subgraph(upper.tolist(), lower.tolist(), relabel=relabel)


def nested_sample_fractions(
    graph: BipartiteGraph,
    fractions: Sequence[float],
    *,
    seed: Optional[int] = None,
    relabel: bool = True,
) -> List[BipartiteGraph]:
    """Nested induced subgraphs for a scalability sweep.

    One random permutation is drawn per layer and each fraction takes a
    prefix of it, so the 40% sample is contained in the 60% sample and edge
    counts grow monotonically with the fraction.  On heavy-tailed graphs
    this avoids the sampling noise of independent draws (whether a single
    hub vertex lands in the sample dominates the edge count), which matters
    at our reduced scales.
    """
    for fraction in fractions:
        if not (0.0 < fraction <= 1.0):
            raise ValueError("fractions must be in (0, 1]")
    rng = np.random.default_rng(seed)
    perm_u = rng.permutation(graph.num_upper)
    perm_l = rng.permutation(graph.num_lower)
    samples = []
    for fraction in fractions:
        keep_u = max(1, int(round(fraction * graph.num_upper)))
        keep_l = max(1, int(round(fraction * graph.num_lower)))
        samples.append(
            graph.induced_subgraph(
                perm_u[:keep_u].tolist(),
                perm_l[:keep_l].tolist(),
                relabel=relabel,
            )
        )
    return samples

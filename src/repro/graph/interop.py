"""Interoperability with the scientific-Python ecosystem.

Conversions between :class:`~repro.graph.bipartite.BipartiteGraph` and

* **networkx** bipartite graphs (nodes carry the conventional
  ``bipartite=0/1`` attribute; upper vertices are labelled ``("u", i)`` and
  lower vertices ``("l", j)`` to keep the layers unambiguous),
* dense **biadjacency matrices** (numpy), and
* sparse biadjacency matrices (**scipy.sparse**).

These let downstream users feed interaction data they already hold in other
libraries straight into the decomposition algorithms.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.graph.bipartite import BipartiteGraph


def to_biadjacency(graph: BipartiteGraph) -> np.ndarray:
    """Dense 0/1 biadjacency matrix, rows = upper layer."""
    matrix = np.zeros((graph.num_upper, graph.num_lower), dtype=np.int8)
    matrix[graph.edge_upper, graph.edge_lower] = 1
    return matrix


def from_biadjacency(matrix: np.ndarray) -> BipartiteGraph:
    """Graph from a dense biadjacency matrix (non-zero entries = edges)."""
    matrix = np.asarray(matrix)
    if matrix.ndim != 2:
        raise ValueError("biadjacency matrix must be 2-dimensional")
    rows, cols = np.nonzero(matrix)
    edges = list(zip(rows.tolist(), cols.tolist()))
    return BipartiteGraph(matrix.shape[0], matrix.shape[1], edges)


def to_scipy_sparse(graph: BipartiteGraph):
    """Sparse CSR biadjacency matrix (requires scipy)."""
    from scipy import sparse

    data = np.ones(graph.num_edges, dtype=np.int8)
    return sparse.csr_matrix(
        (data, (graph.edge_upper, graph.edge_lower)),
        shape=(graph.num_upper, graph.num_lower),
    )


def from_scipy_sparse(matrix) -> BipartiteGraph:
    """Graph from any scipy sparse biadjacency matrix."""
    coo = matrix.tocoo()
    edges = sorted(set(zip(coo.row.tolist(), coo.col.tolist())))
    return BipartiteGraph(matrix.shape[0], matrix.shape[1], edges)


def to_networkx(graph: BipartiteGraph):
    """networkx.Graph with ``bipartite`` node attributes.

    Upper vertex ``i`` becomes node ``("u", i)`` with ``bipartite=0``; lower
    vertex ``j`` becomes ``("l", j)`` with ``bipartite=1``.
    """
    import networkx as nx

    g = nx.Graph()
    g.add_nodes_from((("u", i) for i in range(graph.num_upper)), bipartite=0)
    g.add_nodes_from((("l", j) for j in range(graph.num_lower)), bipartite=1)
    g.add_edges_from((("u", u), ("l", v)) for u, v in graph.edges())
    return g


def from_networkx(nx_graph) -> Tuple[BipartiteGraph, dict, dict]:
    """Graph from a networkx bipartite graph.

    Layers are read from the ``bipartite`` node attribute (0 = upper,
    1 = lower).  Returns ``(graph, upper_map, lower_map)`` where the maps
    translate original node labels to dense layer ids.

    Raises
    ------
    ValueError
        If any node lacks the ``bipartite`` attribute or an edge connects
        two nodes of the same layer.
    """
    uppers = []
    lowers = []
    for node, data in nx_graph.nodes(data=True):
        side = data.get("bipartite")
        if side == 0:
            uppers.append(node)
        elif side == 1:
            lowers.append(node)
        else:
            raise ValueError(f"node {node!r} lacks a 0/1 'bipartite' attribute")
    upper_map = {node: i for i, node in enumerate(sorted(uppers, key=repr))}
    lower_map = {node: j for j, node in enumerate(sorted(lowers, key=repr))}
    edges = []
    for a, b in nx_graph.edges():
        if a in upper_map and b in lower_map:
            edges.append((upper_map[a], lower_map[b]))
        elif b in upper_map and a in lower_map:
            edges.append((upper_map[b], lower_map[a]))
        else:
            raise ValueError(f"edge ({a!r}, {b!r}) is not between the two layers")
    graph = BipartiteGraph(len(upper_map), len(lower_map), sorted(set(edges)))
    return graph, upper_map, lower_map

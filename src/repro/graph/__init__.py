"""Bipartite-graph substrate: core structure, IO, generators and sampling."""

from repro.graph.bipartite import BipartiteGraph, LabelMap
from repro.graph.generators import (
    affiliation_bipartite,
    chung_lu_bipartite,
    erdos_renyi_bipartite,
    nested_communities,
    planted_bloom,
)
from repro.graph.io import load_edge_list, save_edge_list
from repro.graph.sampling import sample_vertices

__all__ = [
    "BipartiteGraph",
    "LabelMap",
    "affiliation_bipartite",
    "chung_lu_bipartite",
    "erdos_renyi_bipartite",
    "load_edge_list",
    "nested_communities",
    "planted_bloom",
    "sample_vertices",
    "save_edge_list",
]

"""Bipartite-graph substrate: core structure, IO, generators and sampling."""

from repro.graph.bipartite import BipartiteGraph, LabelMap
from repro.graph.generators import (
    affiliation_bipartite,
    chung_lu_bipartite,
    chung_lu_edge_chunks,
    configuration_model_edge_chunks,
    erdos_renyi_bipartite,
    erdos_renyi_edge_chunks,
    nested_communities,
    planted_bloom,
)
from repro.graph.io import (
    edges_to_csr_chunked,
    iter_edge_chunks,
    load_edge_list,
    load_edge_list_streaming,
    save_edge_list,
    write_edge_chunks,
)
from repro.graph.sampling import sample_vertices

__all__ = [
    "BipartiteGraph",
    "LabelMap",
    "affiliation_bipartite",
    "chung_lu_bipartite",
    "chung_lu_edge_chunks",
    "configuration_model_edge_chunks",
    "edges_to_csr_chunked",
    "erdos_renyi_bipartite",
    "erdos_renyi_edge_chunks",
    "iter_edge_chunks",
    "load_edge_list",
    "load_edge_list_streaming",
    "nested_communities",
    "planted_bloom",
    "sample_vertices",
    "save_edge_list",
    "write_edge_chunks",
]

"""Synthetic bipartite-graph generators.

The paper evaluates on 15 KONECT datasets that we cannot download in this
offline environment, so :mod:`repro.datasets` builds named stand-ins on top of
the generators here.  Two properties of the real datasets drive the paper's
results, and the generators are designed to reproduce both:

* **skewed (power-law) degree distributions** — the source of *hub edges*
  whose butterfly support vastly exceeds their bitruss number (§V-C);
  :func:`chung_lu_bipartite` provides this.
* **dense nested blocks** — the source of non-trivial bitruss hierarchies;
  :func:`nested_communities` and :func:`affiliation_bipartite` provide this.

All generators are deterministic given ``seed``.

Streaming variants
------------------
The in-memory samplers above hold a Python ``set`` of edge tuples —
~150 bytes per edge, which caps them two orders of magnitude short of the
paper's dataset sizes.  The ``*_edge_chunks`` generators
(:func:`chung_lu_edge_chunks`, :func:`erdos_renyi_edge_chunks`,
:func:`configuration_model_edge_chunks`) sample the same models but yield
``(n, 2)`` ``int64`` numpy chunks, deduplicating across chunks with one
sorted ``int64`` code array (8 bytes per edge).  Chunks stream straight to
disk via :func:`repro.graph.io.write_edge_chunks`, so 1M–10M-edge
workloads are generated without ever materializing the graph.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.graph.bipartite import BipartiteGraph


def _rng(seed: Optional[int]) -> np.random.Generator:
    return np.random.default_rng(seed)


def erdos_renyi_bipartite(
    num_upper: int,
    num_lower: int,
    num_edges: int,
    *,
    seed: Optional[int] = None,
) -> BipartiteGraph:
    """G(n_u, n_l, m): ``num_edges`` distinct edges drawn uniformly."""
    total = num_upper * num_lower
    if num_edges > total:
        raise ValueError(f"cannot place {num_edges} edges in a {num_upper}x{num_lower} grid")
    rng = _rng(seed)
    if total <= 4_000_000:
        flat = rng.choice(total, size=num_edges, replace=False).astype(np.int64)
        # (m, 2) endpoint array, fed zero-copy to the CSR constructor.
        edges = np.stack((flat // num_lower, flat % num_lower), axis=1)
    else:
        chosen: Set[Tuple[int, int]] = set()
        while len(chosen) < num_edges:
            u = int(rng.integers(num_upper))
            v = int(rng.integers(num_lower))
            chosen.add((u, v))
        edges = sorted(chosen)
    return BipartiteGraph(num_upper, num_lower, edges)


def power_law_weights(
    n: int,
    exponent: float,
    *,
    rng: np.random.Generator,
    min_weight: float = 1.0,
    max_weight: Optional[float] = None,
) -> np.ndarray:
    """Draw ``n`` Pareto-distributed expected-degree weights.

    ``max_weight`` clips the tail so that extremely heavy distributions
    (exponent close to 1) cannot concentrate almost all edge probability on
    one vertex, which would stall distinct-edge rejection sampling.
    """
    if exponent <= 1.0:
        raise ValueError("power-law exponent must exceed 1")
    # Inverse-CDF sampling of a Pareto(alpha = exponent - 1) distribution.
    uniform = rng.random(n)
    weights = min_weight * (1.0 - uniform) ** (-1.0 / (exponent - 1.0))
    if max_weight is not None:
        np.clip(weights, None, max_weight, out=weights)
    return weights


def chung_lu_bipartite(
    num_upper: int,
    num_lower: int,
    num_edges: int,
    *,
    exponent_upper: float = 2.2,
    exponent_lower: float = 2.2,
    seed: Optional[int] = None,
    max_tries_factor: int = 30,
    max_weight_fraction: float = 0.35,
) -> BipartiteGraph:
    """A bipartite Chung–Lu model with power-law expected degrees.

    Endpoints of each edge are drawn independently with probability
    proportional to per-vertex Pareto weights, then duplicates are rejected.
    Smaller exponents give heavier tails (more skew, stronger hub edges);
    per-layer weights are clipped so no vertex exceeds
    ``max_weight_fraction`` of its layer's opposite-side slots, keeping
    rejection sampling effective.
    """
    rng = _rng(seed)
    w_u = power_law_weights(
        num_upper,
        exponent_upper,
        rng=rng,
        max_weight=max(1.0, max_weight_fraction * num_lower),
    )
    w_l = power_law_weights(
        num_lower,
        exponent_lower,
        rng=rng,
        max_weight=max(1.0, max_weight_fraction * num_upper),
    )
    p_u = w_u / w_u.sum()
    p_l = w_l / w_l.sum()

    chosen: Set[Tuple[int, int]] = set()
    budget = max_tries_factor * num_edges
    batch = max(1024, num_edges)
    while len(chosen) < num_edges and budget > 0:
        take = min(batch, budget)
        us = rng.choice(num_upper, size=take, p=p_u)
        vs = rng.choice(num_lower, size=take, p=p_l)
        for u, v in zip(us, vs):
            chosen.add((int(u), int(v)))
            if len(chosen) >= num_edges:
                break
        budget -= take
    if len(chosen) < num_edges:
        raise RuntimeError(
            "chung_lu_bipartite could not place the requested number of "
            "distinct edges; lower num_edges or raise max_tries_factor"
        )
    return BipartiteGraph(num_upper, num_lower, sorted(chosen))


def _check_code_space(num_upper: int, num_lower: int) -> None:
    """Linearized ``u * num_lower + v`` codes must fit in int64."""
    if num_upper > 0 and num_lower > 0 and num_upper > (2**62) // num_lower:
        raise ValueError(
            "vertex-id space too large to linearize into int64 codes"
        )


def _filter_new_codes(codes: np.ndarray, seen: np.ndarray) -> np.ndarray:
    """Codes not yet in the sorted ``seen`` array, first occurrence kept,
    original order preserved (one sorted-array membership pass)."""
    _unique, first = np.unique(codes, return_index=True)
    codes = codes[np.sort(first)]
    if seen.size:
        pos = np.searchsorted(seen, codes)
        pos[pos == seen.size] = seen.size - 1
        codes = codes[seen[pos] != codes]
    return codes


def _rejection_sample_chunks(
    draw,
    num_edges: int,
    num_lower: int,
    *,
    chunk_edges: int,
    budget: int,
    model: str,
) -> Iterator[np.ndarray]:
    """Shared chunked rejection-sampling loop over linearized edge codes.

    ``draw(take)`` returns ``take`` candidate codes; distinct codes are
    accumulated in one sorted ``int64`` array (the only cross-chunk state)
    and yielded as ``(n, 2)`` endpoint chunks in generation order.
    """
    seen = np.empty(0, dtype=np.int64)
    emitted = 0
    while emitted < num_edges:
        if budget <= 0:
            raise RuntimeError(
                f"{model} could not place the requested number of distinct "
                "edges; lower num_edges or raise max_tries_factor"
            )
        take = min(max(1024, chunk_edges), budget)
        budget -= take
        fresh = _filter_new_codes(draw(take), seen)
        if not fresh.size:
            continue
        fresh = fresh[: num_edges - emitted]
        seen = np.union1d(seen, fresh)
        emitted += fresh.size
        yield np.stack((fresh // num_lower, fresh % num_lower), axis=1)


def erdos_renyi_edge_chunks(
    num_upper: int,
    num_lower: int,
    num_edges: int,
    *,
    seed: Optional[int] = None,
    chunk_edges: int = 1 << 18,
    max_tries_factor: int = 30,
) -> Iterator[np.ndarray]:
    """Streaming G(n_u, n_l, m): uniform distinct edges in numpy chunks.

    The out-of-core counterpart of :func:`erdos_renyi_bipartite` — same
    model, but edges arrive as ``(n, 2)`` ``int64`` chunks and the only
    per-edge state is one sorted code array (8 bytes/edge).
    """
    _check_code_space(num_upper, num_lower)
    total = num_upper * num_lower
    if num_edges > total:
        raise ValueError(
            f"cannot place {num_edges} edges in a {num_upper}x{num_lower} grid"
        )
    rng = _rng(seed)

    def draw(take: int) -> np.ndarray:
        return rng.integers(total, size=take, dtype=np.int64)

    yield from _rejection_sample_chunks(
        draw,
        num_edges,
        num_lower,
        chunk_edges=chunk_edges,
        budget=max(max_tries_factor * num_edges, 4 * num_edges),
        model="erdos_renyi_edge_chunks",
    )


def chung_lu_edge_chunks(
    num_upper: int,
    num_lower: int,
    num_edges: int,
    *,
    exponent_upper: float = 2.2,
    exponent_lower: float = 2.2,
    seed: Optional[int] = None,
    chunk_edges: int = 1 << 18,
    max_tries_factor: int = 30,
    max_weight_fraction: float = 0.35,
) -> Iterator[np.ndarray]:
    """Streaming bipartite Chung–Lu sampling in numpy chunks.

    Same model and parameters as :func:`chung_lu_bipartite` (power-law
    expected degrees, clipped tails, rejection of duplicates), but edges
    are yielded as ``(n, 2)`` ``int64`` chunks with cross-chunk dedup on
    one sorted code array — no Python set, no materialized graph.  Feed
    the chunks to :func:`repro.graph.io.write_edge_chunks` to put a
    million-edge workload on disk, or to
    :func:`repro.graph.io.edges_to_csr_chunked` to build the graph.
    """
    _check_code_space(num_upper, num_lower)
    rng = _rng(seed)
    w_u = power_law_weights(
        num_upper,
        exponent_upper,
        rng=rng,
        max_weight=max(1.0, max_weight_fraction * num_lower),
    )
    w_l = power_law_weights(
        num_lower,
        exponent_lower,
        rng=rng,
        max_weight=max(1.0, max_weight_fraction * num_upper),
    )
    p_u = w_u / w_u.sum()
    p_l = w_l / w_l.sum()

    def draw(take: int) -> np.ndarray:
        us = rng.choice(num_upper, size=take, p=p_u).astype(np.int64)
        vs = rng.choice(num_lower, size=take, p=p_l).astype(np.int64)
        return us * num_lower + vs

    yield from _rejection_sample_chunks(
        draw,
        num_edges,
        num_lower,
        chunk_edges=chunk_edges,
        budget=max_tries_factor * num_edges,
        model="chung_lu_edge_chunks",
    )


def configuration_model_edge_chunks(
    upper_degrees: Sequence[int],
    lower_degrees: Sequence[int],
    *,
    seed: Optional[int] = None,
    chunk_edges: int = 1 << 18,
) -> Iterator[np.ndarray]:
    """Streaming bipartite configuration model in numpy chunks.

    The scale variant of :func:`configuration_model_bipartite`: stubs are
    matched by one shuffle and **duplicate pairings are dropped** (instead
    of rewired), so degrees are near-exact — the standard compromise, but
    with O(m) ``int64`` state only.  Chunks preserve stub order.
    """
    upper_degrees = np.asarray(list(upper_degrees), dtype=np.int64)
    lower_degrees = np.asarray(list(lower_degrees), dtype=np.int64)
    if upper_degrees.sum() != lower_degrees.sum():
        raise ValueError("degree sequences must have equal sums")
    if (upper_degrees < 0).any() or (lower_degrees < 0).any():
        raise ValueError("degrees must be non-negative")
    num_lower = len(lower_degrees)
    _check_code_space(len(upper_degrees), num_lower)
    rng = _rng(seed)
    stubs_u = np.repeat(
        np.arange(len(upper_degrees), dtype=np.int64), upper_degrees
    )
    stubs_l = np.repeat(np.arange(num_lower, dtype=np.int64), lower_degrees)
    rng.shuffle(stubs_l)
    codes = stubs_u * num_lower + stubs_l
    del stubs_u, stubs_l
    # Cross-stub dedup in one sorted pass, keeping first occurrences in
    # stub order.
    _unique, first = np.unique(codes, return_index=True)
    codes = codes[np.sort(first)]
    del _unique, first
    for start in range(0, codes.size, max(1, chunk_edges)):
        block = codes[start : start + chunk_edges]
        yield np.stack((block // num_lower, block % num_lower), axis=1)


def complete_biclique(num_upper: int, num_lower: int) -> BipartiteGraph:
    """The complete bipartite graph ``K_{num_upper, num_lower}``."""
    edges = [(u, v) for u in range(num_upper) for v in range(num_lower)]
    return BipartiteGraph(num_upper, num_lower, edges)


def planted_bloom(k: int) -> BipartiteGraph:
    """A single ``k``-bloom, i.e. the (2, k)-biclique of the paper's Fig. 3.

    Contains exactly ``k * (k - 1) / 2`` butterflies (Lemma 1); every edge has
    butterfly support ``k - 1`` (Lemma 2).
    """
    if k < 1:
        raise ValueError("k must be positive")
    return complete_biclique(2, k)


def nested_communities(
    blocks: Sequence[Tuple[int, ...]],
    *,
    noise_edges: int = 0,
    num_extra_upper: int = 0,
    num_extra_lower: int = 0,
    seed: Optional[int] = None,
) -> BipartiteGraph:
    """Concentric blocks of increasing density: a direct bitruss hierarchy.

    ``blocks`` lists ``(a_i, b_i)`` or ``(a_i, b_i, p_i)`` with
    non-increasing sizes; block ``i`` spans ``{0..a_i-1} x {0..b_i-1}`` and
    each of its pairs is present with probability ``p_i`` (default 1.0).
    Outer blocks should be *sparser* than inner ones — otherwise the outer
    block's own cohesion swamps the nesting — so a typical call looks like
    ``nested_communities([(30, 40, 0.25), (12, 16, 0.6), (5, 7, 1.0)])``.
    Inner blocks then receive strictly larger bitruss numbers: the "nested
    research groups" structure of the paper's introduction.  Optional
    uniform noise edges and extra fringe vertices surround the hierarchy.
    """
    if not blocks:
        raise ValueError("at least one block is required")
    sizes = [(b[0], b[1], b[2] if len(b) > 2 else 1.0) for b in blocks]
    for (a1, b1, _), (a2, b2, __) in zip(sizes, sizes[1:]):
        if a2 > a1 or b2 > b1:
            raise ValueError("block sizes must be non-increasing (nested)")
    n_u = sizes[0][0] + num_extra_upper
    n_l = sizes[0][1] + num_extra_lower
    rng = _rng(seed)
    chosen: Set[Tuple[int, int]] = set()
    for a, b, p in sizes:
        for u in range(a):
            for v in range(b):
                if p >= 1.0 or rng.random() < p:
                    chosen.add((u, v))
    tries = 0
    placed = 0
    while placed < noise_edges and tries < 50 * max(noise_edges, 1):
        u = int(rng.integers(n_u))
        v = int(rng.integers(n_l))
        tries += 1
        if (u, v) not in chosen:
            chosen.add((u, v))
            placed += 1
    return BipartiteGraph(n_u, n_l, sorted(chosen))


def affiliation_bipartite(
    num_upper: int,
    num_lower: int,
    num_communities: int,
    *,
    community_upper: int,
    community_lower: int,
    p_in: float = 0.6,
    noise_edges: int = 0,
    seed: Optional[int] = None,
) -> BipartiteGraph:
    """A community-affiliation model (user-product / author-venue style).

    Each of ``num_communities`` communities draws ``community_upper`` upper
    and ``community_lower`` lower members uniformly; member pairs are linked
    with probability ``p_in``.  Communities overlap by chance, producing a
    realistic mix of dense cores (high bitruss) and cross ties, plus optional
    uniform noise.
    """
    rng = _rng(seed)
    chosen: Set[Tuple[int, int]] = set()
    for _ in range(num_communities):
        members_u = rng.choice(num_upper, size=min(community_upper, num_upper), replace=False)
        members_l = rng.choice(num_lower, size=min(community_lower, num_lower), replace=False)
        for u in members_u:
            for v in members_l:
                if rng.random() < p_in:
                    chosen.add((int(u), int(v)))
    tries = 0
    placed = 0
    while placed < noise_edges and tries < 50 * max(noise_edges, 1):
        u = int(rng.integers(num_upper))
        v = int(rng.integers(num_lower))
        tries += 1
        if (u, v) not in chosen:
            chosen.add((u, v))
            placed += 1
    return BipartiteGraph(num_upper, num_lower, sorted(chosen))


def union_graphs(
    num_upper: int,
    num_lower: int,
    parts: Iterable[Iterable[Tuple[int, int]]],
) -> BipartiteGraph:
    """Union several edge collections into one graph (dedup applied)."""
    merged: Set[Tuple[int, int]] = set()
    for part in parts:
        merged.update((int(u), int(v)) for u, v in part)
    return BipartiteGraph(num_upper, num_lower, sorted(merged))


def paper_figure1_graph() -> BipartiteGraph:
    """The author-paper network of the paper's Figure 1 (4 x 5 vertices).

    Edge colours in the paper: blue edges have bitruss number 2, yellow 1,
    gray 0 — handy as a known-answer test.
    """
    edges = [
        (0, 0), (0, 1),
        (1, 0), (1, 1),
        (2, 0), (2, 1), (2, 2), (2, 3),
        (3, 1), (3, 2), (3, 4),
    ]
    return BipartiteGraph(4, 5, edges)


def paper_figure4_graph() -> BipartiteGraph:
    """The running example of the paper's Figure 4(a) (4 x 5 vertices).

    Its BE-Index (Figure 6) has two blooms: ``B0*`` (a 3-bloom on
    ``{u0,u1,u2} x {v0,v1}``) and ``B1*`` (a 2-bloom on ``{u2,u3} x {v1,v2}``).
    Edges e0..e5 have bitruss number 2, e6..e8 have 1, and the two pendant
    edges have 0.
    """
    edges = [
        (0, 0),  # e0
        (0, 1),  # e1
        (1, 0),  # e2
        (1, 1),  # e3
        (2, 0),  # e4
        (2, 1),  # e5
        (2, 2),  # e6
        (3, 1),  # e7
        (3, 2),  # e8
        (2, 3),  # pendant
        (3, 4),  # pendant
    ]
    return BipartiteGraph(4, 5, edges)


def hub_edge_example(fan: int = 1000) -> BipartiteGraph:
    """The paper's Figure 2(a) construction scaled by ``fan``.

    ``u0`` links ``v0, v1``; ``u1`` links ``v0..v_fan`` and ``v1`` links
    ``u0..u_fan``; ``u2``/``v2`` fan out to a second block.  Removing
    ``(u1, v1)`` affects exactly one butterfly but combination-based methods
    pay ``fan^2`` checks — the motivating example for the BE-Index.
    """
    edges: List[Tuple[int, int]] = [(0, 0), (0, 1)]
    for v in range(fan + 1):
        edges.append((1, v))
    for u in range(2, fan + 1):
        edges.append((u, 1))
    second_lo = fan + 1
    second_hi = 2 * fan
    for v in range(second_lo, second_hi + 1):
        edges.append((2, v))
    num_lower = 2 * fan + 1
    num_upper = fan + 1
    seen = set()
    deduped = []
    for u, v in edges:
        if (u, v) not in seen:
            seen.add((u, v))
            deduped.append((u, v))
    return BipartiteGraph(num_upper, num_lower, deduped)


def configuration_model_bipartite(
    upper_degrees: Sequence[int],
    lower_degrees: Sequence[int],
    *,
    seed: Optional[int] = None,
    max_rewire_rounds: int = 50,
) -> BipartiteGraph:
    """A bipartite configuration model with (near-)exact degree sequences.

    Both sequences must sum to the same total.  Stubs are matched by a
    random shuffle; duplicate pairings are then repaired by rewiring rounds
    (swap the lower endpoints of two conflicting stubs).  If duplicates
    survive ``max_rewire_rounds``, the leftovers are dropped, so degrees are
    exact except possibly for a handful of heavy vertices — the standard
    simple-graph configuration-model compromise.
    """
    upper_degrees = list(int(d) for d in upper_degrees)
    lower_degrees = list(int(d) for d in lower_degrees)
    if sum(upper_degrees) != sum(lower_degrees):
        raise ValueError("degree sequences must have equal sums")
    if any(d < 0 for d in upper_degrees + lower_degrees):
        raise ValueError("degrees must be non-negative")
    rng = _rng(seed)
    stubs_u = np.repeat(np.arange(len(upper_degrees)), upper_degrees)
    stubs_l = np.repeat(np.arange(len(lower_degrees)), lower_degrees)
    rng.shuffle(stubs_l)

    pairs = list(zip(stubs_u.tolist(), stubs_l.tolist()))
    for _ in range(max_rewire_rounds):
        seen: Set[Tuple[int, int]] = set()
        duplicates: List[int] = []
        for idx, pair in enumerate(pairs):
            if pair in seen:
                duplicates.append(idx)
            else:
                seen.add(pair)
        if not duplicates:
            break
        # swap each duplicate's lower endpoint with a random other stub
        for idx in duplicates:
            other = int(rng.integers(len(pairs)))
            u1, v1 = pairs[idx]
            u2, v2 = pairs[other]
            pairs[idx] = (u1, v2)
            pairs[other] = (u2, v1)
    unique = sorted(set(pairs))
    return BipartiteGraph(len(upper_degrees), len(lower_degrees), unique)


def stochastic_block_model_bipartite(
    upper_blocks: Sequence[int],
    lower_blocks: Sequence[int],
    probabilities: Sequence[Sequence[float]],
    *,
    seed: Optional[int] = None,
) -> BipartiteGraph:
    """A bipartite stochastic block model.

    ``upper_blocks`` / ``lower_blocks`` give block sizes per layer;
    ``probabilities[i][j]`` is the edge probability between upper block i
    and lower block j.  Diagonal-heavy probability matrices produce planted
    communities with graded bitruss levels.
    """
    if len(probabilities) != len(upper_blocks):
        raise ValueError("probabilities needs one row per upper block")
    for row in probabilities:
        if len(row) != len(lower_blocks):
            raise ValueError("probabilities needs one column per lower block")
        if any(not (0.0 <= p <= 1.0) for p in row):
            raise ValueError("probabilities must lie in [0, 1]")
    rng = _rng(seed)
    upper_offsets = np.concatenate([[0], np.cumsum(upper_blocks)])
    lower_offsets = np.concatenate([[0], np.cumsum(lower_blocks)])
    edges: List[Tuple[int, int]] = []
    for i, a in enumerate(upper_blocks):
        for j, b in enumerate(lower_blocks):
            p = probabilities[i][j]
            if p <= 0.0 or a == 0 or b == 0:
                continue
            block = rng.random((a, b)) < p
            us, vs = np.nonzero(block)
            base_u = int(upper_offsets[i])
            base_v = int(lower_offsets[j])
            edges.extend((base_u + int(u), base_v + int(v)) for u, v in zip(us, vs))
    return BipartiteGraph(int(upper_offsets[-1]), int(lower_offsets[-1]), sorted(edges))

"""Shared-memory runtime vs. the scalar paths (the PR-3 tentpole measurement).

Three measurements on the dense generator workload (the regime the runtime
targets — large two-hop frontiers amortize both the vectorized shard
kernels and the per-task IPC):

* **counting** — scalar ``count_per_edge`` against the runtime's
  shard-parallel counting at 1/2/4 workers.  The contract from ISSUE 3 is
  asserted here: **>= 2x at 4 workers over the scalar path**.  On a
  single-core machine that margin comes entirely from the vectorized range
  kernel the workers run against their zero-copy views; on real multicore
  hardware the shard parallelism multiplies on top.
* **offline indexing** — sequential ``CSRPeelingEngine.build`` against the
  runtime's sharded BE-Index construction, with every assembled array
  asserted bitwise identical.
* **decomposition** — ``bit-bu-csr`` against ``bit-bu-par``, phi asserted
  bitwise identical; additionally asserted on **every bundled dataset**
  (the acceptance criterion), where the level-synchronous peeler must
  agree with the scalar engine whatever the graph shape.

Results land in ``benchmarks/results/BENCH_parallel_runtime.json`` —
machine-readable, schema documented in ``docs/benchmarks.md``.
"""

import time

import numpy as np
import pytest

from benchmarks._shared import (
    RESULTS_DIR,
    Contract,
    Metric,
    make_result,
    profiled,
    publish,
)
from repro.butterfly.counting import count_per_edge
from repro.core.bit_bu_batch import bit_bu_csr
from repro.core.peeling_engine import CSRPeelingEngine
from repro.datasets import dataset_names, load_dataset
from repro.graph.generators import nested_communities
from repro.obs.bench import load_result
from repro.runtime import ParallelRuntime, bit_bu_par, is_available

pytestmark = pytest.mark.skipif(
    not is_available(), reason="POSIX shared memory unavailable"
)

BENCH_TIER = "smoke"

#: The dense generator workload: same nested-block structure as
#: ``bench_csr_peeling`` scaled ~4x, so each worker's shards carry enough
#: frontier work to amortize task dispatch.
DENSE_SPEC = dict(
    blocks=[(120, 160, 0.5), (50, 60, 0.8), (20, 24, 1.0)],
    noise_edges=400,
    seed=42,
)

WORKER_COUNTS = (1, 2, 4)
SPEEDUP_FLOOR = 2.0
ENGINE_ARRAYS = (
    "support",
    "pair_e1",
    "pair_e2",
    "pair_bloom",
    "bloom_k",
    "e_indptr",
    "e_pair",
    "b_indptr",
    "b_pair",
)


def dense_workload():
    return nested_communities(
        DENSE_SPEC["blocks"],
        noise_edges=DENSE_SPEC["noise_edges"],
        seed=DENSE_SPEC["seed"],
    )


def _best_of(fn, repeats=2):
    """(result, best seconds) over ``repeats`` runs — symmetric best-of so a
    noisy-neighbour pause during one run cannot fail CI on a non-defect."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return result, best


@pytest.mark.benchmark(group="parallel_runtime")
def test_parallel_runtime_contract(benchmark):
    graph = dense_workload()

    def run_all():
        # Warm the shared caches first: both sides reuse the sorted CSR and
        # priorities, so neither is billed for the one-time build.
        graph.csr_gid_sorted_with_prios()

        record = {
            "workload": {
                "name": "dense-nested",
                "num_upper": graph.num_upper,
                "num_lower": graph.num_lower,
                "num_edges": graph.num_edges,
                "spec": {k: str(v) for k, v in DENSE_SPEC.items()},
            },
        }

        # -- counting -------------------------------------------------
        reference, scalar_s = _best_of(lambda: count_per_edge(graph))
        record["scalar_counting_seconds"] = scalar_s
        record["runtime_counting"] = []
        for workers in WORKER_COUNTS:
            t0 = time.perf_counter()
            with ParallelRuntime(graph, workers=workers) as runtime:
                setup_s = time.perf_counter() - t0
                runtime.count_per_edge()  # first call warms worker attaches
                counted, par_s = _best_of(runtime.count_per_edge)
            np.testing.assert_array_equal(counted, reference)
            record["runtime_counting"].append(
                {
                    "workers": workers,
                    "setup_seconds": setup_s,
                    "seconds": par_s,
                    "speedup_vs_scalar": scalar_s / max(par_s, 1e-9),
                }
            )

        # -- offline indexing (BE-Index build) ------------------------
        sequential, seq_build_s = _best_of(lambda: CSRPeelingEngine.build(graph))
        with ParallelRuntime(graph, workers=4) as runtime:
            runtime.build_engine()  # warm
            parallel, par_build_s = _best_of(runtime.build_engine)
        for name in ENGINE_ARRAYS:
            np.testing.assert_array_equal(
                getattr(parallel, name), getattr(sequential, name), err_msg=name
            )
        record["index_build"] = {
            "workers": 4,
            "scalar_seconds": seq_build_s,
            "parallel_seconds": par_build_s,
            "identical_arrays": True,
        }

        # -- decomposition -------------------------------------------
        csr_result, csr_s = _best_of(lambda: bit_bu_csr(graph), repeats=1)
        par_result, par_peel_s = _best_of(
            lambda: bit_bu_par(graph, workers=4), repeats=1
        )
        np.testing.assert_array_equal(csr_result.phi, par_result.phi)
        record["decomposition"] = {
            "workers": 4,
            "bit_bu_csr_seconds": csr_s,
            "bit_bu_par_seconds": par_peel_s,
            "phi_identical": True,
        }

        # One extra profiled run, outside the timed measurements: the phase
        # tree splits wave-dispatch overhead (parent process) from kernel
        # time (harvested from the workers' own profilers).
        _, profile = profiled(lambda: bit_bu_par(graph, workers=4))
        record["profile"] = profile

        record["contract"] = {
            "required_speedup_at_4_workers": SPEEDUP_FLOOR,
            "measured_speedup_at_4_workers": record["runtime_counting"][-1][
                "speedup_vs_scalar"
            ],
        }
        return record

    record = benchmark.pedantic(run_all, rounds=1, iterations=1)

    measured = record["contract"]["measured_speedup_at_4_workers"]
    assert measured >= SPEEDUP_FLOOR, (
        f"expected >={SPEEDUP_FLOOR}x at 4 workers over the scalar counting "
        f"path, got {measured:.2f}x "
        f"(scalar {record['scalar_counting_seconds']:.3f}s, "
        f"parallel {record['runtime_counting'][-1]['seconds']:.3f}s)"
    )

    four_w = record["runtime_counting"][-1]
    out = publish(
        make_result(
            "parallel_runtime",
            metrics=[
                Metric("scalar_counting_seconds",
                       record["scalar_counting_seconds"], "seconds", "lower"),
                Metric("counting_4w_seconds", four_w["seconds"],
                       "seconds", "lower"),
                Metric("counting_4w_speedup", four_w["speedup_vs_scalar"],
                       "ratio", "higher"),
                Metric("index_build_parallel_seconds",
                       record["index_build"]["parallel_seconds"],
                       "seconds", "lower"),
                Metric("bit_bu_par_seconds",
                       record["decomposition"]["bit_bu_par_seconds"],
                       "seconds", "lower"),
            ],
            contracts=[
                Contract(
                    "counting_2x_at_4_workers",
                    measured >= SPEEDUP_FLOOR,
                    SPEEDUP_FLOOR,
                    measured,
                )
            ],
            payload=record,
        )
    )
    print(f"\nwrote {out}")
    for row in record["runtime_counting"]:
        print(
            f"  counting workers={row['workers']}: {row['seconds']:.3f}s "
            f"({row['speedup_vs_scalar']:.2f}x vs scalar "
            f"{record['scalar_counting_seconds']:.3f}s)"
        )


@pytest.mark.benchmark(group="parallel_runtime")
def test_parallel_phi_identical_on_all_bundled_datasets(benchmark):
    """The acceptance bar: bit-bu-par == bit-bu-csr on every bundled dataset."""

    def run_parity():
        parity = {}
        for name in dataset_names():
            graph = load_dataset(name)
            reference = bit_bu_csr(graph)
            parallel = bit_bu_par(graph, workers=2)
            np.testing.assert_array_equal(
                reference.phi, parallel.phi, err_msg=name
            )
            parity[name] = {
                "num_edges": graph.num_edges,
                "max_k": reference.max_k,
                "identical": True,
            }
        return parity

    parity = benchmark.pedantic(run_parity, rounds=1, iterations=1)

    out = RESULTS_DIR / "BENCH_parallel_runtime.json"
    if out.exists():
        result = load_result(out)
        result.payload["parity"] = {"workers": 2, "datasets": parity}
        result.contracts.append(
            Contract(
                "phi_identical_on_all_datasets",
                all(entry["identical"] for entry in parity.values()),
                1.0,
                float(sum(e["identical"] for e in parity.values())),
            )
        )
        publish(result)
    assert all(entry["identical"] for entry in parity.values())

"""Incremental φ repair vs. full rebuild (the maintenance tentpole).

Measures what a mutable serving deployment pays per update, in two
phases per dataset:

* the **repaired path** — random single-edge toggles (delete an existing
  edge, then re-insert it) under the deployment's region budget
  (``rebuild_threshold`` = 0.15), each including the publish step the
  server performs (snapshot → patched artifact → fresh engine).  The
  historical contract: repaired updates beat a full rebuild by >= 10x on
  every dataset, including the largest bundled one.
* the **batched churn economics** — what the batch-native pipeline
  (:meth:`IncrementalBitruss.apply_batch`) pays per op when mutations
  arrive as multi-op POSTs: rounds of delete-batch + reinsert-batch
  churn with the adaptive budget and fallback predictor live.  A batch
  that falls back (predicted or aborted) is charged its batch time
  **plus one real, timed rebuild + reseed** — the debounced rebuild a
  deployment pays once per burst, not once per op.  ``effective_speedup``
  = rebuild seconds / effective per-op seconds of this phase; the
  ROADMAP item 4 contract gates it at >= 5x per dataset.

After every toggle and every batch round the maintained φ must be
**bitwise identical** to the pre-churn decomposition — the bench doubles
as the exactness gate.

Results land in ``benchmarks/results/BENCH_incremental.json``.
"""

import json
import statistics
import time

import numpy as np
import pytest

from benchmarks._shared import (
    Contract,
    Metric,
    make_result,
    peak_rss_delta_bytes,
    profiled,
    publish,
)
from repro.core.api import bitruss_decomposition
from repro.datasets import load_dataset
from repro.maintenance import DynamicBipartiteGraph
from repro.service.artifacts import DecompositionArtifact
from repro.service.engine import QueryEngine

BENCH_TIER = "smoke"

#: Includes the largest bundled dataset (tracker, the acceptance target).
DATASETS = ("github", "d-label", "tracker")
ALGORITHM = "bit-bu-csr"
SPEEDUP_FLOOR = 10.0
EFFECTIVE_FLOOR = 5.0
REBUILD_THRESHOLD = 0.15
TOGGLES = 10
BATCH_SIZE = 8
BATCH_ROUNDS = 6


def _publish(tracker):
    """The server's patch-publish step: snapshot → artifact → engine."""
    graph, phi = tracker.phi_snapshot()
    artifact = DecompositionArtifact(graph=graph, phi=phi, algorithm=ALGORITHM)
    return QueryEngine(artifact, allow_stale=True)


def bench_dataset(name):
    # The whole run is profiled: the resulting tree separates the rebuild
    # baseline's phases from the incremental path's "region search" /
    # "region peel" totals across every toggle and batch.
    record, profile = profiled(lambda: _bench_dataset(name))
    record["profile"] = profile
    return record


def _toggle_phase(name, dyn, tracker, phi0, cap, rng, edges):
    """Single-edge toggles: the repaired-path >= 10x contract."""
    repaired_s, abort_s = [], []
    region_sizes = []
    toggles = fallbacks = 0
    while toggles + fallbacks < TOGGLES:
        u, v = edges[int(rng.integers(0, len(edges)))]
        if not dyn.has_edge(u, v):
            continue
        t0 = time.perf_counter()
        report = tracker.delete(u, v, max_region_edges=cap)
        if not report.fallback:
            _publish(tracker)
        delete_s = time.perf_counter() - t0
        if report.fallback:
            fallbacks += 1
            abort_s.append(delete_s)
            dyn.insert_edge(u, v)  # restore the graph ...
            tracker.reseed(phi0)  # ... and resync (deployment: a rebuild)
            continue
        region_sizes.append(report.region_size)
        t0 = time.perf_counter()
        report = tracker.insert(u, v, max_region_edges=cap)
        if not report.fallback:
            _publish(tracker)
        insert_s = time.perf_counter() - t0
        if report.fallback:
            fallbacks += 1
            abort_s.append(insert_s)
            tracker.reseed(phi0)
            continue
        region_sizes.append(report.region_size)
        repaired_s.extend((delete_s, insert_s))
        toggles += 1
        # Exactness gate: a full toggle restores the original φ bitwise.
        assert tracker.phi_map() == phi0, f"{name}: toggle ({u}, {v}) diverged"
    return repaired_s, abort_s, region_sizes


def _batch_phase(name, dyn, tracker, phi0, rng, edges):
    """Batched delete + reinsert churn: the effective >= 5x contract.

    Each round deletes ``BATCH_SIZE`` distinct edges in one
    ``apply_batch`` call and re-inserts them in another, publishing once
    per successful batch.  A fallback batch is charged its own time plus
    one *real* rebuild (timed, reseeding the tracker) — the once-per-burst
    debounced cost, amortized over the batch's ops.
    """
    total_cost = 0.0
    total_ops = 0
    repaired_batches = fallback_batches = 0
    repaired_cost = 0.0
    repaired_ops = 0
    predicted = aborts = merged = regions = conflicts = 0

    def fallback_recovery(batch_edges, elapsed):
        """Restore the pre-round graph, then pay one real rebuild."""
        nonlocal total_cost
        for u, v in batch_edges:
            if not dyn.has_edge(u, v):
                dyn.insert_edge(u, v)
        t0 = time.perf_counter()
        dyn.rebuild(ALGORITHM)  # registers + reseeds the tracker
        total_cost += elapsed + (time.perf_counter() - t0)
        assert not tracker.dirty
        assert tracker.phi_map() == phi0, f"{name}: rebuild diverged"

    for _ in range(BATCH_ROUNDS):
        batch_edges = []
        seen = set()
        while len(batch_edges) < BATCH_SIZE:
            u, v = edges[int(rng.integers(0, len(edges)))]
            if (u, v) in seen or not dyn.has_edge(u, v):
                continue
            seen.add((u, v))
            batch_edges.append((u, v))
        t0 = time.perf_counter()
        batch = tracker.apply_batch(
            deletes=batch_edges, budget_fraction=REBUILD_THRESHOLD
        )
        if not batch.fallback:
            _publish(tracker)
        elapsed = time.perf_counter() - t0
        predicted += batch.predicted_fallbacks
        aborts += batch.budget_aborts
        merged += batch.merged_peels
        regions += batch.regions_peeled
        conflicts += batch.conflict_flushes
        total_ops += BATCH_SIZE
        if batch.fallback:
            fallback_batches += 1
            fallback_recovery(batch_edges, elapsed)
            continue
        t0 = time.perf_counter()
        batch = tracker.apply_batch(
            inserts=batch_edges, budget_fraction=REBUILD_THRESHOLD
        )
        if not batch.fallback:
            _publish(tracker)
        elapsed2 = time.perf_counter() - t0
        predicted += batch.predicted_fallbacks
        aborts += batch.budget_aborts
        merged += batch.merged_peels
        regions += batch.regions_peeled
        conflicts += batch.conflict_flushes
        total_ops += BATCH_SIZE
        if batch.fallback:
            fallback_batches += 1
            fallback_recovery((), elapsed + elapsed2)
            continue
        repaired_batches += 2
        repaired_cost += elapsed + elapsed2
        repaired_ops += 2 * BATCH_SIZE
        total_cost += elapsed + elapsed2
        # Exactness gate: a delete+reinsert round restores φ bitwise.
        assert tracker.phi_map() == phi0, f"{name}: batch round diverged"

    return {
        "batch_size": BATCH_SIZE,
        "batch_rounds": BATCH_ROUNDS,
        "batched_ops": total_ops,
        "repaired_batches": repaired_batches,
        "fallback_batches": fallback_batches,
        "predicted_fallbacks": predicted,
        "budget_aborts": aborts,
        "merged_peels": merged,
        "regions_peeled": regions,
        "conflict_flushes": conflicts,
        "mean_batched_op_seconds": round(
            repaired_cost / repaired_ops, 6
        )
        if repaired_ops
        else None,
        "effective_op_seconds": round(total_cost / total_ops, 6),
    }


def _bench_dataset(name):
    graph = load_dataset(name)
    dyn = DynamicBipartiteGraph(
        graph.num_upper, graph.num_lower, list(graph.edges())
    )

    # The baseline: one full rebuild (snapshot + decomposition), exactly
    # what the debounced refresh loop pays per mutation burst.
    t0 = time.perf_counter()
    artifact = dyn.rebuild(ALGORITHM, register=False)
    rebuild_s = time.perf_counter() - t0

    phi0 = artifact.phi_by_endpoints()
    tracker = dyn.enable_incremental(dict(phi0))
    cap = int(REBUILD_THRESHOLD * graph.num_edges)

    rng = np.random.default_rng(17)
    edges = list(graph.edges())
    repaired_s, abort_s, region_sizes = _toggle_phase(
        name, dyn, tracker, phi0, cap, rng, edges
    )
    batched = _batch_phase(name, dyn, tracker, phi0, rng, edges)

    # Independent parity check against a fresh decomposition.
    snap, phi_arr = tracker.phi_snapshot()
    fresh = bitruss_decomposition(snap, algorithm=ALGORITHM)
    assert np.array_equal(phi_arr, fresh.phi), f"{name}: phi diverged"

    mean_repaired = statistics.mean(repaired_s)
    mean_abort = statistics.mean(abort_s) if abort_s else 0.0
    total_ops = len(repaired_s) + len(abort_s)
    return {
        "dataset": name,
        "algorithm": ALGORITHM,
        "num_edges": graph.num_edges,
        "max_k": artifact.max_k,
        "rebuild_threshold": REBUILD_THRESHOLD,
        "rebuild_seconds": round(rebuild_s, 6),
        "single_edge_updates": total_ops,
        "repaired_updates": len(repaired_s),
        "fallback_updates": len(abort_s),
        "fallback_rate": round(len(abort_s) / total_ops, 3),
        "mean_repaired_seconds": round(mean_repaired, 6),
        "median_repaired_seconds": round(statistics.median(repaired_s), 6),
        "max_repaired_seconds": round(max(repaired_s), 6),
        "mean_region_edges": round(statistics.mean(region_sizes), 1)
        if region_sizes
        else 0.0,
        "mean_fallback_abort_seconds": round(mean_abort, 6),
        "speedup": round(rebuild_s / mean_repaired, 1),
        "batched": batched,
        "effective_speedup": round(
            rebuild_s / batched["effective_op_seconds"], 2
        ),
        "peak_rss_delta_bytes": peak_rss_delta_bytes(),
    }


def _write(records):
    payload = {
        "bench": "incremental",
        "speedup_floor": SPEEDUP_FLOOR,
        "effective_floor": EFFECTIVE_FLOOR,
        "notes": (
            "speedup = rebuild_seconds / mean end-to-end seconds (repair + "
            "publish) of budget-respecting single-edge updates; "
            "effective_speedup = rebuild_seconds / effective per-op seconds "
            "of the batched churn phase, where a fallback batch is charged "
            "its batch time plus one real timed rebuild (the once-per-burst "
            "debounced cost)"
        ),
        "records": records,
    }
    floor = min(r["speedup"] for r in records)
    effective_floor = min(r["effective_speedup"] for r in records)
    metrics = [
        Metric(f"mean_repaired_seconds_{r['dataset']}",
               r["mean_repaired_seconds"], "seconds", "lower")
        for r in records
    ] + [
        Metric(f"speedup_{r['dataset']}", r["speedup"], "ratio", "higher")
        for r in records
    ] + [
        # The batch-economics contract metric, first-class and gated per
        # dataset so `bench diff --fail-on-regression` protects it.
        Metric(f"effective_speedup_{r['dataset']}",
               r["effective_speedup"], "ratio", "higher")
        for r in records
    ] + [
        Metric("effective_speedup_floor", effective_floor, "ratio", "higher"),
    ]
    publish(
        make_result(
            "incremental",
            metrics=metrics,
            contracts=[
                Contract(
                    "repair_10x_vs_rebuild",
                    floor >= SPEEDUP_FLOOR,
                    SPEEDUP_FLOOR,
                    floor,
                ),
                Contract(
                    "batched_effective_5x",
                    effective_floor >= EFFECTIVE_FLOOR,
                    EFFECTIVE_FLOOR,
                    effective_floor,
                ),
            ],
            payload=payload,
        )
    )
    return payload


@pytest.mark.benchmark(group="incremental")
def test_incremental_speedup(benchmark):
    records = benchmark.pedantic(
        lambda: [bench_dataset(name) for name in DATASETS],
        rounds=1,
        iterations=1,
    )
    _write(records)
    for record in records:
        # The acceptance bars: localized repair beats a full rebuild by
        # >= 10x per single-edge update, and the batched pipeline keeps
        # an effective (fallback-inclusive) >= 5x per op, on every
        # dataset including the largest bundled one.
        assert record["speedup"] >= SPEEDUP_FLOOR, (
            f"{record['dataset']}: incremental only {record['speedup']}x "
            f"faster (rebuild {record['rebuild_seconds']}s vs mean repaired "
            f"{record['mean_repaired_seconds']}s)"
        )
        assert record["effective_speedup"] >= EFFECTIVE_FLOOR, (
            f"{record['dataset']}: batched effective speedup only "
            f"{record['effective_speedup']}x (ROADMAP item 4 wants "
            f">= {EFFECTIVE_FLOOR}x)"
        )


if __name__ == "__main__":
    import sys

    records = [bench_dataset(name) for name in DATASETS]
    payload = _write(records)
    print(json.dumps(payload, indent=2))
    sys.exit(
        0
        if all(
            r["speedup"] >= SPEEDUP_FLOOR
            and r["effective_speedup"] >= EFFECTIVE_FLOOR
            for r in records
        )
        else 1
    )

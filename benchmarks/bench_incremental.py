"""Incremental φ repair vs. full rebuild (the maintenance tentpole).

Measures what a mutable serving deployment pays per single-edge update:

* the **rebuild path** — what PR 4's server did for every mutation burst:
  snapshot the mirror and re-run a full decomposition
  (:meth:`DynamicBipartiteGraph.rebuild`), and
* the **incremental path** — localized φ repair
  (:mod:`repro.maintenance.incremental`) under the deployment's region
  budget (``rebuild_threshold`` = 0.15), plus the publish step the server
  performs (snapshot → patched artifact → fresh engine), measured
  end-to-end per update.

Updates are random single-edge toggles (delete an existing edge, then
re-insert it); after every toggle the maintained φ must be **bitwise
identical** to the pre-toggle decomposition — the bench doubles as the
exactness gate.  Updates whose affected region outgrows the budget fall
back to a rebuild in deployment; the bench records their abort cost and
rate honestly and reports both the repaired-path speedup (the contract:
>= 10x on every dataset, including the largest bundled one) and the
fallback-inclusive effective speedup.

Results land in ``benchmarks/results/BENCH_incremental.json``.
"""

import json
import statistics
import time

import numpy as np
import pytest

from benchmarks._shared import (
    Contract,
    Metric,
    make_result,
    peak_rss_delta_bytes,
    profiled,
    publish,
)
from repro.core.api import bitruss_decomposition
from repro.datasets import load_dataset
from repro.maintenance import DynamicBipartiteGraph
from repro.service.artifacts import DecompositionArtifact
from repro.service.engine import QueryEngine

BENCH_TIER = "smoke"

#: Includes the largest bundled dataset (tracker, the acceptance target).
DATASETS = ("github", "d-label", "tracker")
ALGORITHM = "bit-bu-csr"
SPEEDUP_FLOOR = 10.0
REBUILD_THRESHOLD = 0.15
TOGGLES = 15


def _publish(tracker):
    """The server's patch-publish step: snapshot → artifact → engine."""
    graph, phi = tracker.phi_snapshot()
    artifact = DecompositionArtifact(graph=graph, phi=phi, algorithm=ALGORITHM)
    return QueryEngine(artifact, allow_stale=True)


def bench_dataset(name):
    # The whole run is profiled: the resulting tree separates the rebuild
    # baseline's phases from the incremental path's "region search" /
    # "region peel" totals across every toggle.
    record, profile = profiled(lambda: _bench_dataset(name))
    record["profile"] = profile
    return record


def _bench_dataset(name):
    graph = load_dataset(name)
    dyn = DynamicBipartiteGraph(
        graph.num_upper, graph.num_lower, list(graph.edges())
    )

    # The baseline: one full rebuild (snapshot + decomposition), exactly
    # what the debounced refresh loop pays per mutation burst.
    t0 = time.perf_counter()
    artifact = dyn.rebuild(ALGORITHM, register=False)
    rebuild_s = time.perf_counter() - t0

    phi0 = artifact.phi_by_endpoints()
    tracker = dyn.enable_incremental(dict(phi0))
    cap = int(REBUILD_THRESHOLD * graph.num_edges)

    rng = np.random.default_rng(17)
    edges = list(graph.edges())
    repaired_s, abort_s = [], []
    region_sizes = []
    toggles = fallbacks = 0
    while toggles + fallbacks < TOGGLES:
        u, v = edges[int(rng.integers(0, len(edges)))]
        if not dyn.has_edge(u, v):
            continue
        t0 = time.perf_counter()
        report = tracker.delete(u, v, max_region_edges=cap)
        if not report.fallback:
            _publish(tracker)
        delete_s = time.perf_counter() - t0
        if report.fallback:
            fallbacks += 1
            abort_s.append(delete_s)
            dyn.insert_edge(u, v)  # restore the graph ...
            tracker.reseed(phi0)  # ... and resync (deployment: a rebuild)
            continue
        region_sizes.append(report.region_size)
        t0 = time.perf_counter()
        report = tracker.insert(u, v, max_region_edges=cap)
        if not report.fallback:
            _publish(tracker)
        insert_s = time.perf_counter() - t0
        if report.fallback:
            fallbacks += 1
            abort_s.append(insert_s)
            tracker.reseed(phi0)
            continue
        region_sizes.append(report.region_size)
        repaired_s.extend((delete_s, insert_s))
        toggles += 1
        # Exactness gate: a full toggle restores the original φ bitwise.
        assert tracker.phi_map() == phi0, f"{name}: toggle ({u}, {v}) diverged"

    # Independent parity check against a fresh decomposition.
    snap, phi_arr = tracker.phi_snapshot()
    fresh = bitruss_decomposition(snap, algorithm=ALGORITHM)
    assert np.array_equal(phi_arr, fresh.phi), f"{name}: phi diverged"

    mean_repaired = statistics.mean(repaired_s)
    mean_abort = statistics.mean(abort_s) if abort_s else 0.0
    total_ops = len(repaired_s) + len(abort_s)
    # Deployment cost of a fallback op: the abort plus one rebuild.
    effective_mean = (
        sum(repaired_s) + sum(a + rebuild_s for a in abort_s)
    ) / total_ops
    return {
        "dataset": name,
        "algorithm": ALGORITHM,
        "num_edges": graph.num_edges,
        "max_k": artifact.max_k,
        "rebuild_threshold": REBUILD_THRESHOLD,
        "rebuild_seconds": round(rebuild_s, 6),
        "single_edge_updates": total_ops,
        "repaired_updates": len(repaired_s),
        "fallback_updates": len(abort_s),
        "fallback_rate": round(len(abort_s) / total_ops, 3),
        "mean_repaired_seconds": round(mean_repaired, 6),
        "median_repaired_seconds": round(statistics.median(repaired_s), 6),
        "max_repaired_seconds": round(max(repaired_s), 6),
        "mean_region_edges": round(statistics.mean(region_sizes), 1)
        if region_sizes
        else 0.0,
        "mean_fallback_abort_seconds": round(mean_abort, 6),
        "speedup": round(rebuild_s / mean_repaired, 1),
        "effective_speedup": round(rebuild_s / effective_mean, 2),
        "peak_rss_delta_bytes": peak_rss_delta_bytes(),
    }


def _write(records):
    payload = {
        "bench": "incremental",
        "speedup_floor": SPEEDUP_FLOOR,
        "notes": (
            "speedup = rebuild_seconds / mean end-to-end seconds (repair + "
            "publish) of budget-respecting single-edge updates; "
            "effective_speedup additionally charges every fallback its "
            "abort plus one full rebuild"
        ),
        "records": records,
    }
    floor = min(r["speedup"] for r in records)
    effective_floor = min(r["effective_speedup"] for r in records)
    metrics = [
        Metric(f"mean_repaired_seconds_{r['dataset']}",
               r["mean_repaired_seconds"], "seconds", "lower")
        for r in records
    ] + [
        Metric(f"speedup_{r['dataset']}", r["speedup"], "ratio", "higher")
        for r in records
    ] + [
        Metric("effective_speedup_floor", effective_floor, "ratio", "higher"),
    ]
    publish(
        make_result(
            "incremental",
            metrics=metrics,
            contracts=[
                Contract(
                    "repair_10x_vs_rebuild",
                    floor >= SPEEDUP_FLOOR,
                    SPEEDUP_FLOOR,
                    floor,
                )
            ],
            payload=payload,
        )
    )
    return payload


@pytest.mark.benchmark(group="incremental")
def test_incremental_speedup(benchmark):
    records = benchmark.pedantic(
        lambda: [bench_dataset(name) for name in DATASETS],
        rounds=1,
        iterations=1,
    )
    _write(records)
    for record in records:
        # The acceptance bar: localized repair beats a full rebuild by
        # >= 10x per single-edge update on every dataset, including the
        # largest bundled one.
        assert record["speedup"] >= SPEEDUP_FLOOR, (
            f"{record['dataset']}: incremental only {record['speedup']}x "
            f"faster (rebuild {record['rebuild_seconds']}s vs mean repaired "
            f"{record['mean_repaired_seconds']}s)"
        )


if __name__ == "__main__":
    import sys

    records = [bench_dataset(name) for name in DATASETS]
    payload = _write(records)
    print(json.dumps(payload, indent=2))
    sys.exit(
        0 if all(r["speedup"] >= SPEEDUP_FLOOR for r in records) else 1
    )

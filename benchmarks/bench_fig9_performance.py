"""Figure 9 — wall-clock of BS / BU / BU++ / PC on all 15 datasets.

Paper shape: the BE-Index algorithms beat BiT-BS on every dataset, by one
to two orders of magnitude on the dense/skewed ones; BiT-BS is INF
(>30 h) on Wiki-it and Wiki-fr.  BiT-PC is slightly slower than BiT-BU++ on
small-support community datasets (Amazon, DBLP) because of its per-iteration
pre-processing, and only BiT-PC finished the four largest datasets.

Scale note: at our reduced scales all algorithms finish everywhere, and
BiT-PC's pre-processing (pure-Python subgraph extraction + recounting) costs
relatively more than in C++, so its wall-clock win narrows; the
machine-neutral update counts (Fig. 10) carry the PC comparison.
"""

import pytest

from benchmarks._shared import (
    Contract,
    Metric,
    bs_allowed,
    format_table,
    run_algorithm,
    write_result,
)
from repro.datasets import dataset_names

ALGOS = ("BS", "BU", "BU++", "PC")


@pytest.mark.benchmark(group="fig9")
@pytest.mark.parametrize("dataset", dataset_names())
def test_fig9_dataset(benchmark, dataset):
    def run_all():
        records = {}
        for algo in ALGOS:
            if algo == "BS" and not bs_allowed(dataset):
                continue
            records[algo] = run_algorithm(dataset, algo)
        return records

    records = benchmark.pedantic(run_all, rounds=1, iterations=1)
    # BE-Index algorithms must beat the baseline wherever it runs.  On the
    # sparse community datasets the gap is small (~1.3x in the paper too),
    # so sub-100ms runs get a noise allowance instead of a strict ordering.
    if "BS" in records:
        bs_time = records["BS"].seconds
        slack = 1.0 if bs_time > 0.2 else 1.5
        assert records["BU"].seconds < bs_time * slack
        assert records["BU++"].seconds < bs_time * slack
    # all algorithms agree on the outcome
    phis = {rec.phi_max for rec in records.values()}
    assert len(phis) == 1


@pytest.mark.benchmark(group="fig9")
def test_fig9_report(benchmark):
    def collect():
        table = {}
        for name in dataset_names():
            row = {}
            for algo in ALGOS:
                if algo == "BS" and not bs_allowed(name):
                    row[algo] = None  # INF in the paper
                else:
                    row[algo] = run_algorithm(name, algo)
            table[name] = row
        return table

    table = benchmark.pedantic(collect, rounds=1, iterations=1)
    rows = []
    for name, row in table.items():
        cells = [name]
        for algo in ALGOS:
            rec = row[algo]
            cells.append("INF" if rec is None else f"{rec.seconds:.3f}")
        bs = row["BS"]
        if bs is not None:
            best = min(
                rec.seconds for a, rec in row.items() if rec and a != "BS"
            )
            cells.append(f"{bs.seconds / best:.1f}x")
        else:
            cells.append("-")
        rows.append(cells)
    lines = [
        "Figure 9: wall-clock seconds per algorithm on all datasets",
        "paper shape: BU-family << BS everywhere; BS = INF on wiki-it/wiki-fr",
        "",
    ]
    lines += format_table(
        ["dataset", "BS", "BU", "BU++", "PC", "BS/best"], rows
    )
    metrics = [
        Metric(f"bupp_seconds_{name}", row["BU++"].seconds, "seconds", "lower")
        for name, row in table.items()
        if row["BU++"] is not None
    ] + [
        Metric(f"phi_max_{name}", float(row["BU++"].phi_max), "count", "fixed")
        for name, row in table.items()
        if row["BU++"] is not None
    ]
    bs_ratios = [
        row["BS"].seconds
        / max(
            min(r.seconds for a, r in row.items() if r and a != "BS"), 1e-9
        )
        for row in table.values()
        if row["BS"] is not None
    ]
    best_gap = max(bs_ratios) if bs_ratios else 0.0
    print(
        "\n"
        + write_result(
            "fig9",
            lines,
            bench="fig9_performance",
            metrics=metrics,
            contracts=[
                Contract(
                    "be_index_beats_bs_somewhere", best_gap > 1.0, 1.0, best_gap
                )
            ],
        )
    )

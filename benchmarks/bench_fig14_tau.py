"""Figure 14 — effect of BiT-PC's τ parameter.

Paper setup: τ ∈ {0.02, 0.05, 0.1, 0.2, 1} on Github, D-label, D-style,
Wiki-it; panel (a) wall-clock, panel (b) support updates.  Expected shape:
updates increase with τ (fewer, coarser iterations compress less), while
wall-clock is u-shaped / flat — small τ pays per-iteration pre-processing,
large τ pays extra updates; the paper recommends τ in 0.05–0.2.
"""

import pytest

from benchmarks._shared import Contract, Metric, format_table, run_algorithm, write_result

DATASETS = ("github", "d-label", "d-style", "wiki-it")
TAUS = (0.02, 0.05, 0.1, 0.2, 1.0)


@pytest.mark.benchmark(group="fig14")
@pytest.mark.parametrize("dataset", DATASETS)
def test_fig14_dataset(benchmark, dataset):
    def run_all():
        return {tau: run_algorithm(dataset, "PC", tau=tau) for tau in TAUS}

    records = benchmark.pedantic(run_all, rounds=1, iterations=1)
    # panel (b): the extremes of the tau range order as in the paper
    assert records[0.02].updates <= records[1.0].updates
    # same decomposition for every tau
    assert len({rec.phi_max for rec in records.values()}) == 1


@pytest.mark.benchmark(group="fig14")
def test_fig14_report(benchmark):
    def collect():
        return {
            d: {tau: run_algorithm(d, "PC", tau=tau) for tau in TAUS}
            for d in DATASETS
        }

    table = benchmark.pedantic(collect, rounds=1, iterations=1)
    lines = [
        "Figure 14: effect of tau on BiT-PC",
        "paper shape: updates increase with tau; time has a shallow optimum",
        "",
        "(a) wall-clock seconds",
    ]
    rows = [
        [name] + [f"{recs[tau].seconds:.3f}" for tau in TAUS]
        for name, recs in table.items()
    ]
    lines += format_table(["dataset"] + [str(t) for t in TAUS], rows)
    lines += ["", "(b) support updates"]
    rows = [
        [name] + [str(recs[tau].updates) for tau in TAUS]
        for name, recs in table.items()
    ]
    lines += format_table(["dataset"] + [str(t) for t in TAUS], rows)
    metrics = [
        Metric(
            f"pc_updates_{name}_tau{str(tau).replace('.', '_')}",
            float(recs[tau].updates), "count", "fixed",
        )
        for name, recs in table.items()
        for tau in (0.02, 1.0)
    ]
    worst_ratio = min(
        recs[1.0].updates / max(recs[0.02].updates, 1)
        for recs in table.values()
    )
    print(
        "\n"
        + write_result(
            "fig14",
            lines,
            bench="fig14_tau",
            metrics=metrics,
            contracts=[
                Contract(
                    "updates_grow_with_tau", worst_ratio >= 1.0,
                    1.0, worst_ratio,
                )
            ],
        )
    )

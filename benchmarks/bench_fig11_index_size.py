"""Figure 11 — size of the online indexes.

Paper setup: peak BE-Index size of BU, BU++ and PC on Github, D-label,
D-style, Wiki-it.  Expected shape: BU and BU++ build the same full index;
PC's per-iteration compressed indexes peak strictly smaller because each
candidate subgraph omits both low-support edges and already-assigned edges.
"""

import pytest

from benchmarks._shared import Contract, Metric, format_table, run_algorithm, write_result

DATASETS = ("github", "d-label", "d-style", "wiki-it")
ALGOS = ("BU", "BU++", "PC")


@pytest.mark.benchmark(group="fig11")
@pytest.mark.parametrize("dataset", DATASETS)
def test_fig11_dataset(benchmark, dataset):
    def run_all():
        return {algo: run_algorithm(dataset, algo) for algo in ALGOS}

    records = benchmark.pedantic(run_all, rounds=1, iterations=1)
    assert records["BU"].index_peak_bytes == records["BU++"].index_peak_bytes
    assert records["PC"].index_peak_bytes < records["BU"].index_peak_bytes


@pytest.mark.benchmark(group="fig11")
def test_fig11_report(benchmark):
    def collect():
        return {
            d: {a: run_algorithm(d, a) for a in ALGOS} for d in DATASETS
        }

    table = benchmark.pedantic(collect, rounds=1, iterations=1)
    rows = []
    for name, recs in table.items():
        bu = recs["BU"].index_peak_bytes
        pc = recs["PC"].index_peak_bytes
        rows.append([
            name,
            f"{bu / 1024:.1f}",
            f"{recs['BU++'].index_peak_bytes / 1024:.1f}",
            f"{pc / 1024:.1f}",
            f"{bu / max(pc, 1):.1f}x",
        ])
    lines = [
        "Figure 11: peak online-index size (KiB, modelled: 2 words per bloom",
        "+ 2 per indexed edge + 2 per link, 8-byte words)",
        "paper shape: PC's compressed per-iteration index < BU/BU++ full index",
        "",
    ]
    lines += format_table(
        ["dataset", "BU KiB", "BU++ KiB", "PC KiB", "BU/PC"], rows
    )
    metrics = [
        Metric(f"{algo.lower().replace('+', 'p')}_index_peak_bytes_{d}",
               float(table[d][algo].index_peak_bytes), "bytes", "fixed")
        for d in DATASETS
        for algo in ("BU", "PC")
    ]
    worst_ratio = min(
        table[d]["BU"].index_peak_bytes / max(table[d]["PC"].index_peak_bytes, 1)
        for d in DATASETS
    )
    print(
        "\n"
        + write_result(
            "fig11",
            lines,
            bench="fig11_index_size",
            metrics=metrics,
            contracts=[
                Contract("pc_index_smaller_than_bu", worst_ratio > 1.0, 1.0, worst_ratio)
            ],
        )
    )

"""Shared infrastructure for the figure/table reproduction benches.

Every bench module reproduces one table or figure of the paper's Section VI.
Runs are cached per ``(dataset, algorithm, parameters)`` within the pytest
process so that figures sharing measurements (e.g. Fig. 10 updates and
Fig. 11 index sizes come from the same decompositions) pay for them once.

Each bench writes its series to ``benchmarks/results/<figure>.txt`` in the
same rows/columns the paper reports, so EXPERIMENTS.md can quote them
directly — and every bench additionally :func:`publish`\\ es a schema'd
:class:`repro.obs.bench.BenchResult` (named metrics, contract pass/fails,
an environment fingerprint) to the canonical ``BENCH_<name>.json``, its
repo-root copy, and the longitudinal ``benchmarks/results/trajectory.jsonl``
that ``repro-bitruss bench diff`` gates regressions against.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.butterfly.counting import count_per_edge
from repro.core import (
    bit_bs,
    bit_bu,
    bit_bu_csr,
    bit_bu_plus,
    bit_bu_plus_plus,
    bit_pc,
)
from repro.datasets import dataset_spec, load_dataset
from repro.graph.bipartite import BipartiteGraph
from repro.obs import bench as obs_bench
from repro.obs import phases as obs_phases
from repro.obs.bench import BenchResult, Contract, Metric, peak_rss_bytes
from repro.utils.stats import UpdateCounter

RESULTS_DIR = Path(__file__).parent / "results"
REPO_ROOT = Path(__file__).resolve().parent.parent
TRAJECTORY_PATH = RESULTS_DIR / "trajectory.jsonl"

#: RSS high-water mark right after this module's (heavy) imports.  Peak-RSS
#: metrics subtract it so interpreter + numpy overhead cancels and the
#: reported number is the bench's own footprint — absolute ``ru_maxrss``
#: made cross-run comparison meaningless (the absolute value still lands in
#: each result's ``EnvFingerprint``).
_RSS_BASELINE_BYTES = peak_rss_bytes()

#: Fig. 7 buckets the update counts by the edge's original butterfly
#: support.  The paper uses absolute bounds (5000/10000/15000/20000) on
#: million-scale supports; we use the same five-bucket structure scaled to
#: each dataset's own sup_max.
BUCKET_FRACTIONS = (0.125, 0.25, 0.375, 0.5)

_ALGORITHMS = {
    "BS": bit_bs,
    "BU": bit_bu,
    "BU+": bit_bu_plus,
    "BU++": bit_bu_plus_plus,
    "BU-CSR": bit_bu_csr,
    "PC": bit_pc,
}


@dataclass
class RunRecord:
    """One algorithm execution on one graph."""

    dataset: str
    algorithm: str
    seconds: float
    updates: int
    bucket_labels: List[str] = field(default_factory=list)
    bucket_totals: List[int] = field(default_factory=list)
    index_peak_bytes: int = 0
    phi_max: int = 0
    timings: Dict[str, float] = field(default_factory=dict)
    parameters: Dict[str, object] = field(default_factory=dict)


_run_cache: Dict[Tuple, RunRecord] = {}
_support_cache: Dict[str, np.ndarray] = {}


def dataset_supports(name: str) -> np.ndarray:
    """Original per-edge butterfly supports of a bundled dataset (cached)."""
    if name not in _support_cache:
        _support_cache[name] = count_per_edge(load_dataset(name))
    return _support_cache[name]


def _bucket_bounds(sup_max: int) -> List[int]:
    return [max(1, int(sup_max * f)) for f in BUCKET_FRACTIONS]


def run_algorithm(
    dataset: str,
    algorithm: str,
    *,
    tau: float = 0.02,
    graph: Optional[BipartiteGraph] = None,
    cache_key_extra: Tuple = (),
) -> RunRecord:
    """Run ``algorithm`` on a bundled dataset (or a supplied graph), cached.

    The update counter is always bucketed by the graph's original supports
    so one run can feed both the total-updates and the per-bucket figures.
    """
    key = (dataset, algorithm, tau, cache_key_extra)
    if graph is None and key in _run_cache:
        return _run_cache[key]

    g = graph if graph is not None else load_dataset(dataset)
    if graph is None:
        support = dataset_supports(dataset)
    else:
        support = count_per_edge(g)
    sup_max = int(support.max()) if len(support) else 0
    counter = UpdateCounter(
        original_supports=support, bucket_bounds=_bucket_bounds(sup_max)
    )

    fn = _ALGORITHMS[algorithm]
    kwargs = {"tau": tau} if algorithm == "PC" else {}
    start = time.perf_counter()
    result = fn(g, counter=counter, **kwargs)
    elapsed = time.perf_counter() - start

    record = RunRecord(
        dataset=dataset,
        algorithm=algorithm,
        seconds=elapsed,
        updates=counter.total,
        bucket_labels=counter.bucket_labels(),
        bucket_totals=counter.bucket_totals(),
        index_peak_bytes=result.stats.index_peak_bytes,
        phi_max=result.max_k,
        timings=dict(result.stats.timings),
        parameters=dict(result.stats.parameters),
    )
    if graph is None:
        _run_cache[key] = record
    return record


def profiled(fn):
    """Run ``fn`` with phase profiling on; return ``(result, profile block)``.

    The block is the same ``{"wall_seconds": ..., "tree": ...}`` shape the
    CLI's ``decompose --profile --json`` emits, so ``repro-bitruss stats
    --profile`` can pretty-print bench JSONs too.  Profiler state is
    restored afterwards so timed (unprofiled) measurements in the same
    process stay on the no-op path.
    """
    was_enabled = obs_phases.enabled()
    obs_phases.enable(True)
    obs_phases.reset()
    start = time.perf_counter()
    try:
        result = fn()
    finally:
        wall = time.perf_counter() - start
        tree = obs_phases.tree()
        obs_phases.reset()
        obs_phases.enable(was_enabled)
    return result, {"wall_seconds": wall, "tree": tree}


def peak_rss_delta_bytes() -> int:
    """Peak RSS growth since this module finished importing, in bytes.

    The process high-water mark minus the post-import baseline: the part
    of the footprint the bench itself is responsible for.  Never negative.
    """
    return max(0, peak_rss_bytes() - _RSS_BASELINE_BYTES)


def bs_allowed(dataset: str) -> bool:
    """Whether the quadratic BiT-BS baseline fits this dataset's budget."""
    return dataset_spec(dataset).bs_friendly


def make_result(
    bench: str,
    *,
    metrics: Sequence[Metric] = (),
    contracts: Sequence[Contract] = (),
    payload: Optional[Dict[str, object]] = None,
    include_rss: bool = True,
) -> BenchResult:
    """Assemble a :class:`BenchResult` with the current env fingerprint.

    Unless disabled, a ``peak_rss_delta_bytes`` metric (direction
    ``lower``) is appended automatically so every bench records its own
    memory footprint without per-module boilerplate.
    """
    metric_list = list(metrics)
    if include_rss and not any(m.name == "peak_rss_delta_bytes" for m in metric_list):
        metric_list.append(
            Metric(
                name="peak_rss_delta_bytes",
                value=float(peak_rss_delta_bytes()),
                unit="bytes",
                direction="lower",
            )
        )
    return BenchResult(
        bench=bench,
        metrics=metric_list,
        contracts=list(contracts),
        env=obs_bench.get_fingerprint(refresh=True),
        payload=dict(payload or {}),
    )


def publish(result: BenchResult) -> Path:
    """Publish a result to all three sinks the trajectory plane reads.

    Canonical ``benchmarks/results/BENCH_<name>.json``, a repo-root copy
    (ROADMAP and external tooling read the root), and one appended line in
    ``benchmarks/results/trajectory.jsonl``.
    """
    return obs_bench.publish(
        result,
        RESULTS_DIR,
        root_dir=REPO_ROOT,
        trajectory_path=TRAJECTORY_PATH,
    )


def write_result(
    figure: str,
    lines: List[str],
    *,
    bench: Optional[str] = None,
    metrics: Sequence[Metric] = (),
    contracts: Sequence[Contract] = (),
    payload: Optional[Dict[str, object]] = None,
) -> str:
    """Write a figure's series to ``benchmarks/results/<figure>.txt``.

    When ``bench`` is given, additionally :func:`publish` a schema'd
    result carrying ``metrics``/``contracts`` (the rendered lines ride
    along in the payload) so the text-only figure benches join the
    trajectory without restructuring their rendering code.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    text = "\n".join(lines) + "\n"
    (RESULTS_DIR / f"{figure}.txt").write_text(text)
    if bench is not None:
        doc = dict(payload or {})
        doc.setdefault("figure", figure)
        publish(
            make_result(
                bench, metrics=metrics, contracts=contracts, payload=doc
            )
        )
    return text


def format_table(header: List[str], rows: List[List[str]]) -> List[str]:
    """Fixed-width table lines for the results files."""
    widths = [len(h) for h in header]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells):
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()
    lines = [fmt(header), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return lines

"""Figure 2 (motivation) — cost of one edge-removal operation.

The paper's introductory example: in the Figure 2(a) construction the edge
``(u1, v1)`` lies in exactly one butterfly, yet combination-based removal
(as in [5]/[9]) pays ``d(u1) x d(v1)`` membership checks to find it, while
the BE-Index walks straight to the 4 affected links.

This bench quantifies that gap as the fan parameter grows: removal work for
the hub edge via (a) combination enumeration and (b) the BE-Index.
Expected shape: combination cost grows quadratically with the fan, BE-Index
cost stays constant.
"""

import time

import pytest

from benchmarks._shared import Contract, Metric, format_table, write_result
from repro.butterfly.enumeration import butterflies_containing_edge
from repro.graph.generators import hub_edge_example
from repro.index.be_index import BEIndex

BENCH_TIER = "smoke"

FANS = (100, 200, 400, 800)


def _measure(fan):
    graph = hub_edge_example(fan)
    eid = graph.edge_id(1, 1)

    # combination-based: enumerate butterflies through (u1, v1)
    start = time.perf_counter()
    found = butterflies_containing_edge(graph, 1, 1)
    comb_seconds = time.perf_counter() - start

    # BE-Index: build once (amortized across all removals in a real peel),
    # then a single RemoveEdge
    index = BEIndex.build(graph)
    touched = sum(len(index.blooms[b].twin) for b in index.blooms_of(eid))
    start = time.perf_counter()
    index.remove_edge(eid)
    index_seconds = time.perf_counter() - start

    checks = graph.degree_upper(1) * graph.degree_lower(1)
    return {
        "fan": fan,
        "butterflies": len(found),
        "comb_checks": checks,
        "comb_seconds": comb_seconds,
        "index_links": touched,
        "index_seconds": index_seconds,
    }


@pytest.mark.benchmark(group="fig2")
def test_fig2_motivation(benchmark):
    rows = benchmark.pedantic(
        lambda: [_measure(fan) for fan in FANS], rounds=1, iterations=1
    )
    for row in rows:
        # the paper's point: exactly one butterfly, quadratic check count,
        # constant index footprint
        assert row["butterflies"] == 1
        assert row["index_links"] <= 4
    # combination work grows ~quadratically; index removal stays flat
    assert rows[-1]["comb_checks"] >= 16 * rows[0]["comb_checks"] * 0.9
    table = [
        [
            str(r["fan"]),
            str(r["comb_checks"]),
            f"{r['comb_seconds'] * 1e3:.2f}",
            str(r["index_links"]),
            f"{r['index_seconds'] * 1e6:.0f}",
        ]
        for r in rows
    ]
    lines = [
        "Figure 2 (motivation): removing the hub edge (u1, v1) — one butterfly",
        "combination-based enumeration vs BE-Index removal",
        "",
    ]
    lines += format_table(
        ["fan", "comb checks", "comb ms", "index links", "index us"], table
    )
    growth = rows[-1]["comb_checks"] / max(rows[0]["comb_checks"], 1)
    metrics = [
        Metric(f"comb_checks_fan{r['fan']}", float(r["comb_checks"]),
               "count", "fixed")
        for r in rows
    ] + [
        Metric(f"index_links_fan{r['fan']}", float(r["index_links"]),
               "count", "fixed")
        for r in rows
    ] + [
        Metric("index_remove_seconds", rows[-1]["index_seconds"],
               "seconds", "lower"),
    ]
    print(
        "\n"
        + write_result(
            "fig2_motivation",
            lines,
            bench="fig2_motivation",
            metrics=metrics,
            contracts=[
                Contract(
                    "comb_checks_quadratic_growth",
                    growth >= 16 * 0.9,
                    16 * 0.9,
                    growth,
                )
            ],
        )
    )

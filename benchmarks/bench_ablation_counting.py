"""Ablation — butterfly-counting implementations.

Not a paper figure: quantifies the implementation choices DESIGN.md calls
out for the counting substrate (the paper's [8]).  Three counters produce
identical outputs:

* ``naive``       — list-intersection enumeration (the pre-[8] style),
* ``scalar``      — vertex-priority wedge processing (dict inner loops),
* ``vectorized``  — the same traversal with numpy frontier batching.

Expected shape: scalar beats naive everywhere (the [8] claim); vectorized
wins on dense graphs with large two-hop frontiers and loses slightly on
sparse-row graphs where per-vertex numpy overhead dominates.
"""

import time

import numpy as np
import pytest

from benchmarks._shared import Contract, Metric, format_table, write_result
from repro.butterfly.counting import count_per_edge, count_per_edge_naive
from repro.butterfly.vectorized import count_per_edge_vectorized
from repro.graph.generators import chung_lu_bipartite, erdos_renyi_bipartite

GRAPHS = {
    "dense-er": lambda: erdos_renyi_bipartite(250, 250, 15000, seed=1),
    "skewed-cl": lambda: chung_lu_bipartite(
        1500, 60, 8000, exponent_upper=2.4, exponent_lower=1.8, seed=2
    ),
    "sparse-cl": lambda: chung_lu_bipartite(
        2000, 2000, 8000, exponent_upper=2.2, exponent_lower=2.2, seed=3
    ),
}

COUNTERS = {
    "naive": count_per_edge_naive,
    "scalar": count_per_edge,
    "vectorized": count_per_edge_vectorized,
}


def _measure(graph, fn):
    start = time.perf_counter()
    result = fn(graph)
    return time.perf_counter() - start, result


@pytest.mark.benchmark(group="ablation-counting")
@pytest.mark.parametrize("graph_name", sorted(GRAPHS))
def test_counting_ablation(benchmark, graph_name):
    graph = GRAPHS[graph_name]()

    def run_all():
        out = {}
        for name, fn in COUNTERS.items():
            out[name] = _measure(graph, fn)
        return out

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    supports = [sup for _t, sup in results.values()]
    for other in supports[1:]:
        np.testing.assert_array_equal(supports[0], other)
    # the [8]-style counter must beat naive enumeration
    assert results["scalar"][0] < results["naive"][0]


@pytest.mark.benchmark(group="ablation-counting")
def test_counting_ablation_report(benchmark):
    def collect():
        table = {}
        for graph_name, make in GRAPHS.items():
            graph = make()
            table[graph_name] = {
                name: _measure(graph, fn)[0] for name, fn in COUNTERS.items()
            }
        return table

    table = benchmark.pedantic(collect, rounds=1, iterations=1)
    rows = [
        [name] + [f"{times[c]:.3f}" for c in COUNTERS]
        for name, times in table.items()
    ]
    lines = [
        "Ablation: butterfly-counting implementations (seconds)",
        "expected: scalar (vertex-priority, [8]) < naive; vectorized wins",
        "on dense frontiers and loses slightly on sparse rows",
        "",
    ]
    lines += format_table(["graph"] + list(COUNTERS), rows)
    metrics = [
        Metric(f"{counter}_seconds_{name}", times[counter], "seconds", "lower")
        for name, times in table.items()
        for counter in ("scalar", "vectorized")
    ]
    worst_edge = min(
        times["naive"] / max(times["scalar"], 1e-9)
        for times in table.values()
    )
    print(
        "\n"
        + write_result(
            "ablation_counting",
            lines,
            bench="ablation_counting",
            metrics=metrics,
            contracts=[
                Contract(
                    "scalar_beats_naive", worst_edge > 1.0, 1.0, worst_edge
                )
            ],
        )
    )

"""Figure 13 — effect of the batch-based optimizations.

Paper setup: BU vs BU+ (batch edge processing) vs BU++ (+ batch bloom
processing) on Github, D-label, D-style, Wiki-it.  Expected shape: batch
edge processing gives the big cut in support updates (and time); batch bloom
processing further enhances performance.
"""

import pytest

from benchmarks._shared import Contract, Metric, format_table, run_algorithm, write_result

DATASETS = ("github", "d-label", "d-style", "wiki-it")
ALGOS = ("BU", "BU+", "BU++")


@pytest.mark.benchmark(group="fig13")
@pytest.mark.parametrize("dataset", DATASETS)
def test_fig13_dataset(benchmark, dataset):
    def run_all():
        return {algo: run_algorithm(dataset, algo) for algo in ALGOS}

    records = benchmark.pedantic(run_all, rounds=1, iterations=1)
    # batch edge processing cuts the update count relative to plain BU
    assert records["BU+"].updates < records["BU"].updates
    # all three agree on the decomposition
    assert len({rec.phi_max for rec in records.values()}) == 1


@pytest.mark.benchmark(group="fig13")
def test_fig13_report(benchmark):
    def collect():
        return {
            d: {a: run_algorithm(d, a) for a in ALGOS} for d in DATASETS
        }

    table = benchmark.pedantic(collect, rounds=1, iterations=1)
    rows = []
    for name, recs in table.items():
        rows.append([
            name,
            f"{recs['BU'].seconds:.3f}",
            f"{recs['BU+'].seconds:.3f}",
            f"{recs['BU++'].seconds:.3f}",
            str(recs["BU"].updates),
            str(recs["BU+"].updates),
            str(recs["BU++"].updates),
        ])
    lines = [
        "Figure 13: batch-based optimizations (seconds and support updates)",
        "paper shape: BU+ (batch edges) cuts cost vs BU; BU++ (batch blooms)",
        "further enhances it",
        "",
    ]
    lines += format_table(
        ["dataset", "BU s", "BU+ s", "BU++ s",
         "BU upd", "BU+ upd", "BU++ upd"],
        rows,
    )
    metrics = [
        Metric(f"{algo.lower().replace('+', 'p')}_updates_{name}",
               float(recs[algo].updates), "count", "fixed")
        for name, recs in table.items()
        for algo in ALGOS
    ]
    worst_cut = min(
        recs["BU"].updates / max(recs["BU+"].updates, 1)
        for recs in table.values()
    )
    print(
        "\n"
        + write_result(
            "fig13",
            lines,
            bench="fig13_batch_opts",
            metrics=metrics,
            contracts=[
                Contract(
                    "batch_edges_cut_updates", worst_cut > 1.0, 1.0, worst_cut
                )
            ],
        )
    )

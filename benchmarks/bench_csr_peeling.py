"""CSR batch peeling vs. scalar BiT-BU (the PR-1 tentpole measurement).

Compares the dict-walking scalar peel of ``bit_bu`` against the flat-array
batch engine of :mod:`repro.core.peeling_engine` (``bit_bu_csr``) on a dense
generator workload — the regime the engine targets: dense blocks put many
edges on the same support level, so whole levels peel as one vectorized
batch.  Two bundled skewed datasets are included for the sparse contrast.

Assertions pin the contract from ISSUE 1: on the dense workload the batch
engine is at least 2x faster than scalar BiT-BU and the bitruss numbers are
bitwise identical.

Results land in ``benchmarks/results/csr_peeling.txt`` via the same stats
plumbing as the paper-figure benches.
"""

import time

import numpy as np
import pytest

from benchmarks._shared import Contract, Metric, format_table, run_algorithm, write_result
from repro.core import bit_bu, bit_bu_csr
from repro.graph.generators import nested_communities

BENCH_TIER = "smoke"

#: The dense generator workload: three nested blocks of increasing density
#: plus uniform noise, the structure that produces deep bitruss hierarchies
#: with thousands of equal-support edges per peel level.
DENSE_SPEC = dict(
    blocks=[(60, 80, 0.5), (25, 30, 0.8), (10, 12, 1.0)],
    noise_edges=200,
    seed=42,
)

SPARSE_DATASETS = ("github", "d-label")


def dense_workload():
    return nested_communities(DENSE_SPEC["blocks"],
                              noise_edges=DENSE_SPEC["noise_edges"],
                              seed=DENSE_SPEC["seed"])


@pytest.mark.benchmark(group="csr_peeling")
def test_csr_peeling_dense_speedup_and_exactness(benchmark):
    graph = dense_workload()

    def run_both():
        # Warm the graph's shared caches (sorted CSR, priorities) before
        # timing anything: both algorithms reuse them, so neither side
        # should be billed for the one-time build.
        graph.csr_gid_sorted_with_prios()
        # Symmetric best-of-2: one noisy-neighbour pause or GC hit during
        # a single run must not fail CI on a non-defect.
        scalar_times = []
        batch_times = []
        for _ in range(2):
            t0 = time.perf_counter()
            scalar = bit_bu(graph)
            scalar_times.append(time.perf_counter() - t0)
            t0 = time.perf_counter()
            batch = bit_bu_csr(graph)
            batch_times.append(time.perf_counter() - t0)
        return scalar, batch, min(scalar_times), min(batch_times)

    scalar, batch, scalar_s, batch_s = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    # Identical bitruss numbers, bit for bit.
    np.testing.assert_array_equal(scalar.phi, batch.phi)
    # The tentpole contract: >= 2x on the dense generator workload.
    assert scalar_s >= 2.0 * batch_s, (
        f"expected >=2x speedup, got {scalar_s / batch_s:.2f}x "
        f"(best-of-2: scalar {scalar_s:.3f}s, batch {batch_s:.3f}s)"
    )


@pytest.mark.benchmark(group="csr_peeling")
def test_csr_peeling_report(benchmark):
    def collect():
        graph = dense_workload()
        records = {
            "dense-nested": {
                algo: run_algorithm(
                    "dense-nested", algo, graph=graph, cache_key_extra=("csr",)
                )
                for algo in ("BU", "BU++", "BU-CSR")
            }
        }
        for name in SPARSE_DATASETS:
            records[name] = {
                algo: run_algorithm(name, algo)
                for algo in ("BU", "BU++", "BU-CSR")
            }
        return records

    table = benchmark.pedantic(collect, rounds=1, iterations=1)
    rows = []
    for name, recs in table.items():
        speedup = recs["BU"].seconds / max(recs["BU-CSR"].seconds, 1e-9)
        rows.append([
            name,
            f"{recs['BU'].seconds:.3f}",
            f"{recs['BU++'].seconds:.3f}",
            f"{recs['BU-CSR'].seconds:.3f}",
            f"{speedup:.1f}x",
            str(recs["BU"].phi_max),
            str(recs["BU-CSR"].phi_max),
        ])
        # every algorithm settles the same hierarchy
        assert len({rec.phi_max for rec in recs.values()}) == 1
    lines = [
        "CSR batch peeling vs scalar BiT-BU (and dict-based BiT-BU++)",
        "dense-nested is the dense generator workload the engine targets;",
        "the skewed bundled datasets show the sparse contrast",
        "",
    ]
    lines += format_table(
        ["workload", "BU s", "BU++ s", "BU-CSR s", "speedup", "BU phi_max",
         "CSR phi_max"],
        rows,
    )
    dense = table["dense-nested"]
    dense_speedup = dense["BU"].seconds / max(dense["BU-CSR"].seconds, 1e-9)
    metrics = [
        Metric("bu_dense_seconds", dense["BU"].seconds, "seconds", "lower"),
        Metric("csr_dense_seconds", dense["BU-CSR"].seconds, "seconds", "lower"),
        Metric("csr_dense_speedup", dense_speedup, "ratio", "higher"),
        Metric("dense_phi_max", float(dense["BU-CSR"].phi_max), "count", "fixed"),
    ]
    print(
        "\n"
        + write_result(
            "csr_peeling",
            lines,
            bench="csr_peeling",
            metrics=metrics,
            contracts=[
                Contract(
                    "csr_2x_on_dense", dense_speedup >= 2.0, 2.0, dense_speedup
                )
            ],
        )
    )

"""Figure 5 — time cost of BiT-BS, split into counting vs peeling.

Paper setup: BiT-BS on Github, Twitter, D-label, D-style with the counting
phase of [8].  Expected shape: the peeling phase dominates the counting
phase by 1-3 orders of magnitude on every dataset — the bottleneck the
BE-Index attacks.
"""

import pytest

from benchmarks._shared import Contract, Metric, format_table, run_algorithm, write_result

DATASETS = ("github", "twitter", "d-label", "d-style")


@pytest.mark.benchmark(group="fig5")
@pytest.mark.parametrize("dataset", DATASETS)
def test_fig5_bs_phase_split(benchmark, dataset):
    record = benchmark.pedantic(
        lambda: run_algorithm(dataset, "BS"), rounds=1, iterations=1
    )
    counting = record.timings.get("counting", 0.0)
    peeling = record.timings.get("peeling", 0.0)
    assert peeling > counting, "peeling must dominate (the paper's bottleneck)"


@pytest.mark.benchmark(group="fig5")
def test_fig5_report(benchmark):
    def collect():
        return {d: run_algorithm(d, "BS") for d in DATASETS}

    records = benchmark.pedantic(collect, rounds=1, iterations=1)
    rows = []
    for name, rec in records.items():
        counting = rec.timings.get("counting", 0.0)
        peeling = rec.timings.get("peeling", 0.0)
        rows.append([
            name,
            f"{counting:.4f}",
            f"{peeling:.4f}",
            f"{peeling / max(counting, 1e-9):.1f}x",
        ])
    lines = [
        "Figure 5: time cost of BiT-BS (counting vs peeling, seconds)",
        "paper shape: peeling dominates counting on all four datasets",
        "",
    ]
    lines += format_table(
        ["dataset", "counting(s)", "peeling(s)", "peel/count"], rows
    )
    worst_ratio = min(
        rec.timings.get("peeling", 0.0)
        / max(rec.timings.get("counting", 0.0), 1e-9)
        for rec in records.values()
    )
    metrics = [
        Metric(f"bs_peeling_seconds_{name}",
               rec.timings.get("peeling", 0.0), "seconds", "lower")
        for name, rec in records.items()
    ]
    print(
        "\n"
        + write_result(
            "fig5",
            lines,
            bench="fig5_bs_bottleneck",
            metrics=metrics,
            contracts=[
                Contract(
                    "peeling_dominates_counting", worst_ratio > 1.0,
                    1.0, worst_ratio,
                )
            ],
        )
    )

"""Table II — summary of datasets.

Paper columns: |E|, |U|, |L|, ⋈G, sup_max (largest butterfly support of an
edge) and φ_max (largest bitruss number).  We regenerate the same table over
the 15 synthetic stand-ins; expected shape: skewed datasets show
sup_max ≫ φ_max (the hub-edge gap motivating BiT-PC), community datasets
(amazon, dblp, condmat) show tiny supports.
"""

import pytest

from benchmarks._shared import (
    Contract,
    Metric,
    dataset_supports,
    format_table,
    run_algorithm,
    write_result,
)
from repro.butterfly.counting import count_butterflies_total
from repro.datasets import dataset_names, load_dataset

BENCH_TIER = "smoke"

_rows_cache = []


def _collect_rows():
    if _rows_cache:
        return _rows_cache
    for name in dataset_names():
        graph = load_dataset(name)
        support = dataset_supports(name)
        butterflies = count_butterflies_total(graph)
        phi_max = run_algorithm(name, "BU++").phi_max
        _rows_cache.append([
            name,
            str(graph.num_edges),
            str(graph.num_upper),
            str(graph.num_lower),
            str(butterflies),
            str(int(support.max()) if len(support) else 0),
            str(phi_max),
        ])
    return _rows_cache


@pytest.mark.benchmark(group="table2")
def test_table2_dataset_summary(benchmark):
    rows = benchmark.pedantic(_collect_rows, rounds=1, iterations=1)
    lines = ["Table II: summary of datasets (synthetic stand-ins)", ""]
    lines += format_table(
        ["dataset", "|E|", "|U|", "|L|", "butterflies", "sup_max", "phi_max"],
        rows,
    )
    # shape assertions: the hub-edge phenomenon must be present where the
    # paper relies on it
    as_dict = {r[0]: r for r in rows}
    contracts = []
    for name in ("d-style", "wiki-it", "twitter"):
        sup_max = int(as_dict[name][5])
        phi_max = int(as_dict[name][6])
        contracts.append(
            Contract(
                f"hub_gap_{name}", sup_max > 2 * phi_max,
                2 * phi_max, sup_max,
            )
        )
    metrics = [
        Metric(f"butterflies_{r[0]}", float(r[4]), "count", "fixed")
        for r in rows
    ] + [
        Metric(f"phi_max_{r[0]}", float(r[6]), "count", "fixed")
        for r in rows
    ]
    text = write_result(
        "table2",
        lines,
        bench="table2_datasets",
        metrics=metrics,
        contracts=contracts,
    )
    print("\n" + text)
    for contract in contracts:
        assert contract.passed, f"{contract.name} lost its hub-edge gap"
    assert len(rows) == 15

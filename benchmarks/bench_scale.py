"""Million-edge scale pins: streaming ingest, mmap artifacts, query latency.

The scale tier answers one question the per-figure benches cannot: does
the whole pipeline — generate -> ingest -> count -> peel -> artifact ->
serve — actually hold together at 10^6 edges, and at what memory cost?

Stages (all timed, all recorded in ``BENCH_scale.json``):

1. **generate** — stream a chung-lu workload to disk in numpy chunks
   (:func:`repro.graph.chung_lu_edge_chunks`), never materializing the
   edge set in Python memory.
2. **ingest RSS duel** — two subprocesses load the same file, one via
   the dict-based :func:`load_edge_list`, one via the chunked
   :func:`load_edge_list_streaming`; each reports its ``ru_maxrss``
   above a post-import baseline.  The contract: the streaming loader's
   peak is **<= 0.5x** the dict loader's at the full scale target.
3. **count + peel** — per-edge butterfly counting and the BiT-BU-CSR
   peel, the paper's core pipeline, re-pinned at scale.
4. **artifact round-trip** — save in the mmappable directory layout,
   reload eagerly and via ``mmap_mode="r"`` (integrity hash verified in
   both modes), timing each.
5. **query latency** — point (``phi_of``), vertex (``max_k``) and level
   (``k_bitruss``) queries against the mmap-backed engine.

The run is sized by ``REPRO_SCALE_EDGES`` (default 1,000,000).  The
pytest entry is opt-in: marked ``scale`` and skipped unless
``REPRO_SCALE_TESTS=1`` — CI runs it at a reduced size in the
non-blocking ``scale-smoke`` job.
"""

import json
import os
import statistics
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

import repro
from benchmarks._shared import (
    Contract,
    Metric,
    make_result,
    peak_rss_delta_bytes,
    publish,
)
from repro.butterfly.counting import count_per_edge
from repro.core import bit_bu_csr
from repro.graph import chung_lu_edge_chunks, write_edge_chunks
from repro.graph.io import load_edge_list_streaming
from repro.service import QueryEngine
from repro.service.artifacts import DecompositionArtifact, save_artifact

EDGES = int(os.environ.get("REPRO_SCALE_EDGES", "1000000"))
ALGORITHM = "bit-bu-csr"
SEED = 7
EXPONENT = 2.5
RSS_RATIO_CEILING = 0.5

#: Child process run by the ingest RSS duel.  Imports first, snapshots
#: ``ru_maxrss`` as the baseline, loads, reports the high-water delta.
_RSS_PROBE = """
import json, resource, sys
mode, path = sys.argv[1], sys.argv[2]
import numpy as np  # noqa: F401  (charge numpy to the baseline)
from repro.graph.io import load_edge_list, load_edge_list_streaming

def rss_kb():
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss

baseline = rss_kb()
loader = load_edge_list if mode == "dict" else load_edge_list_streaming
graph = loader(path)
peak = rss_kb()
scale = 1 if sys.platform == "darwin" else 1024
print(json.dumps({
    "mode": mode,
    "num_edges": graph.num_edges,
    "baseline_bytes": baseline * scale,
    "peak_bytes": peak * scale,
    "delta_bytes": max(0, peak - baseline) * scale,
}))
"""


def _probe_loader_rss(mode: str, path: Path) -> dict:
    """Measure one loader's peak RSS in a fresh interpreter."""
    env = dict(os.environ)
    src = str(Path(repro.__file__).resolve().parents[1])
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    out = subprocess.run(
        [sys.executable, "-c", _RSS_PROBE, mode, str(path)],
        env=env,
        capture_output=True,
        text=True,
        check=True,
    )
    return json.loads(out.stdout.strip().splitlines()[-1])


def _generate(tmp_dir: Path) -> tuple:
    side = max(64, EDGES // 2)
    path = tmp_dir / f"chung_lu_{EDGES}.txt.gz"
    start = time.perf_counter()
    written = write_edge_chunks(
        path,
        chung_lu_edge_chunks(
            side,
            side,
            EDGES,
            exponent_upper=EXPONENT,
            exponent_lower=EXPONENT,
            seed=SEED,
        ),
        header=f"bip unweighted (chung-lu scale m={EDGES} seed={SEED})",
    )
    return path, written, time.perf_counter() - start


def _query_latencies(engine: QueryEngine, rng) -> dict:
    graph = engine.artifact.graph
    m = graph.num_edges
    eids = rng.choice(m, size=min(32, m), replace=False)

    point_s = []
    for eid in eids:
        u = int(graph.edge_upper[eid])
        v = int(graph.edge_lower[eid])
        t0 = time.perf_counter()
        engine.phi_of(u, v)
        point_s.append(time.perf_counter() - t0)

    vertex_s = []
    for eid in eids:
        u = int(graph.edge_upper[eid])
        t0 = time.perf_counter()
        engine.max_k(upper=u)
        vertex_s.append(time.perf_counter() - t0)

    max_k = engine.max_phi
    level_s = []
    for k in sorted({1, max(1, max_k // 2), max_k}):
        t0 = time.perf_counter()
        engine.k_bitruss(k)
        level_s.append(time.perf_counter() - t0)

    return {
        "point_queries": len(point_s),
        "mean_point_seconds": round(statistics.mean(point_s), 6),
        "mean_vertex_seconds": round(statistics.mean(vertex_s), 6),
        "mean_level_seconds": round(statistics.mean(level_s), 6),
        "max_level_seconds": round(max(level_s), 6),
    }


def run_bench(tmp_dir: Path) -> dict:
    tmp_dir = Path(tmp_dir)
    tmp_dir.mkdir(parents=True, exist_ok=True)
    record = {"target_edges": EDGES, "algorithm": ALGORITHM, "seed": SEED}

    path, written, gen_s = _generate(tmp_dir)
    record["generated_edges"] = written
    record["generate_seconds"] = round(gen_s, 3)
    record["edge_list_bytes"] = path.stat().st_size

    dict_probe = _probe_loader_rss("dict", path)
    stream_probe = _probe_loader_rss("streaming", path)
    assert dict_probe["num_edges"] == stream_probe["num_edges"] == written
    ratio = stream_probe["delta_bytes"] / max(1, dict_probe["delta_bytes"])
    record["ingest"] = {
        "dict_peak_rss_bytes": dict_probe["peak_bytes"],
        "dict_delta_rss_bytes": dict_probe["delta_bytes"],
        "streaming_peak_rss_bytes": stream_probe["peak_bytes"],
        "streaming_delta_rss_bytes": stream_probe["delta_bytes"],
        "rss_ratio": round(ratio, 3),
        "rss_ratio_ceiling": RSS_RATIO_CEILING,
    }

    t0 = time.perf_counter()
    graph = load_edge_list_streaming(path)
    record["ingest_seconds"] = round(time.perf_counter() - t0, 3)
    record["num_upper"] = graph.num_upper
    record["num_lower"] = graph.num_lower
    record["num_edges"] = graph.num_edges

    t0 = time.perf_counter()
    support = count_per_edge(graph)
    record["count_seconds"] = round(time.perf_counter() - t0, 3)
    record["butterflies"] = int(support.sum()) // 4

    t0 = time.perf_counter()
    result = bit_bu_csr(graph)
    record["peel_seconds"] = round(time.perf_counter() - t0, 3)
    record["max_k"] = result.max_k

    artifact = DecompositionArtifact(
        graph=graph, phi=result.phi, algorithm=ALGORITHM
    )
    art_dir = tmp_dir / "artifact"
    t0 = time.perf_counter()
    save_artifact(artifact, art_dir, layout="dir")
    record["artifact_save_seconds"] = round(time.perf_counter() - t0, 3)
    record["artifact_bytes"] = sum(
        p.stat().st_size for p in art_dir.iterdir()
    )

    t0 = time.perf_counter()
    eager = QueryEngine.load(art_dir)
    record["artifact_eager_load_seconds"] = round(
        time.perf_counter() - t0, 3
    )
    assert np.array_equal(eager.artifact.phi, result.phi)

    t0 = time.perf_counter()
    engine = QueryEngine.load(art_dir, mmap_mode="r")
    record["artifact_mmap_load_seconds"] = round(time.perf_counter() - t0, 3)
    assert np.array_equal(engine.artifact.phi, result.phi)

    rng = np.random.default_rng(SEED)
    record["query"] = _query_latencies(engine, rng)
    record["peak_rss_delta_bytes"] = peak_rss_delta_bytes()
    return record


def _write(record: dict) -> dict:
    payload = {
        "bench": "scale",
        "notes": (
            "end-to-end million-edge pin: chunked generate -> streaming "
            "ingest -> count -> BiT-BU-CSR peel -> dir-layout artifact -> "
            "mmap load -> query latency; ingest.rss_ratio compares each "
            "loader subprocess's ru_maxrss above its post-import baseline "
            "and must stay <= rss_ratio_ceiling"
        ),
        "record": record,
    }
    ratio = record["ingest"]["rss_ratio"]
    publish(
        make_result(
            "scale",
            metrics=[
                Metric("generate_seconds", record["generate_seconds"],
                       "seconds", "lower"),
                Metric("ingest_seconds", record["ingest_seconds"],
                       "seconds", "lower"),
                Metric("count_seconds", record["count_seconds"],
                       "seconds", "lower"),
                Metric("peel_seconds", record["peel_seconds"],
                       "seconds", "lower"),
                Metric("mmap_load_seconds",
                       record["artifact_mmap_load_seconds"],
                       "seconds", "lower"),
                Metric("mean_point_query_seconds",
                       record["query"]["mean_point_seconds"],
                       "seconds", "lower"),
                Metric("ingest_rss_ratio", ratio, "ratio", "lower"),
                Metric("butterflies", float(record["butterflies"]),
                       "count", "fixed"),
            ],
            contracts=[
                Contract(
                    "streaming_ingest_half_rss",
                    ratio <= RSS_RATIO_CEILING,
                    RSS_RATIO_CEILING,
                    ratio,
                )
            ],
            payload=payload,
        )
    )
    return payload


@pytest.mark.scale
@pytest.mark.skipif(
    os.environ.get("REPRO_SCALE_TESTS") != "1",
    reason="scale tier is opt-in (REPRO_SCALE_TESTS=1)",
)
def test_scale_pipeline(tmp_path):
    record = run_bench(tmp_path)
    _write(record)
    assert record["num_edges"] == record["target_edges"]
    assert record["ingest"]["rss_ratio"] <= RSS_RATIO_CEILING, (
        "streaming ingest used "
        f"{record['ingest']['rss_ratio']:.2f}x the dict loader's memory "
        f"(ceiling {RSS_RATIO_CEILING})"
    )


if __name__ == "__main__":
    import tempfile

    with tempfile.TemporaryDirectory(prefix="bench_scale_") as tmp:
        record = run_bench(Path(tmp))
    payload = _write(record)
    print(json.dumps(payload, indent=2))
    sys.exit(
        0 if record["ingest"]["rss_ratio"] <= RSS_RATIO_CEILING else 1
    )

"""Query engine vs. recompute-per-query (the service-layer tentpole).

Measures the compute-once / query-many split on bundled datasets: a mixed
workload of ``community``, ``k_bitruss`` and ``max_k`` queries is answered

* the old way — every query re-runs a full decomposition (what the CLI and
  apps did before the service layer existed), and
* the served way — one saved artifact is reopened from disk and a
  :class:`~repro.service.engine.QueryEngine` answers from the hierarchy.

Both sides produce identical answers (asserted edge-for-edge), and the
engine must be at least 10x faster on the repeated workload — the ISSUE 2
acceptance bar.  The artifact build/save/load costs are reported separately
so the break-even query count is visible.

Results land in ``benchmarks/results/BENCH_query_engine.json`` —
machine-readable, one record per dataset — seeding the perf trajectory.
"""

import json
import time
from pathlib import Path

import numpy as np
import pytest

from benchmarks._shared import Contract, Metric, make_result, publish
from repro.apps.community_search import bitruss_community
from repro.core.api import bitruss_decomposition
from repro.datasets import load_dataset
from repro.service import QueryEngine, build_artifact, load_artifact, save_artifact

BENCH_TIER = "smoke"

DATASETS = ("github", "marvel", "condmat")
ALGORITHM = "bit-bu-csr"
SPEEDUP_FLOOR = 10.0


def _publish_records(records):
    payload = {
        "bench": "query_engine",
        "speedup_floor": SPEEDUP_FLOOR,
        "records": records,
    }
    floor = min(r["speedup"] for r in records)
    metrics = [
        Metric(f"engine_seconds_{r['dataset']}", r["engine_seconds"],
               "seconds", "lower")
        for r in records
    ] + [
        Metric(f"speedup_{r['dataset']}", r["speedup"], "ratio", "higher")
        for r in records
    ]
    return publish(
        make_result(
            "query_engine",
            metrics=metrics,
            contracts=[
                Contract(
                    "engine_10x_vs_recompute",
                    floor >= SPEEDUP_FLOOR,
                    SPEEDUP_FLOOR,
                    floor,
                )
            ],
            payload=payload,
        )
    )


def _mixed_workload(graph, max_k, seed=7):
    """A deterministic mixed query batch over existing vertices/levels."""
    rng = np.random.default_rng(seed)
    ks = [1, 2, max(2, max_k // 2), max_k]
    queries = []
    for k in ks:
        for u in rng.choice(graph.num_upper, size=4, replace=False):
            queries.append(("community", k, int(u)))
    queries.extend(("k_bitruss", k, None) for k in ks)
    for u in rng.choice(graph.num_upper, size=8, replace=False):
        queries.append(("max_k", None, int(u)))
    return queries


def _run_recompute(graph, queries):
    """Every query pays a full decomposition — the pre-service behaviour."""
    answers = []
    for op, k, vertex in queries:
        result = bitruss_decomposition(graph, algorithm=ALGORITHM)
        if op == "community":
            community = bitruss_community(
                graph, k=k, upper=vertex, decomposition=result
            )
            answers.append((sorted(community.edges)))
        elif op == "k_bitruss":
            answers.append(result.edges_with_phi_at_least(k))
        else:
            eids = graph.edges_of_upper(vertex)
            answers.append(int(result.phi[eids].max()) if len(eids) else 0)
    return answers


def _run_engine(engine, queries):
    answers = []
    for op, k, vertex in queries:
        if op == "community":
            answers.append(sorted(engine.community(k, upper=vertex).edges))
        elif op == "k_bitruss":
            answers.append(engine.k_bitruss(k))
        else:
            answers.append(engine.max_k(upper=vertex))
    return answers


def bench_dataset(name, tmp_dir: Path):
    graph = load_dataset(name)

    t0 = time.perf_counter()
    artifact = build_artifact(graph, algorithm=ALGORITHM)
    build_s = time.perf_counter() - t0

    path = tmp_dir / f"{name}.npz"
    t0 = time.perf_counter()
    save_artifact(artifact, path)
    save_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    reopened = load_artifact(path)
    load_s = time.perf_counter() - t0
    engine = QueryEngine(reopened)

    queries = _mixed_workload(graph, artifact.max_k)

    t0 = time.perf_counter()
    recompute_answers = _run_recompute(graph, queries)
    recompute_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    engine_answers = _run_engine(engine, queries)
    engine_s = time.perf_counter() - t0

    assert recompute_answers == engine_answers, f"{name}: answers diverged"

    return {
        "dataset": name,
        "algorithm": ALGORITHM,
        "num_edges": graph.num_edges,
        "max_k": artifact.max_k,
        "num_queries": len(queries),
        "artifact_build_seconds": round(build_s, 6),
        "artifact_save_seconds": round(save_s, 6),
        "artifact_load_seconds": round(load_s, 6),
        "recompute_seconds": round(recompute_s, 6),
        "engine_seconds": round(engine_s, 6),
        "speedup": round(recompute_s / engine_s, 2) if engine_s else float("inf"),
        "cache": engine.cache_info(),
    }


@pytest.mark.benchmark(group="query_engine")
def test_query_engine_speedup(tmp_path, benchmark):
    records = benchmark.pedantic(
        lambda: [bench_dataset(name, tmp_path) for name in DATASETS],
        rounds=1,
        iterations=1,
    )
    _publish_records(records)
    for record in records:
        # The acceptance bar: serving a saved artifact beats re-running the
        # decomposition per query by >= 10x on every dataset.
        assert record["speedup"] >= SPEEDUP_FLOOR, (
            f"{record['dataset']}: engine only {record['speedup']}x faster "
            f"(recompute {record['recompute_seconds']}s vs engine "
            f"{record['engine_seconds']}s)"
        )


if __name__ == "__main__":
    import sys
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        records = [bench_dataset(name, Path(tmp)) for name in DATASETS]
    out = _publish_records(records)
    print(json.dumps(json.loads(out.read_text()), indent=2))
    sys.exit(0 if all(r["speedup"] >= SPEEDUP_FLOOR for r in records) else 1)

"""Ablation — the peeling queue: bucket queue vs lazy binary heap.

Peeling extracts a global minimum after every removal; the bucket queue
(with a monotone scan pointer) serves that in amortized O(1) while a lazy
binary heap pays O(log m) plus stale-entry churn from the frequent
decrease-key traffic.  This bench runs BiT-BU with both queues.

Expected shape: identical bitruss numbers; the bucket queue is faster, and
its edge grows with the number of support updates (heavier decrease-key
traffic).
"""

import time

import pytest

from benchmarks._shared import Metric, format_table, write_result
from repro.core import bit_bu
from repro.datasets import load_dataset
from repro.utils.bucket_queue import LazyMinHeap

DATASETS = ("github", "d-label", "d-style", "wiki-it")

_cache = {}


def _run(dataset, queue_kind):
    key = (dataset, queue_kind)
    if key in _cache:
        return _cache[key]
    graph = load_dataset(dataset)
    factory = LazyMinHeap if queue_kind == "heap" else None
    start = time.perf_counter()
    result = bit_bu(graph, queue_factory=factory)
    elapsed = time.perf_counter() - start
    _cache[key] = (elapsed, result.phi)
    return _cache[key]


@pytest.mark.benchmark(group="ablation-queue")
@pytest.mark.parametrize("dataset", DATASETS)
def test_queue_ablation(benchmark, dataset):
    def run_both():
        return _run(dataset, "bucket"), _run(dataset, "heap")

    (t_bucket, phi_bucket), (t_heap, phi_heap) = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    assert (phi_bucket == phi_heap).all()


@pytest.mark.benchmark(group="ablation-queue")
def test_queue_ablation_report(benchmark):
    def collect():
        return {d: (_run(d, "bucket"), _run(d, "heap")) for d in DATASETS}

    table = benchmark.pedantic(collect, rounds=1, iterations=1)
    rows = [
        [name, f"{bucket[0]:.3f}", f"{heap[0]:.3f}",
         f"{heap[0] / max(bucket[0], 1e-9):.2f}x"]
        for name, (bucket, heap) in table.items()
    ]
    lines = [
        "Ablation: BiT-BU peeling queue (bucket vs lazy binary heap)",
        "",
    ]
    lines += format_table(["dataset", "bucket s", "heap s", "heap/bucket"], rows)
    metrics = [
        Metric(f"bucket_seconds_{name}", bucket[0], "seconds", "lower")
        for name, (bucket, _heap) in table.items()
    ] + [
        Metric(f"heap_over_bucket_{name}", heap[0] / max(bucket[0], 1e-9),
               "ratio", "higher")
        for name, (bucket, heap) in table.items()
    ]
    print(
        "\n"
        + write_result(
            "ablation_queue", lines, bench="ablation_queue", metrics=metrics
        )
    )

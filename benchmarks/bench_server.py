"""Server throughput: request coalescing vs. naive per-request dispatch.

A closed-loop load generator (C keep-alive connections, each issuing R
back-to-back identical queries) drives the real asyncio HTTP server twice
over the same artifact:

* **naive** — coalescing disabled: every request pays its own engine call
  and its own JSON encoding (one-engine-call-per-request, the behaviour a
  straight ``QueryEngine``-behind-a-handler server would have);
* **coalesced** — the :class:`~repro.server.batching.QueryCoalescer`
  merges identical concurrent requests onto one computation future and
  shares the encoded response body.

Both modes serve with ``cache_size=0`` so the engine LRU cannot hide the
per-request compute — the measured gap is the coalescer's, not the
cache's.  The ISSUE 4 acceptance bar is **>= 5x** throughput for the
coalesced mode on this workload; answers are asserted identical first.

Results land in ``benchmarks/results/BENCH_server.json``.
"""

import asyncio
import hashlib
import json
import time

import pytest

from benchmarks._shared import Contract, Metric, make_result, publish

BENCH_TIER = "smoke"

DATASET = "wiki-it"
ALGORITHM = "bit-bu-csr"
TARGET = "/bench/community?k=2&upper=0"
CLIENTS = 16
ROUNDS = 8
SPEEDUP_FLOOR = 5.0


async def _client(port: int, target: str, rounds: int) -> int:
    """One closed-loop client on a persistent connection."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    request = f"GET {target} HTTP/1.1\r\nHost: bench\r\n\r\n".encode()
    body = b""
    try:
        for _ in range(rounds):
            writer.write(request)
            await writer.drain()
            header = await reader.readuntil(b"\r\n\r\n")
            status = int(header.split(None, 2)[1])
            assert status == 200, header
            length = next(
                int(line.split(b":")[1])
                for line in header.split(b"\r\n")
                if line.lower().startswith(b"content-length")
            )
            body = await reader.readexactly(length)
    finally:
        writer.close()
    return hashlib.sha256(body).hexdigest()[:16]


async def _run_mode(artifact, *, coalesce: bool) -> dict:
    from repro.server import ArtifactRegistry, BitrussServer

    registry = ArtifactRegistry(cache_size=0)
    registry.register("bench", artifact)
    server = BitrussServer(registry, port=0, coalesce=coalesce, window=0.002)
    async with server:
        # One warm-up request so imports/thread-pool spin-up stay out of
        # the measured window.
        await _client(server.port, TARGET, 1)
        t0 = time.perf_counter()
        digests = await asyncio.gather(
            *[_client(server.port, TARGET, ROUNDS) for _ in range(CLIENTS)]
        )
        elapsed = time.perf_counter() - t0
        record = {
            "coalesce": coalesce,
            "clients": CLIENTS,
            "rounds": ROUNDS,
            "requests": CLIENTS * ROUNDS,
            "seconds": round(elapsed, 6),
            "rps": round(CLIENTS * ROUNDS / elapsed, 1),
            "engine_misses": registry.get("bench").engine.cache_info()[
                "misses"
            ],
            "body_digest": digests[0],
        }
        assert len(set(digests)) == 1, "clients saw diverging answers"
        if coalesce:
            record["coalescer"] = server.coalescer.stats()
        return record


def run_bench() -> dict:
    from repro.datasets import load_dataset
    from repro.service import build_artifact

    artifact = build_artifact(load_dataset(DATASET), algorithm=ALGORITHM)
    naive = asyncio.run(_run_mode(artifact, coalesce=False))
    coalesced = asyncio.run(_run_mode(artifact, coalesce=True))
    assert naive["body_digest"] == coalesced["body_digest"], (
        "modes must serve identical answers"
    )
    speedup = round(coalesced["rps"] / naive["rps"], 2)
    return {
        "bench": "server",
        "dataset": DATASET,
        "algorithm": ALGORITHM,
        "target": TARGET,
        "speedup_floor": SPEEDUP_FLOOR,
        "speedup": speedup,
        "naive": naive,
        "coalesced": coalesced,
    }


def _write(payload: dict) -> None:
    publish(
        make_result(
            "server",
            metrics=[
                Metric("naive_rps", payload["naive"]["rps"], "rps", "higher"),
                Metric("coalesced_rps", payload["coalesced"]["rps"],
                       "rps", "higher"),
                Metric("coalescing_speedup", payload["speedup"],
                       "ratio", "higher"),
            ],
            contracts=[
                Contract(
                    "coalescing_5x_throughput",
                    payload["speedup"] >= SPEEDUP_FLOOR,
                    SPEEDUP_FLOOR,
                    payload["speedup"],
                )
            ],
            payload=payload,
        )
    )


@pytest.mark.benchmark(group="server")
def test_server_coalescing_speedup(benchmark):
    payload = benchmark.pedantic(run_bench, rounds=1, iterations=1)
    _write(payload)
    assert payload["speedup"] >= SPEEDUP_FLOOR, (
        f"coalesced serving only {payload['speedup']}x the naive baseline "
        f"({payload['coalesced']['rps']} vs {payload['naive']['rps']} rps)"
    )
    # Coalescing must actually have merged work, not just won by noise.
    assert payload["coalesced"]["engine_misses"] < payload["naive"]["engine_misses"]


if __name__ == "__main__":
    import sys

    payload = run_bench()
    _write(payload)
    print(json.dumps(payload, indent=2))
    sys.exit(0 if payload["speedup"] >= SPEEDUP_FLOOR else 1)

"""Figure 12 — scalability: time vs vertex-sample fraction.

Paper setup: BU, BU++ and PC on induced subgraphs over 20%..100% of the
vertices of Github, D-label, D-style, Wiki-it.  We draw the samples nested
(each fraction is a prefix of one per-layer permutation) so edge counts grow
monotonically despite heavy-tailed degrees.  Expected shape: every
algorithm's cost grows with the sample fraction (the algorithms are
scalable — no blow-up), and the relative ordering at 100% matches Fig. 9.
"""

import pytest

from benchmarks._shared import Metric, format_table, run_algorithm, write_result
from repro.datasets import load_dataset
from repro.graph.sampling import nested_sample_fractions

DATASETS = ("github", "d-label", "d-style", "wiki-it")
FRACTIONS = (0.2, 0.4, 0.6, 0.8, 1.0)
ALGOS = ("BU", "BU++", "PC")

_series_cache = {}


def _series(dataset):
    if dataset in _series_cache:
        return _series_cache[dataset]
    base = load_dataset(dataset)
    rows = []
    samples = nested_sample_fractions(base, FRACTIONS, seed=42)
    for fraction, graph in zip(FRACTIONS, samples):
        times = {}
        for algo in ALGOS:
            record = run_algorithm(
                dataset, algo, graph=graph, cache_key_extra=(fraction,)
            )
            times[algo] = record.seconds
        rows.append((fraction, graph.num_edges, times))
    _series_cache[dataset] = rows
    return rows


@pytest.mark.benchmark(group="fig12")
@pytest.mark.parametrize("dataset", DATASETS)
def test_fig12_dataset(benchmark, dataset):
    rows = benchmark.pedantic(lambda: _series(dataset), rounds=1, iterations=1)
    # cost grows with graph size: the full graph costs more than the 20%
    # sample for every algorithm (weak but robust monotonicity check)
    for algo in ALGOS:
        assert rows[-1][2][algo] > rows[0][2][algo]
    # edge counts themselves must grow
    edge_counts = [m for _, m, __ in rows]
    assert edge_counts == sorted(edge_counts)


@pytest.mark.benchmark(group="fig12")
def test_fig12_report(benchmark):
    def collect():
        return {d: _series(d) for d in DATASETS}

    table = benchmark.pedantic(collect, rounds=1, iterations=1)
    lines = [
        "Figure 12: wall-clock seconds vs vertex-sample percentage",
        "paper shape: all three algorithms scale smoothly with graph size",
        "",
    ]
    for name, rows in table.items():
        lines.append(f"[{name}]")
        body = [
            [f"{int(f * 100)}%", str(m)] + [f"{t[a]:.3f}" for a in ALGOS]
            for f, m, t in rows
        ]
        lines += format_table(["sample", "|E|", "BU", "BU++", "PC"], body)
        lines.append("")
    metrics = [
        Metric(f"sample_edges_{name}_{int(f * 100)}pct", float(m),
               "count", "fixed")
        for name, rows in table.items()
        for f, m, _ in rows
    ] + [
        Metric(f"bupp_full_seconds_{name}", rows[-1][2]["BU++"],
               "seconds", "lower")
        for name, rows in table.items()
    ]
    print(
        "\n"
        + write_result(
            "fig12", lines, bench="fig12_scalability", metrics=metrics
        )
    )

"""Figure 10 — total number of butterfly-support updates.

Paper setup: BU vs BU++ vs PC on Github, D-label, D-style, Wiki-it.
Expected shape: BU++ updates < BU updates (batching), and PC cuts >90% of
the updates relative to BU on the hub-heavy datasets by compressing
assigned edges out of later indexes.
"""

import pytest

from benchmarks._shared import Contract, Metric, format_table, run_algorithm, write_result

DATASETS = ("github", "d-label", "d-style", "wiki-it")
ALGOS = ("BU", "BU++", "PC")


@pytest.mark.benchmark(group="fig10")
@pytest.mark.parametrize("dataset", DATASETS)
def test_fig10_dataset(benchmark, dataset):
    def run_all():
        return {algo: run_algorithm(dataset, algo) for algo in ALGOS}

    records = benchmark.pedantic(run_all, rounds=1, iterations=1)
    assert records["BU++"].updates <= records["BU"].updates
    assert records["PC"].updates < records["BU"].updates
    # the headline claim: PC removes the lion's share of updates
    reduction_vs_bu = 1 - records["PC"].updates / max(records["BU"].updates, 1)
    assert reduction_vs_bu > 0.5, f"PC reduction too small on {dataset}"


@pytest.mark.benchmark(group="fig10")
def test_fig10_report(benchmark):
    def collect():
        return {
            d: {a: run_algorithm(d, a) for a in ALGOS} for d in DATASETS
        }

    table = benchmark.pedantic(collect, rounds=1, iterations=1)
    rows = []
    for name, recs in table.items():
        bu = recs["BU"].updates
        pc = recs["PC"].updates
        rows.append([
            name,
            str(bu),
            str(recs["BU++"].updates),
            str(pc),
            f"{100 * (1 - pc / max(bu, 1)):.1f}%",
        ])
    lines = [
        "Figure 10: total butterfly-support updates",
        "paper shape: BU++ < BU; PC reduces >90% vs BU/BU++ on hub-heavy data",
        "",
    ]
    lines += format_table(
        ["dataset", "BU", "BU++", "PC", "PC cut vs BU"], rows
    )
    metrics = [
        Metric(f"{algo.lower().replace('+', 'p')}_updates_{d}",
               float(table[d][algo].updates), "count", "fixed")
        for d in DATASETS
        for algo in ALGOS
    ]
    worst_cut = min(
        1 - table[d]["PC"].updates / max(table[d]["BU"].updates, 1)
        for d in DATASETS
    )
    print(
        "\n"
        + write_result(
            "fig10",
            lines,
            bench="fig10_updates",
            metrics=metrics,
            contracts=[
                Contract("pc_cut_vs_bu_over_50pct", worst_cut > 0.5, 0.5, worst_cut)
            ],
        )
    )

"""Ablation — BiT-PC's candidate filter: fixpoint vs single-pass.

DESIGN.md §3 documents a deliberate deviation: Algorithm 7 line 6
("recompute sup(e) on G≥ε and remove e if sup(e) < ε") is run to a fixpoint
by default rather than the literal single round.  This bench quantifies the
choice on the representative datasets.

Expected shape: identical bitruss numbers; the fixpoint variant performs
fewer support updates (recounting is plain counting, never billed as an
update) at a modest wall-clock premium for the extra recount rounds.
"""

import time

import pytest

from benchmarks._shared import Contract, Metric, format_table, write_result
from repro.core import bit_pc
from repro.datasets import load_dataset
from repro.utils.stats import UpdateCounter

DATASETS = ("github", "d-label", "d-style", "wiki-it")

_cache = {}


def _run(dataset, prefilter):
    key = (dataset, prefilter)
    if key in _cache:
        return _cache[key]
    graph = load_dataset(dataset)
    counter = UpdateCounter()
    start = time.perf_counter()
    result = bit_pc(graph, tau=0.02, prefilter=prefilter, counter=counter)
    elapsed = time.perf_counter() - start
    _cache[key] = (elapsed, counter.total, result.phi)
    return _cache[key]


@pytest.mark.benchmark(group="ablation-pc-prefilter")
@pytest.mark.parametrize("dataset", DATASETS)
def test_prefilter_ablation(benchmark, dataset):
    def run_both():
        return _run(dataset, "fixpoint"), _run(dataset, "single-pass")

    (t_fix, upd_fix, phi_fix), (t_one, upd_one, phi_one) = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    assert (phi_fix == phi_one).all()
    assert upd_fix <= upd_one


@pytest.mark.benchmark(group="ablation-pc-prefilter")
def test_prefilter_ablation_report(benchmark):
    def collect():
        return {
            d: (_run(d, "fixpoint"), _run(d, "single-pass")) for d in DATASETS
        }

    table = benchmark.pedantic(collect, rounds=1, iterations=1)
    rows = []
    for name, ((t_fix, upd_fix, _), (t_one, upd_one, __)) in table.items():
        rows.append([
            name,
            str(upd_one),
            str(upd_fix),
            f"{100 * (1 - upd_fix / max(upd_one, 1)):.1f}%",
            f"{t_one:.3f}",
            f"{t_fix:.3f}",
        ])
    lines = [
        "Ablation: BiT-PC candidate filter (tau = 0.02)",
        "single-pass = literal Alg. 7 line 6; fixpoint = library default",
        "",
    ]
    lines += format_table(
        ["dataset", "1-pass upd", "fixpoint upd", "upd cut",
         "1-pass s", "fixpoint s"],
        rows,
    )
    metrics = [
        Metric(f"fixpoint_updates_{name}", float(fix[1]), "count", "fixed")
        for name, (fix, _one) in table.items()
    ] + [
        Metric(f"single_pass_updates_{name}", float(one[1]), "count", "fixed")
        for name, (_fix, one) in table.items()
    ]
    passed = all(fix[1] <= one[1] for fix, one in table.values())
    print(
        "\n"
        + write_result(
            "ablation_pc_prefilter",
            lines,
            bench="ablation_pc_prefilter",
            metrics=metrics,
            contracts=[
                Contract(
                    "fixpoint_never_more_updates", passed, 1.0,
                    1.0 if passed else 0.0,
                )
            ],
        )
    )

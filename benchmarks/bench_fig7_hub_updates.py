"""Figure 7 — support updates bucketed by the edge's original support.

Paper setup: on D-style, the number of support updates received by edges in
five original-support ranges, for BU, BU++ and PC.  Expected shape: in
BU/BU++ the top bucket (hub edges) absorbs the bulk of all updates (~80% in
the paper); PC cuts the hub-bucket updates by orders of magnitude because a
hub edge stops being updated the moment its bitruss number is assigned.
"""

import pytest

from benchmarks._shared import Contract, Metric, format_table, run_algorithm, write_result
from repro.datasets import HUB_SHOWCASE

ALGOS = ("BU", "BU++", "PC")


@pytest.mark.benchmark(group="fig7")
def test_fig7_hub_bucket_shape(benchmark):
    def collect():
        return {a: run_algorithm(HUB_SHOWCASE, a) for a in ALGOS}

    records = benchmark.pedantic(collect, rounds=1, iterations=1)
    bu = records["BU"]
    pc = records["PC"]
    top = len(bu.bucket_totals) - 1
    # hub edges dominate the bottom-up algorithms' update bill
    assert bu.bucket_totals[top] > 0
    hub_share_bu = bu.bucket_totals[top] / max(bu.updates, 1)
    assert hub_share_bu > 0.2, "hub bucket should carry a large share for BU"
    # PC must slash the hub bucket specifically
    assert pc.bucket_totals[top] < bu.bucket_totals[top] / 5


@pytest.mark.benchmark(group="fig7")
def test_fig7_report(benchmark):
    def collect():
        return {a: run_algorithm(HUB_SHOWCASE, a) for a in ALGOS}

    records = benchmark.pedantic(collect, rounds=1, iterations=1)
    labels = records["BU"].bucket_labels
    rows = []
    for i, label in enumerate(labels):
        rows.append(
            [label]
            + [str(records[a].bucket_totals[i]) for a in ALGOS]
        )
    rows.append(["total"] + [str(records[a].updates) for a in ALGOS])
    lines = [
        f"Figure 7: support updates by original-support range ({HUB_SHOWCASE})",
        "paper shape: hub bucket dominates BU/BU++; PC slashes it",
        "",
    ]
    lines += format_table(["support range"] + list(ALGOS), rows)
    top = len(records["BU"].bucket_totals) - 1
    hub_cut = records["BU"].bucket_totals[top] / max(
        records["PC"].bucket_totals[top], 1
    )
    metrics = [
        Metric(f"{a.lower().replace('+', 'p')}_total_updates",
               float(records[a].updates), "count", "fixed")
        for a in ALGOS
    ] + [
        Metric(f"{a.lower().replace('+', 'p')}_hub_bucket_updates",
               float(records[a].bucket_totals[top]), "count", "fixed")
        for a in ALGOS
    ]
    print(
        "\n"
        + write_result(
            "fig7",
            lines,
            bench="fig7_hub_updates",
            metrics=metrics,
            contracts=[
                Contract("pc_hub_cut_over_5x", hub_cut > 5.0, 5.0, hub_cut)
            ],
        )
    )

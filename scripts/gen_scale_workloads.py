#!/usr/bin/env python
"""Materialize the scale-tier synthetic workloads from a manifest.

The scale harness (``benchmarks/bench_scale.py`` and the
``@pytest.mark.scale`` tests) exercises the million-edge path: streaming
ingestion, mmap artifacts and query latency.  This script turns a JSON
manifest into the edge-list files those benches consume, generating each
graph *in chunks* so a million-edge workload never holds the full edge
set in Python memory.

Manifest format (JSON)::

    {
      "workloads": [
        {
          "name": "cl-1m",
          "model": "chung-lu",          # chung-lu | erdos-renyi
          "upper": 500000,
          "lower": 500000,
          "edges": 1000000,
          "seed": 7,                     # optional, default 7
          "exponent": 2.5,               # chung-lu only, default 2.5
          "output": "cl-1m.txt.gz"       # relative to --out-dir
        }
      ]
    }

Without ``--manifest`` the built-in default manifest is used (one
chung-lu and one erdos-renyi workload whose size honours the
``REPRO_SCALE_EDGES`` environment variable, default 1,000,000 edges).

Usage::

    PYTHONPATH=src python scripts/gen_scale_workloads.py --out-dir /tmp/scale
    PYTHONPATH=src python scripts/gen_scale_workloads.py \
        --manifest my_manifest.json --out-dir /tmp/scale --only cl-1m
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

from repro.graph import (
    chung_lu_edge_chunks,
    erdos_renyi_edge_chunks,
    write_edge_chunks,
)

DEFAULT_EDGES = int(os.environ.get("REPRO_SCALE_EDGES", "1000000"))


def default_manifest() -> dict:
    """The two workloads the scale harness pins by default."""
    edges = DEFAULT_EDGES
    # Vertex counts scale with the edge target so the graphs stay sparse
    # (mean degree ~2 per side) and rejection sampling converges fast.
    side = max(64, edges // 2)
    return {
        "workloads": [
            {
                "name": "cl-scale",
                "model": "chung-lu",
                "upper": side,
                "lower": side,
                "edges": edges,
                "seed": 7,
                "exponent": 2.5,
                "output": "cl-scale.txt.gz",
            },
            {
                "name": "er-scale",
                "model": "erdos-renyi",
                "upper": side,
                "lower": side,
                "edges": edges,
                "seed": 11,
                "output": "er-scale.txt.gz",
            },
        ]
    }


def _chunks_for(spec: dict, chunk_edges: int):
    model = spec["model"]
    upper = int(spec["upper"])
    lower = int(spec["lower"])
    edges = int(spec["edges"])
    seed = int(spec.get("seed", 7))
    if model == "chung-lu":
        exponent = float(spec.get("exponent", 2.5))
        return chung_lu_edge_chunks(
            upper,
            lower,
            edges,
            exponent_upper=exponent,
            exponent_lower=exponent,
            seed=seed,
            chunk_edges=chunk_edges,
        )
    if model == "erdos-renyi":
        return erdos_renyi_edge_chunks(
            upper, lower, edges, seed=seed, chunk_edges=chunk_edges
        )
    raise ValueError(f"unknown model {model!r} (chung-lu | erdos-renyi)")


def generate(manifest: dict, out_dir: Path, *, only=None, chunk_edges=1 << 18):
    """Write every selected workload; return the per-workload summaries."""
    workloads = manifest.get("workloads", [])
    if not workloads:
        raise ValueError("manifest has no 'workloads' entries")
    if only:
        names = {w.get("name") for w in workloads}
        missing = set(only) - names
        if missing:
            raise ValueError(f"unknown workload name(s): {sorted(missing)}")
        workloads = [w for w in workloads if w.get("name") in only]

    out_dir.mkdir(parents=True, exist_ok=True)
    summaries = []
    for spec in workloads:
        path = out_dir / spec["output"]
        header = (
            f"bip unweighted ({spec['model']} |U|={spec['upper']} "
            f"|L|={spec['lower']} m={spec['edges']} "
            f"seed={spec.get('seed', 7)})"
        )
        start = time.perf_counter()
        written = write_edge_chunks(
            path, _chunks_for(spec, chunk_edges), header=header
        )
        elapsed = time.perf_counter() - start
        summaries.append(
            {
                "name": spec.get("name", spec["output"]),
                "model": spec["model"],
                "num_upper": int(spec["upper"]),
                "num_lower": int(spec["lower"]),
                "num_edges": written,
                "seed": int(spec.get("seed", 7)),
                "path": str(path),
                "bytes": path.stat().st_size,
                "seconds": round(elapsed, 3),
            }
        )
        print(
            f"{summaries[-1]['name']}: {written} edges -> {path} "
            f"({summaries[-1]['bytes']} bytes, {elapsed:.1f}s)"
        )
    return summaries


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--manifest",
        type=Path,
        default=None,
        help="JSON manifest (default: built-in scale manifest)",
    )
    parser.add_argument(
        "--out-dir",
        type=Path,
        required=True,
        help="directory to write the edge lists into",
    )
    parser.add_argument(
        "--only",
        action="append",
        metavar="NAME",
        help="generate only this workload (repeatable)",
    )
    parser.add_argument(
        "--chunk-edges",
        type=int,
        default=1 << 18,
        help="edges per generated chunk (default %(default)s)",
    )
    parser.add_argument(
        "--summary-json",
        type=Path,
        default=None,
        help="also write the generation summaries to this JSON file",
    )
    args = parser.parse_args(argv)

    if args.manifest is not None:
        manifest = json.loads(args.manifest.read_text())
    else:
        manifest = default_manifest()

    try:
        summaries = generate(
            manifest,
            args.out_dir,
            only=args.only,
            chunk_edges=args.chunk_edges,
        )
    except (ValueError, RuntimeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.summary_json is not None:
        args.summary_json.write_text(json.dumps(summaries, indent=2) + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python
"""Quickstart: decompose the paper's running example (Figure 4).

Run with::

    python examples/quickstart.py
"""

from repro import bitruss_decomposition
from repro.graph.generators import paper_figure4_graph


def main() -> None:
    graph = paper_figure4_graph()
    print(f"graph: {graph}")

    # Any of: bit-bs, bit-bu, bit-bu+, bit-bu++ (default), bit-pc.
    result = bitruss_decomposition(graph, algorithm="bit-bu++")

    print("\nbitruss number of every edge:")
    for (u, v), k in sorted(result.as_dict().items()):
        print(f"  (u{u}, v{v}) -> {k}")

    print(f"\nmax bitruss number: {result.max_k}")
    print("hierarchy |E(H_k)|:", result.hierarchy())

    # Extract the 2-bitruss — the inner 3-bloom of the paper's Figure 4(c).
    h2 = result.k_bitruss(2)
    print(f"2-bitruss edges: {sorted(h2.edges())}")

    print("\nrun statistics:")
    print(" ", result.stats.summary())


if __name__ == "__main__":
    main()

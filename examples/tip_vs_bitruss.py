#!/usr/bin/env python
"""Tip vs bitruss: vertex-level vs edge-level butterfly hierarchies.

The baseline paper [5] defines both peeling hierarchies; this example
contrasts them on a graph with a planted dense block plus a "bridge" user
who touches the block through a single interaction.  The tip number judges
the *whole vertex* (the bridge user scores high — they do sit in many
butterflies), while bitruss numbers judge *each interaction* (the bridge
edge itself scores low).  Edge-level resolution is exactly why the paper
decomposes edges.

Also demonstrates `repro.analysis.recommend_algorithm`.

Run with::

    python examples/tip_vs_bitruss.py
"""

import numpy as np

from repro.analysis import hub_edge_report, recommend_algorithm
from repro.core import bit_bu_plus_plus
from repro.core.tip import tip_decomposition
from repro.graph.bipartite import BipartiteGraph
from repro.graph.generators import chung_lu_bipartite


def build_graph() -> BipartiteGraph:
    """Background + planted 8x8 dense block + one bridge user."""
    background = chung_lu_bipartite(150, 100, 700, seed=3)
    edges = set(background.edges())
    # dense block on fresh vertices
    for u in range(150, 158):
        for v in range(100, 108):
            edges.add((u, v))
    # the bridge user: many background interactions, ONE into the block
    bridge = 158
    rng = np.random.default_rng(4)
    for v in rng.choice(100, size=12, replace=False):
        edges.add((bridge, int(v)))
    edges.add((bridge, 100))  # single tie into the dense block
    return BipartiteGraph(159, 108, sorted(edges))


def main() -> None:
    graph = build_graph()
    bridge = 158
    print(f"graph: {graph}")

    theta = tip_decomposition(graph, "upper")
    result = bit_bu_plus_plus(graph)

    block_theta = theta[150:158]
    print(f"\ntip numbers    block users: {sorted(set(block_theta.tolist()))}, "
          f"bridge user: {theta[bridge]}")

    bridge_edge_phis = [
        result.phi[eid] for eid in graph.edges_of_upper(bridge)
    ]
    block_edge = graph.edge_id(bridge, 100)
    print("bitruss numbers of the bridge user's edges: "
          f"max {max(bridge_edge_phis)}, tie into the block: "
          f"{result.phi[block_edge]}")
    block_phis = [
        result.phi[graph.edge_id(u, v)]
        for u in range(150, 158)
        for v in range(100, 108)
    ]
    print(f"bitruss numbers inside the block: {sorted(set(block_phis))}")

    report = hub_edge_report(graph, result)
    print(f"\nsupport/phi profile: sup_max={report.support_max}, "
          f"phi_max={report.phi_max}, gap ratio {report.gap_ratio:.1f}x, "
          f"correlation {report.support_phi_correlation:.2f}")

    algorithm, reason = recommend_algorithm(graph)
    print(f"\nrecommended algorithm: {algorithm}\n  ({reason})")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Nested research-group discovery on an author-paper network (paper §I).

Builds a three-ring collaboration structure (a loose community containing a
working group containing an inner core, exactly the paper's Figure 1 story)
plus noise, then walks the bitruss hierarchy from loose to tight.

Run with::

    python examples/research_groups.py
"""

from repro.apps.research_groups import research_group_hierarchy
from repro.graph.bipartite import BipartiteGraph, build_labeled_graph
from repro.graph.generators import nested_communities


def labelled_demo() -> None:
    """Tiny labelled network mirroring the paper's Figure 1."""
    pairs = [
        ("alice", "p0"), ("alice", "p1"),
        ("bob", "p0"), ("bob", "p1"),
        ("carol", "p0"), ("carol", "p1"), ("carol", "p2"), ("carol", "p3"),
        ("dave", "p1"), ("dave", "p2"), ("dave", "p4"),
    ]
    graph, authors, papers = build_labeled_graph(pairs)
    hierarchy = research_group_hierarchy(graph)
    print("labelled example (paper Figure 1):")
    for level in hierarchy.levels:
        names = [
            "{" + ", ".join(sorted(authors.label_of(a) for a in g_authors)) + "}"
            for g_authors, _g_papers in level.groups
        ]
        print(f"  k={level.k}: groups {', '.join(names)}")


def synthetic_demo() -> None:
    """Nested, increasingly dense blocks: community > group > core."""
    graph = nested_communities(
        [(30, 40, 0.2), (12, 16, 0.55), (5, 7, 1.0)],
        noise_edges=150,
        num_extra_upper=20,
        num_extra_lower=30,
        seed=7,
    )
    print(f"\nsynthetic network: {graph}")
    hierarchy = research_group_hierarchy(graph, levels=4)
    for level in hierarchy.levels:
        sizes = [f"{len(a)}x{len(p)}" for a, p in level.groups[:3]]
        print(f"  k={level.k:3d}: {len(level.groups)} group(s), largest {sizes}")
    core_authors, core_papers = hierarchy.tightest_groups()[0]
    print(
        f"inner core: {len(core_authors)} authors x {len(core_papers)} papers "
        f"(planted 5 x 7)"
    )


def main() -> None:
    labelled_demo()
    synthetic_demo()


if __name__ == "__main__":
    main()

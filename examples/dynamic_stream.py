#!/usr/bin/env python
"""Streaming maintenance: live butterfly supports over an edge stream.

Simulates a rating stream into a user-item graph: edges arrive (and
occasionally churn out), butterfly supports are maintained incrementally,
and the bitruss hierarchy is re-derived at checkpoints — the deployment
pattern for keeping the paper's structures fresh on dynamic data.

Run with::

    python examples/dynamic_stream.py
"""

import numpy as np

from repro.maintenance import DynamicBipartiteGraph

USERS = 120
ITEMS = 80
STREAM_LENGTH = 1500
SEED = 7


def main() -> None:
    rng = np.random.default_rng(SEED)
    dyn = DynamicBipartiteGraph(USERS, ITEMS)

    created_total = 0
    destroyed_total = 0
    checkpoints = {STREAM_LENGTH // 4, STREAM_LENGTH // 2, STREAM_LENGTH}
    for step in range(1, STREAM_LENGTH + 1):
        # 85% arrivals (biased to a dense core), 15% churn
        if rng.random() < 0.85 or dyn.num_edges == 0:
            while True:
                if rng.random() < 0.4:  # dense core traffic
                    u = int(rng.integers(0, USERS // 6))
                    v = int(rng.integers(0, ITEMS // 6))
                else:
                    u = int(rng.integers(USERS))
                    v = int(rng.integers(ITEMS))
                if not dyn.has_edge(u, v):
                    break
            created_total += dyn.insert_edge(u, v)
        else:
            edges = list(dyn.supports())
            u, v = edges[int(rng.integers(len(edges)))]
            destroyed_total += dyn.delete_edge(u, v)

        if step in checkpoints:
            result = dyn.decompose(algorithm="bit-bu++")
            supports = list(dyn.supports().values())
            print(
                f"step {step:4d}: m={dyn.num_edges:4d} "
                f"butterflies +{created_total}/-{destroyed_total} "
                f"sup_max={max(supports)} max_k={result.max_k} "
                f"|E(H_max)|={len(result.edges_with_phi_at_least(result.max_k))}"
            )

    # sanity: maintained supports equal a fresh static recount
    from repro.butterfly.counting import count_per_edge

    snapshot = dyn.snapshot()
    static = count_per_edge(snapshot)
    for eid, (u, v) in enumerate(snapshot.edges()):
        assert dyn.support_of(u, v) == int(static[eid])
    print("\nmaintained supports verified against a static recount")


if __name__ == "__main__":
    main()

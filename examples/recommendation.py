#!/usr/bin/env python
"""Similarity-tier recommendation on a user-item graph (paper §I).

Users/items inside deeper bitruss levels behave more alike; ranking unseen
items by the depth at which they co-occur with a user's items yields a
simple, explainable recommender.

Run with::

    python examples/recommendation.py
"""

from repro.apps.recommendation import recommend_items, similarity_tiers
from repro.graph.generators import affiliation_bipartite


def main() -> None:
    # User-item interactions with overlapping taste communities.
    graph = affiliation_bipartite(
        300, 200, 40,
        community_upper=8, community_lower=10,
        p_in=0.55, noise_edges=300, seed=11,
    )
    print(f"user-item graph: {graph}")

    tiers = similarity_tiers(graph)
    print(f"\nsimilarity tiers (deepest = most cohesive):")
    for k in sorted(tiers.tiers)[-6:]:
        users, items = tiers.tiers[k]
        print(f"  tier k={k:2d}: {len(users):4d} users, {len(items):4d} items")

    # Pick the most active user and recommend.
    user = max(range(graph.num_upper), key=graph.degree_upper)
    owned = graph.neighbors_of_upper(user)
    print(f"\nuser u{user} already interacted with {len(owned)} items")
    print("top recommendations (item, shared-bitruss depth):")
    for item, score in recommend_items(graph, user, top_n=8):
        print(f"  item v{item}: depth {score}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Tour of the four algorithms and the BE-Index on one dataset.

Shows the machinery the paper builds: the hub-edge problem (Figure 2), the
BE-Index compression (Figure 3), and the update-count savings of each
algorithm generation (Figures 10/13).

Run with::

    python examples/algorithm_tour.py
"""

import time

import numpy as np

from repro.butterfly.counting import count_per_edge
from repro.core import bit_bs, bit_bu, bit_bu_plus, bit_bu_plus_plus, bit_pc
from repro.datasets import load_dataset
from repro.graph.generators import hub_edge_example
from repro.index.be_index import BEIndex
from repro.utils.stats import UpdateCounter


def hub_edge_motivation() -> None:
    """The paper's Figure 2: one butterfly, a million combination checks."""
    fan = 300
    graph = hub_edge_example(fan)
    index = BEIndex.build(graph)
    eid = graph.edge_id(1, 1)  # the edge (u1, v1) of Figure 2
    support = int(index.support[eid])
    touched = sum(len(index.blooms[b].twin) for b in index.blooms_of(eid))
    print("hub-edge motivation (Figure 2 construction):")
    print(f"  d(u1) = {graph.degree_upper(1)}, d(v1) = {graph.degree_lower(1)}")
    print(f"  combination-based removal checks ~ d(u1) x d(v1) = "
          f"{graph.degree_upper(1) * graph.degree_lower(1)}")
    print(f"  butterflies containing (u1, v1): {support}")
    print(f"  BE-Index touches only {touched} linked edges\n")


def algorithm_comparison(name: str = "github") -> None:
    """Same graph through all five implementations."""
    graph = load_dataset(name)
    support = count_per_edge(graph)
    print(f"dataset {name}: {graph}, sup_max={int(support.max())}")
    print(f"{'algorithm':10s} {'seconds':>8s} {'updates':>10s} {'max_k':>6s}")
    reference = None
    for label, fn, kwargs in [
        ("BiT-BS", bit_bs, {}),
        ("BiT-BU", bit_bu, {}),
        ("BiT-BU+", bit_bu_plus, {}),
        ("BiT-BU++", bit_bu_plus_plus, {}),
        ("BiT-PC", bit_pc, {"tau": 0.02}),
    ]:
        counter = UpdateCounter()
        start = time.perf_counter()
        result = fn(graph, counter=counter, **kwargs)
        elapsed = time.perf_counter() - start
        if reference is None:
            reference = result.phi
        assert np.array_equal(result.phi, reference), "algorithms disagree!"
        print(f"{label:10s} {elapsed:8.3f} {counter.total:10d} {result.max_k:6d}")
    print("\nall five algorithms returned identical bitruss numbers")


def main() -> None:
    hub_edge_motivation()
    algorithm_comparison()


if __name__ == "__main__":
    main()

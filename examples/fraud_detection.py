#!/usr/bin/env python
"""Fraud detection on a synthetic user-page "like" network (paper §I).

A lockstep fraud campaign (40 accounts x 12 pages, near-complete) is planted
inside a background of organic likes.  The bitruss hierarchy isolates the
campaign without knowing its size in advance.

Run with::

    python examples/fraud_detection.py
"""

import numpy as np

from repro.apps.fraud import detect_fraud_candidates
from repro.graph.bipartite import BipartiteGraph
from repro.graph.generators import chung_lu_bipartite

FRAUD_USERS = 40
FRAUD_PAGES = 12
SEED = 2026


def build_network() -> tuple[BipartiteGraph, set[int], set[int]]:
    """Organic background + planted lockstep block; returns ground truth."""
    organic = chung_lu_bipartite(
        500, 300, 2500, exponent_upper=2.2, exponent_lower=2.4, seed=SEED
    )
    rng = np.random.default_rng(SEED)
    edges = set(organic.edges())
    # The fraud accounts/pages are fresh vertices appended to each layer.
    fraud_users = set(range(500, 500 + FRAUD_USERS))
    fraud_pages = set(range(300, 300 + FRAUD_PAGES))
    for u in fraud_users:
        for v in fraud_pages:
            if rng.random() < 0.9:  # near-complete lockstep block
                edges.add((u, v))
    graph = BipartiteGraph(500 + FRAUD_USERS, 300 + FRAUD_PAGES, sorted(edges))
    return graph, fraud_users, fraud_pages


def main() -> None:
    graph, true_users, true_pages = build_network()
    print(f"network: {graph} (planted block: {FRAUD_USERS} users x {FRAUD_PAGES} pages)")

    report = detect_fraud_candidates(graph, min_level=3, max_core_fraction=0.2)
    print(f"\nflagged core at bitruss level k={report.level}")
    print(f"  users: {len(report.users)}, pages: {len(report.pages)}, "
          f"edges: {len(report.edges)}, density: {report.density:.2f}")

    found_users = report.users & true_users
    found_pages = report.pages & true_pages
    precision_u = len(found_users) / len(report.users) if report.users else 0.0
    recall_u = len(found_users) / len(true_users)
    print(f"\nground truth overlap:")
    print(f"  user precision {precision_u:.2f}, user recall {recall_u:.2f}")
    print(f"  page hits {len(found_pages)}/{len(true_pages)}")

    print("\ninner hierarchy levels (edges per level):")
    hierarchy = report.decomposition.hierarchy()
    for k in sorted(hierarchy)[-5:]:
        print(f"  |E(H_{k})| = {hierarchy[k]}")


if __name__ == "__main__":
    main()

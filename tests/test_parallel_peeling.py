"""BiT-BU-PAR parity: bitwise-identical phi at every worker count."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings

from repro.core.api import bitruss_decomposition
from repro.core.bit_bu_batch import bit_bu_csr, bit_bu_plus_plus
from repro.graph.bipartite import BipartiteGraph
from repro.graph.generators import (
    affiliation_bipartite,
    chung_lu_bipartite,
    erdos_renyi_bipartite,
    nested_communities,
)
from repro.runtime import ParallelRuntime, bit_bu_par, is_available
from repro.runtime.parallel_peeling import parallel_peel

from tests.conftest import assert_phi_equal, bipartite_graphs

pytestmark = pytest.mark.skipif(
    not is_available(), reason="POSIX shared memory unavailable"
)

#: Random generator graphs for the parity sweep (name, builder).
GENERATOR_GRAPHS = [
    ("empty", lambda: BipartiteGraph(0, 0)),
    ("single-edge", lambda: BipartiteGraph(1, 1, [(0, 0)])),
    ("er-sparse", lambda: erdos_renyi_bipartite(25, 25, 120, seed=21)),
    ("er-dense", lambda: erdos_renyi_bipartite(18, 18, 200, seed=22)),
    (
        "chung-lu",
        lambda: chung_lu_bipartite(
            150, 40, 700, exponent_upper=2.3, exponent_lower=1.9, seed=23
        ),
    ),
    (
        "affiliation",
        lambda: affiliation_bipartite(
            80, 120, 40, community_upper=4, community_lower=6,
            p_in=0.5, noise_edges=100, seed=24,
        ),
    ),
]


@pytest.mark.parametrize("workers", [1, 2, 4])
@pytest.mark.parametrize(
    "name,builder", GENERATOR_GRAPHS, ids=[n for n, _ in GENERATOR_GRAPHS]
)
def test_phi_matches_bu_plus_plus(name, builder, workers):
    graph = builder()
    reference = bit_bu_plus_plus(graph)
    # Tiny cutoffs force the sharded level path through the pool even on
    # these small graphs — otherwise the parent-only fallbacks would be the
    # only thing exercised.
    parallel = bit_bu_par(graph, workers=workers, scalar_cutoff=4, shard_cutoff=16)
    assert_phi_equal(
        reference.phi, parallel.phi, f"({name}, workers={workers})"
    )


def test_phi_matches_csr_on_dense_workload():
    graph = nested_communities(
        [(40, 50, 0.5), (15, 20, 0.8), (8, 10, 1.0)], noise_edges=150, seed=25
    )
    reference = bit_bu_csr(graph)
    parallel = bit_bu_par(graph, workers=2, shard_cutoff=64)
    assert_phi_equal(reference.phi, parallel.phi, "(dense nested)")
    assert parallel.stats.algorithm == "BiT-BU-PAR"


@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(graph=bipartite_graphs())
def test_phi_matches_on_random_graphs(graph):
    reference = bit_bu_plus_plus(graph)
    parallel = bit_bu_par(graph, workers=2, scalar_cutoff=2, shard_cutoff=8)
    assert_phi_equal(reference.phi, parallel.phi, "(hypothesis graph)")


def test_runtime_reuse_across_build_and_peel():
    graph = erdos_renyi_bipartite(30, 30, 260, seed=26)
    reference = bit_bu_csr(graph)
    with ParallelRuntime(graph, workers=2) as runtime:
        engine = runtime.build_engine()
        phi = parallel_peel(engine, runtime, shard_cutoff=32)
        assert_phi_equal(reference.phi, phi, "(reused runtime)")
        # The runtime survives a full peel: counting still works after.
        assert runtime.count_per_edge().sum() >= 0


def test_api_registration_and_workers_validation():
    graph = erdos_renyi_bipartite(12, 12, 60, seed=27)
    via_api = bitruss_decomposition(graph, algorithm="bu-par", workers=2)
    assert_phi_equal(bit_bu_csr(graph).phi, via_api.phi, "(api route)")
    with pytest.raises(ValueError):
        bitruss_decomposition(graph, algorithm="bit-bu++", workers=2)
    with pytest.raises(ValueError):
        bitruss_decomposition(graph, algorithm="bu-par", workers=0)


def test_workers_one_takes_scalar_path():
    graph = erdos_renyi_bipartite(12, 12, 60, seed=28)
    result = bit_bu_par(graph, workers=1)
    assert result.stats.algorithm == "BiT-BU-CSR"  # documented delegation
    assert_phi_equal(bit_bu_csr(graph).phi, result.phi, "(workers=1)")

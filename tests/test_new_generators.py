"""Configuration-model and stochastic-block-model generators."""

import numpy as np
import pytest

from repro.graph.generators import (
    configuration_model_bipartite,
    stochastic_block_model_bipartite,
)


class TestConfigurationModel:
    def test_exact_degrees_small(self):
        g = configuration_model_bipartite([2, 2, 2], [3, 3], seed=1)
        assert g.num_edges == 6
        assert [g.degree_upper(u) for u in range(3)] == [2, 2, 2]
        assert [g.degree_lower(v) for v in range(2)] == [3, 3]

    def test_mismatched_sums(self):
        with pytest.raises(ValueError, match="equal sums"):
            configuration_model_bipartite([2, 2], [3])

    def test_negative_degree(self):
        with pytest.raises(ValueError):
            configuration_model_bipartite([-1, 3], [1, 1])

    def test_deterministic(self):
        a = configuration_model_bipartite([3, 2, 1] * 5, [2] * 15, seed=7)
        b = configuration_model_bipartite([3, 2, 1] * 5, [2] * 15, seed=7)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_near_exact_degrees_large(self):
        rng = np.random.default_rng(0)
        deg_u = rng.integers(1, 6, size=60)
        total = int(deg_u.sum())
        deg_l = []
        remaining = total
        while remaining > 0:
            d = min(int(rng.integers(1, 6)), remaining)
            deg_l.append(d)
            remaining -= d
        g = configuration_model_bipartite(deg_u.tolist(), deg_l, seed=1)
        # rewiring may drop only a tiny fraction of stubs
        assert g.num_edges >= 0.95 * total

    def test_zero_degrees_allowed(self):
        g = configuration_model_bipartite([0, 2], [1, 1, 0], seed=1)
        assert g.degree_upper(0) == 0
        assert g.num_edges == 2


class TestStochasticBlockModel:
    def test_shape(self):
        g = stochastic_block_model_bipartite(
            [4, 6], [5, 5], [[1.0, 0.0], [0.0, 1.0]], seed=1
        )
        assert g.num_upper == 10 and g.num_lower == 10
        # with the identity matrix, blocks are complete and disjoint
        assert g.num_edges == 4 * 5 + 6 * 5
        assert g.has_edge(0, 0)
        assert not g.has_edge(0, 9)

    def test_probability_validation(self):
        with pytest.raises(ValueError):
            stochastic_block_model_bipartite([2], [2], [[1.5]])
        with pytest.raises(ValueError):
            stochastic_block_model_bipartite([2], [2], [[0.5, 0.5]])
        with pytest.raises(ValueError):
            stochastic_block_model_bipartite([2, 2], [2], [[0.5]])

    def test_deterministic(self):
        args = ([5, 5], [5, 5], [[0.7, 0.1], [0.1, 0.7]])
        a = stochastic_block_model_bipartite(*args, seed=3)
        b = stochastic_block_model_bipartite(*args, seed=3)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_planted_communities_have_higher_bitruss(self):
        from repro.core import bit_bu_plus_plus

        g = stochastic_block_model_bipartite(
            [8, 8], [8, 8], [[0.9, 0.05], [0.05, 0.9]], seed=5
        )
        result = bit_bu_plus_plus(g)
        in_block = [
            result.phi[eid]
            for eid, (u, v) in enumerate(g.edges())
            if (u < 8) == (v < 8)
        ]
        cross = [
            result.phi[eid]
            for eid, (u, v) in enumerate(g.edges())
            if (u < 8) != (v < 8)
        ]
        assert np.mean(in_block) > 2 * (np.mean(cross) if cross else 0.0)

"""Tests of the Definition 7 vertex-priority ranking."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.graph.bipartite import BipartiteGraph
from repro.utils.priority import priority_order, vertex_priorities


def test_priorities_are_a_permutation():
    prio = vertex_priorities(np.array([3, 1, 2, 1]))
    assert sorted(prio.tolist()) == [1, 2, 3, 4]


def test_higher_degree_higher_priority():
    prio = vertex_priorities(np.array([5, 1, 3]))
    assert prio[0] > prio[2] > prio[1]


def test_ties_broken_by_global_id():
    prio = vertex_priorities(np.array([2, 2, 2]))
    # equal degrees: larger gid wins (Definition 7)
    assert prio[2] > prio[1] > prio[0]


def test_upper_layer_wins_degree_ties_in_graph():
    # one upper and one lower vertex, both degree 1: the upper vertex has
    # the larger gid, hence the larger priority (paper's u.id > v.id rule)
    g = BipartiteGraph(1, 1, [(0, 0)])
    prio = vertex_priorities(g.degrees())
    assert prio[g.gid_of_upper(0)] > prio[g.gid_of_lower(0)]


def test_priority_order_matches_ranks():
    degrees = np.array([4, 0, 2, 2, 7])
    order = priority_order(degrees)
    prio = vertex_priorities(degrees)
    assert [prio[g] for g in order] == [1, 2, 3, 4, 5]


@given(
    st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=60)
)
def test_definition7_pairwise(degrees):
    degrees = np.array(degrees)
    prio = vertex_priorities(degrees)
    n = len(degrees)
    for a in range(n):
        for b in range(n):
            if degrees[a] > degrees[b]:
                assert prio[a] > prio[b]
            elif degrees[a] == degrees[b] and a > b:
                assert prio[a] > prio[b]

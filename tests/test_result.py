"""The BitrussDecomposition result object."""

import numpy as np
import pytest

from repro.core import bit_bu_plus_plus
from repro.core.result import BitrussDecomposition
from repro.graph.generators import paper_figure4_graph
from repro.utils.stats import DecompositionStats


@pytest.fixture
def result():
    return bit_bu_plus_plus(paper_figure4_graph())


def test_max_k(result):
    assert result.max_k == 2


def test_phi_of(result):
    assert result.phi_of(0, 0) == 2
    assert result.phi_of(3, 2) == 1
    assert result.phi_of(3, 4) == 0


def test_edges_with_phi_at_least(result):
    assert result.edges_with_phi_at_least(2) == [0, 1, 2, 3, 4, 5]
    assert result.edges_with_phi_at_least(3) == []


def test_k_bitruss_subgraph(result):
    h2 = result.k_bitruss(2)
    assert h2.num_edges == 6
    assert sorted(h2.edges()) == [(0, 0), (0, 1), (1, 0), (1, 1), (2, 0), (2, 1)]


def test_hierarchy(result):
    assert result.hierarchy() == {0: 11, 1: 9, 2: 6}


def test_level_sets(result):
    levels = result.level_sets()
    assert sorted(levels) == [0, 1, 2]
    assert levels[2] == [0, 1, 2, 3, 4, 5]
    assert levels[0] == [9, 10]


def test_as_dict(result):
    d = result.as_dict()
    assert d[(0, 0)] == 2 and d[(2, 3)] == 0
    assert len(d) == 11


def test_repr(result):
    assert "max_k=2" in repr(result)


def test_length_mismatch_rejected():
    g = paper_figure4_graph()
    with pytest.raises(ValueError):
        BitrussDecomposition(g, np.zeros(3), DecompositionStats())


def test_empty_graph_result():
    from repro.graph.bipartite import BipartiteGraph

    r = bit_bu_plus_plus(BipartiteGraph(0, 0))
    assert r.max_k == 0
    assert r.hierarchy() == {0: 0}

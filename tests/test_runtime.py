"""Shared-memory runtime: arena layout, zero-copy attach, lifecycle hygiene."""

import glob
import os

import numpy as np
import pytest

from repro.butterfly.counting import count_per_edge
from repro.core.peeling_engine import CSRPeelingEngine
from repro.graph.bipartite import BipartiteGraph
from repro.graph.generators import chung_lu_bipartite, erdos_renyi_bipartite
from repro.runtime import ParallelRuntime, RuntimeClosedError, ShmArena, is_available
from repro.runtime.parallel_counting import _task_count_range

pytestmark = pytest.mark.skipif(
    not is_available(), reason="POSIX shared memory unavailable"
)

ENGINE_ARRAYS = (
    "support",
    "pair_e1",
    "pair_e2",
    "pair_bloom",
    "bloom_k",
    "e_indptr",
    "e_pair",
    "b_indptr",
    "b_pair",
)


def _own_segments():
    """/dev/shm entries created by this process's arenas."""
    return glob.glob(f"/dev/shm/*repro_rt_{os.getpid()}_*")


# ------------------------------------------------------------------- arena


def test_arena_roundtrip_and_attach():
    arrays = {
        "a": np.arange(7, dtype=np.int64),
        "b": np.zeros(0, dtype=np.int64),
        "c": np.ones(3, dtype=bool),
    }
    with ShmArena.create(arrays, meta={"m": 7}) as arena:
        assert arena.manifest.meta["m"] == 7
        np.testing.assert_array_equal(arena.view("a"), np.arange(7))
        assert arena.view("b").shape == (0,)
        with ShmArena.attach(arena.manifest) as twin:
            np.testing.assert_array_equal(twin.view("a"), np.arange(7))
            assert not twin.view("c").flags.writeable
            with pytest.raises(PermissionError):
                twin.view("c", writable=True)
    assert not _own_segments()


def test_arena_views_are_readonly_but_owner_can_write():
    with ShmArena.create({"x": np.arange(4, dtype=np.int64)}) as arena:
        view = arena.view("x")
        with pytest.raises(ValueError):
            view[0] = 9
        writable = arena.view("x", writable=True)
        writable[0] = 9
        assert arena.view("x")[0] == 9  # same pages


def test_arena_close_is_idempotent_and_unlinks():
    arena = ShmArena.create({"x": np.arange(4, dtype=np.int64)})
    manifest = arena.manifest
    assert _own_segments()
    arena.close()
    arena.close()
    assert not _own_segments()
    with pytest.raises(FileNotFoundError):
        ShmArena.attach(manifest)


def test_arena_gc_unlinks_without_close():
    arena = ShmArena.create({"x": np.arange(4, dtype=np.int64)})
    del arena  # weakref.finalize must fire on GC, not only at exit
    assert not _own_segments()


# ----------------------------------------------------------------- runtime


def test_runtime_counts_match_serial():
    g = chung_lu_bipartite(120, 80, 700, exponent_upper=2.2,
                           exponent_lower=2.0, seed=11)
    with ParallelRuntime(g, workers=2) as runtime:
        np.testing.assert_array_equal(runtime.count_per_edge(), count_per_edge(g))


def test_runtime_engine_build_is_bitwise_identical():
    g = erdos_renyi_bipartite(35, 30, 320, seed=12)
    sequential = CSRPeelingEngine.build(g)
    with ParallelRuntime(g, workers=3, chunks_per_worker=2) as runtime:
        parallel = runtime.build_engine()
    for name in ENGINE_ARRAYS:
        np.testing.assert_array_equal(
            getattr(parallel, name), getattr(sequential, name), err_msg=name
        )


def test_runtime_rejects_zero_workers():
    g = BipartiteGraph(1, 1, [(0, 0)])
    with pytest.raises(ValueError):
        ParallelRuntime(g, workers=0)


def test_runtime_refuses_tasks_after_close():
    g = erdos_renyi_bipartite(10, 10, 40, seed=13)
    runtime = ParallelRuntime(g, workers=2)
    runtime.close()
    with pytest.raises(RuntimeClosedError):
        runtime.count_per_edge()


# --------------------------------------------------------------- lifecycle


def test_no_leaked_segments_after_pool_teardown():
    g = erdos_renyi_bipartite(20, 20, 120, seed=14)
    runtime = ParallelRuntime(g, workers=2)
    names = runtime.segment_names
    assert names and all(
        glob.glob(f"/dev/shm/*{name}*") for name in names
    ), "segments should exist while the runtime is open"
    runtime.count_per_edge()
    runtime.close()
    for name in names:
        assert not glob.glob(f"/dev/shm/*{name}*"), f"leaked segment {name}"
    assert not _own_segments()


def test_no_leaked_segments_after_worker_exception():
    g = erdos_renyi_bipartite(20, 20, 120, seed=15)
    runtime = ParallelRuntime(g, workers=2)
    names = runtime.segment_names
    bad_start = g.num_vertices + 5  # out-of-range shard: raises in the worker
    with pytest.raises(IndexError):
        runtime.map_tasks(
            _task_count_range,
            [(runtime.graph_manifest, bad_start, bad_start + 1)],
        )
    # The pool survives a task exception and still answers correctly ...
    np.testing.assert_array_equal(runtime.count_per_edge(), count_per_edge(g))
    runtime.close()
    # ... and teardown after the failure leaves /dev/shm clean.
    for name in names:
        assert not glob.glob(f"/dev/shm/*{name}*"), f"leaked segment {name}"
    assert not _own_segments()


def test_published_extra_arenas_closed_with_runtime():
    g = erdos_renyi_bipartite(15, 15, 60, seed=16)
    runtime = ParallelRuntime(g, workers=2)
    arena = runtime.publish({"state": np.zeros(8, dtype=np.int64)})
    assert arena.segment_name in runtime.segment_names
    runtime.close()
    assert arena.closed
    assert not _own_segments()

"""Scale-tiered correctness harness: streaming ingest and mmap artifacts.

Tier 1 (always on): the streaming CSR loader and the mmap artifact path
must be **bitwise identical** to their in-memory counterparts on the
bundled datasets — same endpoint arrays, same CSR blocks, same hashes,
same query answers.

Scale tier (opt-in, ``REPRO_SCALE_TESTS=1``): generate a ~million-edge
chung-lu workload (size via ``REPRO_SCALE_EDGES``), run the full
generate -> streaming ingest -> decompose -> artifact -> mmap -> query
pipeline end-to-end with φ spot-checks.  CI runs this at a reduced size
in the non-blocking ``scale-smoke`` job.
"""

import os

import numpy as np
import pytest

from repro.core.api import bitruss_decomposition
from repro.datasets import dataset_names, load_dataset
from repro.graph import (
    chung_lu_edge_chunks,
    load_edge_list,
    load_edge_list_streaming,
    save_edge_list,
    write_edge_chunks,
)
from repro.server.registry import ArtifactRegistry
from repro.service.artifacts import (
    ArtifactError,
    DecompositionArtifact,
    load_artifact,
    save_artifact,
)
from repro.service.engine import QueryEngine

ALGORITHM = "bit-bu-csr"


def assert_graphs_bitwise_equal(a, b, context=""):
    """Endpoint arrays and both CSR blocks must match exactly."""
    assert a.num_upper == b.num_upper, context
    assert a.num_lower == b.num_lower, context
    assert a.num_edges == b.num_edges, context
    assert np.array_equal(a.edge_upper, b.edge_upper), context
    assert np.array_equal(a.edge_lower, b.edge_lower), context
    for block_a, block_b in (
        (a.csr_upper(), b.csr_upper()),
        (a.csr_lower(), b.csr_lower()),
    ):
        for arr_a, arr_b in zip(block_a, block_b):
            assert arr_a.dtype == arr_b.dtype, context
            assert np.array_equal(arr_a, arr_b), context


# --------------------------------------------------------------- tier 1


@pytest.mark.parametrize("name", dataset_names())
def test_streaming_loader_matches_dict_loader_on_datasets(name, tmp_path):
    graph = load_dataset(name)
    path = tmp_path / f"{name}.txt"
    save_edge_list(graph, path)
    in_memory = load_edge_list(path)
    streamed = load_edge_list_streaming(path, chunk_edges=509)
    assert_graphs_bitwise_equal(in_memory, streamed, name)


@pytest.mark.parametrize("name", dataset_names())
def test_mmap_artifact_parity_on_all_datasets(name, tmp_path):
    """Array-level mmap-vs-eager parity on every bundled dataset.

    Uses a deterministic synthetic φ so the sweep does not pay 15
    decompositions; the engine-level check with a real decomposition
    runs in :func:`test_mmap_artifact_matches_eager_on_datasets`.
    """
    graph = load_dataset(name)
    phi = np.arange(graph.num_edges, dtype=np.int64) % 17
    artifact = DecompositionArtifact(graph=graph, phi=phi, algorithm=ALGORITHM)
    path = tmp_path / f"{name}_artifact"
    save_artifact(artifact, path, layout="dir")
    eager = load_artifact(path)
    mmapped = load_artifact(path, mmap_mode="r")
    assert_graphs_bitwise_equal(eager.graph, mmapped.graph, name)
    assert np.array_equal(eager.phi, mmapped.phi)
    assert np.array_equal(mmapped.phi, phi)
    assert eager.graph_hash == mmapped.graph_hash == artifact.graph_hash


@pytest.mark.parametrize("name", ("marvel", "github"))
def test_mmap_artifact_matches_eager_on_datasets(name, tmp_path):
    graph = load_dataset(name)
    result = bitruss_decomposition(graph, algorithm=ALGORITHM)
    artifact = DecompositionArtifact(
        graph=graph, phi=result.phi, algorithm=ALGORITHM
    )
    path = tmp_path / f"{name}_artifact"
    save_artifact(artifact, path, layout="dir")

    eager = load_artifact(path)
    mmapped = load_artifact(path, mmap_mode="r")

    assert_graphs_bitwise_equal(eager.graph, mmapped.graph, name)
    assert np.array_equal(eager.phi, mmapped.phi)
    assert eager.graph_hash == mmapped.graph_hash == artifact.graph_hash

    # The mmap arrays really are disk-backed views, not eager copies.
    assert isinstance(
        mmapped.phi.base, np.memmap
    ) or isinstance(mmapped.phi, np.memmap)
    assert not mmapped.phi.flags.writeable

    # Same answers through the engine on a query mix.
    e_eng = QueryEngine(eager)
    m_eng = QueryEngine(mmapped)
    assert e_eng.max_phi == m_eng.max_phi
    assert e_eng.phi_histogram() == m_eng.phi_histogram()
    for k in (1, max(1, e_eng.max_phi // 2), e_eng.max_phi):
        assert e_eng.k_bitruss(k) == m_eng.k_bitruss(k)


def test_mmap_load_detects_corruption(tmp_path):
    graph = load_dataset("marvel")
    result = bitruss_decomposition(graph, algorithm=ALGORITHM)
    artifact = DecompositionArtifact(
        graph=graph, phi=result.phi, algorithm=ALGORITHM
    )
    path = tmp_path / "artifact"
    save_artifact(artifact, path, layout="dir")

    phi_file = path / "phi.npy"
    phi = np.load(phi_file)
    phi[len(phi) // 2] += 1
    np.save(phi_file, phi)

    with pytest.raises(ArtifactError, match="stored hash"):
        load_artifact(path, mmap_mode="r")
    with pytest.raises(ArtifactError, match="stored hash"):
        load_artifact(path)
    # check=False lets forensics tooling open it anyway.
    assert load_artifact(path, mmap_mode="r", check=False) is not None


def test_npz_layout_rejects_mmap_mode(tmp_path):
    graph = load_dataset("marvel")
    result = bitruss_decomposition(graph, algorithm=ALGORITHM)
    artifact = DecompositionArtifact(
        graph=graph, phi=result.phi, algorithm=ALGORITHM
    )
    path = tmp_path / "artifact.npz"
    save_artifact(artifact, path)
    with pytest.raises(ArtifactError, match="directory layout"):
        load_artifact(path, mmap_mode="r")


def test_registry_hosts_mmap_backed_artifact(tmp_path):
    graph = load_dataset("marvel")
    result = bitruss_decomposition(graph, algorithm=ALGORITHM)
    artifact = DecompositionArtifact(
        graph=graph, phi=result.phi, algorithm=ALGORITHM
    )
    path = tmp_path / "artifact"
    save_artifact(artifact, path, layout="dir")

    registry = ArtifactRegistry()
    entry = registry.register("marvel", load_artifact(path, mmap_mode="r"))
    with registry.acquire("marvel") as lease:
        assert lease.engine.max_phi == result.max_k
    assert entry.artifact.phi[0] == result.phi[0]
    registry.unregister("marvel")


def test_shm_arena_accepts_mmap_backed_arrays(tmp_path):
    pytest.importorskip("multiprocessing.shared_memory")
    from repro.runtime.shm import ShmArena

    graph = load_dataset("marvel")
    result = bitruss_decomposition(graph, algorithm=ALGORITHM)
    artifact = DecompositionArtifact(
        graph=graph, phi=result.phi, algorithm=ALGORITHM
    )
    path = tmp_path / "artifact"
    save_artifact(artifact, path, layout="dir")
    mmapped = load_artifact(path, mmap_mode="r")

    arena = ShmArena.create(
        {"phi": mmapped.phi, "edge_upper": mmapped.graph.edge_upper},
        prefix="scale_test",
    )
    try:
        assert np.array_equal(arena.view("phi"), result.phi)
        assert np.array_equal(arena.view("edge_upper"), graph.edge_upper)
    finally:
        arena.close()


# ----------------------------------------------------------- scale tier


SCALE_EDGES = int(os.environ.get("REPRO_SCALE_EDGES", "1000000"))


@pytest.mark.scale
@pytest.mark.skipif(
    os.environ.get("REPRO_SCALE_TESTS") != "1",
    reason="scale tier is opt-in (REPRO_SCALE_TESTS=1)",
)
def test_scale_end_to_end(tmp_path):
    """Generate -> stream -> decompose -> artifact -> mmap -> query."""
    side = max(64, SCALE_EDGES // 2)
    edge_file = tmp_path / "scale.txt.gz"
    written = write_edge_chunks(
        edge_file,
        chung_lu_edge_chunks(
            side,
            side,
            SCALE_EDGES,
            exponent_upper=2.5,
            exponent_lower=2.5,
            seed=7,
        ),
    )
    assert written == SCALE_EDGES

    graph = load_edge_list_streaming(edge_file)
    assert graph.num_edges == SCALE_EDGES

    result = bitruss_decomposition(graph, algorithm=ALGORITHM)
    artifact = DecompositionArtifact(
        graph=graph, phi=result.phi, algorithm=ALGORITHM
    )
    path = tmp_path / "artifact"
    save_artifact(artifact, path, layout="dir")

    engine = QueryEngine.load(path, mmap_mode="r")
    assert engine.max_phi == result.max_k

    # φ spot-checks: the served point answers must match the in-memory
    # decomposition on a deterministic edge sample.
    rng = np.random.default_rng(7)
    for eid in rng.choice(graph.num_edges, size=64, replace=False):
        u = int(graph.edge_upper[eid])
        v = int(graph.edge_lower[eid])
        assert engine.phi_of(u, v) == int(result.phi[eid])

    hist = engine.phi_histogram()
    assert sum(hist.values()) == SCALE_EDGES

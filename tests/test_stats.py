"""Instrumentation: counters, timers, index-size model."""

import time

import pytest

from repro.utils.stats import (
    DecompositionStats,
    IndexSizeModel,
    PhaseTimer,
    UpdateCounter,
)


class TestUpdateCounter:
    def test_plain_counting(self):
        c = UpdateCounter()
        c.record(3)
        c.record(5, count=4)
        assert c.total == 5
        assert c.bucket_totals() == []
        assert c.bucket_labels() == []

    def test_bucketed(self):
        c = UpdateCounter(
            original_supports=[2, 7, 12, 100], bucket_bounds=[5, 10]
        )
        c.record(0)        # support 2  -> bucket "0-5"
        c.record(1, 2)     # support 7  -> bucket "6-10"
        c.record(2)        # support 12 -> bucket ">10"
        c.record(3, 3)     # support 100 -> bucket ">10"
        assert c.total == 7
        assert c.bucket_totals() == [1, 2, 4]
        assert c.bucket_labels() == ["0-5", "6-10", ">10"]

    def test_bucket_boundaries_inclusive(self):
        c = UpdateCounter(original_supports=[5, 6], bucket_bounds=[5])
        c.record(0)
        c.record(1)
        assert c.bucket_totals() == [1, 1]


class TestPhaseTimer:
    def test_accumulates(self):
        t = PhaseTimer()
        with t.time("a"):
            time.sleep(0.01)
        with t.time("a"):
            pass
        with t.time("b"):
            pass
        assert t.elapsed("a") >= 0.01
        assert t.phases() == ["a", "b"]
        assert t.total == pytest.approx(sum(t.as_dict().values()))

    def test_unknown_phase_zero(self):
        assert PhaseTimer().elapsed("nope") == 0.0

    def test_direct_add(self):
        t = PhaseTimer()
        t.add("x", 1.5)
        t.add("x", 0.5)
        assert t.elapsed("x") == 2.0


class TestIndexSizeModel:
    def test_peak_tracking(self):
        m = IndexSizeModel()
        m.observe(10, 20, 40)
        first_peak = m.peak_bytes
        m.observe(1, 1, 1)  # smaller: peak unchanged
        assert m.peak_bytes == first_peak
        m.observe(100, 200, 400)
        assert m.peak_bytes > first_peak

    def test_byte_model(self):
        m = IndexSizeModel(word_bytes=8)
        m.observe(1, 2, 3)
        # 2 words/bloom + 2 words/edge + 2 words/link
        assert m.peak_bytes == 8 * (2 * 1 + 2 * 2 + 2 * 3)
        assert m.peak_megabytes == pytest.approx(m.peak_bytes / 2**20)


class TestDecompositionStats:
    def test_summary_contains_fields(self):
        s = DecompositionStats(
            algorithm="X", updates=7, timings={"peeling": 0.5},
            index_peak_bytes=2048,
        )
        text = s.summary()
        assert "X" in text and "7 support updates" in text
        assert s.total_seconds == 0.5

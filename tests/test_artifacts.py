"""Artifact save → load round-trips and integrity checking."""

import json
import zipfile

import numpy as np
import pytest

from repro.core.api import bitruss_decomposition
from repro.datasets import load_dataset
from repro.service.artifacts import (
    ArtifactError,
    ArtifactIntegrityError,
    DecompositionArtifact,
    build_artifact,
    graph_sha256,
    load_artifact,
    save_artifact,
)


@pytest.fixture
def artifact(figure4):
    return build_artifact(figure4, algorithm="bu-csr")


def test_build_matches_decomposition(figure4):
    result = bitruss_decomposition(figure4, algorithm="bu-csr")
    artifact = DecompositionArtifact.from_decomposition(result)
    np.testing.assert_array_equal(artifact.phi, result.phi)
    assert artifact.algorithm == result.stats.algorithm
    assert artifact.max_k == result.max_k
    assert artifact.graph is result.graph


def test_round_trip_bitwise_phi(artifact, tmp_path):
    path = tmp_path / "figure4.npz"
    save_artifact(artifact, path)
    reopened = load_artifact(path)
    assert np.array_equal(reopened.phi, artifact.phi)
    assert reopened.phi.dtype == np.int64
    assert reopened.algorithm == artifact.algorithm
    assert reopened.graph_hash == artifact.graph_hash
    assert reopened.meta["updates"] == artifact.meta["updates"]


def test_round_trip_graph_structure(artifact, tmp_path):
    path = tmp_path / "figure4.npz"
    artifact.save(path)
    reopened = load_artifact(path)
    g, h = artifact.graph, reopened.graph
    assert (g.num_upper, g.num_lower, g.num_edges) == (
        h.num_upper,
        h.num_lower,
        h.num_edges,
    )
    assert g.to_edge_list() == h.to_edge_list()
    for ours, theirs in zip(g.csr_upper() + g.csr_lower(),
                            h.csr_upper() + h.csr_lower()):
        np.testing.assert_array_equal(ours, theirs)
    h.validate()


@pytest.mark.parametrize("name", ["github", "marvel", "condmat"])
def test_round_trip_on_datasets(name, tmp_path):
    artifact = build_artifact(load_dataset(name), algorithm="bu-csr")
    path = tmp_path / f"{name}.npz"
    save_artifact(artifact, path)
    reopened = load_artifact(path)
    assert np.array_equal(reopened.phi, artifact.phi)
    assert graph_sha256(reopened.graph) == artifact.graph_hash


def test_phi_length_mismatch_rejected(figure4):
    with pytest.raises(ArtifactError):
        DecompositionArtifact(graph=figure4, phi=np.zeros(3, dtype=np.int64))


def test_phi_is_frozen_copy(figure4):
    phi = np.ones(figure4.num_edges, dtype=np.int64)
    artifact = DecompositionArtifact(graph=figure4, phi=phi)
    assert not artifact.phi.flags.writeable
    phi[0] = 99  # the caller's array stays writable and detached
    assert artifact.phi[0] == 1


def test_not_an_artifact(tmp_path):
    path = tmp_path / "junk.npz"
    np.savez(path, foo=np.arange(3))
    with pytest.raises(ArtifactError):
        load_artifact(path)
    text = tmp_path / "junk.txt"
    text.write_text("not even a zip")
    with pytest.raises(ArtifactError):
        load_artifact(text)


def _resave_with(path, out, **overrides):
    """Rewrite an artifact archive with some members replaced."""
    with np.load(path) as archive:
        members = {k: archive[k] for k in archive.files}
    members.update(overrides)
    with open(out, "wb") as handle:
        np.savez_compressed(handle, **members)


def test_tampered_phi_detected(artifact, tmp_path):
    path = tmp_path / "good.npz"
    save_artifact(artifact, path)
    bad = tmp_path / "bad.npz"
    forged = np.array(artifact.phi)
    forged[0] += 1
    _resave_with(path, bad, phi=forged)
    with pytest.raises(ArtifactIntegrityError):
        load_artifact(bad)


def test_tampered_graph_detected(artifact, tmp_path):
    path = tmp_path / "good.npz"
    save_artifact(artifact, path)
    bad = tmp_path / "bad.npz"
    with np.load(path) as archive:
        edge_upper = np.array(archive["edge_upper"])
        num_upper = len(archive["up_indptr"]) - 1
    # Move one endpoint to a different (in-range) vertex; the CSR blocks no
    # longer match the endpoint arrays, so either the structural validation
    # or the graph hash must catch it.
    edge_upper[0] = (edge_upper[0] + 1) % num_upper
    _resave_with(path, bad, edge_upper=edge_upper)
    with pytest.raises(ArtifactIntegrityError):
        load_artifact(bad)


def test_corrupt_header_detected(artifact, tmp_path):
    path = tmp_path / "good.npz"
    save_artifact(artifact, path)
    bad = tmp_path / "bad.npz"
    _resave_with(
        path,
        bad,
        header=np.frombuffer(b"\xff\xfe not json", dtype=np.uint8),
    )
    with pytest.raises(ArtifactError):
        load_artifact(bad)


def test_unsupported_version_rejected(artifact, tmp_path):
    path = tmp_path / "good.npz"
    save_artifact(artifact, path)
    with np.load(path) as archive:
        header = json.loads(bytes(archive["header"].tobytes()).decode())
    header["version"] = 999
    bad = tmp_path / "bad.npz"
    _resave_with(
        path,
        bad,
        header=np.frombuffer(json.dumps(header).encode(), dtype=np.uint8),
    )
    with pytest.raises(ArtifactError):
        load_artifact(bad)


def test_archive_is_a_single_npz(artifact, tmp_path):
    path = tmp_path / "one.npz"
    save_artifact(artifact, path)
    assert zipfile.is_zipfile(path)


def test_invalidate_sets_stale(artifact):
    assert not artifact.stale
    artifact.invalidate()
    assert artifact.stale


def test_to_decomposition_round_trip(artifact):
    result = artifact.to_decomposition()
    np.testing.assert_array_equal(result.phi, artifact.phi)
    assert result.stats.algorithm == artifact.algorithm
    assert result.max_k == artifact.max_k


def test_graph_hash_is_content_addressed(figure4):
    clone = figure4.copy()
    assert graph_sha256(figure4) == graph_sha256(clone)


def test_build_artifact_workers_routes_through_runtime(figure4):
    from repro.runtime import is_available

    if not is_available():
        pytest.skip("POSIX shared memory unavailable")
    serial = build_artifact(figure4, algorithm="bit-bu-csr")
    parallel = build_artifact(figure4, workers=2)
    # The serial default upgrades to the runtime path; phi is identical.
    assert parallel.algorithm == "BiT-BU-PAR"
    assert parallel.meta["workers"] == 2
    np.testing.assert_array_equal(serial.phi, parallel.phi)


def test_build_artifact_workers_rejects_serial_algorithms(figure4):
    with pytest.raises(ValueError):
        build_artifact(figure4, algorithm="bit-pc", workers=2)

"""Bitruss-based community search."""

import pytest

from repro.apps.community_search import (
    bitruss_community,
    max_level_of_vertex,
)
from repro.core.api import bitruss_decomposition
from repro.graph.bipartite import BipartiteGraph
from repro.graph.generators import paper_figure4_graph


@pytest.fixture
def two_blocks():
    """Two disjoint complete 3x3 blocks, joined by one bridge edge."""
    edges = [(u, v) for u in range(3) for v in range(3)]
    edges += [(u, v) for u in range(3, 6) for v in range(3, 6)]
    edges.append((0, 3))  # bridge: in no butterfly
    return BipartiteGraph(6, 6, edges)


class TestCommunity:
    def test_figure4_query_upper(self, figure4):
        c = bitruss_community(figure4, k=2, upper=0)
        assert c.upper == {0, 1, 2}
        assert c.lower == {0, 1}
        assert len(c.edges) == 6

    def test_query_vertex_outside_level(self, figure4):
        # u3 has no edge with phi >= 2
        c = bitruss_community(figure4, k=2, upper=3)
        assert c.upper == set() and c.size == 0

    def test_disjoint_blocks_are_separate_communities(self, two_blocks):
        c0 = bitruss_community(two_blocks, k=2, upper=0)
        c1 = bitruss_community(two_blocks, k=2, upper=4)
        assert c0.upper == {0, 1, 2}
        assert c1.upper == {3, 4, 5}
        assert not (c0.lower & c1.lower)

    def test_bridge_not_in_community(self, two_blocks):
        c = bitruss_community(two_blocks, k=1, upper=0)
        assert (0, 3) not in c.edges

    def test_lower_query(self, two_blocks):
        c = bitruss_community(two_blocks, k=2, lower=5)
        assert c.lower == {3, 4, 5}

    def test_reuses_decomposition(self, figure4):
        decomposition = bitruss_decomposition(figure4)
        c = bitruss_community(
            figure4, k=1, upper=3, decomposition=decomposition
        )
        assert 3 in c.upper

    def test_requires_exactly_one_query(self, figure4):
        with pytest.raises(ValueError):
            bitruss_community(figure4, k=1)
        with pytest.raises(ValueError):
            bitruss_community(figure4, k=1, upper=0, lower=0)


class TestMaxLevel:
    def test_levels(self, figure4):
        assert max_level_of_vertex(figure4, upper=0) == 2
        assert max_level_of_vertex(figure4, upper=3) == 1
        assert max_level_of_vertex(figure4, lower=4) == 0

    def test_isolated_vertex(self):
        g = BipartiteGraph(2, 1, [(0, 0)])
        assert max_level_of_vertex(g, upper=1) == 0

    def test_requires_exactly_one_query(self, figure4):
        with pytest.raises(ValueError):
            max_level_of_vertex(figure4)

"""CLI smoke tests via the argparse entry point."""

import pytest

from repro.cli import build_parser, main
from repro.graph.bipartite import BipartiteGraph
from repro.graph.io import load_phi, save_edge_list


@pytest.fixture
def graph_file(tmp_path):
    g = BipartiteGraph(3, 3, [(0, 0), (0, 1), (1, 0), (1, 1), (2, 2)])
    path = tmp_path / "graph.txt"
    save_edge_list(g, path)
    return path


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_decompose_file(graph_file, capsys, tmp_path):
    out = tmp_path / "phi.txt"
    rc = main(["decompose", str(graph_file), "--output", str(out)])
    assert rc == 0
    captured = capsys.readouterr().out
    assert "max bitruss number: 1" in captured
    assert load_phi(out) == [1, 1, 1, 1, 0]


def test_decompose_dataset(capsys):
    rc = main(["decompose", "--dataset", "marvel", "--algorithm", "pc"])
    assert rc == 0
    assert "BiT-PC" in capsys.readouterr().out


def test_decompose_rejects_both_inputs(graph_file):
    with pytest.raises(SystemExit):
        main(["decompose", str(graph_file), "--dataset", "marvel"])


def test_decompose_requires_input():
    with pytest.raises(SystemExit):
        main(["decompose"])


def test_stats(graph_file, capsys):
    rc = main(["stats", str(graph_file), "--phi-max"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "|E|      = 5" in out
    assert "sup_max  = 1" in out
    assert "φ_max    = 1" in out


def test_generate_and_reload(tmp_path, capsys):
    out = tmp_path / "d.txt"
    rc = main(["generate", "condmat", str(out)])
    assert rc == 0
    assert out.exists()
    rc = main(["stats", str(out)])
    assert rc == 0


def test_datasets_listing(capsys):
    rc = main(["datasets"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "d-style" in out and "wiki-it" in out


def test_unknown_algorithm_rejected(graph_file):
    with pytest.raises(SystemExit):
        main(["decompose", str(graph_file), "--algorithm", "warp-drive"])


def test_k_bitruss_extract(graph_file, tmp_path, capsys):
    out = tmp_path / "h1.txt"
    rc = main(["k-bitruss", str(graph_file), "-k", "1", "--output", str(out)])
    assert rc == 0
    assert "1-bitruss: 4 edges" in capsys.readouterr().out
    from repro.graph.io import load_edge_list

    sub = load_edge_list(out)
    assert sub.num_edges == 4


def test_community_subcommand(graph_file, capsys):
    rc = main(["community", str(graph_file), "-k", "1", "--upper", "0"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "community at k=1" in out
    assert "2 upper" in out


def test_community_requires_query(graph_file):
    with pytest.raises(SystemExit):
        main(["community", str(graph_file), "-k", "1"])


def test_decompose_json(graph_file, capsys):
    import json as _json

    rc = main(["decompose", str(graph_file), "--json"])
    assert rc == 0
    out = capsys.readouterr().out
    payload = _json.loads(out[out.index("{"):])
    assert payload["max_k"] == 1
    assert payload["hierarchy"]["1"] == 4


def test_decompose_workers_parallel(graph_file, capsys):
    from repro.runtime import is_available

    if not is_available():
        pytest.skip("POSIX shared memory unavailable")
    rc = main(["decompose", str(graph_file), "--workers", "2"])
    assert rc == 0
    out = capsys.readouterr().out
    # --workers > 1 with the default algorithm selects the runtime path.
    assert "BiT-BU-PAR" in out
    assert "max bitruss number: 1" in out


def test_decompose_workers_default_is_scalar(graph_file, capsys):
    rc = main(["decompose", str(graph_file), "--workers", "1"])
    assert rc == 0
    assert "BiT-BU++" in capsys.readouterr().out


def test_decompose_workers_rejects_serial_algorithm(graph_file):
    with pytest.raises(SystemExit):
        main(["decompose", str(graph_file), "--algorithm", "pc", "--workers", "2"])


def test_decompose_workers_rejects_nonpositive(graph_file):
    with pytest.raises(SystemExit):
        main(["decompose", str(graph_file), "--workers", "0"])


def test_index_workers_parallel(graph_file, tmp_path, capsys):
    from repro.runtime import is_available

    if not is_available():
        pytest.skip("POSIX shared memory unavailable")
    out = tmp_path / "artifact.npz"
    rc = main(["index", str(graph_file), "--workers", "2", "--output", str(out)])
    assert rc == 0
    assert "BiT-BU-PAR" in capsys.readouterr().out
    from repro.service import load_artifact

    artifact = load_artifact(out)
    assert artifact.meta["workers"] == 2
    assert list(artifact.phi) == [1, 1, 1, 1, 0]


# -------------------------------------------------------------------- serve


@pytest.fixture
def tiny_artifact(graph_file, tmp_path):
    from repro.graph.io import load_edge_list
    from repro.service import build_artifact, save_artifact

    path = tmp_path / "tiny.npz"
    save_artifact(build_artifact(load_edge_list(graph_file)), path)
    return path


def test_serve_requires_a_dataset():
    with pytest.raises(SystemExit, match="nothing to serve"):
        main(["serve", "--port", "0"])


def test_serve_rejects_unknown_dataset_name(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["serve", "--dataset", "not-a-dataset"])
    assert excinfo.value.code == 2  # argparse choices rejection
    assert "invalid choice" in capsys.readouterr().err


def test_serve_rejects_out_of_range_port():
    with pytest.raises(SystemExit, match=r"--port 70000 is outside"):
        main(["serve", "--dataset", "github", "--port", "70000"])


def test_serve_rejects_nonpositive_workers():
    with pytest.raises(SystemExit, match="--workers must be a positive"):
        main(["serve", "--dataset", "github", "--workers", "0"])


def test_serve_rejects_negative_tuning_values():
    with pytest.raises(SystemExit, match="--window-ms"):
        main(["serve", "--dataset", "github", "--window-ms", "-1"])
    with pytest.raises(SystemExit, match="--debounce"):
        main(["serve", "--dataset", "github", "--debounce", "-0.5"])
    with pytest.raises(SystemExit, match="--cache-size"):
        main(["serve", "--dataset", "github", "--cache-size", "-1"])


def test_serve_rejects_duplicate_dataset_names(tiny_artifact):
    with pytest.raises(SystemExit, match="given twice"):
        main(
            [
                "serve",
                "--artifact",
                f"tiny={tiny_artifact}",
                "--artifact",
                f"tiny={tiny_artifact}",
            ]
        )


def test_serve_rejects_bad_artifact_specs(tmp_path):
    with pytest.raises(SystemExit, match="empty dataset name"):
        main(["serve", "--artifact", f"={tmp_path / 'x.npz'}"])
    with pytest.raises(SystemExit, match="cannot read artifact"):
        main(["serve", "--artifact", str(tmp_path / "missing.npz")])


def test_serve_port_in_use_message(tiny_artifact):
    import socket

    sock = socket.socket()
    try:
        sock.bind(("127.0.0.1", 0))
        sock.listen(1)
        port = sock.getsockname()[1]
        with pytest.raises(SystemExit, match="already in use"):
            main(
                [
                    "serve",
                    "--artifact",
                    f"tiny={tiny_artifact}",
                    "--port",
                    str(port),
                ]
            )
    finally:
        sock.close()

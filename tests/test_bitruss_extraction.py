"""k-bitruss extraction and the verification oracle."""

import numpy as np
import pytest

from repro.butterfly.counting import count_per_edge
from repro.core import bit_bu_plus_plus, k_bitruss_direct, k_bitruss_edges
from repro.core.bitruss import k_bitruss_subgraph
from repro.core.verification import reference_decomposition, verify_decomposition
from repro.graph.generators import (
    erdos_renyi_bipartite,
    nested_communities,
    paper_figure4_graph,
)


class TestDirectExtraction:
    def test_figure4_levels(self):
        g = paper_figure4_graph()
        assert sorted(k_bitruss_direct(g, 1)) == list(range(9))
        assert sorted(k_bitruss_direct(g, 2)) == list(range(6))
        assert k_bitruss_direct(g, 3) == []

    def test_k0_is_whole_graph(self):
        g = paper_figure4_graph()
        assert k_bitruss_direct(g, 0) == list(range(g.num_edges))

    def test_negative_k(self):
        with pytest.raises(ValueError):
            k_bitruss_direct(paper_figure4_graph(), -1)

    def test_support_invariant_inside_result(self):
        g = erdos_renyi_bipartite(15, 15, 90, seed=3)
        for k in (1, 2, 4):
            eids = k_bitruss_direct(g, k)
            if not eids:
                continue
            sub, _ = g.subgraph_from_edge_ids(eids)
            assert int(count_per_edge(sub).min()) >= k

    def test_maximality(self):
        # no superset of the k-bitruss satisfies the support invariant:
        # adding any removed edge must break it somewhere
        g = erdos_renyi_bipartite(10, 10, 55, seed=4)
        k = 2
        inside = set(k_bitruss_direct(g, k))
        phi = bit_bu_plus_plus(g).phi
        for eid in range(g.num_edges):
            assert (eid in inside) == (phi[eid] >= k)

    def test_nested_structure(self):
        g = nested_communities(
            [(10, 10, 0.35), (4, 4, 1.0)], noise_edges=15, seed=5
        )
        previous = set(k_bitruss_direct(g, 0))
        max_phi = int(bit_bu_plus_plus(g).phi.max())
        for k in range(1, max_phi + 1):
            current = set(k_bitruss_direct(g, k))
            assert current <= previous
            previous = current


class TestSubgraphHelpers:
    def test_k_bitruss_edges(self):
        phi = np.array([0, 2, 2, 3])
        assert k_bitruss_edges(phi, 2) == [1, 2, 3]
        assert k_bitruss_edges(phi, 4) == []

    def test_k_bitruss_subgraph(self):
        g = paper_figure4_graph()
        phi = bit_bu_plus_plus(g).phi
        sub = k_bitruss_subgraph(g, phi, 1)
        assert sub.num_edges == 9


class TestVerification:
    def test_accepts_correct(self):
        g = erdos_renyi_bipartite(10, 10, 50, seed=6)
        verify_decomposition(g, bit_bu_plus_plus(g).phi)

    def test_rejects_inflated(self):
        g = paper_figure4_graph()
        phi = bit_bu_plus_plus(g).phi.copy()
        phi[9] = 5  # pendant edge cannot have bitruss number 5
        with pytest.raises(AssertionError):
            verify_decomposition(g, phi)

    def test_rejects_deflated(self):
        g = paper_figure4_graph()
        phi = bit_bu_plus_plus(g).phi.copy()
        phi[0] = 0
        with pytest.raises(AssertionError):
            verify_decomposition(g, phi)

    def test_rejects_wrong_length(self):
        g = paper_figure4_graph()
        with pytest.raises(AssertionError):
            verify_decomposition(g, np.zeros(2))

    def test_reference_decomposition_matches_peeling(self):
        g = erdos_renyi_bipartite(8, 8, 36, seed=7)
        np.testing.assert_array_equal(
            reference_decomposition(g), bit_bu_plus_plus(g).phi
        )

    def test_empty_graph(self):
        from repro.graph.bipartite import BipartiteGraph

        g = BipartiteGraph(1, 1)
        verify_decomposition(g, np.zeros(0))

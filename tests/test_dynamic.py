"""Incremental butterfly-support maintenance under edge updates."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.butterfly.counting import count_per_edge
from repro.core import bit_bu_plus_plus
from repro.maintenance.dynamic import DynamicBipartiteGraph


def _assert_supports_exact(dyn: DynamicBipartiteGraph) -> None:
    """Maintained supports must equal a fresh static recount."""
    snapshot = dyn.snapshot()
    static = count_per_edge(snapshot)
    for eid, (u, v) in enumerate(snapshot.edges()):
        assert dyn.support_of(u, v) == int(static[eid]), (u, v)


class TestBasics:
    def test_single_butterfly_lifecycle(self):
        dyn = DynamicBipartiteGraph(2, 2, [(0, 0), (0, 1), (1, 0)])
        assert dyn.support_of(0, 0) == 0
        created = dyn.insert_edge(1, 1)
        assert created == 1
        assert all(dyn.support_of(u, v) == 1 for u, v in dyn.supports())
        destroyed = dyn.delete_edge(1, 1)
        assert destroyed == 1
        assert dyn.support_of(0, 0) == 0

    def test_duplicate_insert_rejected(self):
        dyn = DynamicBipartiteGraph(1, 1, [(0, 0)])
        with pytest.raises(ValueError):
            dyn.insert_edge(0, 0)

    def test_delete_missing_rejected(self):
        dyn = DynamicBipartiteGraph(1, 1)
        with pytest.raises(ValueError, match=r"edge \(0, 0\) not present"):
            dyn.delete_edge(0, 0)

    def test_out_of_range_insert(self):
        dyn = DynamicBipartiteGraph(1, 1)
        with pytest.raises(ValueError):
            dyn.insert_edge(1, 0)

    def test_error_surface_is_uniform_valueerror(self):
        """insert/delete/support_of all raise ValueError with range checks."""
        dyn = DynamicBipartiteGraph(2, 2, [(0, 0)])
        for method in (dyn.insert_edge, dyn.delete_edge, dyn.support_of):
            with pytest.raises(ValueError, match="upper endpoint 5 out of range"):
                method(5, 0)
            with pytest.raises(ValueError, match="lower endpoint -1 out of range"):
                method(0, -1)
        with pytest.raises(ValueError, match=r"edge \(1, 1\) not present"):
            dyn.delete_edge(1, 1)
        with pytest.raises(ValueError, match=r"edge \(1, 1\) not present"):
            dyn.support_of(1, 1)
        with pytest.raises(ValueError, match="already present"):
            dyn.insert_edge(0, 0)

    def test_vertex_growth(self):
        dyn = DynamicBipartiteGraph(1, 1, [(0, 0)])
        u = dyn.add_upper_vertex()
        v = dyn.add_lower_vertex()
        dyn.insert_edge(u, 0)
        dyn.insert_edge(u, v)
        dyn.insert_edge(0, v)
        # now a complete 2x2: one butterfly
        assert dyn.support_of(0, 0) == 1

    def test_snapshot_matches_state(self):
        dyn = DynamicBipartiteGraph(2, 3, [(0, 0), (1, 2)])
        snap = dyn.snapshot()
        assert sorted(snap.edges()) == [(0, 0), (1, 2)]

    def test_decompose_snapshot(self):
        dyn = DynamicBipartiteGraph(2, 2, [(0, 0), (0, 1), (1, 0), (1, 1)])
        result = dyn.decompose()
        assert result.max_k == 1


class TestExactness:
    def test_insert_sequence(self):
        dyn = DynamicBipartiteGraph(5, 5)
        rng = np.random.default_rng(3)
        pairs = [(int(u), int(v)) for u in range(5) for v in range(5)]
        rng.shuffle(pairs)
        for u, v in pairs[:18]:
            dyn.insert_edge(u, v)
            _assert_supports_exact(dyn)

    def test_mixed_sequence(self):
        dyn = DynamicBipartiteGraph(4, 4)
        ops = [
            ("+", 0, 0), ("+", 0, 1), ("+", 1, 0), ("+", 1, 1),
            ("+", 2, 0), ("+", 2, 1), ("-", 0, 1), ("+", 3, 3),
            ("+", 2, 3), ("-", 1, 1), ("+", 0, 1),
        ]
        for op, u, v in ops:
            if op == "+":
                dyn.insert_edge(u, v)
            else:
                dyn.delete_edge(u, v)
            _assert_supports_exact(dyn)

    def test_insert_then_delete_is_identity(self):
        base = [(0, 0), (0, 1), (1, 0), (1, 1), (2, 2)]
        dyn = DynamicBipartiteGraph(3, 3, base)
        before = dyn.supports()
        created = dyn.insert_edge(2, 0)
        destroyed = dyn.delete_edge(2, 0)
        assert created == destroyed
        assert dyn.supports() == before

    def test_decomposition_tracks_updates(self):
        dyn = DynamicBipartiteGraph(3, 3, [(0, 0), (0, 1), (1, 0), (1, 1)])
        assert dyn.decompose().max_k == 1
        dyn.insert_edge(2, 0)
        dyn.insert_edge(2, 1)
        assert dyn.decompose().max_k == 2
        dyn.delete_edge(0, 0)
        assert dyn.decompose().max_k == 1


class TestRebuild:
    """rebuild(): the shared snapshot + re-decompose + re-register path."""

    def test_rebuild_returns_fresh_registered_artifact(self):
        dyn = DynamicBipartiteGraph(3, 3, [(0, 0), (0, 1), (1, 0), (1, 1)])
        artifact = dyn.rebuild()
        assert artifact.max_k == 1
        assert not artifact.stale
        dyn.insert_edge(2, 0)
        dyn.insert_edge(2, 1)
        # Registered: the update stream invalidated it ...
        assert artifact.stale
        # ... and one more rebuild resynchronizes.
        fresh = dyn.rebuild()
        assert fresh.max_k == 2
        assert not fresh.stale

    def test_rebuild_register_false_stays_unsubscribed(self):
        dyn = DynamicBipartiteGraph(2, 2, [(0, 0), (0, 1), (1, 0)])
        artifact = dyn.rebuild(register=False)
        dyn.insert_edge(1, 1)
        assert not artifact.stale

    def test_rebuild_from_pretaken_snapshot(self):
        dyn = DynamicBipartiteGraph(2, 2, [(0, 0), (0, 1), (1, 0)])
        snap = dyn.snapshot()
        dyn.insert_edge(1, 1)  # mutation after the pin
        artifact = dyn.rebuild(snapshot=snap)
        assert artifact.graph.num_edges == 3  # reflects the pinned state
        assert dyn.num_edges == 4

    def test_rebuild_algorithms_agree(self):
        dyn = DynamicBipartiteGraph(3, 3, [(0, 0), (0, 1), (1, 0), (1, 1), (2, 2)])
        phi_default = list(dyn.rebuild(register=False).phi)
        phi_csr = list(dyn.rebuild("bit-bu-csr", register=False).phi)
        assert phi_default == phi_csr

    def test_rebuild_parallel_workers(self):
        from repro.runtime import is_available

        if not is_available():
            pytest.skip("POSIX shared memory unavailable")
        dyn = DynamicBipartiteGraph(3, 3, [(0, 0), (0, 1), (1, 0), (1, 1), (2, 2)])
        artifact = dyn.rebuild(workers=2)
        assert artifact.meta["workers"] == 2
        assert list(artifact.phi) == list(dyn.rebuild(register=False).phi)


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 4), st.integers(0, 4)),
        min_size=1,
        max_size=30,
    )
)
def test_random_update_stream_property(ops):
    """Toggling random edges keeps maintained supports exact throughout."""
    dyn = DynamicBipartiteGraph(5, 5)
    for u, v in ops:
        if dyn.has_edge(u, v):
            dyn.delete_edge(u, v)
        else:
            dyn.insert_edge(u, v)
    _assert_supports_exact(dyn)

"""QueryEngine parity with the recompute paths, cache, batch, staleness, CLI."""

import json

import numpy as np
import pytest

from repro.apps.community_search import bitruss_community, max_level_of_vertex
from repro.apps.fraud import detect_fraud_candidates
from repro.apps.recommendation import recommend_items, similarity_tiers
from repro.cli import main
from repro.core.api import bitruss_decomposition
from repro.datasets import dataset_names, load_dataset
from repro.maintenance.dynamic import DynamicBipartiteGraph
from repro.service import QueryEngine, build_artifact, save_artifact
from repro.service.artifacts import StaleArtifactError

#: Every bundled dataset small enough for per-test decomposition; the
#: acceptance bar says *all* bundled datasets, so keep this the full list.
ALL_DATASETS = tuple(dataset_names())


@pytest.fixture
def engine(figure4):
    return QueryEngine(build_artifact(figure4, algorithm="bu-csr"))


# ------------------------------------------------------ recompute parity


@pytest.mark.parametrize("name", ALL_DATASETS)
def test_k_bitruss_and_community_match_recompute(name):
    graph = load_dataset(name)
    result = bitruss_decomposition(graph, algorithm="bu-csr")
    engine = QueryEngine.from_decomposition(result)

    for k in (0, 1, 2, max(3, result.max_k // 2), result.max_k, result.max_k + 1):
        assert engine.k_bitruss(k) == result.edges_with_phi_at_least(k), (
            f"{name}: H_{k} differs from the recompute path"
        )

    rng = np.random.default_rng(5)
    ks = (1, 2, result.max_k) if result.max_k >= 2 else (1,)
    for k in ks:
        for u in rng.choice(graph.num_upper, size=3, replace=False):
            ref = bitruss_community(
                graph, k=k, upper=int(u), decomposition=result
            )
            got = engine.community(k, upper=int(u))
            assert ref.upper == got.upper and ref.lower == got.lower
            assert sorted(ref.edges) == sorted(got.edges)
        for v in rng.choice(graph.num_lower, size=3, replace=False):
            ref = bitruss_community(
                graph, k=k, lower=int(v), decomposition=result
            )
            got = engine.community(k, lower=int(v))
            assert ref.upper == got.upper and ref.lower == got.lower
            assert sorted(ref.edges) == sorted(got.edges)


def test_max_k_matches_recompute(medium_random):
    result = bitruss_decomposition(medium_random)
    engine = QueryEngine.from_decomposition(result)
    for u in range(medium_random.num_upper):
        assert engine.max_k(upper=u) == max_level_of_vertex(
            medium_random, upper=u, decomposition=result
        )
    for v in range(medium_random.num_lower):
        assert engine.max_k(lower=v) == max_level_of_vertex(
            medium_random, lower=v, decomposition=result
        )


def test_phi_of_and_subgraph(engine, figure4):
    result = bitruss_decomposition(figure4)
    for eid in range(figure4.num_edges):
        u, v = figure4.edge_endpoints(eid)
        assert engine.phi_of(u, v) == int(result.phi[eid])
    sub = engine.k_bitruss_subgraph(2)
    assert sub.num_edges == len(engine.k_bitruss(2))


def test_empty_community_for_absent_vertex_level(engine):
    community = engine.community(10**6, upper=0)
    assert community.size == 0 and community.edges == []


def test_vertex_out_of_range(engine):
    with pytest.raises(ValueError):
        engine.community(1, upper=10**9)
    with pytest.raises(ValueError):
        engine.max_k(lower=-1)
    with pytest.raises(ValueError):
        engine.max_k()
    with pytest.raises(ValueError):
        engine.community(1, upper=0, lower=0)


# ------------------------------------------------------------ apps rewire


def test_apps_accept_engine(medium_random):
    engine = QueryEngine.from_graph(medium_random, algorithm="bu-csr")

    ref = bitruss_community(medium_random, k=2, upper=1)
    got = bitruss_community(k=2, upper=1, engine=engine)
    assert ref.upper == got.upper and sorted(ref.edges) == sorted(got.edges)

    assert max_level_of_vertex(medium_random, upper=1) == max_level_of_vertex(
        upper=1, engine=engine
    )

    tiers_ref = similarity_tiers(medium_random, algorithm="bu-csr")
    tiers_got = similarity_tiers(engine=engine)
    assert tiers_ref.tiers == tiers_got.tiers

    assert recommend_items(medium_random, 0, algorithm="bu-csr") == (
        recommend_items(user=0, engine=engine)
    )

    pc_engine = QueryEngine.from_graph(medium_random, algorithm="bit-pc")
    ref_report = detect_fraud_candidates(medium_random)
    got_report = detect_fraud_candidates(engine=pc_engine)
    assert ref_report.level == got_report.level
    assert ref_report.users == got_report.users
    assert sorted(ref_report.edges) == sorted(got_report.edges)


def test_apps_reject_mismatched_graph(medium_random, figure4):
    engine = QueryEngine.from_graph(figure4)
    with pytest.raises(ValueError):
        bitruss_community(medium_random, k=1, upper=0, engine=engine)
    with pytest.raises(ValueError):
        similarity_tiers(medium_random, engine=engine)
    with pytest.raises(ValueError):
        bitruss_community(k=1, upper=0)  # no graph, no engine


# ------------------------------------------------------------------ cache


def test_lru_cache_hits_and_eviction(figure4):
    engine = QueryEngine(build_artifact(figure4), cache_size=2)
    engine.k_bitruss(1)
    engine.k_bitruss(1)
    info = engine.cache_info()
    assert info["hits"] == 1 and info["misses"] == 1
    engine.k_bitruss(2)
    engine.max_k(upper=0)  # evicts k_bitruss(1), the least recent
    assert engine.cache_info()["size"] == 2
    engine.k_bitruss(1)
    assert engine.cache_info()["misses"] == 4

    uncached = QueryEngine(build_artifact(figure4), cache_size=0)
    uncached.k_bitruss(1)
    uncached.k_bitruss(1)
    assert uncached.cache_info()["hits"] == 0


def test_cache_info_full_shape_and_counter_survival(figure4):
    """cache_info() is the serving observability hook (/metrics): it must
    report all four fields, and clear_cache() must reset contents without
    erasing the lifetime hit/miss history."""
    engine = QueryEngine(build_artifact(figure4), cache_size=8)
    assert engine.cache_info() == {
        "hits": 0,
        "misses": 0,
        "size": 0,
        "maxsize": 8,
    }
    engine.phi_histogram()
    engine.phi_histogram()
    engine.max_k(upper=0)
    info = engine.cache_info()
    assert info == {"hits": 1, "misses": 2, "size": 2, "maxsize": 8}
    engine.clear_cache()
    info = engine.cache_info()
    assert info["size"] == 0
    assert (info["hits"], info["misses"]) == (1, 2)  # counters survive
    engine.phi_histogram()  # recomputed after the clear
    assert engine.cache_info()["misses"] == 3


def test_cached_lists_are_private_copies(engine):
    first = engine.k_bitruss(1)
    first.append(-1)
    assert -1 not in engine.k_bitruss(1)


def test_cached_community_is_private_copy(engine):
    first = engine.community(2, upper=0)
    first.upper.add(999)
    first.edges.append((999, 999))
    again = engine.community(2, upper=0)
    assert 999 not in again.upper
    assert (999, 999) not in again.edges


# ------------------------------------------------------------------ batch


def test_batch_mixed_workload(figure4):
    engine = QueryEngine(build_artifact(figure4))
    result = bitruss_decomposition(figure4)
    u0, v0 = figure4.edge_endpoints(0)
    answers = engine.batch(
        [
            {"op": "k_bitruss", "k": 2},
            {"op": "community", "k": 2, "upper": 0},
            {"op": "max_k", "upper": 0},
            {"op": "hierarchy_path", "edge": [u0, v0]},
            {"op": "phi_histogram"},
            {"op": "stats"},
            {"op": "phi_of", "u": u0, "v": v0},
        ]
    )
    assert answers[0] == result.edges_with_phi_at_least(2)
    assert answers[2] == max_level_of_vertex(figure4, upper=0, decomposition=result)
    assert answers[3][0][0] == int(result.phi[0])
    assert sum(answers[4].values()) == figure4.num_edges
    assert answers[5]["max_k"] == result.max_k
    assert answers[6] == int(result.phi[0])


def test_batch_rejects_unknown_op(engine):
    with pytest.raises(ValueError):
        engine.batch([{"op": "drop_tables"}])


# -------------------------------------------------------------- staleness


def test_dynamic_update_invalidates_engine():
    dynamic = DynamicBipartiteGraph(3, 3, [(0, 0), (0, 1), (1, 0), (1, 1)])
    engine = QueryEngine.from_graph(dynamic.snapshot())
    dynamic.register_artifact(engine)
    assert engine.k_bitruss(1)  # serves fine while fresh

    dynamic.insert_edge(2, 2)
    assert engine.stale
    with pytest.raises(StaleArtifactError):
        engine.k_bitruss(1)
    with pytest.raises(StaleArtifactError):
        engine.community(1, upper=0)

    engine.refresh(dynamic.snapshot())
    assert not engine.stale
    assert engine.graph.num_edges == 5

    dynamic.delete_edge(2, 2)
    assert engine.stale  # refresh re-registers nothing; flag came via list
    dynamic.unregister_artifact(engine)
    engine.refresh(dynamic.snapshot())
    dynamic.insert_edge(2, 2)
    assert not engine.stale  # unregistered engines stay fresh


def test_stale_engine_blocks_all_app_paths():
    # Apps that read engine.decomposition must hit the same staleness wall
    # as the direct query methods — no backdoor to outdated phi.
    dynamic = DynamicBipartiteGraph(3, 3, [(0, 0), (0, 1), (1, 0), (1, 1)])
    engine = QueryEngine.from_graph(dynamic.snapshot())
    dynamic.register_artifact(engine)
    dynamic.insert_edge(2, 2)
    with pytest.raises(StaleArtifactError):
        engine.decomposition
    with pytest.raises(StaleArtifactError):
        detect_fraud_candidates(engine=engine)
    with pytest.raises(StaleArtifactError):
        similarity_tiers(engine=engine)
    with pytest.raises(StaleArtifactError):
        recommend_items(user=0, engine=engine)
    with pytest.raises(StaleArtifactError):
        bitruss_community(k=1, upper=0, engine=engine)


def test_refresh_reregisters_artifact_watcher():
    dynamic = DynamicBipartiteGraph(2, 2, [(0, 0), (0, 1), (1, 0)])
    artifact = build_artifact(dynamic.snapshot())
    dynamic.register_artifact(artifact)
    dynamic.insert_edge(1, 1)
    assert artifact.stale


def test_allow_stale_keeps_serving():
    dynamic = DynamicBipartiteGraph(2, 2, [(0, 0), (0, 1), (1, 0)])
    engine = QueryEngine.from_graph(dynamic.snapshot(), allow_stale=True)
    dynamic.register_artifact(engine)
    dynamic.insert_edge(1, 1)
    assert engine.stale
    assert engine.k_bitruss(0) == [0, 1, 2]  # still the old snapshot


def test_register_requires_invalidate():
    dynamic = DynamicBipartiteGraph(1, 1)
    with pytest.raises(TypeError):
        dynamic.register_artifact(object())


# -------------------------------------------------------------------- CLI


def test_cli_index_and_query(tmp_path, capsys):
    artifact_path = tmp_path / "github.npz"
    assert main(
        ["index", "--dataset", "github", "--algorithm", "bu-csr",
         "--output", str(artifact_path)]
    ) == 0
    out = capsys.readouterr().out
    assert "wrote artifact" in out
    assert artifact_path.exists()

    assert main(["query", str(artifact_path), "stats"]) == 0
    out = capsys.readouterr().out
    assert "max_k: 80" in out

    assert main(
        ["query", str(artifact_path), "k-bitruss", "-k", "60"]
    ) == 0
    out = capsys.readouterr().out
    assert "60-bitruss: 459 edges" in out

    graph = load_dataset("github")
    result = bitruss_decomposition(graph, algorithm="bu-csr")
    community = bitruss_community(
        graph, k=4, lower=0, decomposition=result
    )
    assert main(
        ["query", str(artifact_path), "community", "-k", "4", "--lower", "0"]
    ) == 0
    out = capsys.readouterr().out
    assert f"{len(community.edges)} edges" in out

    assert main(["query", str(artifact_path), "max-k", "--lower", "0"]) == 0
    out = capsys.readouterr().out
    assert str(max_level_of_vertex(graph, lower=0, decomposition=result)) in out

    assert main(["query", str(artifact_path), "histogram"]) == 0
    assert "phi=0:" in capsys.readouterr().out

    u, v = graph.edge_endpoints(0)
    assert main(
        ["query", str(artifact_path), "path", "--edge", str(u), str(v)]
    ) == 0
    assert f"phi = {int(result.phi[0])}" in capsys.readouterr().out


def test_cli_index_from_file(tmp_path, capsys):
    from repro.graph.io import save_edge_list

    graph = load_dataset("marvel")
    graph_path = tmp_path / "marvel.txt"
    save_edge_list(graph, graph_path, base=1)
    artifact_path = tmp_path / "marvel.npz"
    # File positional + option flags + --output in one call (regression:
    # a second positional here was unparseable).
    assert main(
        ["index", str(graph_path), "--base", "1", "--algorithm", "bu-csr",
         "--output", str(artifact_path)]
    ) == 0
    capsys.readouterr()
    result = bitruss_decomposition(graph, algorithm="bu-csr")
    assert main(["query", str(artifact_path), "stats"]) == 0
    assert f"max_k: {result.max_k}" in capsys.readouterr().out


def test_cli_query_batch(tmp_path, capsys):
    artifact_path = tmp_path / "marvel.npz"
    save_artifact(build_artifact(load_dataset("marvel")), artifact_path)
    queries = tmp_path / "queries.json"
    queries.write_text(json.dumps(
        [{"op": "max_k", "upper": 0}, {"op": "community", "k": 2, "upper": 0}]
    ))
    assert main(["query", str(artifact_path), "batch", str(queries)]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert isinstance(payload[0], int)
    assert set(payload[1]) == {"k", "upper", "lower", "edges"}


def test_cli_query_rejects_non_artifact(tmp_path):
    bogus = tmp_path / "bogus.npz"
    np.savez(bogus, foo=np.arange(2))
    with pytest.raises(SystemExit):
        main(["query", str(bogus), "stats"])


def test_cli_query_path_unknown_edge(tmp_path):
    artifact_path = tmp_path / "fig.npz"
    save_artifact(
        build_artifact(load_dataset("marvel")), artifact_path
    )
    with pytest.raises(SystemExit):
        main(["query", str(artifact_path), "path", "--edge", "0", "999999"])

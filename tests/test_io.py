"""Edge-list IO round-trips and error handling."""

import gzip

import pytest

from repro.graph.bipartite import BipartiteGraph
from repro.graph.io import (
    iter_edge_lines,
    load_edge_list,
    load_edge_list_streaming,
    load_phi,
    save_edge_list,
    save_phi,
)


@pytest.fixture
def sample_graph():
    return BipartiteGraph(3, 4, [(0, 0), (0, 3), (1, 1), (2, 2)])


def test_round_trip_plain(tmp_path, sample_graph):
    path = tmp_path / "g.txt"
    save_edge_list(sample_graph, path)
    loaded = load_edge_list(path)
    assert sorted(loaded.edges()) == sorted(sample_graph.edges())
    loaded.validate()


def test_round_trip_gzip(tmp_path, sample_graph):
    path = tmp_path / "g.txt.gz"
    save_edge_list(sample_graph, path)
    with gzip.open(path, "rt") as fh:
        assert fh.readline().startswith("%")
    loaded = load_edge_list(path)
    assert sorted(loaded.edges()) == sorted(sample_graph.edges())


def test_round_trip_one_based(tmp_path, sample_graph):
    path = tmp_path / "konect.txt"
    save_edge_list(sample_graph, path, base=1)
    loaded = load_edge_list(path, base=1)
    assert sorted(loaded.edges()) == sorted(sample_graph.edges())


def test_comments_and_blank_lines(tmp_path):
    path = tmp_path / "g.txt"
    path.write_text("% header\n\n# another comment\n0 0\n1 1\n")
    g = load_edge_list(path)
    assert g.num_edges == 2


def test_duplicates_deduped_by_default(tmp_path):
    path = tmp_path / "g.txt"
    path.write_text("0 0\n0 0\n1 1\n")
    assert load_edge_list(path).num_edges == 2
    with pytest.raises(ValueError, match="duplicate"):
        load_edge_list(path, dedup=False)


def test_malformed_line(tmp_path):
    path = tmp_path / "g.txt"
    path.write_text("0\n")
    with pytest.raises(ValueError, match="two columns"):
        load_edge_list(path)


def test_non_integer(tmp_path):
    path = tmp_path / "g.txt"
    path.write_text("a b\n")
    with pytest.raises(ValueError, match="non-integer"):
        load_edge_list(path)


@pytest.mark.parametrize("loader", (load_edge_list, load_edge_list_streaming))
def test_negative_id_rejected_with_line_number(tmp_path, loader):
    path = tmp_path / "g.txt"
    path.write_text("0 0\n1 1\n-2 3\n")
    with pytest.raises(ValueError, match="negative vertex id") as exc:
        loader(path)
    # The message pinpoints the offending line.
    assert f"{path}:3:" in str(exc.value)


@pytest.mark.parametrize("loader", (load_edge_list, load_edge_list_streaming))
def test_negative_lower_id_rejected(tmp_path, loader):
    path = tmp_path / "g.txt"
    path.write_text("0 -1\n")
    with pytest.raises(ValueError, match=r"g\.txt:1:.*negative vertex id"):
        loader(path)


@pytest.mark.parametrize("loader", (load_edge_list, load_edge_list_streaming))
def test_id_overflowing_int64_rejected(tmp_path, loader):
    path = tmp_path / "g.txt"
    path.write_text(f"0 0\n{2**63} 1\n")
    with pytest.raises(ValueError, match=r"g\.txt:2:.*too large for int64"):
        loader(path)


def test_streaming_round_trip_matches_dict_loader(tmp_path, sample_graph):
    path = tmp_path / "g.txt.gz"
    save_edge_list(sample_graph, path)
    dict_loaded = load_edge_list(path)
    for chunk_edges in (1, 3, 1 << 18):
        streamed = load_edge_list_streaming(path, chunk_edges=chunk_edges)
        assert sorted(streamed.edges()) == sorted(dict_loaded.edges())
        streamed.validate()


def test_wrong_base_detected(tmp_path):
    path = tmp_path / "g.txt"
    path.write_text("0 0\n")
    with pytest.raises(ValueError, match="base"):
        load_edge_list(path, base=1)


def test_iter_edge_lines(tmp_path):
    path = tmp_path / "g.txt"
    path.write_text("% c\n3 4\n5 6\n")
    assert list(iter_edge_lines(path)) == [(3, 4), (5, 6)]


def test_phi_round_trip(tmp_path):
    path = tmp_path / "phi.txt"
    save_phi([0, 3, 12], path)
    assert load_phi(path) == [0, 3, 12]


class TestMatrixMarket:
    def test_round_trip(self, tmp_path, sample_graph):
        from repro.graph.io import load_matrix_market, save_matrix_market

        path = tmp_path / "g.mtx"
        save_matrix_market(sample_graph, path)
        loaded = load_matrix_market(path)
        assert loaded.num_upper == sample_graph.num_upper
        assert loaded.num_lower == sample_graph.num_lower
        assert sorted(loaded.edges()) == sorted(sample_graph.edges())

    def test_integer_values_and_zero_entries(self, tmp_path):
        from repro.graph.io import load_matrix_market

        path = tmp_path / "g.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate integer general\n"
            "% comment\n"
            "2 3 3\n"
            "1 1 5\n"
            "2 3 1\n"
            "1 2 0\n"
        )
        g = load_matrix_market(path)
        # explicit zero entries are not edges
        assert sorted(g.edges()) == [(0, 0), (1, 2)]

    def test_missing_header(self, tmp_path):
        from repro.graph.io import load_matrix_market

        path = tmp_path / "g.mtx"
        path.write_text("1 1 1\n1 1\n")
        with pytest.raises(ValueError, match="MatrixMarket"):
            load_matrix_market(path)

    def test_unsupported_type(self, tmp_path):
        from repro.graph.io import load_matrix_market

        path = tmp_path / "g.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n"
        )
        with pytest.raises(ValueError, match="value type"):
            load_matrix_market(path)

"""repro.obs: metrics, phase profiling, tracing, logging, and their wiring.

Covers the unified observability layer end to end: the metric primitives
and their Prometheus exposition (pinned by a golden file), the phase
profiler (including the no-op cost contract on the disabled path), trace
propagation through the coalescer and across pool worker processes, the
server's content-negotiated ``/metrics``, the slow-query log, and the
CLI's ``--profile``/``--json``/``--quiet`` surfaces.
"""

import asyncio
import json
import logging
import pickle
import re
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.graph.generators import erdos_renyi_bipartite, paper_figure4_graph
from repro.obs import log as obs_log
from repro.obs import metrics as obs_metrics
from repro.obs import phases as obs_phases
from repro.obs import trace as obs_trace
from repro.obs.metrics import MetricsRegistry
from repro.server import ArtifactRegistry, BitrussServer, QueryCoalescer
from repro.service import build_artifact

GOLDEN = Path(__file__).parent / "data" / "obs_prometheus_golden.txt"


def run(coro):
    return asyncio.run(coro)


@pytest.fixture(autouse=True)
def _clean_obs_state():
    """Every test starts and ends with profiling off and empty registries."""
    obs_phases.enable(False)
    obs_phases.reset()
    obs_metrics.reset_registry()
    yield
    obs_phases.enable(False)
    obs_phases.reset()
    obs_metrics.reset_registry()
    obs_log.configure(quiet=False)


# ------------------------------------------------------------------ metrics


class TestMetricsPrimitives:
    def test_counter_accumulates_per_label(self):
        reg = MetricsRegistry()
        c = reg.counter("c_total", "help", ("op",))
        c.inc(labels=("a",))
        c.inc(2.5, labels=("a",))
        c.inc(labels=("b",))
        assert c.value(("a",)) == 3.5
        assert c.value(("b",)) == 1.0
        assert c.value(("never",)) == 0.0

    def test_counter_rejects_negative_and_bad_labels(self):
        c = MetricsRegistry().counter("c_total", "", ("op",))
        with pytest.raises(ValueError):
            c.inc(-1, labels=("a",))
        with pytest.raises(ValueError):
            c.inc(labels=())  # wrong arity

    def test_gauge_moves_both_ways(self):
        g = MetricsRegistry().gauge("g")
        g.set(5)
        g.inc(2)
        g.dec(4)
        assert g.value() == 3.0

    def test_histogram_buckets_sum_count(self):
        h = MetricsRegistry().histogram("h", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 0.5, 3.0):
            h.observe(v)
        assert h.bucket_counts() == [1, 2, 1]
        assert h.count() == 4
        assert h.sum() == pytest.approx(4.05)

    def test_histogram_rejects_unsorted_buckets(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.histogram("h", buckets=(1.0, 0.1))
        with pytest.raises(ValueError):
            reg.histogram("h2", buckets=(0.1, 0.1))

    def test_registry_get_or_create_guards_kind_and_labels(self):
        reg = MetricsRegistry()
        c = reg.counter("m", "", ("a",))
        assert reg.counter("m", "", ("a",)) is c
        with pytest.raises(ValueError):
            reg.gauge("m", "", ("a",))
        with pytest.raises(ValueError):
            reg.counter("m", "", ("a", "b"))

    def test_snapshot_merge_semantics(self):
        src = MetricsRegistry()
        src.counter("c_total").inc(2)
        src.gauge("g").set(7)
        src.histogram("h", buckets=(1.0,)).observe(0.5)

        snap = pickle.loads(pickle.dumps(src.snapshot()))  # picklable
        dst = MetricsRegistry()
        dst.counter("c_total").inc(1)
        dst.gauge("g").set(3)
        dst.histogram("h", buckets=(1.0,)).observe(2.0)
        dst.merge_snapshot(snap)

        assert dst.counter("c_total").value() == 3.0  # counters add
        assert dst.gauge("g").value() == 7.0  # gauges last-write-win
        h = dst.histogram("h", buckets=(1.0,))
        assert h.count() == 2 and h.bucket_counts() == [1, 1]

    def test_merge_rejects_mismatched_histogram_buckets(self):
        src = MetricsRegistry()
        src.histogram("h", buckets=(1.0,)).observe(0.5)
        dst = MetricsRegistry()
        dst.histogram("h", buckets=(2.0,))
        with pytest.raises(ValueError):
            dst.merge_snapshot(src.snapshot())


class TestPrometheusExposition:
    @staticmethod
    def _golden_registry() -> MetricsRegistry:
        reg = MetricsRegistry()
        c = reg.counter(
            "repro_test_requests_total", "Requests served.", ("endpoint",)
        )
        c.inc(3, labels=("stats",))
        c.inc(labels=("community",))
        reg.gauge("repro_test_active", "Active requests.").set(2)
        h = reg.histogram(
            "repro_test_seconds",
            "Request latency.",
            ("endpoint",),
            buckets=(0.01, 0.1, 1.0),
        )
        h.observe(0.005, ("stats",))
        h.observe(0.05, ("stats",))
        h.observe(2.0, ("stats",))
        return reg

    def test_exposition_matches_golden_file(self):
        assert self._golden_registry().to_prometheus() == GOLDEN.read_text()

    def test_label_values_are_escaped(self):
        reg = MetricsRegistry()
        reg.counter("c_total", "", ("p",)).inc(labels=('a"b\\c\nd',))
        assert 'p="a\\"b\\\\c\\nd"' in reg.to_prometheus()


def parse_prometheus(text: str) -> dict:
    """Tiny exposition parser: {series name+labels: float value}."""
    series = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        name, _, value = line.rpartition(" ")
        series[name] = float(value)
    return series


# ------------------------------------------------------------------- phases


class TestPhases:
    def test_disabled_phase_is_shared_noop(self):
        assert obs_phases.phase("a") is obs_phases.phase("b")

    def test_enabled_builds_nested_tree(self):
        obs_phases.enable(True)
        with obs_phases.phase("outer"):
            with obs_phases.phase("inner"):
                pass
            with obs_phases.phase("inner"):
                pass
        tree = obs_phases.tree()
        (outer,) = tree["children"]
        assert outer["name"] == "outer" and outer["count"] == 1
        (inner,) = outer["children"]
        assert inner["name"] == "inner" and inner["count"] == 2
        assert outer["seconds"] >= inner["seconds"] >= 0.0

    def test_add_and_leaf_seconds(self):
        obs_phases.enable(True)
        with obs_phases.phase("parent"):
            obs_phases.add("leaf1", 0.25)
            obs_phases.add("leaf2", 0.5, count=3)
        tree = obs_phases.tree()
        assert obs_phases.leaf_seconds(tree) == pytest.approx(0.75)

    def test_merge_tree_grafts_under_open_phase(self):
        obs_phases.enable(True)
        harvest = {
            "name": "total",
            "seconds": 0.0,
            "count": 0,
            "children": [
                {"name": "kernel", "seconds": 0.4, "count": 2, "children": []}
            ],
        }
        with obs_phases.phase("dispatch"):
            obs_phases.merge_tree(harvest)
            obs_phases.merge_tree(harvest)
        (dispatch,) = obs_phases.tree()["children"]
        (kernel,) = dispatch["children"]
        assert kernel["seconds"] == pytest.approx(0.8)
        assert kernel["count"] == 4

    def test_snapshot_returns_none_when_disabled_or_empty(self):
        assert obs_phases.snapshot() is None
        obs_phases.enable(True)
        assert obs_phases.snapshot() is None  # enabled but nothing recorded
        with obs_phases.phase("x"):
            pass
        snap = obs_phases.snapshot()
        assert snap["children"][0]["name"] == "x"
        assert obs_phases.snapshot() is None  # snapshot resets

    def test_render_tree_marks_repeat_counts(self):
        obs_phases.enable(True)
        for _ in range(3):
            with obs_phases.phase("step"):
                pass
        rendered = obs_phases.render_tree(obs_phases.tree())
        assert "step" in rendered and "x3" in rendered
        assert obs_phases.render_tree({"name": "total", "seconds": 0.0,
                                       "count": 0, "children": []}) == (
            "(no phases recorded)"
        )

    def test_phase_timer_bridge_feeds_profiler(self):
        from repro.utils.stats import PhaseTimer

        obs_phases.enable(True)
        timer = PhaseTimer()
        with timer.time("bridged"):
            pass
        assert [c["name"] for c in obs_phases.tree()["children"]] == ["bridged"]
        assert timer.elapsed("bridged") >= 0.0 and "bridged" in timer.phases()

    def test_env_flag_enables_profiling(self):
        script = (
            "from repro.obs import phases; "
            "import sys; sys.exit(0 if phases.enabled() else 1)"
        )
        env_src = {"PYTHONPATH": "src", "REPRO_PROFILE": "1"}
        proc = subprocess.run(
            [sys.executable, "-c", script],
            env=env_src,
            cwd=str(Path(__file__).parent.parent),
        )
        assert proc.returncode == 0
        proc = subprocess.run(
            [sys.executable, "-c", script],
            env={"PYTHONPATH": "src"},
            cwd=str(Path(__file__).parent.parent),
        )
        assert proc.returncode == 1

    def test_noop_overhead_under_two_percent_on_bit_bu_csr(self, monkeypatch):
        """Disabled-path contract: instrumentation costs < 2% of runtime.

        Deterministic form of the acceptance bar: count every phase()
        entry a bit-bu-csr run makes, measure the per-call cost of the
        disabled path directly, and compare their product against the
        run's wall time (no noisy A/B of two full runs).
        """
        from repro.core.bit_bu_batch import bit_bu_csr

        graph = erdos_renyi_bipartite(300, 300, 2500, seed=7)
        bit_bu_csr(graph)  # warm caches (sorted CSR, priorities)

        calls = {"n": 0}
        real_phase = obs_phases.phase

        def counting_phase(name):
            calls["n"] += 1
            return real_phase(name)

        monkeypatch.setattr(obs_phases, "phase", counting_phase)
        start = time.perf_counter()
        bit_bu_csr(graph)
        wall = time.perf_counter() - start
        monkeypatch.undo()

        reps = 100_000
        start = time.perf_counter()
        for _ in range(reps):
            with obs_phases.phase("x"):
                pass
        per_call = (time.perf_counter() - start) / reps

        overhead = calls["n"] * per_call
        assert calls["n"] > 0
        assert overhead < 0.02 * wall, (
            f"{calls['n']} phase() calls x {per_call * 1e9:.0f} ns "
            f"= {overhead * 1e3:.3f} ms vs {wall * 1e3:.1f} ms wall"
        )


# -------------------------------------------------------------------- trace


class TestTrace:
    def test_trace_context_sets_and_restores(self):
        assert obs_trace.current_trace_id() is None
        with obs_trace.trace_context() as tid:
            assert obs_trace.current_trace_id() == tid
            with obs_trace.trace_context("abc") as inner:
                assert inner == "abc"
                assert obs_trace.current_trace_id() == "abc"
            assert obs_trace.current_trace_id() == tid
        assert obs_trace.current_trace_id() is None

    def test_trace_ids_are_distinct(self):
        ids = {obs_trace.new_trace_id() for _ in range(64)}
        assert len(ids) == 64

    def test_json_formatter_carries_trace_id_and_extras(self):
        record = logging.LogRecord(
            "repro.server", logging.INFO, __file__, 1, "served %d", (3,), None
        )
        record.dataset = "fig4"
        with obs_trace.trace_context("deadbeef"):
            payload = json.loads(obs_log.JsonFormatter().format(record))
        assert payload["message"] == "served 3"
        assert payload["trace_id"] == "deadbeef"
        assert payload["dataset"] == "fig4"
        assert payload["level"] == "info"

    def test_coalescer_collects_trace_ids_of_merged_waiters(self):
        async def scenario():
            coalescer = QueryCoalescer(window=0.01)

            async def runner(queries):
                return list(range(len(queries))), 1

            async def submit(tid):
                with obs_trace.trace_context(tid):
                    return await coalescer.submit(
                        "ds", [{"op": "stats"}], runner
                    )

            shared = await asyncio.gather(submit("t-one"), submit("t-two"))
            # Both waiters folded into one flush; the shared result carries
            # every contributing trace id.
            assert shared[0] is shared[1] or (
                shared[0].trace_ids == shared[1].trace_ids
            )
            assert sorted(shared[0].trace_ids) == ["t-one", "t-two"]

        run(scenario())


class TestRuntimeObservability:
    @pytest.fixture(autouse=True)
    def _needs_shm(self):
        from repro.runtime import is_available

        if not is_available():
            pytest.skip("POSIX shared memory unavailable")

    def test_trace_and_metrics_cross_worker_boundary(self):
        from repro.runtime import ParallelRuntime

        graph = paper_figure4_graph()
        with obs_trace.trace_context("cross-proc"):
            with ParallelRuntime(graph, workers=2) as runtime:
                echoed = runtime.map_tasks(_echo_trace, [(0,), (1,)])
        assert echoed == ["cross-proc", "cross-proc"]
        tasks = obs_metrics.get_registry().get("repro_runtime_tasks_total")
        assert tasks is not None
        assert tasks.value(("_echo_trace",)) == 2.0

    def test_worker_phase_trees_merge_under_dispatch_phase(self):
        from repro.runtime import ParallelRuntime

        graph = paper_figure4_graph()
        obs_phases.enable(True)
        with ParallelRuntime(graph, workers=2) as runtime:
            with obs_phases.phase("dispatch"):
                runtime.map_tasks(_echo_trace, [(0,), (1,)])
        (dispatch,) = obs_phases.tree()["children"]
        kernels = [c for c in dispatch["children"] if c["name"] == "kernel"]
        assert kernels and kernels[0]["count"] == 2


def _echo_trace(_i):
    """Module-level (picklable) task: report the worker's active trace id."""
    return obs_trace.current_trace_id()


# ------------------------------------------------------------------- server


async def raw_http(port, method, target, headers=None):
    """One exchange returning (status, header dict, raw body bytes)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        extra = "".join(f"{k}: {v}\r\n" for k, v in (headers or {}).items())
        writer.write(
            f"{method} {target} HTTP/1.1\r\nHost: t\r\n{extra}"
            "Content-Length: 0\r\nConnection: close\r\n\r\n".encode()
        )
        await writer.drain()
        raw = await reader.read()
    finally:
        writer.close()
    head, _, body = raw.partition(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split()[1])
    hdrs = {}
    for line in lines[1:]:
        key, _, value = line.partition(":")
        hdrs[key.strip().lower()] = value.strip()
    return status, hdrs, body


@pytest.fixture(scope="module")
def fig4_artifact():
    return build_artifact(paper_figure4_graph(), algorithm="bit-bu-csr")


def make_server(artifact, **kwargs):
    registry = ArtifactRegistry()
    registry.register("fig4", artifact)
    return BitrussServer(registry, port=0, **kwargs)


class TestServerObservability:
    def test_metrics_json_has_uptime_and_start_time(self, fig4_artifact):
        async def scenario():
            async with make_server(fig4_artifact) as server:
                status, _, body = await raw_http(server.port, "GET", "/metrics")
                assert status == 200
                payload = json.loads(body)
                srv = payload["server"]
                assert srv["process_start_time"] <= time.time()
                assert 0.0 <= srv["uptime_seconds"] < 3600.0
                # Legacy keys stay intact.
                assert {"requests_total", "errors_total", "by_endpoint"} <= set(srv)

        run(scenario())

    def test_metrics_content_negotiation(self, fig4_artifact):
        async def scenario():
            async with make_server(fig4_artifact) as server:
                await raw_http(server.port, "GET", "/fig4/stats")

                # Default scrape stays JSON.
                _, hdrs, body = await raw_http(server.port, "GET", "/metrics")
                assert hdrs["content-type"] == "application/json"
                json.loads(body)

                # Query param forces the exposition format...
                _, hdrs, body = await raw_http(
                    server.port, "GET", "/metrics?format=prometheus"
                )
                assert hdrs["content-type"].startswith("text/plain")
                series = parse_prometheus(body.decode())
                assert series['repro_http_requests_total{endpoint="stats",dataset="fig4"}'] == 1
                assert series["repro_server_active_requests"] == 1  # this scrape
                assert series['repro_dataset_artifact_version{dataset="fig4"}'] == 1

                # ... and so does an Accept: text/plain header.
                _, hdrs, body = await raw_http(
                    server.port, "GET", "/metrics",
                    headers={"Accept": "text/plain"},
                )
                assert hdrs["content-type"].startswith("text/plain")
                assert b"# TYPE repro_http_requests_total counter" in body

                # An explicit json format wins over the Accept header.
                _, hdrs, _ = await raw_http(
                    server.port, "GET", "/metrics?format=json",
                    headers={"Accept": "text/plain"},
                )
                assert hdrs["content-type"] == "application/json"

        run(scenario())

    def test_histogram_buckets_are_cumulative_and_consistent(self, fig4_artifact):
        async def scenario():
            async with make_server(fig4_artifact) as server:
                for _ in range(5):
                    await raw_http(server.port, "GET", "/fig4/stats")
                _, _, body = await raw_http(
                    server.port, "GET", "/metrics?format=prometheus"
                )
                series = parse_prometheus(body.decode())
                buckets = [
                    (name, value)
                    for name, value in series.items()
                    if name.startswith("repro_http_request_seconds_bucket")
                    and 'endpoint="stats"' in name
                ]
                values = [v for _, v in buckets]
                assert values == sorted(values)  # cumulative => monotone
                inf = series[
                    'repro_http_request_seconds_bucket{endpoint="stats",le="+Inf"}'
                ]
                count = series[
                    'repro_http_request_seconds_count{endpoint="stats"}'
                ]
                assert inf == count == 5

        run(scenario())

    def test_scrapes_counted_but_excluded_from_latency(self, fig4_artifact):
        async def scenario():
            async with make_server(fig4_artifact) as server:
                for _ in range(3):
                    await raw_http(server.port, "GET", "/metrics")
                _, _, body = await raw_http(
                    server.port, "GET", "/metrics?format=prometheus"
                )
                text = body.decode()
                series = parse_prometheus(text)
                # Scrapes count as requests (the 4th — this prometheus one —
                # is still in flight while its own body is rendered, so the
                # completed-request family shows the 3 JSON scrapes) ...
                assert series[
                    'repro_http_requests_total{endpoint="metrics",dataset=""}'
                ] == 3
                # ... but never enter the latency histogram.
                assert 'repro_http_request_seconds_count{endpoint="metrics"}' not in series
                # The in-flight total counts all 4 at scrape time.
                assert series["repro_server_requests_total"] == 4

        run(scenario())

    def test_trace_id_header_echoed_and_generated(self, fig4_artifact):
        async def scenario():
            async with make_server(fig4_artifact) as server:
                # Well-formed client ids (lowercase hex, <= 64 chars) are
                # adopted and echoed back.
                _, hdrs, _ = await raw_http(
                    server.port, "GET", "/fig4/stats",
                    headers={"X-Trace-Id": "c11e47c405e4"},
                )
                assert hdrs["x-trace-id"] == "c11e47c405e4"
                _, hdrs, _ = await raw_http(server.port, "GET", "/fig4/stats")
                generated = hdrs["x-trace-id"]
                assert generated and generated != "c11e47c405e4"

        run(scenario())

    def test_trace_id_header_validated_before_echo(self, fig4_artifact):
        async def scenario():
            async with make_server(fig4_artifact) as server:
                # Non-hex, overlong or otherwise malformed ids are never
                # echoed back (response-header injection hygiene); the
                # server mints a fresh id instead.
                for bad in ("client-chosen", "ABCDEF", "a" * 65, "x" * 9000):
                    _, hdrs, _ = await raw_http(
                        server.port, "GET", "/fig4/stats",
                        headers={"X-Trace-Id": bad},
                    )
                    minted = hdrs["x-trace-id"]
                    assert minted != bad
                    assert re.fullmatch(r"[0-9a-f]{16}", minted)

        run(scenario())

    def test_slow_query_log_fires_past_threshold(self, fig4_artifact):
        records = []

        class Capture(logging.Handler):
            def emit(self, record):
                records.append(record)

        handler = Capture()
        logger = obs_log.slow_query_logger()
        logger.addHandler(handler)
        try:
            async def scenario():
                # Threshold 0: every non-scrape request is "slow".
                async with make_server(fig4_artifact, slow_query_s=0.0) as server:
                    await raw_http(
                        server.port, "GET", "/fig4/stats",
                        headers={"X-Trace-Id": "510fabe1"},
                    )
                    await raw_http(server.port, "GET", "/metrics")

            run(scenario())
        finally:
            logger.removeHandler(handler)

        (record,) = records  # the scrape must not log
        assert record.levelno == logging.WARNING
        assert record.endpoint == "stats"
        assert record.dataset == "fig4"
        assert record.trace_id == "510fabe1"
        assert "slow query" in record.getMessage()

    def test_no_slow_log_when_disabled(self, fig4_artifact):
        records = []

        class Capture(logging.Handler):
            def emit(self, record):
                records.append(record)

        handler = Capture()
        logger = obs_log.slow_query_logger()
        logger.addHandler(handler)
        try:
            async def scenario():
                async with make_server(fig4_artifact) as server:  # no threshold
                    await raw_http(server.port, "GET", "/fig4/stats")

            run(scenario())
        finally:
            logger.removeHandler(handler)
        assert records == []

    def test_profile_block_present_only_when_enabled(self, fig4_artifact):
        async def scenario():
            async with make_server(fig4_artifact) as server:
                _, _, body = await raw_http(server.port, "GET", "/metrics")
                assert "profile" not in json.loads(body)
                obs_phases.enable(True)
                await raw_http(server.port, "GET", "/fig4/stats")
                _, _, body = await raw_http(server.port, "GET", "/metrics")
                payload = json.loads(body)
                assert payload["profile"]["name"] == "total"

        run(scenario())


# ---------------------------------------------------------------------- CLI


class TestCliObservability:
    def test_decompose_quiet_json_profile(self, capsys):
        from repro.cli import main

        assert main(
            ["decompose", "--dataset", "marvel", "--json", "--quiet", "--profile"]
        ) == 0
        out = capsys.readouterr().out
        payload = json.loads(out)  # --quiet leaves pure JSON on stdout
        profile = payload["profile"]
        assert profile["wall_seconds"] > 0
        names = [c["name"] for c in profile["tree"]["children"]]
        assert "load graph" in names
        assert "peeling" in names
        leaves = obs_phases.leaf_seconds(profile["tree"])
        assert 0 < leaves <= profile["wall_seconds"] * 1.05

    def test_decompose_narrates_without_quiet(self, capsys):
        from repro.cli import main

        assert main(["decompose", "--dataset", "marvel"]) == 0
        out = capsys.readouterr().out
        assert "max bitruss number" in out

    def test_query_json_payload(self, capsys, tmp_path):
        from repro.cli import main

        artifact = tmp_path / "fig4.npz"
        assert main(
            ["index", "--dataset", "marvel", "--output", str(artifact), "--quiet"]
        ) == 0
        capsys.readouterr()
        assert main(
            ["query", str(artifact), "--json", "--quiet", "histogram"]
        ) == 0
        histogram = json.loads(capsys.readouterr().out)
        assert histogram and all(int(v) > 0 for v in histogram.values())

    def test_stats_profile_file_mode(self, capsys, tmp_path):
        from repro.cli import main

        assert main(
            ["decompose", "--dataset", "marvel", "--json", "--quiet", "--profile"]
        ) == 0
        payload = capsys.readouterr().out
        saved = tmp_path / "run.json"
        saved.write_text(payload)
        obs_phases.enable(False)

        assert main(["stats", "--profile", str(saved)]) == 0
        out = capsys.readouterr().out
        assert "wall time:" in out
        assert "leaf coverage:" in out
        assert "peeling" in out

    def test_stats_profile_rejects_profileless_json(self, tmp_path):
        from repro.cli import main

        saved = tmp_path / "plain.json"
        saved.write_text(json.dumps({"max_k": 4}))
        with pytest.raises(SystemExit, match="no phase tree"):
            main(["stats", "--profile", str(saved)])

"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import strategies as st

from repro.graph.bipartite import BipartiteGraph
from repro.graph.generators import (
    erdos_renyi_bipartite,
    paper_figure1_graph,
    paper_figure4_graph,
)


@pytest.fixture
def figure1():
    """The paper's Figure 1 author-paper network."""
    return paper_figure1_graph()


@pytest.fixture
def figure4():
    """The paper's Figure 4(a) running example."""
    return paper_figure4_graph()


@pytest.fixture
def medium_random():
    """A medium random bipartite graph with plenty of butterflies."""
    return erdos_renyi_bipartite(30, 25, 220, seed=99)


@st.composite
def bipartite_graphs(
    draw,
    max_upper: int = 10,
    max_lower: int = 10,
    max_edges: int = 40,
):
    """Hypothesis strategy: a small random bipartite graph."""
    n_u = draw(st.integers(min_value=1, max_value=max_upper))
    n_l = draw(st.integers(min_value=1, max_value=max_lower))
    possible = n_u * n_l
    m = draw(st.integers(min_value=0, max_value=min(max_edges, possible)))
    flat = draw(
        st.lists(
            st.integers(min_value=0, max_value=possible - 1),
            min_size=m,
            max_size=m,
            unique=True,
        )
    )
    edges = [(f // n_l, f % n_l) for f in flat]
    return BipartiteGraph(n_u, n_l, edges)


def assert_phi_equal(phi_a, phi_b, context: str = "") -> None:
    """Readable array comparison for bitruss numbers."""
    a = np.asarray(phi_a)
    b = np.asarray(phi_b)
    if not np.array_equal(a, b):
        diff = np.nonzero(a != b)[0][:10]
        raise AssertionError(
            f"bitruss numbers differ {context}: first diffs at edges "
            f"{diff.tolist()} ({a[diff].tolist()} vs {b[diff].tolist()})"
        )
